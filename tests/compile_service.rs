//! Integration tests for the compile-as-a-service API: the pooled-context
//! and artifact-cache path must be observationally identical to the
//! classic per-compile facade, across the paper benchmarks and generated
//! conformance seeds.

use std::sync::Arc;

use testkit::{generate_case, run_case_with_tolerance_via, Verdict, TOLERANCE};
use wse_stencil::{benchmarks::Benchmark, CompileErrorKind, Compiler, WseTarget};

/// Every benchmark compiles to byte-identical sources through the service
/// (cold path) and through `Compiler::compile`.
#[test]
fn service_sources_match_classic_for_all_benchmarks() {
    let compiler = Compiler::new().num_chunks(2);
    let service = compiler.service();
    for benchmark in Benchmark::ALL {
        let program = benchmark.tiny_program();
        let classic = compiler.compile(&program).unwrap();
        let served = service.compile(&program).unwrap();
        assert_eq!(classic.sources().files.len(), served.sources().files.len());
        for file in &classic.sources().files {
            let other = served.sources().file(&file.name).expect("same file set");
            assert_eq!(
                file.content,
                other.content,
                "{}: {} differs between classic and service compile",
                benchmark.name(),
                file.name
            );
        }
        assert_eq!(classic.pass_names(), served.pass_names());
        assert_eq!(classic.loc_report(), served.loc_report());
        assert_eq!(classic.bytes_per_pe(), served.bytes_per_pe());
        assert_eq!(classic.fmac_count(), served.fmac_count());
    }
    // All benchmarks went through pooled contexts; nothing was a hit.
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, Benchmark::ALL.len() as u64);
}

/// Repeat requests are served from the cache as the same shared artifact;
/// distinct programs and distinct options are distinct entries.
#[test]
fn cache_is_keyed_by_structure_and_options() {
    let service = Compiler::new().num_chunks(2).service();
    let jacobian = Benchmark::Jacobian.tiny_program();
    let first = service.compile(&jacobian).unwrap();
    let again = service.compile(&jacobian).unwrap();
    assert!(Arc::ptr_eq(&first, &again));

    // A structurally different program misses.
    let diffusion = Benchmark::Diffusion.tiny_program();
    let other = service.compile(&diffusion).unwrap();
    assert!(!Arc::ptr_eq(&first, &other));

    // Same structure under different options misses too (different service).
    let wse2 = Compiler::new().num_chunks(2).target(WseTarget::Wse2).service();
    let wse2_artifact = wse2.compile(&jacobian).unwrap();
    assert_ne!(
        wse2_artifact.sources().file("stencil_comms.csl").unwrap().content,
        first.sources().file("stencil_comms.csl").unwrap().content,
        "WSE2 runtime library must differ from WSE3"
    );

    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses, stats.cached_artifacts), (1, 2, 2));
    service.clear_cache();
    assert_eq!(service.stats().cached_artifacts, 0);
}

/// Batch compiles preserve input order and agree with single compiles.
#[test]
fn batch_compile_matches_sequential() {
    let service = Compiler::new().num_chunks(2).service().workers(3);
    let programs: Vec<_> = Benchmark::ALL.iter().map(|b| b.tiny_program()).collect();
    let batch = service.compile_batch(&programs);
    assert_eq!(batch.len(), programs.len());
    for (program, result) in programs.iter().zip(&batch) {
        let artifact = result.as_ref().expect("batch compile succeeds");
        assert_eq!(artifact.program().name, program.name);
        let solo = Compiler::new().num_chunks(2).compile(program).unwrap();
        assert_eq!(solo.sources().files.len(), artifact.sources().files.len());
        for file in &solo.sources().files {
            assert_eq!(&file.content, &artifact.sources().file(&file.name).unwrap().content);
        }
    }
}

/// Typed errors surface identically through the service, and an invalid
/// program does not poison the pool or the cache.
#[test]
fn service_errors_are_typed_and_recoverable() {
    let service = Compiler::new().num_chunks(2).service();
    let mut bad = Benchmark::Jacobian.tiny_program();
    bad.timesteps = 0;
    let err = service.compile(&bad).unwrap_err();
    assert_eq!(err.kind(), &CompileErrorKind::Emit);
    assert_eq!(err.code(), Some("emit-invalid-program"));
    // The same service still compiles a valid program afterwards.
    let good = service.compile(&Benchmark::Jacobian.tiny_program()).unwrap();
    assert!(good.sources().kernel_loc() > 0);

    let err = Compiler::new().num_chunks(0).service().compile(&bad).unwrap_err();
    assert!(matches!(err.kind(), CompileErrorKind::InvalidOptions { option: "num_chunks" }));
}

/// A mid-pipeline panic is isolated into a typed `internal-panic` error,
/// the context it poisoned is discarded, and the service keeps serving;
/// with a retry budget the caller never sees the transient at all.
#[test]
fn injected_panics_are_isolated_and_retriable() {
    testkit::install_quiet_panic_hook();
    let program = Benchmark::Jacobian.tiny_program();

    let service = Compiler::new().num_chunks(2).service();
    service.inject_panics(1);
    let err = service.compile(&program).unwrap_err();
    assert_eq!(err.kind(), &CompileErrorKind::Internal);
    assert_eq!(err.code(), Some("internal-panic"));
    let stats = service.stats();
    assert_eq!((stats.panics_isolated, stats.contexts_discarded), (1, 1));
    assert_eq!(stats.pooled_contexts, 0, "the poisoned context was not repooled");
    // Still healthy.
    assert!(service.compile(&program).is_ok());

    let retrying = Compiler::new().num_chunks(2).service().retry(2, std::time::Duration::ZERO);
    retrying.inject_panics(2);
    let artifact = retrying.compile(&program).expect("the retry budget absorbs the transient");
    assert_eq!(artifact.program().name, program.name);
    assert_eq!(retrying.stats().retries_spent, 2);
}

/// An over-deadline compile fails with a typed `deadline-exceeded` error
/// while the detached worker finishes and fills the cache for the next
/// request.
#[test]
fn deadline_expiry_is_typed_and_work_is_not_wasted() {
    testkit::install_quiet_panic_hook();
    let program = Benchmark::Diffusion.tiny_program();
    let service =
        Compiler::new().num_chunks(2).service().deadline(std::time::Duration::from_millis(100));
    service.inject_stall(std::time::Duration::from_millis(600));
    let err = service.compile(&program).unwrap_err();
    assert_eq!(err.kind(), &CompileErrorKind::DeadlineExceeded);
    assert_eq!(err.code(), Some("deadline-exceeded"));
    assert!(service.stats().deadlines_expired >= 1);
    // The detached worker completes: poll until its artifact lands.
    let bound = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while service.stats().cached_artifacts == 0 {
        assert!(std::time::Instant::now() < bound, "detached compile never completed");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(service.compile(&program).is_ok(), "the late artifact serves the next request");
}

/// Generated conformance seeds give the same verdict through the service
/// path as through the classic compiler (spot-check; the conformance bin
/// runs the full sweep with `--service`).
#[test]
fn conformance_seeds_agree_between_paths() {
    let mut checked = 0;
    for seed in 0..24 {
        let case = generate_case(seed);
        let classic = run_case_with_tolerance_via(&case, TOLERANCE, false);
        let service = run_case_with_tolerance_via(&case, TOLERANCE, true);
        assert_eq!(classic, service, "seed {seed} diverged between compile paths");
        if matches!(classic, Verdict::Pass { .. }) {
            checked += 1;
        }
    }
    assert!(checked > 0, "no seed passed — the spot check lost its coverage");
}
