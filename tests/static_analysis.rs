//! Integration tests for the static analyzer: hand-written racy and
//! clean linked-stream fixtures, lint pins for every diagnostic code,
//! dependence-DAG shape checks, and the seed-sweep properties the ISSUE
//! requires — the translation validator accepts every optimizer rewrite
//! on generated seeds, and no unflagged seed may differ bitwise between
//! serial and parallel execution (the race detector's no-false-negative
//! contract: a diverging schedule implies a flagged stream).

use testkit::conformance::bitwise_difference;
use testkit::generate_case;
use wse_analysis::{dag::Block, has_errors, Analyzer, EdgeKind, NodeKind};
use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
use wse_frontends::benchmarks::Benchmark;
use wse_lowering::lower_program;
use wse_sim::link::{
    BufferId, BufferLayout, FusedInit, FusedTerm, LinkedInstr, LinkedKernel, LinkedProgram,
    LinkedView, SrcRef,
};
use wse_sim::{link_program_with, load_program, LinkOptions, OptStats, WseGridSim};

fn analyzer() -> Analyzer {
    Analyzer::new()
}

/// Links one benchmark's tiny program with the optimizer (and validator)
/// on, returning the stream.
fn linked_benchmark(benchmark: Benchmark) -> LinkedProgram {
    let program = benchmark.tiny_program();
    let lowered = lower_program(&program, &Default::default()).expect("benchmark lowers");
    let loaded = load_program(&lowered.ctx, lowered.module).expect("benchmark loads");
    link_program_with(
        &loaded,
        &LinkOptions { optimize: true, validate: true, ..LinkOptions::default() },
    )
    .expect("benchmark links")
}

/// A benchmark stream with a halo exchange whose capture was elided and
/// whose write-backs were deferred — the shape every racy fixture below
/// starts from.
fn deferred_commit_stream() -> LinkedProgram {
    for benchmark in Benchmark::ALL {
        let linked = linked_benchmark(benchmark);
        let has_shape = linked.kernels.iter().any(|k| {
            k.comm.as_ref().is_some_and(|c| !c.capture && !c.snap_fields.is_empty())
                && !k.commit.is_empty()
        });
        if has_shape {
            return linked;
        }
    }
    panic!("no benchmark produced an elided-capture kernel with deferred commits");
}

fn view(base: u32, len: u32) -> LinkedView {
    LinkedView { base, len, dynamic: false }
}

// ---------------------------------------------------------------------------
// Hand-written stream fixtures: clean and racy.
// ---------------------------------------------------------------------------

/// Fixture 1 (clean): the optimizer's own output on every benchmark must
/// carry no error finding, in both the optimized and unoptimized streams.
#[test]
fn benchmark_streams_are_race_free() {
    for benchmark in Benchmark::ALL {
        let optimized = linked_benchmark(benchmark);
        let findings = analyzer().check_stream(&optimized);
        assert!(
            !has_errors(&findings),
            "{benchmark:?} optimized stream has race findings: {findings:?}"
        );

        let program = benchmark.tiny_program();
        let lowered = lower_program(&program, &Default::default()).expect("lowers");
        let loaded = load_program(&lowered.ctx, lowered.module).expect("loads");
        let unoptimized =
            link_program_with(&loaded, &LinkOptions { optimize: false, ..LinkOptions::default() })
                .expect("links");
        let findings = analyzer().check_stream(&unoptimized);
        assert!(
            !has_errors(&findings),
            "{benchmark:?} unoptimized stream has race findings: {findings:?}"
        );
    }
}

/// Fixture 2 (racy, E101): un-deferring the commit block — moving its
/// write-backs into the sweep-phase `done` block while the capture stays
/// elided — puts live writes into transmitted columns.
#[test]
fn sweep_write_into_live_transmitted_column_is_flagged() {
    let mut linked = deferred_commit_stream();
    for kernel in &mut linked.kernels {
        let commits: Vec<_> = kernel.commit.drain(..).collect();
        kernel.done.extend(commits);
    }
    let findings = analyzer().check_stream(&linked);
    assert!(
        findings.iter().any(|f| f.code == "E101"),
        "un-deferred commit writes were not flagged: {findings:?}"
    );
    assert!(has_errors(&findings));
}

/// Fixture 3 (racy, E102): a deferred commit instruction that sources a
/// receive slot reads neighbor state that is stale by commit time.
#[test]
fn slot_read_in_deferred_commit_is_flagged() {
    let mut linked = deferred_commit_stream();
    let kernel = linked
        .kernels
        .iter_mut()
        .find(|k| k.comm.is_some() && !k.commit.is_empty())
        .expect("fixture has a deferred-commit kernel");
    let chunk = kernel.comm.as_ref().unwrap().chunk_size as u32;
    kernel.commit.push(LinkedInstr::FusedMacs {
        dest: view(0, chunk),
        init: FusedInit::Fill(0.0),
        terms: vec![FusedTerm { src: SrcRef::Slot { slot: 0, offset: 0, len: chunk }, coeff: 1.0 }],
    });
    let findings = analyzer().check_stream(&linked);
    assert!(
        findings.iter().any(|f| f.code == "E102"),
        "slot-sourcing commit was not flagged: {findings:?}"
    );
}

/// Fixture 4 (wasteful, W101): re-enabling the capture on a kernel whose
/// transmitted-column writes all sit in the deferred commit block retains
/// a snapshot nothing needs.
#[test]
fn redundant_retained_capture_is_flagged() {
    let mut linked = deferred_commit_stream();
    let mut flipped = 0;
    for kernel in &mut linked.kernels {
        if let Some(comm) = &mut kernel.comm {
            if !comm.capture && !kernel.commit.is_empty() {
                comm.capture = true;
                flipped += 1;
            }
        }
    }
    assert!(flipped > 0);
    let findings = analyzer().check_stream(&linked);
    assert!(
        findings.iter().any(|f| f.code == "W101"),
        "redundant capture was not flagged: {findings:?}"
    );
    // A waste warning, not a race: the stream still has no errors.
    assert!(!has_errors(&findings));
}

/// Fixture 5 (clean, hand-constructed): a minimal three-instruction
/// stream whose dependence DAG is small enough to predict exactly.
#[test]
fn hand_built_stream_has_exact_dependence_edges() {
    let linked = LinkedProgram {
        width: 1,
        height: 1,
        z_dim: 4,
        z_halo: 0,
        timesteps: 1,
        arena_len: 12,
        layouts: vec![
            BufferLayout { name: "a".into(), base: 0, len: 4, init: 0.0 },
            BufferLayout { name: "b".into(), base: 4, len: 4, init: 0.0 },
            BufferLayout { name: "c".into(), base: 8, len: 4, init: 0.0 },
        ],
        field_ids: vec![BufferId(0)],
        field_internal: vec![false],
        kernels: vec![LinkedKernel {
            pre: vec![
                // Writes b.
                LinkedInstr::Fill { dest: view(4, 4), value: 1.0 },
                // Reads a and b, writes a: RAW on b from the Fill.
                LinkedInstr::Macs {
                    dest: view(0, 4),
                    acc: view(0, 4),
                    src: view(4, 4),
                    coeff: 0.5,
                },
                // Reads c, writes b: WAR against the Macs read of b, WAW
                // against the Fill write of b.
                LinkedInstr::Copy { dest: view(4, 4), src: view(8, 4) },
            ],
            comm: None,
            recv: Vec::new(),
            done: Vec::new(),
            commit: Vec::new(),
            work_per_pe: 12,
            writes: vec![BufferId(0), BufferId(1)],
        }],
        max_view_len: 4,
        simd: false,
        fast_fma: false,
        stats: OptStats::default(),
    };

    let graph = analyzer().dependence_graph(&linked);
    let counts = graph.counts();
    assert_eq!(counts.nodes, 3);
    assert_eq!(counts.raw, 1, "expected exactly the Fill→Macs RAW edge");
    assert_eq!(counts.war, 1, "expected exactly the Macs→Copy WAR edge");
    assert_eq!(counts.waw, 1, "expected exactly the Fill→Copy WAW edge");
    assert_eq!(counts.snapshot, 0);
    assert_eq!(counts.halo, 0);
    let raw = graph.edges_of(EdgeKind::Raw).next().unwrap();
    assert_eq!((raw.from, raw.to), (0, 1));

    // And the stream itself is clean.
    let findings = analyzer().check_stream(&linked);
    assert!(findings.is_empty(), "{findings:?}");
}

/// Fixture 6: a benchmark stream with a halo exchange grows snapshot and
/// staging structure in the DAG when the capture is retained
/// (unoptimized), and the racy E101 mutation shows up as sweep instructions
/// writing ranges the snapshot reads — the DAG edge the detector walks.
#[test]
fn exchange_streams_grow_snapshot_nodes_in_the_dag() {
    let program = Benchmark::Diffusion.tiny_program();
    let lowered = lower_program(&program, &Default::default()).expect("lowers");
    let loaded = load_program(&lowered.ctx, lowered.module).expect("loads");
    let unoptimized =
        link_program_with(&loaded, &LinkOptions { optimize: false, ..LinkOptions::default() })
            .expect("links");
    let graph = analyzer().dependence_graph(&unoptimized);
    assert!(
        graph.nodes.iter().any(|n| n.kind == NodeKind::Snapshot),
        "unoptimized exchange stream should retain a snapshot capture node"
    );
    assert!(graph.counts().snapshot > 0, "snapshot-ordering edges expected");
    assert!(
        graph.nodes.iter().any(|n| n.kind == NodeKind::Staging && n.block == Block::Exchange),
        "staged receive copies should appear as exchange-phase nodes"
    );
}

// ---------------------------------------------------------------------------
// Lint pins: one hand-written program per diagnostic code.
// ---------------------------------------------------------------------------

fn lint_program(fields: &[&str], equations: Vec<StencilEquation>) -> StencilProgram {
    StencilProgram {
        name: "lint-fixture".into(),
        frontend: Frontend::Flang,
        grid: GridSpec::new(6, 6, 8),
        fields: fields.iter().map(|f| f.to_string()).collect(),
        equations,
        timesteps: 1,
        source: String::new(),
    }
}

fn codes(findings: &[wse_analysis::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.code).collect()
}

#[test]
fn lint_pins_every_ast_code() {
    // W001: field "ghost" is never read or written.
    let program = lint_program(
        &["u", "ghost"],
        vec![StencilEquation::new("u", Expr::center("u").scale(0.5))],
    );
    assert!(codes(&analyzer().lint(&program)).contains(&"W001"));

    // W002: the first store to u is overwritten before any read.
    let program = lint_program(
        &["u", "v"],
        vec![
            StencilEquation::new("u", Expr::center("v").scale(0.5)),
            StencilEquation::new("u", Expr::center("v").scale(0.25)),
        ],
    );
    assert!(codes(&analyzer().lint(&program)).contains(&"W002"));

    // ... but an intervening read keeps the store live.
    let program = lint_program(
        &["u", "v"],
        vec![
            StencilEquation::new("u", Expr::center("v").scale(0.5)),
            StencilEquation::new("v", Expr::center("u").scale(0.5)),
            StencilEquation::new("u", Expr::center("v").scale(0.25)),
        ],
    );
    assert!(!codes(&analyzer().lint(&program)).contains(&"W002"));

    // W003: reads its own output at a shifted offset.
    let program = lint_program(
        &["u"],
        vec![StencilEquation::new(
            "u",
            (Expr::at("u", 1, 0, 0) + Expr::at("u", -1, 0, 0)).scale(0.25),
        )],
    );
    assert!(codes(&analyzer().lint(&program)).contains(&"W003"));

    // W004: a degree-2 product term (warns, does not error).
    let program = lint_program(
        &["u", "v"],
        vec![StencilEquation::new("u", (Expr::center("u") * Expr::center("v")).scale(0.25))],
    );
    let findings = analyzer().lint(&program);
    assert!(codes(&findings).contains(&"W004"));
    assert!(!has_errors(&findings));

    // E001: offset at least the grid extent.
    let program =
        lint_program(&["u"], vec![StencilEquation::new("u", Expr::at("u", 0, 0, 9).scale(0.5))]);
    let findings = analyzer().lint(&program);
    assert!(codes(&findings).contains(&"E001"));
    assert!(has_errors(&findings));

    // E002: halo radius above what any exchange pattern transmits.
    let program = lint_program(
        &["u", "v"],
        vec![StencilEquation::new("u", Expr::at("v", 5, 0, 0).scale(0.5))],
    );
    assert!(codes(&analyzer().lint(&program)).contains(&"E002"));

    // E003: polynomial degree 3 (the lowering's non-linear-degree twin).
    let program = lint_program(
        &["u", "v"],
        vec![StencilEquation::new(
            "u",
            (Expr::center("u") * Expr::center("v") * Expr::center("v")).scale(0.1),
        )],
    );
    let findings = analyzer().lint(&program);
    assert!(codes(&findings).contains(&"E003"));
    assert!(has_errors(&findings));

    // All five benchmarks stay error-free.
    for benchmark in Benchmark::ALL {
        let findings = analyzer().lint(&benchmark.tiny_program());
        assert!(!has_errors(&findings), "{benchmark:?}: {findings:?}");
    }
}

// ---------------------------------------------------------------------------
// Seed-sweep properties.
// ---------------------------------------------------------------------------

/// For every generated seed the compiler accepts: (a) the translation
/// validator accepts every optimizer rewrite (zero rejections), and
/// (b) the race detector's verdict agrees with the schedule — a stream it
/// flags must differ bitwise between serial and parallel execution, and a
/// stream it clears must be bitwise identical under both schedules.
/// Since the optimizer's output is clean, (b) exercises the
/// no-false-negative direction on every seed.
#[test]
fn seeds_validate_and_unflagged_streams_are_schedule_invariant() {
    let mut checked = 0;
    for seed in 0..256u64 {
        let case = generate_case(seed);
        let Ok(lowered) = lower_program(&case.program, &case.options) else {
            continue; // typed rejection (e.g. non-linear-degree); not this test's concern
        };
        let Ok(loaded) = load_program(&lowered.ctx, lowered.module) else { continue };
        let options = LinkOptions { optimize: true, validate: true, ..LinkOptions::default() };
        let linked = link_program_with(&loaded, &options).expect("seed links");

        // (a) the validator accepted every rewrite.
        assert_eq!(
            linked.stats.validator_rejections, 0,
            "seed {seed}: validator rejected {:?}",
            linked.stats.rejected_passes
        );
        assert!(linked.stats.validated_passes > 0, "seed {seed}: validator did not run");

        // (b) schedule invariance for unflagged streams.
        let findings = analyzer().check_stream(&linked);
        let flagged = has_errors(&findings);

        let mut serial = WseGridSim::with_options(loaded.clone(), options).expect("links");
        serial.set_threads(1);
        serial.run(None).expect("serial run");
        let serial_state = serial.grid_state().expect("serial state");

        let mut parallel = WseGridSim::with_options(loaded, options).expect("links");
        parallel.set_threads(4);
        parallel.run(None).expect("parallel run");
        let parallel_state = parallel.grid_state().expect("parallel state");

        let difference = bitwise_difference(&serial_state, &parallel_state);
        if flagged {
            assert!(
                difference.is_some(),
                "seed {seed}: race detector flagged a schedule-invariant stream: {findings:?}"
            );
        } else {
            assert!(
                difference.is_none(),
                "seed {seed}: unflagged stream diverges serial vs parallel: {}",
                difference.unwrap()
            );
        }
        checked += 1;
    }
    assert!(checked >= 128, "only {checked} of 256 seeds were accepted by the compiler");
}
