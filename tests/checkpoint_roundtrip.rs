//! Property tests: checkpoint/restore on the linked engine round-trips
//! bitwise at arbitrary split points — save mid-run, run to the end,
//! restore, re-run the tail, and require the replay (and the split run
//! itself) to be bit-identical to an uninterrupted run.  Swept across
//! grid sizes, chunk counts, and the optimizer/SIMD toggles (vendored
//! proptest shim).

use proptest::prelude::*;
use wse_frontends::benchmarks::jacobian;
use wse_lowering::{lower_program, PipelineOptions};
use wse_sim::{load_program, GridState, LinkOptions, WseGridSim};

fn assert_bitwise(label: &str, a: &GridState, b: &GridState) {
    for ((name, fa), fb) in a.names.iter().zip(&a.fields).zip(&b.fields) {
        for (i, (x, y)) in fa.data.iter().zip(&fb.data).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: {name}[{i}] differs: {x} vs {y}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Save at an arbitrary step, run on, restore, re-run: all three
    /// states (uninterrupted, split, replayed) must be bit-identical.
    #[test]
    fn checkpoint_restore_replay_is_bitwise(
        nx in 2i64..6,
        ny in 2i64..6,
        nz in 4i64..12,
        chunks in 1i64..4,
        optimize in 0i64..2,
        simd in 0i64..2,
        split in 1i64..6,
    ) {
        let steps = 8i64;
        let program = jacobian(nx, ny, nz, steps);
        let options = PipelineOptions { num_chunks: chunks, ..PipelineOptions::default() };
        let lowered = lower_program(&program, &options).expect("lowering succeeds");
        let loaded = load_program(&lowered.ctx, lowered.module).expect("loading succeeds");
        let link = LinkOptions {
            optimize: optimize == 1,
            simd: simd == 1,
            ..LinkOptions::default()
        };

        let mut straight = WseGridSim::with_options(loaded.clone(), link).expect("links");
        straight.run(Some(steps)).expect("uninterrupted run");
        let expected = straight.grid_state().expect("extracts");

        let split = split.min(steps - 1);
        let mut sim = WseGridSim::with_options(loaded, link).expect("links");
        sim.run(Some(split)).expect("head run");
        let checkpoint = sim.checkpoint();
        prop_assert_eq!(checkpoint.step(), split);
        sim.run(Some(steps - split)).expect("tail run");
        let first = sim.grid_state().expect("extracts");
        assert_bitwise("checkpointed run vs uninterrupted", &expected, &first);

        sim.restore(&checkpoint).expect("restores");
        prop_assert_eq!(sim.steps_completed(), split);
        sim.run(Some(steps - split)).expect("replayed tail run");
        let replayed = sim.grid_state().expect("extracts");
        assert_bitwise("replay after restore vs uninterrupted", &expected, &replayed);
    }
}
