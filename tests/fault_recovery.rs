//! Fault-injection and recovery integration tests for the linked engine:
//! precisely-placed faults (bit flips, dropped halo deliveries, band
//! panics, band stalls) must either be detected and rolled back — with a
//! final state bit-identical to the fault-free stream — or surface a
//! typed [`wse_sim::ExecError`].  Silent corruption is the one outcome
//! that must never happen.

use std::sync::Once;

use wse_frontends::benchmarks::jacobian;
use wse_lowering::{lower_program, PipelineOptions};
use wse_sim::{
    load_program, ExecErrorKind, FaultKind, FaultOptions, FaultPlan, GridState, LinkOptions,
    LoadedProgram, RecoveryOptions, WseGridSim, INJECTED_BAND_PANIC,
};

/// Suppresses the deliberately injected band-fault panics (they unwind
/// on engine worker threads before the engine catches them) while
/// forwarding every other panic to the default hook.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains(INJECTED_BAND_PANIC))
                .unwrap_or(false)
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains(INJECTED_BAND_PANIC))
                    .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

fn loaded_jacobian(nx: i64, ny: i64, nz: i64, steps: i64) -> LoadedProgram {
    let program = jacobian(nx, ny, nz, steps);
    let options = PipelineOptions { num_chunks: 2, ..PipelineOptions::default() };
    let lowered = lower_program(&program, &options).expect("lowering succeeds");
    load_program(&lowered.ctx, lowered.module).expect("loading succeeds")
}

fn state_of(loaded: &LoadedProgram, link: LinkOptions) -> GridState {
    let mut sim = WseGridSim::with_options(loaded.clone(), link).expect("links");
    sim.run(None).expect("fault-free run");
    sim.grid_state().expect("extracts")
}

fn assert_bitwise(label: &str, a: &GridState, b: &GridState) {
    for ((name, fa), fb) in a.names.iter().zip(&a.fields).zip(&b.fields) {
        for (i, (x, y)) in fa.data.iter().zip(&fb.data).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: {name}[{i}] differs: {x} vs {y}");
        }
    }
}

const LINK: LinkOptions = LinkOptions {
    optimize: true,
    simd: true,
    fast_fma: false,
    validate: cfg!(debug_assertions),
    mutate: None,
};

#[test]
fn bit_flips_are_detected_rolled_back_and_replayed_bitwise() {
    let loaded = loaded_jacobian(4, 4, 8, 12);
    let baseline = state_of(&loaded, LINK);

    let mut sim = WseGridSim::with_options(loaded, LINK).expect("links");
    // Flips at even boundaries land one step past the checkpoint cadence
    // (every 2 steps, taken before the boundary injection), so each
    // rollback must actually replay a lost step.
    sim.set_fault_plan(FaultPlan::from_events(vec![
        (2, FaultKind::ArenaBitFlip { pe: 0, offset: 5, bit: 7 }),
        (8, FaultKind::ArenaBitFlip { pe: 3, offset: 2, bit: 30 }),
    ]));
    sim.enable_recovery(RecoveryOptions {
        checkpoint_every: 2,
        verify: true,
        ..RecoveryOptions::default()
    });
    sim.run(None).expect("faulted run recovers");
    let state = sim.grid_state().expect("extracts");
    assert_bitwise("bit-flip recovery", &baseline, &state);

    let stats = sim.recovery_stats().expect("recovery was enabled");
    assert_eq!(stats.faults.bit_flips, 2, "both planned flips fired");
    assert_eq!(stats.checksum_failures, 2, "both flips were detected by the row checksums");
    assert_eq!(stats.rollbacks, 2, "each detection rolled back once");
    assert!(stats.steps_replayed > 0, "rollback replayed lost steps");
    assert!(stats.checkpoints_saved > 0, "the cadence saved checkpoints");
}

#[test]
fn band_panic_without_recovery_is_typed_then_restorable() {
    quiet_injected_panics();
    let loaded = loaded_jacobian(4, 4, 8, 6);
    let baseline = state_of(&loaded, LINK);

    let mut sim = WseGridSim::with_options(loaded, LINK).expect("links");
    sim.set_threads(2);
    let checkpoint = sim.checkpoint();
    sim.set_fault_plan(FaultPlan::from_events(vec![(
        0,
        FaultKind::BandPanic { kernel: 0, band: 0 },
    )]));
    // Single-step execution bypasses the recovery loop: the panic must
    // surface as a typed error, never as an unwind or silent corruption.
    let err = sim.run_timestep().expect_err("the injected panic surfaces");
    assert_eq!(err.kind, ExecErrorKind::BandPanicked);
    assert!(err.message.contains(INJECTED_BAND_PANIC), "payload is preserved: {}", err.message);
    assert!(sim.poisoned(), "state was lost mid-sweep");
    let err = sim.grid_state().expect_err("poisoned engines refuse extraction");
    assert_eq!(err.kind, ExecErrorKind::Poisoned);

    // Restoring the pre-fault checkpoint clears the poison; the re-run
    // (the panic event was consumed) matches the fault-free stream.
    sim.restore(&checkpoint).expect("restores");
    sim.run(None).expect("clean re-run");
    let state = sim.grid_state().expect("extracts");
    assert_bitwise("post-restore re-run", &baseline, &state);
}

#[test]
fn band_panic_under_recovery_rolls_back_and_recovers() {
    quiet_injected_panics();
    let loaded = loaded_jacobian(4, 4, 8, 6);
    let baseline = state_of(&loaded, LINK);

    let mut sim = WseGridSim::with_options(loaded, LINK).expect("links");
    sim.set_threads(2);
    sim.set_fault_plan(FaultPlan::from_events(vec![(
        2,
        FaultKind::BandPanic { kernel: 0, band: 1 },
    )]));
    sim.enable_recovery(RecoveryOptions { checkpoint_every: 2, ..RecoveryOptions::default() });
    sim.run(None).expect("recovery absorbs the panic");
    let state = sim.grid_state().expect("extracts");
    assert_bitwise("band-panic recovery", &baseline, &state);
    let stats = sim.recovery_stats().expect("recovery was enabled");
    assert_eq!(stats.faults.band_panics, 1);
    assert_eq!(stats.band_panics, 1, "the panic was detected");
    assert!(stats.rollbacks >= 1);
}

#[test]
fn stalled_band_hits_the_watchdog_and_recovery_replays() {
    quiet_injected_panics();
    let loaded = loaded_jacobian(4, 4, 8, 6);
    let baseline = state_of(&loaded, LINK);

    let mut sim = WseGridSim::with_options(loaded, LINK).expect("links");
    sim.set_threads(2);
    sim.set_fault_plan(FaultPlan::from_events(vec![(
        1,
        FaultKind::BandStall { kernel: 0, band: 0, millis: 1_500 },
    )]));
    sim.enable_recovery(RecoveryOptions {
        checkpoint_every: 2,
        watchdog_ms: 150,
        ..RecoveryOptions::default()
    });
    sim.run(None).expect("the watchdog converts the stall into a rollback");
    let state = sim.grid_state().expect("extracts");
    assert_bitwise("stall recovery", &baseline, &state);
    let stats = sim.recovery_stats().expect("recovery was enabled");
    assert_eq!(stats.faults.band_stalls, 1);
    assert_eq!(stats.band_timeouts, 1, "the watchdog fired");
    assert!(stats.rollbacks >= 1);
    assert!(!sim.poisoned(), "rollback restored the quarantined engine");
}

#[test]
fn dropped_halo_delivery_is_caught_by_the_delivery_checksum() {
    let loaded = loaded_jacobian(4, 4, 8, 6);
    // Optimizer off so halo captures survive (capture elision removes
    // the snapshot region the delivery checksum guards); the optimizer
    // is bitwise-transparent, so the baseline comparison still holds.
    let link = LinkOptions { optimize: false, ..LINK };
    let baseline = state_of(&loaded, link);

    let mut sim = WseGridSim::with_options(loaded, link).expect("links");
    let kernel = sim
        .linked()
        .kernels
        .iter()
        .position(|k| k.comm.as_ref().is_some_and(|c| c.capture && !c.snap_fields.is_empty()))
        .expect("an unoptimized halo exchange captures columns");
    sim.set_fault_plan(FaultPlan::from_events(vec![
        (1, FaultKind::DropDelivery { kernel, pe: 2, field: 0 }),
        (3, FaultKind::DuplicateDelivery { kernel, pe: 5, field: 0 }),
    ]));
    sim.enable_recovery(RecoveryOptions {
        checkpoint_every: 2,
        verify: true,
        ..RecoveryOptions::default()
    });
    sim.run(None).expect("recovery absorbs the delivery faults");
    let state = sim.grid_state().expect("extracts");
    assert_bitwise("delivery-fault recovery", &baseline, &state);
    let stats = sim.recovery_stats().expect("recovery was enabled");
    assert_eq!(stats.faults.drops, 1);
    assert_eq!(stats.faults.duplicates, 1);
    assert_eq!(stats.delivery_failures, 2, "both tampered exchanges were refused");
    assert!(stats.rollbacks >= 2);
}

#[test]
fn exhausted_rollback_budget_is_a_typed_recovery_failure() {
    quiet_injected_panics();
    let loaded = loaded_jacobian(3, 3, 6, 6);
    let mut sim = WseGridSim::with_options(loaded, LINK).expect("links");
    sim.set_threads(2);
    // A persistent fault: every replay of step 0 panics again until the
    // budget runs out.
    sim.set_fault_plan(FaultPlan::from_events(vec![
        (
            0,
            FaultKind::BandPanic { kernel: 0, band: 0 }
        );
        8
    ]));
    sim.enable_recovery(RecoveryOptions { max_rollbacks: 3, ..RecoveryOptions::default() });
    let err = sim.run(None).expect_err("the budget is exhausted");
    assert_eq!(err.kind, ExecErrorKind::RecoveryFailed);
    assert!(sim.poisoned(), "giving up poisons the engine");
    let stats = sim.recovery_stats().expect("recovery was enabled");
    assert!(stats.rollbacks > 3, "the budget was spent before giving up");
}

#[test]
fn seeded_campaign_from_options_recovers_bitwise() {
    quiet_injected_panics();
    let loaded = loaded_jacobian(4, 4, 8, 16);
    let baseline = state_of(&loaded, LINK);

    let mut sim = WseGridSim::with_options(loaded, LINK).expect("links");
    sim.inject_faults(FaultOptions { seed: 0xFA17, rate: 0.6 });
    sim.enable_recovery(RecoveryOptions {
        checkpoint_every: 2,
        verify: true,
        max_rollbacks: 64,
        watchdog_ms: 250,
    });
    sim.run(None).expect("the campaign recovers");
    let state = sim.grid_state().expect("extracts");
    assert_bitwise("seeded campaign", &baseline, &state);
    let stats = sim.recovery_stats().expect("recovery was enabled");
    assert!(stats.faults.total() > 0, "the campaign injected something: {stats:?}");
    assert!(stats.rollbacks > 0, "recovery actually fired");
}
