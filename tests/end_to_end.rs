//! End-to-end integration tests: every paper benchmark is compiled through
//! the full pipeline, the generated IR verifies, the generated CSL looks
//! like CSL, and the functional simulation matches the reference executor.

use wse_stencil::benchmarks::Benchmark;
use wse_stencil::{Compiler, WseTarget};

#[test]
fn every_benchmark_compiles_validates_and_verifies() {
    for benchmark in Benchmark::ALL {
        let program = benchmark.tiny_program();
        let artifact = Compiler::new()
            .num_chunks(2)
            .verify_each(true)
            .compile(&program)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", benchmark.name()));
        let deviation = artifact
            .validate_against_reference()
            .unwrap_or_else(|e| panic!("{} failed to simulate: {e}", benchmark.name()));
        assert!(
            deviation < 1e-3,
            "{}: simulated result deviates from the reference by {deviation}",
            benchmark.name()
        );
        assert!(
            artifact.bytes_per_pe() <= 48 * 1024,
            "{}: generated buffers exceed the 48 kB PE memory",
            benchmark.name()
        );
    }
}

#[test]
fn generated_csl_has_the_figure1_structure() {
    let program = Benchmark::Jacobian.tiny_program();
    let artifact = Compiler::new().num_chunks(2).compile(&program).unwrap();
    let kernel = &artifact.sources().file("pe_program.csl").unwrap().content;
    for expected in [
        "fn f_main() void {",
        "task for_cond0() void {",
        "fn for_inc0() void {",
        "fn for_post0() void {",
        "fn seq_kernel0() void {",
        "task receive_chunk_cb0(",
        "task done_exchange_cb0(",
        "stencil_comms.communicate(",
        "@activate(for_cond0_task_id);",
        "@fmacs(",
    ] {
        assert!(kernel.contains(expected), "generated CSL is missing {expected:?}:\n{kernel}");
    }
    let layout = &artifact.sources().file("layout.csl").unwrap().content;
    assert!(layout.contains("@set_rectangle("));
    assert!(layout.contains("@set_tile_code(x, y, \"pe_program.csl\""));
    let library = &artifact.sources().file("stencil_comms.csl").unwrap().content;
    assert!(library.contains("fn communicate(buffer"));
}

#[test]
fn both_targets_compile_the_same_source_without_changes() {
    // The paper's headline claim: the same application code runs on WSE2
    // and WSE3 (and would run on CPUs/GPUs) without modification.
    let program = Benchmark::Diffusion.tiny_program();
    let wse2 = Compiler::new().target(WseTarget::Wse2).compile(&program).unwrap();
    let wse3 = Compiler::new().target(WseTarget::Wse3).compile(&program).unwrap();
    assert_eq!(wse2.program().source, wse3.program().source);
    assert!(wse2.validate_against_reference().unwrap() < 1e-4);
    assert!(wse3.validate_against_reference().unwrap() < 1e-4);
    // Only the runtime communication library differs.
    let lib = |a: &wse_stencil::CslArtifact| {
        a.sources().file("stencil_comms.csl").unwrap().content.clone()
    };
    assert_ne!(lib(&wse2), lib(&wse3));
}

#[test]
fn optimization_toggles_preserve_results() {
    // Whatever combination of optimizations is enabled, the generated code
    // must compute the same answer.
    let program = Benchmark::Acoustic.tiny_program();
    let reference =
        Compiler::new().compile(&program).unwrap().validate_against_reference().unwrap();
    assert!(reference < 1e-3);
    for (fusion, inlining, promotion) in
        [(false, true, true), (true, false, true), (true, true, false), (false, false, false)]
    {
        let artifact = Compiler::new()
            .fmac_fusion(fusion)
            .inlining(inlining)
            .coefficient_promotion(promotion)
            .compile(&program)
            .unwrap();
        let deviation = artifact.validate_against_reference().unwrap();
        assert!(
            deviation < 1e-3,
            "fusion={fusion} inlining={inlining} promotion={promotion}: deviation {deviation}"
        );
    }
}

#[test]
fn chunk_counts_do_not_change_results() {
    let program = Benchmark::Seismic25.tiny_program();
    for chunks in [1, 2, 4, 8] {
        let artifact = Compiler::new().num_chunks(chunks).compile(&program).unwrap();
        let deviation = artifact.validate_against_reference().unwrap();
        assert!(deviation < 1e-3, "num_chunks={chunks}: deviation {deviation}");
    }
}

#[test]
fn loc_report_matches_table1_ordering_for_all_frontends() {
    for benchmark in Benchmark::ALL {
        let artifact = Compiler::new().compile(&benchmark.tiny_program()).unwrap();
        let report = artifact.loc_report();
        assert!(report.dsl < report.csl_kernel, "{}", benchmark.name());
        assert!(report.csl_kernel < report.csl_entire, "{}", benchmark.name());
    }
}
