//! Property tests: the linked flat-memory engine must match the
//! sequential reference executor across randomized grid sizes, chunk
//! counts, and optimization settings (vendored proptest shim) — and the
//! link-time optimizer must be bitwise-transparent: every case runs
//! through both the optimized and the `WSE_SIM_NO_FUSE=1` stream and the
//! two grids must be identical bit for bit.

use proptest::prelude::*;
use wse_frontends::ast::StencilProgram;
use wse_frontends::benchmarks::{diffusion, jacobian};
use wse_lowering::{lower_program, PipelineOptions};
use wse_sim::{load_program, max_abs_difference, run_reference, LinkOptions, WseGridSim};

/// Lowers, links, and simulates with the link-time optimizer on and off;
/// asserts the two streams agree bitwise and returns the optimized
/// stream's deviation from the reference.
fn deviation(program: &StencilProgram, options: &PipelineOptions) -> f32 {
    let lowered = lower_program(program, options).expect("lowering succeeds");
    let loaded = load_program(&lowered.ctx, lowered.module).expect("loading succeeds");
    let mut sim = WseGridSim::with_options(
        loaded.clone(),
        LinkOptions { optimize: true, ..LinkOptions::default() },
    )
    .expect("program links");
    sim.run(None).expect("simulation succeeds");
    let simulated = sim.grid_state().expect("state extraction succeeds");

    let mut unopt =
        WseGridSim::with_options(loaded, LinkOptions { optimize: false, ..LinkOptions::default() })
            .expect("program links unoptimized");
    unopt.run(None).expect("unoptimized simulation succeeds");
    let unopt_state = unopt.grid_state().expect("state extraction succeeds");
    for ((name, a), b) in simulated.names.iter().zip(&simulated.fields).zip(&unopt_state.fields) {
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "optimizer changed {name}[{i}]: {x} vs {y}");
        }
    }

    let reference = run_reference(program, None);
    max_abs_difference(&simulated, &reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Jacobian across grid sizes, chunk counts, and fmacs fusion on/off.
    #[test]
    fn jacobian_linked_engine_matches_reference(
        nx in 2i64..7,
        ny in 2i64..7,
        nz in 4i64..17,
        steps in 1i64..4,
        chunks in 1i64..5,
        fusion in 0i64..2,
    ) {
        let program = jacobian(nx, ny, nz, steps);
        let options = PipelineOptions {
            num_chunks: chunks,
            enable_fmac_fusion: fusion == 1,
            ..PipelineOptions::default()
        };
        let diff = deviation(&program, &options);
        prop_assert!(
            diff < 1e-4,
            "jacobian {nx}x{ny}x{nz} steps={steps} chunks={chunks} fusion={fusion} \
             diverges by {diff}"
        );
    }

    /// The 13-point diffusion stencil across grid sizes and chunk counts.
    #[test]
    fn diffusion_linked_engine_matches_reference(
        nx in 3i64..7,
        ny in 3i64..7,
        nz in 4i64..15,
        chunks in 1i64..4,
    ) {
        let program = diffusion(nx, ny, nz, 2);
        let options = PipelineOptions { num_chunks: chunks, ..PipelineOptions::default() };
        let diff = deviation(&program, &options);
        prop_assert!(
            diff < 1e-4,
            "diffusion {nx}x{ny}x{nz} chunks={chunks} diverges by {diff}"
        );
    }
}
