//! Property-based tests over the IR infrastructure and the stencil
//! abstractions (cross-crate invariants).

use proptest::prelude::*;
use wse_dialects::stencil::Bounds;
use wse_ir::{parse_op, print_op, Attribute, IrContext, OpBuilder, OpSpec, Type};
use wse_lowering::analysis::{LinearCombination, Term};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bounds algebra: growing bounds by a halo enlarges every dimension by
    /// exactly twice the halo and preserves containment of accesses.
    #[test]
    fn bounds_grow_and_contain(lb in -8i64..0, extent in 1i64..64, halo in 0i64..4) {
        let bounds = Bounds::new(vec![lb, lb, 0], vec![lb + extent, lb + extent, extent]);
        let grown = bounds.grown(halo);
        prop_assert_eq!(grown.shape()[0], extent + 2 * halo);
        prop_assert_eq!(grown.num_cells(), grown.shape().iter().product::<i64>());
        prop_assert_eq!(grown.rank(), bounds.rank());
        // Accesses within +-halo from the original bounds stay inside.
        prop_assert!(bounds.access_within(&[halo, -halo, 0], &grown));
        prop_assert!(!bounds.access_within(&[halo + 1, 0, 0], &grown));
    }

    /// The generic printer emits text the parser accepts, and printing the
    /// reparsed module is a fixed point.
    #[test]
    fn printer_parser_roundtrip(value in -1.0e3f32..1.0e3, width in 1i64..64, chunks in 1i64..8) {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], Default::default(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let c = b.insert_value(
            OpSpec::new("arith.constant")
                .results([Type::tensor(vec![width], Type::f32())])
                .attr("value", Attribute::dense_splat_f32(value, Type::tensor(vec![width], Type::f32()))),
        );
        b.insert(
            OpSpec::new("csl_stencil.apply")
                .operands([c])
                .attr("num_chunks", Attribute::int(chunks))
                .attr("swaps", Attribute::Array(vec![Attribute::IndexArray(vec![1, 0])])),
        );
        let printed = print_op(&ctx, module);
        let mut ctx2 = IrContext::new();
        let reparsed = parse_op(&mut ctx2, &printed).expect("reparse");
        prop_assert_eq!(print_op(&ctx2, reparsed), printed);
    }

    /// Linear combinations: simplification merges duplicate terms and never
    /// changes the evaluated value.
    #[test]
    fn simplification_preserves_evaluation(
        coeffs in proptest::collection::vec(-2.0f32..2.0, 1..8),
        offsets in proptest::collection::vec(-2i64..2, 1..8),
    ) {
        let n = coeffs.len().min(offsets.len());
        let combo = LinearCombination {
            terms: (0..n)
                .map(|i| Term { input: 0, offset: vec![offsets[i], 0, 0], coeff: coeffs[i] })
                .collect(),
            constant: 0.25,
        };
        let simplified = combo.simplified();
        let read = |_: usize, offset: &[i64]| (offset[0] * 3) as f32 + 1.5;
        let before = combo.evaluate(&read);
        let after = simplified.evaluate(&read);
        prop_assert!((before - after).abs() < 1e-3, "{before} vs {after}");
        // No duplicate (input, offset) pairs remain.
        for (i, a) in simplified.terms.iter().enumerate() {
            for b in &simplified.terms[i + 1..] {
                prop_assert!(!(a.input == b.input && a.offset == b.offset));
            }
        }
    }

    /// The halo-exchange inference covers exactly the directions used by
    /// the stencil, with widths equal to the largest offset.
    #[test]
    fn exchange_inference_covers_offsets(radius in 1i64..5) {
        use wse_lowering::decompose::exchanges_for;
        let combo = LinearCombination {
            terms: (1..=radius)
                .flat_map(|r| {
                    vec![
                        Term { input: 0, offset: vec![r, 0, 0], coeff: 1.0 },
                        Term { input: 0, offset: vec![-r, 0, 0], coeff: 1.0 },
                        Term { input: 0, offset: vec![0, r, 0], coeff: 1.0 },
                        Term { input: 0, offset: vec![0, -r, 0], coeff: 1.0 },
                    ]
                })
                .collect(),
            constant: 0.0,
        };
        let exchanges = exchanges_for(&[combo]);
        prop_assert_eq!(exchanges.len(), 4);
        prop_assert!(exchanges.iter().all(|e| e.width == radius));
    }
}

/// Chunked exchanges must cover the column exactly once for any divisor.
#[test]
fn chunking_covers_the_column_exactly_once() {
    for z in [12, 16, 450, 604, 704, 900] {
        for chunks in 1..=6 {
            if z % chunks != 0 {
                continue;
            }
            let chunk = z / chunks;
            let mut covered = vec![0usize; z as usize];
            for c in 0..chunks {
                for i in 0..chunk {
                    covered[(c * chunk + i) as usize] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "z={z} chunks={chunks}");
        }
    }
}
