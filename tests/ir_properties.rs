//! Property-based tests over the IR infrastructure and the stencil
//! abstractions (cross-crate invariants).

use proptest::prelude::*;
use wse_dialects::stencil::Bounds;
use wse_ir::{parse_op, print_op, Attribute, IrContext, OpBuilder, OpSpec, Type};
use wse_lowering::analysis::{LinearCombination, Term};

/// An arbitrary (possibly nested) type for the interning properties.
fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::f32()),
        Just(Type::f16()),
        Just(Type::f64()),
        Just(Type::index()),
        Just(Type::bool()),
        (1u32..65).prop_map(Type::int),
        (1u32..65).prop_map(Type::uint),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (proptest::collection::vec(1i64..16, 1..4), inner.clone())
                .prop_map(|(shape, elem)| Type::tensor(shape, elem)),
            (proptest::collection::vec(1i64..16, 1..4), inner.clone())
                .prop_map(|(shape, elem)| Type::memref(shape, elem)),
            (
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner, 0..2)
            )
                .prop_map(|(inputs, results)| Type::function(inputs, results)),
        ]
    })
}

/// An arbitrary attribute for the interning properties.
fn arb_attr() -> impl Strategy<Value = Attribute> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Attribute::int),
        (-1.0e6f32..1.0e6).prop_map(Attribute::f32),
        proptest::collection::vec(0u8..26, 0..12).prop_map(|cs| Attribute::str(
            cs.iter().map(|c| (b'a' + c) as char).collect::<String>()
        )),
        any::<bool>().prop_map(Attribute::bool),
        proptest::collection::vec(-8i64..8, 0..4).prop_map(Attribute::IndexArray),
        arb_type().prop_map(Attribute::Type),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Attribute::array)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interning is canonical: structurally equal types and attributes get
    /// the same handle, distinct ones get distinct handles, and the handle
    /// always resolves back to the interned structure — regardless of
    /// interning order or interleaved churn.
    #[test]
    fn interning_is_canonical(
        types in proptest::collection::vec(arb_type(), 1..16),
        attrs in proptest::collection::vec(arb_attr(), 1..16),
    ) {
        let mut ctx = IrContext::new();
        let type_refs: Vec<_> = types.iter().map(|t| ctx.intern_type(t.clone())).collect();
        let attr_refs: Vec<_> = attrs.iter().map(|a| ctx.intern_attr(a.clone())).collect();
        // Second pass (including through value creation) reuses handles.
        for (ty, &r) in types.iter().zip(&type_refs) {
            prop_assert_eq!(ctx.intern_type(ty.clone()), r);
            prop_assert_eq!(ctx.type_of(r), ty);
        }
        for (attr, &r) in attrs.iter().zip(&attr_refs) {
            prop_assert_eq!(ctx.intern_attr(attr.clone()), r);
            prop_assert_eq!(ctx.attr_of(r), attr);
        }
        // Handle equality is exactly structural equality.
        for (a, &ra) in types.iter().zip(&type_refs) {
            for (b, &rb) in types.iter().zip(&type_refs) {
                prop_assert_eq!(a == b, ra == rb, "{:?} vs {:?}", a, b);
            }
        }
        for (a, &ra) in attrs.iter().zip(&attr_refs) {
            for (b, &rb) in attrs.iter().zip(&attr_refs) {
                prop_assert_eq!(a == b, ra == rb, "{:?} vs {:?}", a, b);
            }
        }
        // The uniquer never stores more entries than distinct structures.
        let distinct = {
            let mut seen: Vec<&Type> = Vec::new();
            for t in &types { if !seen.contains(&t) { seen.push(t); } }
            seen.len()
        };
        prop_assert!(ctx.num_interned_types() >= distinct);
        // Interned handles survive a reset (op/value storage does not).
        ctx.reset();
        for (ty, &r) in types.iter().zip(&type_refs) {
            prop_assert_eq!(ctx.type_of(r), ty);
            prop_assert_eq!(ctx.intern_type(ty.clone()), r);
        }
    }

    /// Values created through the public op API share interned type
    /// handles whenever their types are structurally equal.
    #[test]
    fn value_types_are_interned(ty in arb_type(), copies in 2usize..6) {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], Default::default(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let ops: Vec<_> = (0..copies)
            .map(|_| {
                let op = ctx.create_op("test.op", vec![], vec![ty.clone()], Default::default(), 0);
                ctx.append_op(body, op);
                op
            })
            .collect();
        let first = ctx.value_type_ref(ctx.result(ops[0], 0));
        for &op in &ops[1..] {
            prop_assert_eq!(ctx.value_type_ref(ctx.result(op, 0)), first);
            prop_assert_eq!(ctx.value_type(ctx.result(op, 0)), &ty);
        }
    }

    /// Bounds algebra: growing bounds by a halo enlarges every dimension by
    /// exactly twice the halo and preserves containment of accesses.
    #[test]
    fn bounds_grow_and_contain(lb in -8i64..0, extent in 1i64..64, halo in 0i64..4) {
        let bounds = Bounds::new(vec![lb, lb, 0], vec![lb + extent, lb + extent, extent]);
        let grown = bounds.grown(halo);
        prop_assert_eq!(grown.shape()[0], extent + 2 * halo);
        prop_assert_eq!(grown.num_cells(), grown.shape().iter().product::<i64>());
        prop_assert_eq!(grown.rank(), bounds.rank());
        // Accesses within +-halo from the original bounds stay inside.
        prop_assert!(bounds.access_within(&[halo, -halo, 0], &grown));
        prop_assert!(!bounds.access_within(&[halo + 1, 0, 0], &grown));
    }

    /// The generic printer emits text the parser accepts, and printing the
    /// reparsed module is a fixed point.
    #[test]
    fn printer_parser_roundtrip(value in -1.0e3f32..1.0e3, width in 1i64..64, chunks in 1i64..8) {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], Default::default(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let c = b.insert_value(
            OpSpec::new("arith.constant")
                .results([Type::tensor(vec![width], Type::f32())])
                .attr("value", Attribute::dense_splat_f32(value, Type::tensor(vec![width], Type::f32()))),
        );
        b.insert(
            OpSpec::new("csl_stencil.apply")
                .operands([c])
                .attr("num_chunks", Attribute::int(chunks))
                .attr("swaps", Attribute::Array(vec![Attribute::IndexArray(vec![1, 0])])),
        );
        let printed = print_op(&ctx, module);
        let mut ctx2 = IrContext::new();
        let reparsed = parse_op(&mut ctx2, &printed).expect("reparse");
        prop_assert_eq!(print_op(&ctx2, reparsed), printed);
    }

    /// Linear combinations: simplification merges duplicate terms and never
    /// changes the evaluated value.
    #[test]
    fn simplification_preserves_evaluation(
        coeffs in proptest::collection::vec(-2.0f32..2.0, 1..8),
        offsets in proptest::collection::vec(-2i64..2, 1..8),
    ) {
        let n = coeffs.len().min(offsets.len());
        let combo = LinearCombination {
            terms: (0..n)
                .map(|i| Term { input: 0, offset: vec![offsets[i], 0, 0], coeff: coeffs[i], factor2: None })
                .collect(),
            constant: 0.25,
        };
        let simplified = combo.simplified();
        let read = |_: usize, offset: &[i64]| (offset[0] * 3) as f32 + 1.5;
        let before = combo.evaluate(&read);
        let after = simplified.evaluate(&read);
        prop_assert!((before - after).abs() < 1e-3, "{before} vs {after}");
        // No duplicate (input, offset) pairs remain.
        for (i, a) in simplified.terms.iter().enumerate() {
            for b in &simplified.terms[i + 1..] {
                prop_assert!(!(a.input == b.input && a.offset == b.offset));
            }
        }
    }

    /// The halo-exchange inference covers exactly the directions used by
    /// the stencil, with widths equal to the largest offset.
    #[test]
    fn exchange_inference_covers_offsets(radius in 1i64..5) {
        use wse_lowering::decompose::exchanges_for;
        let combo = LinearCombination {
            terms: (1..=radius)
                .flat_map(|r| {
                    vec![
                        Term { input: 0, offset: vec![r, 0, 0], coeff: 1.0, factor2: None },
                        Term { input: 0, offset: vec![-r, 0, 0], coeff: 1.0, factor2: None },
                        Term { input: 0, offset: vec![0, r, 0], coeff: 1.0, factor2: None },
                        Term { input: 0, offset: vec![0, -r, 0], coeff: 1.0, factor2: None },
                    ]
                })
                .collect(),
            constant: 0.0,
        };
        let exchanges = exchanges_for(&[combo]);
        prop_assert_eq!(exchanges.len(), 4);
        prop_assert!(exchanges.iter().all(|e| e.width == radius));
    }
}

/// Chunked exchanges must cover the column exactly once for any divisor.
#[test]
fn chunking_covers_the_column_exactly_once() {
    for z in [12, 16, 450, 604, 704, 900] {
        for chunks in 1..=6 {
            if z % chunks != 0 {
                continue;
            }
            let chunk = z / chunks;
            let mut covered = vec![0usize; z as usize];
            for c in 0..chunks {
                for i in 0..chunk {
                    covered[(c * chunk + i) as usize] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "z={z} chunks={chunks}");
        }
    }
}
