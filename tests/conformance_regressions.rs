//! Pinned reproducers for every miscompilation the differential
//! conformance harness (`crates/testkit`) has flushed out of the
//! pipeline.  Each test is the shrunk form of a failing generated seed;
//! together they pin six distinct bug classes that the five paper
//! benchmarks never exercised.

use testkit::{install_quiet_panic_hook, run_case, ConformanceCase, Verdict};
use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
use wse_lowering::PipelineOptions;

fn program(
    grid: (i64, i64, i64),
    fields: &[&str],
    equations: Vec<StencilEquation>,
    timesteps: i64,
) -> StencilProgram {
    let program = StencilProgram {
        name: "regression".into(),
        frontend: Frontend::Csl,
        grid: GridSpec::new(grid.0, grid.1, grid.2),
        fields: fields.iter().map(|f| f.to_string()).collect(),
        equations,
        timesteps,
        source: String::new(),
    };
    program.validate().expect("regression programs are valid");
    program
}

fn assert_passes(program: StencilProgram, options: PipelineOptions) {
    install_quiet_panic_hook();
    let case = ConformanceCase { seed: 0, program, options };
    let verdict = run_case(&case);
    assert!(matches!(verdict, Verdict::Pass { .. }), "verdict: {verdict:?}");
}

/// Bug 1 (shrunk from generated seed 44): a remote term with a z-offset
/// (`f0[+1, 0, -2]`) had its z-shift silently dropped — the neighbor
/// chunk was accumulated as if `dz = 0`.  All five paper benchmarks are
/// star stencils whose remote terms live in the z = 0 plane, so this
/// path was never executed before the generator hit it.
#[test]
fn remote_terms_with_z_offsets_are_shifted() {
    let eq = StencilEquation::new("f0", Expr::at("f0", 1, 0, -2).scale(-0.1));
    assert_passes(program((2, 1, 3), &["f0"], vec![eq], 2), PipelineOptions::default());
}

/// Bug 1, diagonal variant: box-shaped stencils communicate along
/// diagonals with simultaneous z-shifts and multiple chunks.
#[test]
fn diagonal_remote_terms_with_z_offsets_and_chunks() {
    let eq = StencilEquation::new(
        "f0",
        Expr::at("f0", 1, -1, 2).scale(0.2) + Expr::at("f0", -2, 2, -1).scale(-0.3),
    );
    assert_passes(
        program((4, 4, 6), &["f0"], vec![eq], 2),
        PipelineOptions { num_chunks: 3, ..PipelineOptions::default() },
    );
}

/// Bug 2 (shrunk from generated seed 63): an equation whose right-hand
/// side is (or contains) an additive constant lost the constant — the
/// actor lowering always reset the accumulator to zero.
#[test]
fn additive_constants_survive_the_actor_lowering() {
    let constant_only = StencilEquation::new("f0", Expr::c(0.025));
    assert_passes(program((1, 1, 1), &["f0"], vec![constant_only], 1), PipelineOptions::default());
    let mixed = StencilEquation::new("f0", Expr::at("f0", 1, 0, 0).scale(0.25) + Expr::c(-0.05));
    assert_passes(
        program((3, 3, 4), &["f0"], vec![mixed], 2),
        PipelineOptions { num_chunks: 2, ..PipelineOptions::default() },
    );
}

/// Bug 3 (shrunk from generated seed 3): inlining a *self-updating*
/// producer (`f0 = 0.2 * f0[z-1]`) into a consumer reading `f0` freezes
/// the consumer's expression in pre-update values, but the sequential
/// kernel chain re-reads the live (already updated) buffer.  Such pairs
/// were first refused outright; they are now fused via double-buffer
/// renaming (see the `dependence_aware_inlining` module below), and this
/// shape must stay conformant either way.
#[test]
fn self_updating_producers_are_not_inlined_incorrectly() {
    let eqs = vec![
        StencilEquation::new("f0", Expr::at("f0", 0, 0, -1).scale(0.2)),
        StencilEquation::new("f0", Expr::center("f0").scale(0.3)),
    ];
    assert_passes(program((1, 1, 2), &["f0"], eqs, 2), PipelineOptions::default());
}

/// Bug 4 (shrunk from generated seed 115): splitting the column into
/// z_dim chunks of one element collided with the wrapper's "chunk size
/// not set" sentinel, which was also 1 — receive callbacks then read
/// slot k at `recv_buffer[k * z_dim]` while the engine staged it at
/// `recv_buffer[k]`.
#[test]
fn unit_chunk_sizes_are_not_conflated_with_the_default() {
    let eq = StencilEquation::new(
        "f2",
        Expr::at("f2", 0, 2, 0).scale(0.1) + Expr::at("f2", 0, -2, 0).scale(-0.1),
    );
    assert_passes(
        program((1, 3, 4), &["f2"], vec![eq], 1),
        // z = 4 with 4 chunks => chunk_size = 1.
        PipelineOptions { num_chunks: 4, ..PipelineOptions::default() },
    );
}

/// Bug 5 (shrunk from generated seed 23, stress profile): a fused
/// multi-output apply whose outputs are all PE-local skipped the
/// csl_stencil conversion entirely, and the actor lowering silently
/// executed only the first output.
#[test]
fn local_only_fused_applies_keep_every_output() {
    let eqs = vec![
        StencilEquation::new("f1", Expr::center("f0").scale(0.9)),
        StencilEquation::new("f1", Expr::center("f1").scale(0.0)),
    ];
    assert_passes(program((1, 1, 1), &["f0", "f1"], eqs, 1), PipelineOptions::default());
    // Cross-field chain variant (shrunk from stress seed 88).
    let eqs = vec![
        StencilEquation::new("f1", Expr::center("f2").scale(0.6)),
        StencilEquation::new("f2", Expr::center("f1").scale(0.5)),
    ];
    assert_passes(program((1, 1, 1), &["f1", "f2"], eqs, 2), PipelineOptions::default());
}

/// Bug 6 (shrunk from generated seed 1553): inlining dropped the
/// producer's additive constant — the consumer's combination kept only
/// the scaled terms, so `f2 = -0.1; f1 = 0.3 * f2` computed `f1` from
/// the stale initial value.
#[test]
fn inlining_propagates_the_producer_constant() {
    let eqs = vec![
        StencilEquation::new("f2", Expr::c(-0.1)),
        StencilEquation::new("f1", Expr::center("f2").scale(0.3)),
    ];
    assert_passes(program((1, 1, 1), &["f1", "f2"], eqs, 1), PipelineOptions::default());
}

/// Nonlinear bodies above the degree cap must come back as typed
/// diagnostics, never panics.  (Degree-2 bodies are *lowered* — see the
/// `nonlinear_products` module below.)
#[test]
fn degree_three_bodies_are_rejected_with_a_typed_diagnostic() {
    install_quiet_panic_hook();
    let eq = StencilEquation::new(
        "f0",
        // Nested under an add, so the diagnostic has to walk to the
        // offending multiply rather than blaming the whole body.
        Expr::center("f0").scale(0.2)
            + Expr::center("f0") * Expr::center("f0") * Expr::center("f0"),
    );
    let case = ConformanceCase {
        seed: 0,
        program: program((3, 3, 4), &["f0"], vec![eq], 1),
        options: PipelineOptions::default(),
    };
    match run_case(&case) {
        Verdict::Rejected { stage, code, .. } => {
            assert_eq!(stage, "distribute-stencil");
            // Classified by the machine-readable code the analysis error
            // carries, not by string-matching the diagnostic text.
            assert_eq!(code.as_deref(), Some("non-linear-degree"));
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
}

// --------------------------------------------------------------------------
// Link-time optimizer fusion rules (PR 4).  One pinned regression per
// rewrite-safety rule: the optimized stream must stay bitwise identical
// to the unoptimized (`WSE_SIM_NO_FUSE=1`) stream even on the exact
// shapes where an unsound rewrite would diverge.
// --------------------------------------------------------------------------

mod fusion_rules {
    use wse_frontends::ast::{Expr, StencilEquation};
    use wse_lowering::PipelineOptions;
    use wse_sim::loader::{BufferDecl, Instr, LoadedKernel, LoadedProgram, Src, ViewRef};
    use wse_sim::{LinkOptions, WseGridSim};

    fn view(buffer: &str, offset: i64, len: i64) -> ViewRef {
        ViewRef { buffer: buffer.into(), offset, dynamic: false, len }
    }

    fn hand_built(pre: Vec<Instr>, buffers: Vec<BufferDecl>) -> LoadedProgram {
        LoadedProgram {
            width: 2,
            height: 2,
            z_dim: 4,
            z_halo: 0,
            timesteps: 2,
            buffers,
            field_buffers: vec!["a".into()],
            internal_fields: Vec::new(),
            kernels: vec![LoadedKernel {
                name: "seq_kernel0".into(),
                pre,
                comm: None,
                recv: Vec::new(),
                done: Vec::new(),
            }],
        }
    }

    /// Runs the program through both streams and requires bitwise equality.
    fn assert_bitwise_transparent(program: LoadedProgram) {
        let mut optimized = WseGridSim::with_options(
            program.clone(),
            LinkOptions { optimize: true, ..LinkOptions::default() },
        )
        .unwrap();
        optimized.run(None).unwrap();
        let mut unoptimized = WseGridSim::with_options(
            program,
            LinkOptions { optimize: false, ..LinkOptions::default() },
        )
        .unwrap();
        unoptimized.run(None).unwrap();
        let (a, b) = (optimized.grid_state().unwrap(), unoptimized.grid_state().unwrap());
        for ((name, fa), fb) in a.names.iter().zip(&a.fields).zip(&b.fields) {
            for (i, (x, y)) in fa.data.iter().zip(&fb.data).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{name}[{i}]: {x} vs {y}");
            }
        }
    }

    /// Rule 1: a `Macs` whose source aliases its destination must not fuse
    /// into a one-pass sweep — the multi-pass scratch semantics (read all,
    /// then write) are observable through the overlap.
    #[test]
    fn aliased_dest_and_src_are_not_fused() {
        let program = hand_built(
            vec![
                Instr::Movs { dest: view("a", 0, 4), src: Src::Scalar(1.0) },
                // dest a[0..3] overlaps src a[1..4]: one-pass execution
                // would read its own freshly written elements.
                Instr::Macs {
                    dest: view("a", 0, 3),
                    acc: view("a", 0, 3),
                    src: view("a", 1, 3),
                    coeff: 0.5,
                },
                Instr::Macs {
                    dest: view("a", 0, 3),
                    acc: view("a", 0, 3),
                    src: view("a", 1, 3),
                    coeff: -0.25,
                },
            ],
            vec![BufferDecl { name: "a".into(), len: 4, init: 0.0 }],
        );
        assert_bitwise_transparent(program);
    }

    /// Rule 2: an interleaved `Copy` that redefines a chain source is a
    /// fusion barrier, and folding the copy away must respect the read
    /// that follows it.
    #[test]
    fn interleaved_copy_breaks_the_chain() {
        let program = hand_built(
            vec![
                Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.25) },
                Instr::Macs {
                    dest: view("acc", 0, 4),
                    acc: view("acc", 0, 4),
                    src: view("a", 0, 4),
                    coeff: 0.5,
                },
                // Redefines `a` mid-chain; the next Macs must observe it.
                Instr::Movs { dest: view("a", 0, 4), src: Src::View(view("acc", 0, 4)) },
                Instr::Macs {
                    dest: view("acc", 0, 4),
                    acc: view("acc", 0, 4),
                    src: view("a", 0, 4),
                    coeff: -0.5,
                },
                Instr::Movs { dest: view("a", 0, 4), src: Src::View(view("acc", 0, 4)) },
            ],
            vec![
                BufferDecl { name: "a".into(), len: 4, init: 0.0 },
                BufferDecl { name: "acc".into(), len: 4, init: 0.0 },
            ],
        );
        assert_bitwise_transparent(program);
    }

    /// Rule 3 (found in review): a fused sweep that reads a receive slot
    /// directly and was retargeted at the transmitted field by copy
    /// folding must never move into the deferred-commit block — the run
    /// phase resolves no slot columns there, and by commit time the
    /// neighbor arenas may already hold post-kernel state.  Before the
    /// fix this exact shape panicked on the first macro step.
    #[test]
    fn folded_slot_sweeps_are_never_deferred() {
        use wse_sim::loader::{CommSpec, SlotSpec};
        let program = LoadedProgram {
            width: 3,
            height: 1,
            z_dim: 4,
            z_halo: 0,
            timesteps: 2,
            buffers: vec![
                BufferDecl { name: "a".into(), len: 4, init: 0.0 },
                BufferDecl { name: "acc".into(), len: 4, init: 0.0 },
                BufferDecl { name: "recv_buffer".into(), len: 4, init: 0.0 },
            ],
            field_buffers: vec!["a".into()],
            internal_fields: Vec::new(),
            kernels: vec![LoadedKernel {
                name: "seq_kernel0".into(),
                pre: vec![Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.0) }],
                comm: Some(CommSpec {
                    num_chunks: 1,
                    chunk_size: 4,
                    slots: vec![SlotSpec { field: "a".into(), dx: 1, dy: 0 }],
                    fields: vec!["a".into()],
                    pattern: 1,
                }),
                recv: vec![Instr::Macs {
                    dest: view("acc", 0, 4),
                    acc: view("acc", 0, 4),
                    src: view("recv_buffer", 0, 4),
                    coeff: 0.5,
                }],
                done: vec![Instr::Movs {
                    dest: view("a", 0, 4),
                    src: Src::View(view("acc", 0, 4)),
                }],
            }],
        };
        assert_bitwise_transparent(program);
    }

    /// Optimizer-reach rule (new): with `enable_fmac_fusion=false` the
    /// loaded stream spells every multiply-accumulate as a
    /// `Binary(Mul)`+`Binary(Add)` pair over a constant coefficient
    /// buffer.  The link-time peephole must recover `Macs` (and then
    /// fused sweeps) from exactly that spelling, report it in
    /// `LinkedProgram::stats`, and stay bitwise identical to the
    /// unoptimized stream.
    #[test]
    fn mul_add_pairs_fuse_when_fmac_lowering_is_off() {
        use wse_stencil::{benchmarks::Benchmark, Compiler};
        let program = Benchmark::Jacobian.tiny_program();
        let artifact = Compiler::new()
            .fmac_fusion(false)
            .num_chunks(2)
            .verify_each(true)
            .compile(&program)
            .unwrap();
        let loaded = artifact.loaded_program().clone();
        assert_eq!(loaded.fmac_count(), 0, "no Macs reach the linker");
        let linked = WseGridSim::with_options(
            loaded.clone(),
            LinkOptions { optimize: true, ..LinkOptions::default() },
        )
        .unwrap();
        let stats = linked.linked().stats();
        assert!(stats.binary_macs_fused > 0, "peephole fired: {stats:?}");
        assert!(stats.fused_chains > 0, "recovered Macs feed chain fusion: {stats:?}");
        assert_bitwise_transparent(loaded);
    }

    /// Rule 3: a single-chunk exchange with z-shifted remote terms reads
    /// the receive buffer directly in the done callback (no staged
    /// column); the full pipeline must stay conformant through that path.
    #[test]
    fn single_chunk_z_shift_reads_recv_buffer_directly() {
        let eq = StencilEquation::new(
            "f0",
            Expr::at("f0", 1, 0, 1).scale(0.2)
                + Expr::at("f0", 1, 0, -2).scale(0.2)
                + Expr::at("f0", 1, 0, 0).scale(0.2),
        );
        super::assert_passes(
            super::program((3, 2, 5), &["f0"], vec![eq], 2),
            PipelineOptions { num_chunks: 1, ..PipelineOptions::default() },
        );
    }
}

// --------------------------------------------------------------------------
// Dependence-aware inlining (double-buffer renaming).  These pin the
// fusion paths the conservative pass used to refuse: self-updating
// producers, interleaved applies, renamed-buffer liveness, and copy-back
// elision — each both conformant *and* actually taking the new path.
// --------------------------------------------------------------------------

mod dependence_aware_inlining {
    use super::{assert_passes, program};
    use testkit::install_quiet_panic_hook;
    use wse_frontends::ast::{Expr, StencilEquation, StencilProgram};
    use wse_lowering::PipelineOptions;
    use wse_sim::{LinkOptions, OptStats, WseGridSim};
    use wse_stencil::Compiler;

    /// Compiles with inlining on and returns (loaded internal double-buffer
    /// fields, optimized-stream link stats, kernel count).
    fn compile_evidence(program: &StencilProgram) -> (Vec<String>, OptStats, usize) {
        let artifact = Compiler::new().verify_each(true).compile(program).expect("compiles");
        let loaded = artifact.loaded_program().clone();
        let kernels = loaded.kernels.len();
        let sim = WseGridSim::with_options(
            loaded.clone(),
            LinkOptions { optimize: true, ..LinkOptions::default() },
        )
        .expect("links");
        (loaded.internal_fields.clone(), sim.linked().stats().clone(), kernels)
    }

    /// A self-updating producer (`f0` reads and writes `f0`) feeding a
    /// centre-only consumer is fused by renaming the producer's store into
    /// a double buffer; the original field is live-out, so a copy-back
    /// kernel restores it.  The double buffer unblocks copy folding (the
    /// write-back no longer aliases its sources), and the extracted grid
    /// state must hide the internal field.
    #[test]
    fn self_updating_chain_is_fused_via_double_buffer() {
        install_quiet_panic_hook();
        let eqs = vec![
            StencilEquation::new(
                "f0",
                Expr::at("f0", 0, 0, -1).scale(0.4) + Expr::center("f0").scale(0.3),
            ),
            StencilEquation::new(
                "f1",
                Expr::center("f0").scale(0.3) + Expr::at("f1", 0, 0, 1).scale(0.2),
            ),
        ];
        let p = program((2, 2, 4), &["f0", "f1"], eqs, 3);
        assert_passes(p.clone(), PipelineOptions::default());

        let (internal, stats, kernels) = compile_evidence(&p);
        assert_eq!(internal, vec!["f0__dbuf0".to_string()], "the hazarded field is renamed");
        // Fused pair splits into two kernels plus the live-out copy-back.
        assert_eq!(kernels, 3, "producer + consumer + copy-back kernels");
        assert!(stats.copies_folded > 0, "double-buffering unblocks copy folding: {stats:?}");

        // The internal field is a real buffer but not observable state.
        let artifact = Compiler::new().compile(&p).unwrap();
        let mut sim = WseGridSim::new(artifact.loaded_program().clone()).unwrap();
        sim.run(None).unwrap();
        let state = sim.grid_state().unwrap();
        assert_eq!(state.names, vec!["f0".to_string(), "f1".to_string()]);
        assert!(sim.field("f0__dbuf0").is_ok(), "internal buffer still addressable by name");
    }

    /// When a later equation overwrites the renamed field, the copy-back
    /// is elided — the later store already produces the final generation —
    /// and the dead write to the double buffer (its only consumer was
    /// substituted away during fusion) is removed by the link-time
    /// optimizer's renamed-buffer liveness scan.
    #[test]
    fn copy_back_is_elided_when_the_field_is_overwritten_later() {
        install_quiet_panic_hook();
        let eqs = vec![
            StencilEquation::new("f0", Expr::at("f0", 0, 0, -1).scale(0.4)),
            StencilEquation::new("f1", Expr::center("f0").scale(0.3)),
            // Overwrites f0 without reading it: the dbuf generation is dead.
            StencilEquation::new("f0", Expr::at("f1", 0, 0, 1).scale(0.2)),
        ];
        let p = program((1, 1, 4), &["f0", "f1"], eqs, 2);
        assert_passes(p.clone(), PipelineOptions::default());

        let (internal, stats, kernels) = compile_evidence(&p);
        assert_eq!(internal.len(), 1, "the self-update is renamed");
        assert_eq!(kernels, 3, "no copy-back kernel: fused pair (2) + the overwriting equation");
        assert!(
            stats.dead_writes_elided > 0,
            "the unread double-buffer generation is elided: {stats:?}"
        );
    }

    /// An apply sandwiched between producer and consumer no longer blocks
    /// fusion when it touches neither the producer's inputs nor outputs.
    #[test]
    fn independent_interleaved_apply_no_longer_blocks_fusion() {
        install_quiet_panic_hook();
        let eqs = vec![
            StencilEquation::new("f1", Expr::at("f0", 1, 0, 0).scale(0.4)),
            // Unrelated middle equation over f2 only.
            StencilEquation::new("f2", Expr::at("f2", 0, 0, 1).scale(0.5)),
            StencilEquation::new("f0", Expr::center("f1").scale(0.3)),
        ];
        let p = program((3, 3, 4), &["f0", "f1", "f2"], eqs, 2);
        assert_passes(p.clone(), PipelineOptions::default());

        let (internal, _stats, kernels) = compile_evidence(&p);
        assert!(internal.is_empty(), "no hazard, no renaming");
        assert_eq!(kernels, 3, "pair fused across the middle apply: 2 split kernels + middle");
    }

    /// An interleaved apply that *writes a producer input* is handled by
    /// double-buffering the middle's store: the moved producer keeps
    /// reading the pre-middle generation.
    #[test]
    fn interleaved_writer_of_a_producer_input_is_double_buffered() {
        install_quiet_panic_hook();
        let eqs = vec![
            StencilEquation::new("f0", Expr::at("f1", 0, 0, -1).scale(0.4)),
            // Middle clobbers f1, which the producer reads.
            StencilEquation::new("f1", Expr::at("f1", 0, 0, 1).scale(0.5)),
            StencilEquation::new("f2", Expr::center("f0").scale(0.3)),
        ];
        let p = program((1, 1, 4), &["f0", "f1", "f2"], eqs, 2);
        assert_passes(p.clone(), PipelineOptions::default());

        let (internal, _stats, kernels) = compile_evidence(&p);
        assert_eq!(internal, vec!["f1__dbuf0".to_string()], "the middle's store is renamed");
        // Fused pair (2 kernels) + middle + f1 copy-back (live-out).
        assert_eq!(kernels, 4);
    }

    /// An interleaved apply that *reads the producer's output* needs the
    /// producer's value before the fused position computes it — that
    /// reorder has no double-buffer fix, so the pair stays unfused (and
    /// stays conformant).
    #[test]
    fn interleaved_reader_of_the_producer_output_still_refuses_fusion() {
        install_quiet_panic_hook();
        let eqs = vec![
            StencilEquation::new("f0", Expr::at("f1", 0, 0, -1).scale(0.4)),
            // Middle reads f0's fresh value at a remote offset.
            StencilEquation::new("f1", Expr::at("f0", 1, 0, 0).scale(0.5)),
            StencilEquation::new("f2", Expr::center("f0").scale(0.3)),
        ];
        let p = program((3, 3, 4), &["f0", "f1", "f2"], eqs, 2);
        assert_passes(p.clone(), PipelineOptions::default());

        let (internal, _stats, kernels) = compile_evidence(&p);
        assert!(internal.is_empty(), "no rename can fix a read of the producer's output");
        assert_eq!(kernels, 3, "all three equations stay separate kernels");
    }

    /// Shrunk from generated seed 1782 (found by the biased generator
    /// while this PR was developed): fusing a producer into an
    /// *already-fused* consumer substitutes producer-operand reads into
    /// every consumer combo — so an **earlier consumer result's store**
    /// of a field the producer reads (`f0` here) clobbers the generation
    /// before the later split kernels re-read it.  The non-final consumer
    /// store must be double-buffered too.
    #[test]
    fn earlier_consumer_store_of_a_producer_input_is_double_buffered() {
        install_quiet_panic_hook();
        let eqs = vec![
            StencilEquation::new(
                "f1",
                Expr::center("f1").scale(0.04) + Expr::at("f0", 0, 0, -1).scale(0.9),
            ),
            StencilEquation::new("f0", Expr::center("f1").scale(-0.83) + Expr::c(-0.026)),
            StencilEquation::new("f0", Expr::center("f0").scale(-0.62) + Expr::c(0.018)),
        ];
        let p = program((4, 1, 11), &["f0", "f1"], eqs, 3);
        assert_passes(p.clone(), PipelineOptions::default());
        let (internal, _stats, _kernels) = compile_evidence(&p);
        assert_eq!(internal.len(), 2, "both the self-update and the consumer store are renamed");
    }

    /// Self-updating chains with remote terms: the renamed producer no
    /// longer writes the field it transmits, so the snapshot capture is
    /// elided entirely (cross-PE reads take the neighbor arenas).
    #[test]
    fn double_buffering_unblocks_snapshot_elision_for_self_updates() {
        install_quiet_panic_hook();
        let eqs = vec![
            StencilEquation::new(
                "f0",
                Expr::at("f0", 1, 0, 0).scale(0.3) + Expr::center("f0").scale(0.3),
            ),
            StencilEquation::new("f1", Expr::center("f0").scale(0.4)),
        ];
        let p = program((3, 3, 4), &["f0", "f1"], eqs, 3);
        assert_passes(p.clone(), PipelineOptions::default());

        let (internal, stats, _kernels) = compile_evidence(&p);
        assert_eq!(internal.len(), 1);
        assert!(
            stats.captures_elided > 0,
            "renamed producer no longer writes its transmitted field: {stats:?}"
        );
    }
}

// --------------------------------------------------------------------------
// Nonlinear stencil bodies (decompose-products).  Degree-2 terms are
// split onto `__prod` scratch fields and executed as elementwise Mul
// kernels feeding the linear Mac accumulation; these pin the new path
// end to end.  `assert_passes` (via `run_case`) cross-checks every case
// bitwise across both stream variants — optimized vs `WSE_SIM_NO_FUSE`
// and vector vs scalar kernel sets — and against the reference executor.
// --------------------------------------------------------------------------

mod nonlinear_products {
    use super::{assert_passes, program};
    use testkit::install_quiet_panic_hook;
    use wse_frontends::ast::{Expr, StencilEquation, StencilProgram};
    use wse_lowering::PipelineOptions;
    use wse_sim::{LinkOptions, WseGridSim};
    use wse_stencil::Compiler;

    /// Burgers-style advection–diffusion: an upwind `u·(u - u[x-1])`
    /// product plus a linear diffusion term.
    fn burgers() -> StencilProgram {
        let eq = StencilEquation::new(
            "u",
            Expr::center("u")
                + (Expr::center("u") * (Expr::center("u") - Expr::at("u", -1, 0, 0))).scale(-0.2)
                + (Expr::at("u", 1, 0, 0) - Expr::center("u")).scale(0.05),
        );
        program((4, 4, 6), &["u"], vec![eq], 3)
    }

    /// The Burgers body is conformant through both chunked and
    /// single-chunk exchanges, and with the fmac peephole off (the
    /// spelling where an unguarded fuse would destructively square a
    /// live column through the `@fmuls` fallback).
    #[test]
    fn burgers_advection_is_conformant_across_stream_variants() {
        install_quiet_panic_hook();
        assert_passes(burgers(), PipelineOptions::default());
        assert_passes(burgers(), PipelineOptions { num_chunks: 2, ..PipelineOptions::default() });
        assert_passes(
            burgers(),
            PipelineOptions { enable_fmac_fusion: false, ..PipelineOptions::default() },
        );
    }

    /// Proof the decomposition actually fired (not a silent linear
    /// fallback): the loaded program carries a `__prod` scratch field
    /// excluded from observable state, and the linked stream multiplies
    /// data by data per `LinkedProgram::stats`.
    #[test]
    fn product_decomposition_fires_on_burgers() {
        install_quiet_panic_hook();
        let p = burgers();
        let artifact =
            Compiler::new().verify_each(true).num_chunks(2).compile(&p).expect("compiles");
        let loaded = artifact.loaded_program().clone();
        assert!(
            loaded.internal_fields.iter().any(|f| f.contains("__prod")),
            "scratch product field is internal: {:?}",
            loaded.internal_fields
        );
        let sim = WseGridSim::with_options(
            loaded.clone(),
            LinkOptions { optimize: true, ..LinkOptions::default() },
        )
        .expect("links");
        let stats = sim.linked().stats();
        assert!(stats.product_muls > 0, "linked stream multiplies data by data: {stats:?}");

        // Scratch products are not live-out state.
        let mut sim = WseGridSim::new(loaded).unwrap();
        sim.run(None).unwrap();
        assert_eq!(sim.grid_state().unwrap().names, vec!["u".to_string()]);
    }

    /// A product whose second factor is both remote (x+1) and z-shifted
    /// stages the neighbor's full column before multiplying; the window
    /// clamp must agree with the reference's zero halo.
    #[test]
    fn remote_z_shifted_product_factors_are_conformant() {
        install_quiet_panic_hook();
        let eq = StencilEquation::new(
            "u",
            Expr::center("u").scale(0.6) + (Expr::center("u") * Expr::at("u", 1, 0, -1)).scale(0.3),
        );
        assert_passes(
            program((3, 3, 5), &["u"], vec![eq], 2),
            PipelineOptions { num_chunks: 2, ..PipelineOptions::default() },
        );
        // Single chunk: the done callback reads the receive buffer
        // directly instead of a staged column.
        let eq = StencilEquation::new(
            "u",
            Expr::center("u").scale(0.6) + (Expr::center("u") * Expr::at("u", 1, 0, 1)).scale(0.3),
        );
        assert_passes(
            program((3, 3, 5), &["u"], vec![eq], 2),
            PipelineOptions { num_chunks: 1, ..PipelineOptions::default() },
        );
    }

    /// A product of two distinct fields placed first in the body, so it
    /// seeds the accumulator-init slot rather than a later Mac.
    #[test]
    fn distinct_field_products_in_acc_init_position_are_conformant() {
        install_quiet_panic_hook();
        let eqs = vec![
            StencilEquation::new(
                "u",
                (Expr::center("u") * Expr::center("v")).scale(0.3) + Expr::center("u").scale(0.5),
            ),
            StencilEquation::new("v", Expr::at("v", 0, 1, 0).scale(0.4)),
        ];
        assert_passes(
            program((3, 3, 4), &["u", "v"], eqs, 2),
            PipelineOptions { num_chunks: 2, ..PipelineOptions::default() },
        );
    }
}

/// SIMD engine pins: vector-width tails and tiny views.  `run_case`
/// cross-checks the optimized stream bitwise against the opposite kernel
/// set (vector vs scalar fallback — see `testkit::conformance`), so each
/// case here pins the masked/scalar tail handling of the explicit SIMD
/// kernels: columns shorter than one vector, exact multiples, one-element
/// tails, and chunk sizes that are not a multiple of the 8-lane AVX2
/// width.  Zero-length spans are pinned directly against the kernel
/// tables (no valid grid produces them end to end).
mod simd_tails {
    use super::{assert_passes, program};
    use wse_frontends::ast::{Expr, StencilEquation};
    use wse_lowering::PipelineOptions;

    /// A stencil that exercises slot (neighbor), arena (z-shift), and
    /// center sources in one fused sweep.
    fn star(nz: i64) -> wse_frontends::ast::StencilProgram {
        let mut rhs = Expr::at("f0", 1, 0, 0).scale(0.2)
            + Expr::at("f0", -1, 0, 0).scale(0.2)
            + Expr::at("f0", 0, 1, 0).scale(0.15)
            + Expr::center("f0").scale(0.3);
        if nz > 1 {
            rhs = rhs + Expr::at("f0", 0, 0, 1).scale(0.1);
        }
        let eq = StencilEquation::new("f0", rhs);
        program((4, 3, nz), &["f0"], vec![eq], 2)
    }

    /// Column lengths around the vector width: 1 and 7 run entirely in
    /// the scalar tail, 8 exactly fills one AVX2 vector, 9 leaves a
    /// one-element tail.
    #[test]
    fn tail_lengths_around_the_vector_width_are_bitwise() {
        for nz in [1, 7, 8, 9] {
            assert_passes(star(nz), PipelineOptions::default());
        }
    }

    /// Chunked exchanges whose chunk size is not a multiple of the vector
    /// width: every chunk ends in a masked/scalar tail at a different
    /// offset.
    #[test]
    fn non_multiple_of_eight_chunk_sizes_are_bitwise() {
        assert_passes(star(9), PipelineOptions { num_chunks: 3, ..PipelineOptions::default() });
        assert_passes(star(14), PipelineOptions { num_chunks: 2, ..PipelineOptions::default() });
        assert_passes(star(21), PipelineOptions { num_chunks: 3, ..PipelineOptions::default() });
    }

    /// Zero-length sweeps are no-ops on every kernel set (no grid reaches
    /// this through the pipeline; the planner and kernels must still
    /// tolerate it).
    #[test]
    fn zero_length_sweeps_are_no_ops_on_every_isa() {
        use wse_sim::kernels::{kernel_set, BatchTerm, Isa, Term, MAX_ARITY};
        let mut d = [7.0f32; 4];
        let terms = [Term::NULL; MAX_ARITY];
        let batch = [BatchTerm::NULL; MAX_ARITY];
        for isa in [Isa::Scalar, Isa::detect()] {
            let set = kernel_set(isa, false);
            // SAFETY: len 0 (and 0 PEs) never dereferences any pointer.
            unsafe {
                set.sweep(false, MAX_ARITY)(
                    d.as_mut_ptr(),
                    0,
                    1.0,
                    std::ptr::null(),
                    terms.as_ptr(),
                );
                set.sweep_row(false, MAX_ARITY)(
                    d.as_mut_ptr(),
                    0,
                    1.0,
                    std::ptr::null(),
                    batch.as_ptr(),
                    2,
                    0,
                );
                set.sweep_row(true, 0)(d.as_mut_ptr(), 3, 0.0, d.as_ptr(), batch.as_ptr(), 0, 1);
            }
        }
        assert_eq!(d, [7.0f32; 4]);
    }
}
