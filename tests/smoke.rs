//! Smoke test mirroring the `wse_stencil` crate-level doc example, so the
//! documented quick-start path is also exercised as a plain integration
//! test (doctests can be skipped by some CI configurations; this cannot).

use wse_stencil::benchmarks::Benchmark;
use wse_stencil::Compiler;

#[test]
fn quickstart_compiles_and_validates() {
    let program = Benchmark::Jacobian.tiny_program();
    let artifact =
        Compiler::new().num_chunks(2).compile(&program).expect("tiny Jacobian program compiles");
    assert!(
        artifact.sources().file("pe_program.csl").is_some(),
        "compilation must produce the per-PE CSL program source"
    );
    let deviation =
        artifact.validate_against_reference().expect("simulator runs the compiled program");
    assert!(deviation < 1e-4, "simulated result deviates from the reference: {deviation}");
}
