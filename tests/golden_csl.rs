//! Golden snapshot tests for the generated CSL sources.
//!
//! Every paper benchmark is compiled (tiny instance, two chunks, default
//! optimizations) and each generated file — `pe_program.csl`,
//! `layout.csl` and the specialized `stencil_comms.csl` runtime library —
//! is compared *verbatim* against the snapshot committed under
//! `tests/golden/<benchmark>/`.  Codegen drift therefore shows up as a
//! reviewable diff in the pull request rather than as silent churn.
//!
//! To refresh the snapshots after an intentional codegen change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_csl
//! ```
//!
//! and commit the resulting diff under `tests/golden/`.

use std::fs;
use std::path::PathBuf;

use wse_stencil::{benchmarks::Benchmark, Compiler};

/// The per-benchmark snapshot directory name.
fn slug(benchmark: Benchmark) -> &'static str {
    match benchmark {
        Benchmark::Jacobian => "jacobian",
        Benchmark::Diffusion => "diffusion",
        Benchmark::Acoustic => "acoustic",
        Benchmark::Seismic25 => "seismic25",
        Benchmark::Uvkbe => "uvkbe",
    }
}

fn golden_dir(benchmark: Benchmark) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(slug(benchmark))
}

fn check_benchmark(benchmark: Benchmark) {
    let program = benchmark.tiny_program();
    let artifact = Compiler::new()
        .num_chunks(2)
        .verify_each(true)
        .compile(&program)
        .unwrap_or_else(|e| panic!("{}: compilation failed: {e}", benchmark.name()));
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir(benchmark);
    if update {
        fs::create_dir_all(&dir).expect("create golden dir");
    }
    assert!(!artifact.sources().files.is_empty(), "{}: no CSL sources generated", benchmark.name());
    for file in &artifact.sources().files {
        let path = dir.join(&file.name);
        if update {
            fs::write(&path, &file.content).expect("write golden file");
            continue;
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 cargo test \
                 --test golden_csl and commit the result",
                benchmark.name(),
                path.display()
            )
        });
        assert!(
            expected == file.content,
            "{}: generated {} differs from its golden snapshot {}.\n\
             If the change is intentional, refresh with:\n    \
             UPDATE_GOLDEN=1 cargo test --test golden_csl\nFirst difference:\n{}",
            benchmark.name(),
            file.name,
            path.display(),
            first_diff(&expected, &file.content),
        );
    }
    // The snapshot directory must contain *exactly* the emitted file set:
    // a file dropped (or renamed) by codegen would otherwise leave a
    // stale snapshot behind and silently shrink the golden coverage.
    let emitted: std::collections::BTreeSet<String> =
        artifact.sources().files.iter().map(|f| f.name.clone()).collect();
    for entry in fs::read_dir(&dir).expect("golden dir exists") {
        let entry = entry.expect("readable golden dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if emitted.contains(&name) {
            continue;
        }
        if update {
            fs::remove_file(entry.path()).expect("remove stale golden file");
        } else {
            panic!(
                "{}: stale golden snapshot {} has no generated counterpart; \
                 refresh with UPDATE_GOLDEN=1 cargo test --test golden_csl",
                benchmark.name(),
                entry.path().display()
            );
        }
    }
}

/// Renders the first differing line for the assertion message.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}:\n  golden:    {e}\n  generated: {a}", i + 1);
        }
    }
    format!(
        "line counts differ: golden has {}, generated has {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn golden_jacobian() {
    check_benchmark(Benchmark::Jacobian);
}

#[test]
fn golden_diffusion() {
    check_benchmark(Benchmark::Diffusion);
}

#[test]
fn golden_acoustic() {
    check_benchmark(Benchmark::Acoustic);
}

#[test]
fn golden_seismic25() {
    check_benchmark(Benchmark::Seismic25);
}

#[test]
fn golden_uvkbe() {
    check_benchmark(Benchmark::Uvkbe);
}

/// Codegen must be deterministic, otherwise verbatim snapshots could
/// never hold: compile the same benchmark twice and compare every file.
#[test]
fn codegen_is_deterministic() {
    for benchmark in Benchmark::ALL {
        let compile =
            || Compiler::new().num_chunks(2).compile(&benchmark.tiny_program()).expect("compiles");
        let (a, b) = (compile(), compile());
        assert_eq!(
            a.sources().files,
            b.sources().files,
            "{}: codegen is nondeterministic",
            benchmark.name()
        );
    }
}
