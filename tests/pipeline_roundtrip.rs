//! Per-stage print→parse→print conformance.
//!
//! After *every* pass of [`wse_lowering::build_pass_manager`], the module
//! is printed in the generic textual form, parsed back by
//! [`wse_ir::parse_op`], and printed again — the two printouts must be
//! identical (a print/parse fixpoint).  This turns the parser from a
//! unit-test-only tool into a real conformance check over every
//! intermediate representation the pipeline produces: stencil, dmp,
//! tensorized, csl_stencil, csl_wrapper, linalg/memref and final csl
//! forms all round-trip.

use testkit::generate_case;
use wse_frontends::{benchmarks::Benchmark, emit_stencil_ir, StencilProgram};
use wse_ir::{parse_op, print_op, IrContext};
use wse_lowering::{build_pass_manager, PipelineOptions};

/// Asserts the fixpoint at every stage of the pipeline for `program`.
fn assert_roundtrip_per_stage(program: &StencilProgram, options: &PipelineOptions, label: &str) {
    let ir = emit_stencil_ir(program).unwrap_or_else(|e| panic!("{label}: emission failed: {e}"));
    let mut ctx = ir.ctx;
    let mut pm = build_pass_manager(program, options);
    pm.run_with(&mut ctx, ir.module, &mut |pass, ctx, module| {
        let printed = print_op(ctx, module);
        let mut reparse_ctx = IrContext::new();
        let reparsed = parse_op(&mut reparse_ctx, &printed)
            .map_err(|e| format!("{label}: after {pass}: parser rejected printer output: {e}"))?;
        // The reparsed module must satisfy the same structural and
        // dialect invariants as the module it was printed from.
        let errors = wse_ir::verify(&reparse_ctx, reparsed, &wse_csl::register_all());
        if !errors.is_empty() {
            return Err(format!(
                "{label}: after {pass}: reparsed module fails verification: {errors:?}"
            ));
        }
        let reprinted = print_op(&reparse_ctx, reparsed);
        if printed != reprinted {
            let diff = printed
                .lines()
                .zip(reprinted.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b)
                .map(|(i, (a, b))| format!("line {}:\n  printed:   {a}\n  reprinted: {b}", i + 1))
                .unwrap_or_else(|| "line counts differ".to_string());
            return Err(format!(
                "{label}: after {pass}: print→parse→print is not a fixpoint\n{diff}"
            ));
        }
        Ok(())
    })
    .unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn every_benchmark_roundtrips_after_every_pass() {
    for benchmark in Benchmark::ALL {
        let program = benchmark.tiny_program();
        let options = PipelineOptions { num_chunks: 2, ..PipelineOptions::default() };
        assert_roundtrip_per_stage(&program, &options, benchmark.name());
    }
}

#[test]
fn optimization_variants_roundtrip_after_every_pass() {
    let program = Benchmark::Seismic25.tiny_program();
    for (label, options) in [
        ("no-fusion", PipelineOptions { enable_fmac_fusion: false, ..PipelineOptions::default() }),
        ("no-varith", PipelineOptions { enable_varith: false, ..PipelineOptions::default() }),
        (
            "no-promote",
            PipelineOptions { promote_coefficients: false, ..PipelineOptions::default() },
        ),
        ("no-inline", PipelineOptions { enable_inlining: false, ..PipelineOptions::default() }),
    ] {
        assert_roundtrip_per_stage(&program, &options, label);
    }
}

#[test]
fn non_finite_float_attributes_roundtrip_through_the_fixpoint() {
    // NaN / ±inf float attributes used to break the print→parse→print
    // fixpoint (the printer emitted `NaN` / `inf` tokens the parser
    // rejected).  Inject them into real stencil IR and require the same
    // fixpoint every pipeline stage is held to; NaN payload bits are not
    // required to survive, but `is_nan` and the sign are.
    use wse_ir::Attribute;
    let program = Benchmark::Jacobian.tiny_program();
    let ir = emit_stencil_ir(&program).unwrap();
    let mut ctx = ir.ctx;
    let apply = ctx.walk_named(ir.module, "stencil.apply")[0];
    ctx.set_attr(apply, "edge_nan", Attribute::f32(f32::NAN));
    ctx.set_attr(apply, "edge_neg_nan", Attribute::f32(-f32::NAN));
    ctx.set_attr(apply, "edge_inf", Attribute::f32(f32::INFINITY));
    ctx.set_attr(apply, "edge_neg_inf", Attribute::f32(f32::NEG_INFINITY));
    let printed = print_op(&ctx, ir.module);
    let mut reparse_ctx = IrContext::new();
    let reparsed = parse_op(&mut reparse_ctx, &printed).expect("non-finite attrs parse back");
    assert_eq!(printed, print_op(&reparse_ctx, reparsed), "fixpoint holds");
    let reparsed_apply = reparse_ctx.walk_named(reparsed, "stencil.apply")[0];
    let get = |name: &str| {
        reparse_ctx.attr(reparsed_apply, name).and_then(Attribute::as_float).expect("float attr")
    };
    assert!(get("edge_nan").is_nan() && !get("edge_nan").is_sign_negative());
    assert!(get("edge_neg_nan").is_nan() && get("edge_neg_nan").is_sign_negative());
    assert_eq!(get("edge_inf"), f64::INFINITY);
    assert_eq!(get("edge_neg_inf"), f64::NEG_INFINITY);
}

#[test]
fn generated_workloads_roundtrip_after_every_pass() {
    let mut checked = 0;
    for seed in 0..24u64 {
        let case = generate_case(seed);
        // Nonlinear programs abort mid-pipeline with a typed diagnostic;
        // the round-trip property only applies to programs that lower.
        if wse_lowering::lower_program(&case.program, &case.options).is_err() {
            continue;
        }
        assert_roundtrip_per_stage(&case.program, &case.options, &format!("seed {seed}"));
        checked += 1;
    }
    assert!(checked >= 16, "only {checked} generated programs lowered");
}
