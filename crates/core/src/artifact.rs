//! The compiled artifact: generated CSL sources plus everything needed to
//! simulate and report on the kernel.

use wse_csl::CslSources;
use wse_frontends::StencilProgram;
use wse_lowering::{LoweredProgram, PipelineOptions};
use wse_sim::LoadedProgram;

/// Lines-of-code report for one benchmark (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocReport {
    /// Lines of the generated CSL kernel only (`pe_program.csl`).
    pub csl_kernel: usize,
    /// Lines of the entire generated artifact (kernel + layout + runtime
    /// communication library).
    pub csl_entire: usize,
    /// Lines of the DSL source the user wrote.
    pub dsl: usize,
}

/// The result of compiling one stencil program for the WSE.
///
/// An artifact owns everything a consumer needs — generated sources, the
/// loaded per-PE program, pass names — independently of the IR context it
/// was lowered in.  [`crate::Compiler::compile`] additionally keeps the
/// lowered IR for inspection (`ir`); artifacts built by the compile
/// service drop it so the pooled context can be reset and reused.
#[derive(Debug)]
pub struct CslArtifact {
    pub(crate) program: StencilProgram,
    pub(crate) options: PipelineOptions,
    pub(crate) sources: CslSources,
    pub(crate) pass_names: Vec<String>,
    pub(crate) loaded: LoadedProgram,
    pub(crate) ir: Option<LoweredProgram>,
}

impl CslArtifact {
    /// An artifact that keeps the lowered IR (classic `compile()` path).
    pub(crate) fn with_ir(
        program: StencilProgram,
        options: PipelineOptions,
        lowered: LoweredProgram,
        loaded: LoadedProgram,
    ) -> Self {
        Self {
            program,
            options,
            sources: lowered.sources.clone(),
            pass_names: lowered.pass_names.clone(),
            loaded,
            ir: Some(lowered),
        }
    }

    /// An artifact from detached parts (compile-service path: the IR
    /// context stays in the pool).
    pub(crate) fn from_parts(
        program: StencilProgram,
        options: PipelineOptions,
        sources: CslSources,
        pass_names: Vec<String>,
        loaded: LoadedProgram,
    ) -> Self {
        Self { program, options, sources, pass_names, loaded, ir: None }
    }

    /// The front-end program this artifact was compiled from.
    pub fn program(&self) -> &StencilProgram {
        &self.program
    }

    /// The pipeline options used.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// The generated CSL source files.
    pub fn sources(&self) -> &CslSources {
        &self.sources
    }

    /// Lines-of-code comparison for Table 1.
    pub fn loc_report(&self) -> LocReport {
        LocReport {
            csl_kernel: self.sources.kernel_loc(),
            csl_entire: self.sources.total_loc(),
            dsl: self.program.source_loc(),
        }
    }

    /// Names of the passes the pipeline ran, in order.
    pub fn pass_names(&self) -> &[String] {
        &self.pass_names
    }

    /// Per-PE memory footprint of the generated buffers in bytes.
    pub fn bytes_per_pe(&self) -> u64 {
        self.loaded.bytes_per_pe()
    }

    /// Number of `@fmacs` builtins in the generated program.
    pub fn fmac_count(&self) -> usize {
        self.loaded.fmac_count()
    }
}

#[cfg(test)]
mod tests {
    use crate::Compiler;
    use wse_frontends::benchmarks::Benchmark;

    #[test]
    fn loc_report_orders_as_in_table1() {
        let program = Benchmark::Diffusion.tiny_program();
        let artifact = Compiler::new().compile(&program).unwrap();
        let report = artifact.loc_report();
        // DSL « generated kernel « entire artifact, as in Table 1.
        assert!(report.dsl < report.csl_kernel);
        assert!(report.csl_kernel < report.csl_entire);
        assert!(!artifact.pass_names().is_empty());
        assert!(artifact.bytes_per_pe() > 0);
        assert_eq!(artifact.program().name, "diffusion");
        assert!(artifact.options().enable_fmac_fusion);
        assert!(artifact.fmac_count() > 0);
    }
}
