//! The compiler facade: compile a front-end stencil program to CSL, run it
//! on the simulator and estimate its wafer-scale performance.

use wse_frontends::StencilProgram;
use wse_lowering::{lower_program, LowerError, LoweredProgram, PipelineOptions, WseTarget};
use wse_sim::{
    estimate_performance, load_program, max_abs_difference, run_reference, LoadedProgram,
    PerfEstimate, TargetMachine, WseGridSim,
};

use crate::artifact::CslArtifact;
use crate::service::CompileService;

/// What went wrong during compilation, as a typed discriminant.
///
/// Every kind carries a stable machine-readable diagnostic code (see
/// [`CompileError::code`]) so tooling — e.g. the conformance driver's
/// per-code rejection breakdown — never has to sniff message strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileErrorKind {
    /// Front-end emission rejected the program (validation failure).
    Emit,
    /// A lowering pass failed.
    Pass {
        /// Name of the failing pass (the `stage` of the diagnostic).
        pass: String,
        /// Stable code attached by the pass, when it classified the
        /// failure (e.g. `"non-linear"`).
        code: Option<String>,
    },
    /// Loading the generated CSL into the simulator failed.
    Load,
    /// Functional simulation of the artifact failed.
    Simulate,
    /// Builder options were out of range (caught before any IR exists).
    InvalidOptions {
        /// Which option was invalid (e.g. `"num_chunks"`).
        option: &'static str,
    },
    /// The pipeline panicked mid-compile; the panic was isolated by the
    /// service (`catch_unwind`) and the context it poisoned was
    /// discarded, not repooled.  Treated as transient by the service's
    /// retry loop.
    Internal,
    /// The per-compile deadline expired before the pipeline finished.
    /// The compile keeps running on a detached worker (its context is
    /// repooled and the cache populated on late completion), so retries
    /// can hit.  Treated as transient by the retry loop.
    DeadlineExceeded,
}

impl CompileErrorKind {
    /// The pipeline stage this kind corresponds to (the historical
    /// `stage` string of the untyped error).
    pub fn stage(&self) -> &str {
        match self {
            CompileErrorKind::Emit => "emit-stencil-ir",
            CompileErrorKind::Pass { pass, .. } => pass,
            CompileErrorKind::Load => "load",
            CompileErrorKind::Simulate => "simulate",
            CompileErrorKind::InvalidOptions { .. } => "options",
            CompileErrorKind::Internal => "internal",
            CompileErrorKind::DeadlineExceeded => "deadline",
        }
    }

    /// The stable diagnostic code.  Pass failures keep the code the pass
    /// attached (if any); every other kind has a fixed code.
    pub fn code(&self) -> Option<&str> {
        match self {
            CompileErrorKind::Emit => Some("emit-invalid-program"),
            CompileErrorKind::Pass { code, .. } => code.as_deref(),
            CompileErrorKind::Load => Some("load-failed"),
            CompileErrorKind::Simulate => Some("simulate-failed"),
            CompileErrorKind::InvalidOptions { .. } => Some("invalid-options"),
            CompileErrorKind::Internal => Some("internal-panic"),
            CompileErrorKind::DeadlineExceeded => Some("deadline-exceeded"),
        }
    }
}

/// Errors produced by the compiler facade.
///
/// The `Display` output is `"{stage} failed: {message}"`, unchanged from
/// the pre-typed version of this API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    kind: CompileErrorKind,
    message: String,
}

impl CompileError {
    /// An emission (program validation) failure.
    pub fn emit(message: impl Into<String>) -> Self {
        Self { kind: CompileErrorKind::Emit, message: message.into() }
    }

    /// A pass failure.
    pub fn pass(pass: impl Into<String>, message: impl Into<String>, code: Option<String>) -> Self {
        Self { kind: CompileErrorKind::Pass { pass: pass.into(), code }, message: message.into() }
    }

    /// A simulator-load failure.
    pub fn load(message: impl Into<String>) -> Self {
        Self { kind: CompileErrorKind::Load, message: message.into() }
    }

    /// A simulation failure.
    pub fn simulate(message: impl Into<String>) -> Self {
        Self { kind: CompileErrorKind::Simulate, message: message.into() }
    }

    /// An out-of-range builder option.
    pub fn invalid_options(option: &'static str, message: impl Into<String>) -> Self {
        Self { kind: CompileErrorKind::InvalidOptions { option }, message: message.into() }
    }

    /// An isolated mid-compile panic (see [`CompileErrorKind::Internal`]).
    pub fn internal(message: impl Into<String>) -> Self {
        Self { kind: CompileErrorKind::Internal, message: message.into() }
    }

    /// An expired per-compile deadline (see
    /// [`CompileErrorKind::DeadlineExceeded`]).
    pub fn deadline(message: impl Into<String>) -> Self {
        Self { kind: CompileErrorKind::DeadlineExceeded, message: message.into() }
    }

    /// The typed discriminant.
    pub fn kind(&self) -> &CompileErrorKind {
        &self.kind
    }

    /// Which stage failed.
    pub fn stage(&self) -> &str {
        self.kind.stage()
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Stable machine-readable diagnostic code (see
    /// [`CompileErrorKind::code`]).
    pub fn code(&self) -> Option<&str> {
        self.kind.code()
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed: {}", self.stage(), self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        match e {
            LowerError::Emit(message) => CompileError::emit(message),
            LowerError::Pass(p) => CompileError::pass(p.pass, p.message, p.code),
        }
    }
}

/// The compiler: a thin builder over the lowering pipeline options.
#[derive(Debug, Clone, Copy)]
pub struct Compiler {
    options: PipelineOptions,
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Compiler {
    /// A compiler targeting the WSE3 with default optimizations.
    pub fn new() -> Self {
        Self { options: PipelineOptions::default() }
    }

    /// Selects the target WSE generation.
    pub fn target(mut self, target: WseTarget) -> Self {
        self.options.target = target;
        self
    }

    /// Sets the number of chunks per halo exchange.
    ///
    /// The value is recorded as given; out-of-range values (`< 1`) are
    /// reported as a typed [`CompileErrorKind::InvalidOptions`] error by
    /// [`Compiler::compile`] instead of being silently clamped.
    pub fn num_chunks(mut self, num_chunks: i64) -> Self {
        self.options.num_chunks = num_chunks;
        self
    }

    /// Enables or disables `@fmacs` fusion.
    pub fn fmac_fusion(mut self, enabled: bool) -> Self {
        self.options.enable_fmac_fusion = enabled;
        self
    }

    /// Enables or disables stencil inlining.
    pub fn inlining(mut self, enabled: bool) -> Self {
        self.options.enable_inlining = enabled;
        self
    }

    /// Enables or disables coefficient promotion into the receive path.
    pub fn coefficient_promotion(mut self, enabled: bool) -> Self {
        self.options.promote_coefficients = enabled;
        self
    }

    /// Enables IR verification after every pass.
    pub fn verify_each(mut self, enabled: bool) -> Self {
        self.options.verify_each = enabled;
        self
    }

    /// The underlying pipeline options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// Checks the builder options for out-of-range values.
    ///
    /// # Errors
    /// Returns [`CompileErrorKind::InvalidOptions`] naming the offending
    /// option.
    pub fn validate_options(&self) -> Result<(), CompileError> {
        if self.options.num_chunks < 1 {
            return Err(CompileError::invalid_options(
                "num_chunks",
                format!("num_chunks must be >= 1, got {}", self.options.num_chunks),
            ));
        }
        if let Some(width) = self.options.width {
            if width < 1 {
                return Err(CompileError::invalid_options(
                    "width",
                    format!("width must be >= 1, got {width}"),
                ));
            }
        }
        if let Some(height) = self.options.height {
            if height < 1 {
                return Err(CompileError::invalid_options(
                    "height",
                    format!("height must be >= 1, got {height}"),
                ));
            }
        }
        Ok(())
    }

    /// Compiles a program to CSL, returning the generated artifact.
    ///
    /// # Errors
    /// Returns a [`CompileError`] if the options are out of range or
    /// emission, any lowering pass, or the simulator load fails.
    pub fn compile(&self, program: &StencilProgram) -> Result<CslArtifact, CompileError> {
        self.validate_options()?;
        let lowered = lower_program(program, &self.options)?;
        let loaded = load_program(&lowered.ctx, lowered.module)
            .map_err(|e| CompileError::load(e.message))?;
        Ok(CslArtifact::with_ir(program.clone(), self.options, lowered, loaded))
    }

    /// Turns this compiler into a long-lived compile service with a
    /// context pool and an artifact cache (see [`CompileService`]).
    pub fn service(self) -> CompileService {
        CompileService::new(self)
    }

    /// The machine model corresponding to the selected target.
    pub fn machine(&self) -> wse_sim::WseMachine {
        self.options.target.machine()
    }
}

impl CslArtifact {
    /// Estimates the artifact's performance on the machine it was compiled
    /// for (Figures 4-6 of the paper).
    pub fn estimate(&self) -> PerfEstimate {
        let machine = self.options.target.machine();
        estimate_performance(
            &self.loaded,
            &machine,
            (self.program.grid.x, self.program.grid.y, self.program.grid.z),
            self.program.timesteps,
            self.program.flops_per_point(),
        )
    }

    /// Runs the compiled program functionally on the simulated PE grid and
    /// returns the maximum deviation from the sequential reference executor.
    ///
    /// Only sensible for small problem instances (the functional simulator
    /// allocates every PE's buffers).
    ///
    /// # Errors
    /// Returns a [`CompileError`] if the simulation itself fails.
    pub fn validate_against_reference(&self) -> Result<f32, CompileError> {
        let simulate = |e: wse_sim::ExecError| CompileError::simulate(e.message);
        let mut sim = WseGridSim::new(self.loaded.clone()).map_err(simulate)?;
        sim.run(None).map_err(simulate)?;
        let state = sim.grid_state().map_err(simulate)?;
        let reference = run_reference(&self.program, None);
        Ok(max_abs_difference(&state, &reference))
    }

    /// The executable per-PE program extracted from the generated CSL.
    pub fn loaded_program(&self) -> &LoadedProgram {
        &self.loaded
    }

    /// The lowered IR, when the artifact kept it (artifacts produced by
    /// [`Compiler::compile`] do; cache-served artifacts from a
    /// [`CompileService`] drop the IR so their pooled context can be
    /// reused).
    pub fn lowered(&self) -> Option<&LoweredProgram> {
        self.ir.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::benchmarks::Benchmark;

    #[test]
    fn compile_and_validate_quickstart() {
        let program = Benchmark::Jacobian.tiny_program();
        let artifact = Compiler::new().num_chunks(2).verify_each(true).compile(&program).unwrap();
        assert!(artifact.sources().kernel_loc() > 0);
        let error = artifact.validate_against_reference().unwrap();
        assert!(error < 1e-4, "deviation {error}");
        let estimate = artifact.estimate();
        assert!(estimate.gpts_per_sec > 0.0);
    }

    #[test]
    fn builder_options_are_applied() {
        let compiler = Compiler::new()
            .target(WseTarget::Wse2)
            .num_chunks(4)
            .fmac_fusion(false)
            .inlining(false)
            .coefficient_promotion(false);
        assert_eq!(compiler.options().target, WseTarget::Wse2);
        assert_eq!(compiler.options().num_chunks, 4);
        assert!(!compiler.options().enable_fmac_fusion);
        assert!(compiler.machine().self_transmit);
    }

    #[test]
    fn out_of_range_options_are_typed_errors() {
        // num_chunks(0) used to clamp silently to 1; it is now a typed
        // validation error surfaced before any IR is built.
        let program = Benchmark::Jacobian.tiny_program();
        let err = Compiler::new().num_chunks(0).compile(&program).unwrap_err();
        assert_eq!(err.kind(), &CompileErrorKind::InvalidOptions { option: "num_chunks" });
        assert_eq!(err.stage(), "options");
        assert_eq!(err.code(), Some("invalid-options"));
        assert!(err.to_string().contains("num_chunks"));
        let err = Compiler::new().num_chunks(-3).compile(&program).unwrap_err();
        assert_eq!(err.code(), Some("invalid-options"));
    }

    #[test]
    fn compile_error_reports_stage() {
        // An invalid program (zero timesteps) fails at emission.
        let mut program = Benchmark::Diffusion.tiny_program();
        program.timesteps = 0;
        let err = Compiler::new().compile(&program).unwrap_err();
        assert_eq!(err.stage(), "emit-stencil-ir");
        assert_eq!(err.kind(), &CompileErrorKind::Emit);
        assert_eq!(err.code(), Some("emit-invalid-program"));
        assert!(err.to_string().contains("emit-stencil-ir"));
    }
}
