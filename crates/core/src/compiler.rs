//! The compiler facade: compile a front-end stencil program to CSL, run it
//! on the simulator and estimate its wafer-scale performance.

use wse_frontends::StencilProgram;
use wse_lowering::{lower_program, LoweredProgram, PipelineOptions, WseTarget};
use wse_sim::{
    estimate_performance, load_program, max_abs_difference, run_reference, LoadedProgram,
    PerfEstimate, WseGeneration, WseGridSim,
};

use crate::artifact::CslArtifact;

/// Errors produced by the compiler facade.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Which stage failed.
    pub stage: String,
    /// Description.
    pub message: String,
    /// Stable machine-readable code when the failing stage attached one
    /// (e.g. `"non-linear"` for the nonlinear-body rejection).
    pub code: Option<String>,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed: {}", self.stage, self.message)
    }
}

impl std::error::Error for CompileError {}

/// The compiler: a thin builder over the lowering pipeline options.
#[derive(Debug, Clone, Copy)]
pub struct Compiler {
    options: PipelineOptions,
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Compiler {
    /// A compiler targeting the WSE3 with default optimizations.
    pub fn new() -> Self {
        Self { options: PipelineOptions::default() }
    }

    /// Selects the target WSE generation.
    pub fn target(mut self, target: WseTarget) -> Self {
        self.options.target = target;
        self
    }

    /// Sets the number of chunks per halo exchange.
    pub fn num_chunks(mut self, num_chunks: i64) -> Self {
        self.options.num_chunks = num_chunks.max(1);
        self
    }

    /// Enables or disables `@fmacs` fusion.
    pub fn fmac_fusion(mut self, enabled: bool) -> Self {
        self.options.enable_fmac_fusion = enabled;
        self
    }

    /// Enables or disables stencil inlining.
    pub fn inlining(mut self, enabled: bool) -> Self {
        self.options.enable_inlining = enabled;
        self
    }

    /// Enables or disables coefficient promotion into the receive path.
    pub fn coefficient_promotion(mut self, enabled: bool) -> Self {
        self.options.promote_coefficients = enabled;
        self
    }

    /// Enables IR verification after every pass.
    pub fn verify_each(mut self, enabled: bool) -> Self {
        self.options.verify_each = enabled;
        self
    }

    /// The underlying pipeline options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// Compiles a program to CSL, returning the generated artifact.
    ///
    /// # Errors
    /// Returns a [`CompileError`] if emission or any lowering pass fails.
    pub fn compile(&self, program: &StencilProgram) -> Result<CslArtifact, CompileError> {
        let lowered = lower_program(program, &self.options).map_err(|e| CompileError {
            stage: e.pass,
            message: e.message,
            code: e.code,
        })?;
        let loaded = load_program(&lowered.ctx, lowered.module).map_err(|e| CompileError {
            stage: "load".into(),
            message: e.message,
            code: None,
        })?;
        Ok(CslArtifact::new(program.clone(), self.options, lowered, loaded))
    }

    /// The machine model corresponding to the selected target.
    pub fn machine(&self) -> wse_sim::WseMachine {
        match self.options.target {
            WseTarget::Wse2 => WseGeneration::Wse2.machine(),
            WseTarget::Wse3 => WseGeneration::Wse3.machine(),
        }
    }
}

impl CslArtifact {
    /// Estimates the artifact's performance on the machine it was compiled
    /// for (Figures 4-6 of the paper).
    pub fn estimate(&self) -> PerfEstimate {
        let machine = match self.options.target {
            WseTarget::Wse2 => WseGeneration::Wse2.machine(),
            WseTarget::Wse3 => WseGeneration::Wse3.machine(),
        };
        estimate_performance(
            &self.loaded,
            &machine,
            (self.program.grid.x, self.program.grid.y, self.program.grid.z),
            self.program.timesteps,
            self.program.flops_per_point(),
        )
    }

    /// Runs the compiled program functionally on the simulated PE grid and
    /// returns the maximum deviation from the sequential reference executor.
    ///
    /// Only sensible for small problem instances (the functional simulator
    /// allocates every PE's buffers).
    ///
    /// # Errors
    /// Returns a [`CompileError`] if the simulation itself fails.
    pub fn validate_against_reference(&self) -> Result<f32, CompileError> {
        let simulate = |e: wse_sim::ExecError| CompileError {
            stage: "simulate".into(),
            message: e.message,
            code: None,
        };
        let mut sim = WseGridSim::new(self.loaded.clone()).map_err(simulate)?;
        sim.run(None).map_err(simulate)?;
        let state = sim.grid_state().map_err(simulate)?;
        let reference = run_reference(&self.program, None);
        Ok(max_abs_difference(&state, &reference))
    }

    /// The executable per-PE program extracted from the generated CSL.
    pub fn loaded_program(&self) -> &LoadedProgram {
        &self.loaded
    }

    /// The lowered IR (for inspection, e.g. printing the generic form).
    pub fn lowered(&self) -> &LoweredProgram {
        &self.lowered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::benchmarks::Benchmark;

    #[test]
    fn compile_and_validate_quickstart() {
        let program = Benchmark::Jacobian.tiny_program();
        let artifact = Compiler::new().num_chunks(2).verify_each(true).compile(&program).unwrap();
        assert!(artifact.sources().kernel_loc() > 0);
        let error = artifact.validate_against_reference().unwrap();
        assert!(error < 1e-4, "deviation {error}");
        let estimate = artifact.estimate();
        assert!(estimate.gpts_per_sec > 0.0);
    }

    #[test]
    fn builder_options_are_applied() {
        let compiler = Compiler::new()
            .target(WseTarget::Wse2)
            .num_chunks(0)
            .fmac_fusion(false)
            .inlining(false)
            .coefficient_promotion(false);
        assert_eq!(compiler.options().target, WseTarget::Wse2);
        assert_eq!(compiler.options().num_chunks, 1, "chunk count is clamped to >= 1");
        assert!(!compiler.options().enable_fmac_fusion);
        assert!(compiler.machine().self_transmit);
    }

    #[test]
    fn compile_error_reports_stage() {
        // An invalid program (zero timesteps) fails at emission.
        let mut program = Benchmark::Diffusion.tiny_program();
        program.timesteps = 0;
        let err = Compiler::new().compile(&program).unwrap_err();
        assert_eq!(err.stage, "emit-stencil-ir");
        assert!(err.to_string().contains("emit-stencil-ir"));
    }
}
