//! Compile-as-a-service: batched compilation over pooled IR contexts
//! with an artifact cache keyed by a stable structural IR hash.
//!
//! The ROADMAP's north star is serving compilation to many users; the
//! [`CompileService`] is the throughput-oriented entry point behind the
//! [`Compiler`] builder:
//!
//! * **Context pool** — every compile emits into a long-lived, reset
//!   [`IrContext`] instead of a fresh arena.  Interned types/attributes
//!   survive [`IrContext::reset`], so steady-state compiles never
//!   re-allocate type structure (see the `wse_ir::ir` docs for the
//!   handle-invalidation rules: op/value handles die at reset,
//!   `TypeRef`/`AttrRef` handles live as long as the context).
//! * **Artifact cache** — after front-end emission the module is
//!   fingerprinted structurally ([`IrContext::fingerprint`], independent
//!   of arena indices) and combined with the pipeline options; a hit
//!   returns the shared [`CslArtifact`] without running a single pass.
//! * **Batching** — [`CompileService::compile_batch`] fans a slice of
//!   programs out over a small worker pool (scoped threads; each worker
//!   takes its own pooled context).
//!
//! # Failure hardening
//!
//! A long-lived service must survive misbehaving compiles, so every
//! pipeline run is wrapped in an isolation boundary:
//!
//! * **Panic isolation** — a panic anywhere in emission/lowering/loading
//!   is caught (`catch_unwind`) and surfaced as a typed
//!   [`CompileErrorKind::Internal`] error.  The context the panicking
//!   compile was using is *discarded*, never repooled: a half-built
//!   arena must not leak into the next request.
//! * **Lock-poison recovery** — a panic while a shared mutex is held
//!   poisons it; the service recovers instead of propagating the poison.
//!   The context pool is cleared on recovery (a context caught mid-reset
//!   is suspect), while the artifact cache keeps its entries (`Arc`
//!   values are inserted whole, so a poisoned cache holds only complete
//!   artifacts).
//! * **Deadlines** — [`CompileService::deadline`] bounds each attempt.
//!   An over-deadline compile keeps running on a detached worker and
//!   still repools its context and fills the cache when it eventually
//!   finishes; the caller gets a typed
//!   [`CompileErrorKind::DeadlineExceeded`] error immediately.
//! * **Bounded retry** — [`CompileService::retry`] re-runs attempts that
//!   failed *transiently* (isolated panic or expired deadline) with
//!   exponential backoff.  Deterministic rejections (validation, pass
//!   failures) are never retried.
//!
//! Every recovery action is counted in [`ServiceStats`] so tests and
//! operators can assert the paths actually fired.
//!
//! Artifacts are handed out as `Arc<CslArtifact>`: they own their
//! sources and loaded program but not the IR they were lowered in, so
//! the pooled context is immediately reusable.
//!
//! ```
//! use wse_stencil::{benchmarks::Benchmark, Compiler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = Compiler::new().num_chunks(2).service();
//! let program = Benchmark::Jacobian.tiny_program();
//! let first = service.compile(&program)?;
//! let second = service.compile(&program)?; // served from the cache
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!(service.stats().cache_hits, 1);
//! # Ok(())
//! # }
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::Duration;

use wse_frontends::{emit_stencil_ir_into, StencilProgram};
use wse_ir::fxhash::fx_hash_one;
use wse_ir::{FxHashMap, IrContext};
use wse_lowering::lower_module_in;
use wse_sim::load_program;

use crate::artifact::CslArtifact;
use crate::compiler::{CompileError, CompileErrorKind, Compiler};

/// The result of one service compile: a shared artifact or a typed error.
pub type CompileResult = Result<Arc<CslArtifact>, CompileError>;

/// Panic message used by the service's chaos hooks
/// ([`CompileService::inject_panics`]).  Test panic hooks match on this
/// to keep deliberate fault-injection panics out of the test log.
pub const INJECTED_COMPILE_PANIC: &str = "injected compile fault";

/// Counters describing what the service has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests served from the artifact cache.
    pub cache_hits: u64,
    /// Requests that ran the full pipeline.
    pub cache_misses: u64,
    /// Artifacts currently held by the cache.
    pub cached_artifacts: usize,
    /// Idle contexts currently in the pool.
    pub pooled_contexts: usize,
    /// Mid-compile panics caught and converted into typed
    /// [`CompileErrorKind::Internal`] errors.
    pub panics_isolated: u64,
    /// Compile attempts whose per-attempt deadline expired.
    pub deadlines_expired: u64,
    /// Transient failures that were retried (one per extra attempt).
    pub retries_spent: u64,
    /// Contexts discarded instead of repooled (poisoned by a panic, or
    /// swept out of the pool when a poisoned pool lock was recovered).
    pub contexts_discarded: u64,
    /// Poisoned mutexes the service recovered from.
    pub poisoned_locks_recovered: u64,
}

/// State shared between the service handle and detached deadline
/// workers.  All lock acquisition goes through the poison-recovering
/// helpers below — a panicking compile must never wedge the service.
#[derive(Default)]
struct ServiceShared {
    pool: Mutex<Vec<IrContext>>,
    cache: Mutex<FxHashMap<u64, Arc<CslArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    panics_isolated: AtomicU64,
    deadlines_expired: AtomicU64,
    retries_spent: AtomicU64,
    contexts_discarded: AtomicU64,
    poisoned_locks_recovered: AtomicU64,
    pool_poison_handled: AtomicBool,
    cache_poison_handled: AtomicBool,
    chaos_panics: AtomicU32,
    chaos_stall: Mutex<Option<Duration>>,
}

impl ServiceShared {
    /// Locks the context pool, recovering from poison.  The first time a
    /// poisoned pool is observed, every pooled context is discarded: the
    /// panic that poisoned the lock may have interrupted a reset, and a
    /// half-reset arena must not serve the next request.
    fn lock_pool(&self) -> MutexGuard<'_, Vec<IrContext>> {
        match self.pool.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                if !self.pool_poison_handled.swap(true, Ordering::Relaxed) {
                    self.poisoned_locks_recovered.fetch_add(1, Ordering::Relaxed);
                    self.contexts_discarded.fetch_add(guard.len() as u64, Ordering::Relaxed);
                    guard.clear();
                }
                guard
            }
        }
    }

    /// Locks the artifact cache, recovering from poison.  Entries are
    /// kept: `Arc<CslArtifact>` values are inserted whole, so whatever
    /// the map holds is complete.
    fn lock_cache(&self) -> MutexGuard<'_, FxHashMap<u64, Arc<CslArtifact>>> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                if !self.cache_poison_handled.swap(true, Ordering::Relaxed) {
                    self.poisoned_locks_recovered.fetch_add(1, Ordering::Relaxed);
                }
                poisoned.into_inner()
            }
        }
    }

    fn take_context(&self) -> IrContext {
        self.lock_pool().pop().unwrap_or_default()
    }

    fn return_context(&self, mut ctx: IrContext) {
        ctx.reset();
        self.lock_pool().push(ctx);
    }

    /// The chaos hook, called inside the isolation boundary so injected
    /// faults exercise exactly the paths real faults would take.
    fn chaos(&self) {
        let stall = self.chaos_stall.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(duration) = stall {
            std::thread::sleep(duration);
        }
        let fire = self
            .chaos_panics
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok();
        if fire {
            panic!("{INJECTED_COMPILE_PANIC}");
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// A long-lived compile service wrapping a [`Compiler`] configuration.
///
/// Construct one with [`Compiler::service`].  The service is `Sync`:
/// `compile` takes `&self` and may be called from many threads; internal
/// state (context pool, artifact cache) is mutex-protected, and every
/// lock acquisition recovers from poisoning (see the module docs).
///
/// # Ownership
/// Returned artifacts are `Arc`-shared and self-contained — they do not
/// borrow from, or keep alive, any pooled context.  The lowered IR is
/// dropped after source generation (see [`CslArtifact::lowered`]), which
/// is what lets a context go back into the pool as soon as its compile
/// finishes.
pub struct CompileService {
    compiler: Compiler,
    shared: Arc<ServiceShared>,
    cache_enabled: bool,
    workers: usize,
    deadline: Option<Duration>,
    retries: u32,
    backoff: Duration,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService")
            .field("compiler", &self.compiler)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CompileService {
    /// A service over `compiler`'s options (use [`Compiler::service`]).
    pub(crate) fn new(compiler: Compiler) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            compiler,
            shared: Arc::new(ServiceShared::default()),
            cache_enabled: true,
            workers,
            deadline: None,
            retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Disables (or re-enables) the artifact cache; every compile then
    /// runs the full pipeline.  Useful for benchmarking the cold path.
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Caps the number of worker threads used by
    /// [`CompileService::compile_batch`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bounds each compile attempt to `deadline`.  An attempt that runs
    /// past it returns a typed [`CompileErrorKind::DeadlineExceeded`]
    /// error while the compile finishes on a detached worker (late
    /// completions still repool their context and fill the cache, so a
    /// retry — or the next identical request — can hit).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Retries transient failures (isolated panics, expired deadlines)
    /// up to `retries` extra attempts, sleeping `backoff * 2^attempt`
    /// between attempts.  Deterministic rejections are never retried.
    pub fn retry(mut self, retries: u32, backoff: Duration) -> Self {
        self.retries = retries;
        self.backoff = backoff;
        self
    }

    /// Chaos hook: makes the next `count` compile attempts panic inside
    /// the isolation boundary.  Used to pin the panic-isolation and
    /// retry paths in tests.
    pub fn inject_panics(&self, count: u32) {
        self.shared.chaos_panics.store(count, Ordering::Relaxed);
    }

    /// Chaos hook: stalls the next compile attempt for `duration` inside
    /// the isolation boundary (one-shot).  Used to pin the deadline path
    /// in tests.
    pub fn inject_stall(&self, duration: Duration) {
        *self.shared.chaos_stall.lock().unwrap_or_else(|e| e.into_inner()) = Some(duration);
    }

    /// The compiler configuration this service was built from.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        let shared = &self.shared;
        ServiceStats {
            cache_hits: shared.hits.load(Ordering::Relaxed),
            cache_misses: shared.misses.load(Ordering::Relaxed),
            cached_artifacts: shared.lock_cache().len(),
            pooled_contexts: shared.lock_pool().len(),
            panics_isolated: shared.panics_isolated.load(Ordering::Relaxed),
            deadlines_expired: shared.deadlines_expired.load(Ordering::Relaxed),
            retries_spent: shared.retries_spent.load(Ordering::Relaxed),
            contexts_discarded: shared.contexts_discarded.load(Ordering::Relaxed),
            poisoned_locks_recovered: shared.poisoned_locks_recovered.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached artifact (pooled contexts are kept).
    pub fn clear_cache(&self) {
        self.shared.lock_cache().clear();
    }

    /// Compiles one program, serving repeats from the artifact cache.
    ///
    /// # Errors
    /// Same contract as [`Compiler::compile`], with errors typed by
    /// [`crate::CompileErrorKind`].  With a [`deadline`] configured,
    /// over-deadline attempts fail with
    /// [`CompileErrorKind::DeadlineExceeded`]; mid-pipeline panics are
    /// isolated as [`CompileErrorKind::Internal`].  Both are retried when
    /// [`retry`] is configured.
    ///
    /// [`deadline`]: CompileService::deadline
    /// [`retry`]: CompileService::retry
    pub fn compile(&self, program: &StencilProgram) -> Result<Arc<CslArtifact>, CompileError> {
        self.compiler.validate_options()?;
        let mut attempt: u32 = 0;
        loop {
            let result = self.compile_attempt(program);
            let transient = matches!(
                &result,
                Err(e) if matches!(
                    e.kind(),
                    CompileErrorKind::Internal | CompileErrorKind::DeadlineExceeded
                )
            );
            if !transient || attempt >= self.retries {
                return result;
            }
            self.shared.retries_spent.fetch_add(1, Ordering::Relaxed);
            if self.backoff > Duration::ZERO {
                let shift = attempt.min(16);
                std::thread::sleep(self.backoff.saturating_mul(1 << shift));
            }
            attempt += 1;
        }
    }

    fn compile_attempt(&self, program: &StencilProgram) -> CompileResult {
        match self.deadline {
            None => compile_on(&self.shared, &self.compiler, self.cache_enabled, program),
            Some(deadline) => self.compile_with_deadline(program, deadline),
        }
    }

    /// Runs one attempt on a detached worker and waits at most
    /// `deadline` for it.  On timeout the worker keeps running: when it
    /// eventually finishes it repools its context and fills the cache,
    /// so the work is not wasted — only this caller stops waiting.
    fn compile_with_deadline(&self, program: &StencilProgram, deadline: Duration) -> CompileResult {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::clone(&self.shared);
        let compiler = self.compiler;
        let cache_enabled = self.cache_enabled;
        let program = program.clone();
        let spawned =
            std::thread::Builder::new().name("wse-compile-deadline".to_string()).spawn(move || {
                let _ = tx.send(compile_on(&shared, &compiler, cache_enabled, &program));
            });
        if let Err(e) = spawned {
            return Err(CompileError::internal(format!("failed to spawn compile worker: {e}")));
        }
        match rx.recv_timeout(deadline) {
            Ok(result) => result,
            Err(_) => {
                self.shared.deadlines_expired.fetch_add(1, Ordering::Relaxed);
                Err(CompileError::deadline(format!(
                    "compile exceeded the {}ms deadline (still running detached)",
                    deadline.as_millis()
                )))
            }
        }
    }

    /// Compiles a batch of programs, fanning out over scoped worker
    /// threads (each worker draws its own context from the pool).
    /// Results are returned in input order.
    pub fn compile_batch(&self, programs: &[StencilProgram]) -> Vec<CompileResult> {
        let workers = self.workers.min(programs.len());
        if workers <= 1 {
            return programs.iter().map(|p| self.compile(p)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CompileResult>>> =
            programs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= programs.len() {
                        break;
                    }
                    let result = self.compile(&programs[i]);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().unwrap_or_else(|e| e.into_inner()).unwrap_or_else(|| {
                    Err(CompileError::internal("batch worker never filled its slot"))
                })
            })
            .collect()
    }
}

/// One isolated compile attempt.  A free function (not a method) so the
/// deadline path can run it on a detached `'static` worker holding only
/// an `Arc` of the shared state.
///
/// The pooled context is moved *into* the `catch_unwind` closure: on an
/// unwind it is dropped with the closure's locals, which is exactly the
/// discard-don't-repool policy the module docs describe.
fn compile_on(
    shared: &ServiceShared,
    compiler: &Compiler,
    cache_enabled: bool,
    program: &StencilProgram,
) -> CompileResult {
    let options = *compiler.options();
    let ctx = shared.take_context();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut ctx = ctx;
        shared.chaos();

        let emitted = emit_stencil_ir_into(&mut ctx, program);
        let module = match emitted {
            Ok((module, _func)) => module,
            Err(message) => {
                shared.return_context(ctx);
                return Err(CompileError::emit(message));
            }
        };

        // Key the cache by structure, not by identity: the fingerprint is
        // a pre-order walk with local value numbering, so it is stable
        // across pool reuse and arena index churn.
        let key = fx_hash_one(&(ctx.fingerprint(module), options));
        if cache_enabled {
            if let Some(artifact) = shared.lock_cache().get(&key) {
                shared.hits.fetch_add(1, Ordering::Relaxed);
                let artifact = Arc::clone(artifact);
                shared.return_context(ctx);
                return Ok(artifact);
            }
        }

        let lowered = lower_module_in(&mut ctx, module, program, &options);
        let (sources, pass_names) = match lowered {
            Ok(parts) => parts,
            Err(e) => {
                shared.return_context(ctx);
                return Err(e.into());
            }
        };
        let loaded = match load_program(&ctx, module) {
            Ok(loaded) => loaded,
            Err(e) => {
                shared.return_context(ctx);
                return Err(CompileError::load(e.message));
            }
        };
        shared.return_context(ctx);
        shared.misses.fetch_add(1, Ordering::Relaxed);

        let artifact = Arc::new(CslArtifact::from_parts(
            program.clone(),
            options,
            sources,
            pass_names,
            loaded,
        ));
        if cache_enabled {
            shared.lock_cache().insert(key, Arc::clone(&artifact));
        }
        Ok(artifact)
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            shared.panics_isolated.fetch_add(1, Ordering::Relaxed);
            shared.contexts_discarded.fetch_add(1, Ordering::Relaxed);
            Err(CompileError::internal(format!(
                "compile pipeline panicked: {}",
                panic_message(payload)
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Once;
    use wse_frontends::benchmarks::Benchmark;

    /// Silences the chaos-injected panics (they are deliberate) while
    /// forwarding every other panic to the previously-installed hook.
    fn quiet_injected_panics() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.contains(INJECTED_COMPILE_PANIC))
                    .unwrap_or(false)
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains(INJECTED_COMPILE_PANIC))
                        .unwrap_or(false);
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn repeated_compiles_share_one_artifact() {
        let service = Compiler::new().num_chunks(2).service();
        let program = Benchmark::Jacobian.tiny_program();
        let first = service.compile(&program).unwrap();
        let second = service.compile(&program).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "cache hit returns the shared artifact");
        let stats = service.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.cached_artifacts, 1);
        assert_eq!(stats.pooled_contexts, 1, "the context went back to the pool");
        // The cache key includes options: a different configuration of the
        // same program is a miss.
        let other = Compiler::new().num_chunks(2).fmac_fusion(false).service();
        let unfused = other.compile(&program).unwrap();
        assert!(!Arc::ptr_eq(&first, &unfused));
    }

    #[test]
    fn service_matches_classic_compiler_output() {
        let program = Benchmark::Seismic25.tiny_program();
        let classic = Compiler::new().num_chunks(2).compile(&program).unwrap();
        let served = Compiler::new().num_chunks(2).service().compile(&program).unwrap();
        for file in &classic.sources().files {
            let other = served.sources().file(&file.name).expect("same file set");
            assert_eq!(file.content, other.content, "{} differs", file.name);
        }
        assert_eq!(classic.pass_names(), served.pass_names());
        assert!(served.lowered().is_none(), "service artifacts drop the IR");
        assert!(classic.lowered().is_some());
    }

    #[test]
    fn pooled_context_is_reused_across_requests() {
        let service = Compiler::new().service().cache(false);
        let program = Benchmark::Diffusion.tiny_program();
        service.compile(&program).unwrap();
        let stats = service.stats();
        assert_eq!(stats.pooled_contexts, 1);
        service.compile(&program).unwrap();
        let stats = service.stats();
        // Cache disabled: both compiles ran the pipeline, in one pooled ctx.
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 2));
        assert_eq!(stats.pooled_contexts, 1, "same context cycled through the pool");
        assert_eq!(stats.cached_artifacts, 0);
    }

    #[test]
    fn batch_returns_results_in_input_order() {
        let service = Compiler::new().num_chunks(2).service().workers(4);
        let programs: Vec<_> = [Benchmark::Jacobian, Benchmark::Diffusion, Benchmark::Seismic25]
            .iter()
            .map(|b| b.tiny_program())
            .collect();
        let results = service.compile_batch(&programs);
        assert_eq!(results.len(), 3);
        for (program, result) in programs.iter().zip(&results) {
            let artifact = result.as_ref().expect("batch compile succeeds");
            assert_eq!(&artifact.program().name, &program.name);
        }
    }

    #[test]
    fn typed_errors_flow_through_the_service() {
        let service = Compiler::new().service();
        let mut program = Benchmark::Jacobian.tiny_program();
        program.timesteps = 0;
        let err = service.compile(&program).unwrap_err();
        assert_eq!(err.stage(), "emit-stencil-ir");
        // The failed compile still returned its context to the pool.
        assert_eq!(service.stats().pooled_contexts, 1);
        let err = Compiler::new().num_chunks(0).service().compile(&program).unwrap_err();
        assert_eq!(err.code(), Some("invalid-options"));
    }

    #[test]
    fn panic_isolation_discards_the_context_and_keeps_serving() {
        quiet_injected_panics();
        let service = Compiler::new().service();
        let program = Benchmark::Jacobian.tiny_program();
        service.inject_panics(1);
        let err = service.compile(&program).unwrap_err();
        assert_eq!(err.code(), Some("internal-panic"));
        assert_eq!(err.stage(), "internal");
        assert!(err.message().contains(INJECTED_COMPILE_PANIC));
        let stats = service.stats();
        assert_eq!(stats.panics_isolated, 1);
        assert_eq!(stats.contexts_discarded, 1);
        assert_eq!(stats.pooled_contexts, 0, "the poisoned context is not repooled");
        // The service is still healthy afterwards.
        let artifact = service.compile(&program).unwrap();
        assert_eq!(artifact.program().name, program.name);
        assert_eq!(service.stats().pooled_contexts, 1);
    }

    #[test]
    fn retry_recovers_from_transient_panics() {
        quiet_injected_panics();
        let service = Compiler::new().service().retry(2, Duration::ZERO);
        let program = Benchmark::Diffusion.tiny_program();
        service.inject_panics(2);
        let artifact = service.compile(&program).expect("third attempt succeeds");
        assert_eq!(artifact.program().name, program.name);
        let stats = service.stats();
        assert_eq!(stats.panics_isolated, 2);
        assert_eq!(stats.retries_spent, 2);
        // A deterministic rejection is not retried.
        let mut bad = program.clone();
        bad.timesteps = 0;
        let before = service.stats().retries_spent;
        let _ = service.compile(&bad).unwrap_err();
        assert_eq!(service.stats().retries_spent, before);
    }

    #[test]
    fn deadline_expiry_is_typed_and_the_detached_compile_completes() {
        quiet_injected_panics();
        let service = Compiler::new().service().deadline(Duration::from_millis(100));
        let program = Benchmark::Jacobian.tiny_program();
        service.inject_stall(Duration::from_millis(600));
        let err = service.compile(&program).unwrap_err();
        assert_eq!(err.code(), Some("deadline-exceeded"));
        assert_eq!(err.stage(), "deadline");
        assert!(service.stats().deadlines_expired >= 1);
        // The detached worker finishes the compile: its context is
        // repooled and the artifact lands in the cache, so the next
        // request is a hit.  Poll with a generous bound.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while service.stats().cached_artifacts == 0 {
            assert!(std::time::Instant::now() < deadline, "detached compile never completed");
            std::thread::sleep(Duration::from_millis(10));
        }
        let artifact = service.compile(&program).unwrap();
        assert_eq!(artifact.program().name, program.name);
        assert!(service.stats().cache_hits >= 1, "late completion filled the cache");
    }

    #[test]
    fn deadline_plus_retry_recovers_from_a_one_shot_stall() {
        quiet_injected_panics();
        let service =
            Compiler::new().service().deadline(Duration::from_millis(150)).retry(1, Duration::ZERO);
        let program = Benchmark::Seismic25.tiny_program();
        service.inject_stall(Duration::from_millis(800));
        // First attempt stalls past the deadline; the retry runs without
        // the (one-shot) stall and succeeds.
        let artifact = service.compile(&program).expect("retry succeeds");
        assert_eq!(artifact.program().name, program.name);
        let stats = service.stats();
        assert!(stats.deadlines_expired >= 1);
        assert!(stats.retries_spent >= 1);
    }

    #[test]
    fn poisoned_locks_are_recovered_not_propagated() {
        quiet_injected_panics();
        let service = Compiler::new().service();
        let program = Benchmark::Jacobian.tiny_program();
        // Poison both shared locks the way a real panic would: panic on
        // another thread while holding the guard.
        let shared = Arc::clone(&service.shared);
        let _ = std::thread::spawn(move || {
            let _pool = shared.pool.lock().unwrap();
            let _cache = shared.cache.lock().unwrap();
            panic!("{INJECTED_COMPILE_PANIC} (poisoning the service locks)");
        })
        .join();
        assert!(service.shared.pool.is_poisoned());
        assert!(service.shared.cache.is_poisoned());
        // The service recovers and keeps compiling.
        let artifact = service.compile(&program).expect("service survives poisoned locks");
        assert_eq!(artifact.program().name, program.name);
        let stats = service.stats();
        assert_eq!(stats.poisoned_locks_recovered, 2, "pool and cache each counted once");
        let again = service.compile(&program).unwrap();
        assert!(Arc::ptr_eq(&artifact, &again), "the recovered cache still serves hits");
    }
}
