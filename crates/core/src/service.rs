//! Compile-as-a-service: batched compilation over pooled IR contexts
//! with an artifact cache keyed by a stable structural IR hash.
//!
//! The ROADMAP's north star is serving compilation to many users; the
//! [`CompileService`] is the throughput-oriented entry point behind the
//! [`Compiler`] builder:
//!
//! * **Context pool** — every compile emits into a long-lived, reset
//!   [`IrContext`] instead of a fresh arena.  Interned types/attributes
//!   survive [`IrContext::reset`], so steady-state compiles never
//!   re-allocate type structure (see the `wse_ir::ir` docs for the
//!   handle-invalidation rules: op/value handles die at reset,
//!   `TypeRef`/`AttrRef` handles live as long as the context).
//! * **Artifact cache** — after front-end emission the module is
//!   fingerprinted structurally ([`IrContext::fingerprint`], independent
//!   of arena indices) and combined with the pipeline options; a hit
//!   returns the shared [`CslArtifact`] without running a single pass.
//! * **Batching** — [`CompileService::compile_batch`] fans a slice of
//!   programs out over a small worker pool (scoped threads; each worker
//!   takes its own pooled context).
//!
//! Artifacts are handed out as `Arc<CslArtifact>`: they own their
//! sources and loaded program but not the IR they were lowered in, so
//! the pooled context is immediately reusable.
//!
//! ```
//! use wse_stencil::{benchmarks::Benchmark, Compiler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = Compiler::new().num_chunks(2).service();
//! let program = Benchmark::Jacobian.tiny_program();
//! let first = service.compile(&program)?;
//! let second = service.compile(&program)?; // served from the cache
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!(service.stats().cache_hits, 1);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use wse_frontends::{emit_stencil_ir_into, StencilProgram};
use wse_ir::fxhash::fx_hash_one;
use wse_ir::{FxHashMap, IrContext};
use wse_lowering::lower_module_in;
use wse_sim::load_program;

use crate::artifact::CslArtifact;
use crate::compiler::{CompileError, Compiler};

/// The result of one service compile: a shared artifact or a typed error.
pub type CompileResult = Result<Arc<CslArtifact>, CompileError>;

/// Counters describing what the service has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests served from the artifact cache.
    pub cache_hits: u64,
    /// Requests that ran the full pipeline.
    pub cache_misses: u64,
    /// Artifacts currently held by the cache.
    pub cached_artifacts: usize,
    /// Idle contexts currently in the pool.
    pub pooled_contexts: usize,
}

/// A long-lived compile service wrapping a [`Compiler`] configuration.
///
/// Construct one with [`Compiler::service`].  The service is `Sync`:
/// `compile` takes `&self` and may be called from many threads; internal
/// state (context pool, artifact cache) is mutex-protected.
///
/// # Ownership
/// Returned artifacts are `Arc`-shared and self-contained — they do not
/// borrow from, or keep alive, any pooled context.  The lowered IR is
/// dropped after source generation (see [`CslArtifact::lowered`]), which
/// is what lets a context go back into the pool as soon as its compile
/// finishes.
pub struct CompileService {
    compiler: Compiler,
    pool: Mutex<Vec<IrContext>>,
    cache: Mutex<FxHashMap<u64, Arc<CslArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    cache_enabled: bool,
    workers: usize,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService")
            .field("compiler", &self.compiler)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CompileService {
    /// A service over `compiler`'s options (use [`Compiler::service`]).
    pub(crate) fn new(compiler: Compiler) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            compiler,
            pool: Mutex::new(Vec::new()),
            cache: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cache_enabled: true,
            workers,
        }
    }

    /// Disables (or re-enables) the artifact cache; every compile then
    /// runs the full pipeline.  Useful for benchmarking the cold path.
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Caps the number of worker threads used by
    /// [`CompileService::compile_batch`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The compiler configuration this service was built from.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cached_artifacts: self.cache.lock().unwrap().len(),
            pooled_contexts: self.pool.lock().unwrap().len(),
        }
    }

    /// Drops every cached artifact (pooled contexts are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().unwrap().clear();
    }

    /// Compiles one program, serving repeats from the artifact cache.
    ///
    /// # Errors
    /// Same contract as [`Compiler::compile`], with errors typed by
    /// [`crate::CompileErrorKind`].
    pub fn compile(&self, program: &StencilProgram) -> Result<Arc<CslArtifact>, CompileError> {
        self.compiler.validate_options()?;
        let options = *self.compiler.options();
        let mut ctx = self.take_context();

        let emitted = emit_stencil_ir_into(&mut ctx, program);
        let module = match emitted {
            Ok((module, _func)) => module,
            Err(message) => {
                self.return_context(ctx);
                return Err(CompileError::emit(message));
            }
        };

        // Key the cache by structure, not by identity: the fingerprint is
        // a pre-order walk with local value numbering, so it is stable
        // across pool reuse and arena index churn.
        let key = fx_hash_one(&(ctx.fingerprint(module), options));
        if self.cache_enabled {
            if let Some(artifact) = self.cache.lock().unwrap().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let artifact = Arc::clone(artifact);
                self.return_context(ctx);
                return Ok(artifact);
            }
        }

        let lowered = lower_module_in(&mut ctx, module, program, &options);
        let (sources, pass_names) = match lowered {
            Ok(parts) => parts,
            Err(e) => {
                self.return_context(ctx);
                return Err(e.into());
            }
        };
        let loaded = match load_program(&ctx, module) {
            Ok(loaded) => loaded,
            Err(e) => {
                self.return_context(ctx);
                return Err(CompileError::load(e.message));
            }
        };
        self.return_context(ctx);
        self.misses.fetch_add(1, Ordering::Relaxed);

        let artifact = Arc::new(CslArtifact::from_parts(
            program.clone(),
            options,
            sources,
            pass_names,
            loaded,
        ));
        if self.cache_enabled {
            self.cache.lock().unwrap().insert(key, Arc::clone(&artifact));
        }
        Ok(artifact)
    }

    /// Compiles a batch of programs, fanning out over scoped worker
    /// threads (each worker draws its own context from the pool).
    /// Results are returned in input order.
    pub fn compile_batch(&self, programs: &[StencilProgram]) -> Vec<CompileResult> {
        let workers = self.workers.min(programs.len());
        if workers <= 1 {
            return programs.iter().map(|p| self.compile(p)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CompileResult>>> =
            programs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= programs.len() {
                        break;
                    }
                    *slots[i].lock().unwrap() = Some(self.compile(&programs[i]));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    }

    fn take_context(&self) -> IrContext {
        self.pool.lock().unwrap().pop().unwrap_or_default()
    }

    fn return_context(&self, mut ctx: IrContext) {
        ctx.reset();
        self.pool.lock().unwrap().push(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::benchmarks::Benchmark;

    #[test]
    fn repeated_compiles_share_one_artifact() {
        let service = Compiler::new().num_chunks(2).service();
        let program = Benchmark::Jacobian.tiny_program();
        let first = service.compile(&program).unwrap();
        let second = service.compile(&program).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "cache hit returns the shared artifact");
        let stats = service.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        assert_eq!(stats.cached_artifacts, 1);
        assert_eq!(stats.pooled_contexts, 1, "the context went back to the pool");
        // The cache key includes options: a different configuration of the
        // same program is a miss.
        let other = Compiler::new().num_chunks(2).fmac_fusion(false).service();
        let unfused = other.compile(&program).unwrap();
        assert!(!Arc::ptr_eq(&first, &unfused));
    }

    #[test]
    fn service_matches_classic_compiler_output() {
        let program = Benchmark::Seismic25.tiny_program();
        let classic = Compiler::new().num_chunks(2).compile(&program).unwrap();
        let served = Compiler::new().num_chunks(2).service().compile(&program).unwrap();
        for file in &classic.sources().files {
            let other = served.sources().file(&file.name).expect("same file set");
            assert_eq!(file.content, other.content, "{} differs", file.name);
        }
        assert_eq!(classic.pass_names(), served.pass_names());
        assert!(served.lowered().is_none(), "service artifacts drop the IR");
        assert!(classic.lowered().is_some());
    }

    #[test]
    fn pooled_context_is_reused_across_requests() {
        let service = Compiler::new().service().cache(false);
        let program = Benchmark::Diffusion.tiny_program();
        service.compile(&program).unwrap();
        let stats = service.stats();
        assert_eq!(stats.pooled_contexts, 1);
        service.compile(&program).unwrap();
        let stats = service.stats();
        // Cache disabled: both compiles ran the pipeline, in one pooled ctx.
        assert_eq!((stats.cache_hits, stats.cache_misses), (0, 2));
        assert_eq!(stats.pooled_contexts, 1, "same context cycled through the pool");
        assert_eq!(stats.cached_artifacts, 0);
    }

    #[test]
    fn batch_returns_results_in_input_order() {
        let service = Compiler::new().num_chunks(2).service().workers(4);
        let programs: Vec<_> = [Benchmark::Jacobian, Benchmark::Diffusion, Benchmark::Seismic25]
            .iter()
            .map(|b| b.tiny_program())
            .collect();
        let results = service.compile_batch(&programs);
        assert_eq!(results.len(), 3);
        for (program, result) in programs.iter().zip(&results) {
            let artifact = result.as_ref().expect("batch compile succeeds");
            assert_eq!(&artifact.program().name, &program.name);
        }
    }

    #[test]
    fn typed_errors_flow_through_the_service() {
        let service = Compiler::new().service();
        let mut program = Benchmark::Jacobian.tiny_program();
        program.timesteps = 0;
        let err = service.compile(&program).unwrap_err();
        assert_eq!(err.stage(), "emit-stencil-ir");
        // The failed compile still returned its context to the pool.
        assert_eq!(service.stats().pooled_contexts, 1);
        let err = Compiler::new().num_chunks(0).service().compile(&program).unwrap_err();
        assert_eq!(err.code(), Some("invalid-options"));
    }
}
