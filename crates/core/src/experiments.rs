//! Regeneration of every table and figure in the paper's evaluation
//! (Section 6).  Each function returns structured rows; the `reproduce`
//! binary and the Criterion benches print them.

use wse_frontends::benchmarks::{Benchmark, ProblemSize};
use wse_lowering::WseTarget;
use wse_sim::baselines::{
    a100_cluster_acoustic_gpts, cpu_cluster_acoustic_gpts, handwritten_seismic_estimate,
};
use wse_sim::roofline::{
    cache_arithmetic_intensity, device_roofline, fabric_arithmetic_intensity,
    memory_arithmetic_intensity, wse_fabric_roofline, wse_memory_roofline, Boundedness,
    RooflinePoint,
};
use wse_sim::{PerfEstimate, WseGeneration, A100};

use crate::compiler::{CompileError, Compiler};

/// Compiles and estimates one benchmark at one size on one target.
pub fn estimate_benchmark(
    benchmark: Benchmark,
    size: ProblemSize,
    target: WseTarget,
    num_chunks: i64,
) -> Result<PerfEstimate, CompileError> {
    let program = benchmark.program(size);
    let artifact = Compiler::new().target(target).num_chunks(num_chunks).compile(&program)?;
    Ok(artifact.estimate())
}

/// One row of Figure 4 (WSE2 vs WSE3, large problem size).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Benchmark name.
    pub benchmark: String,
    /// GPts/s on the WSE2.
    pub wse2_gpts: f64,
    /// GPts/s on the WSE3.
    pub wse3_gpts: f64,
}

/// Figure 4: performance of Jacobian, Diffusion, Seismic and UVKBE on the
/// WSE2 and WSE3 at the large problem size.
pub fn fig4_wse2_vs_wse3() -> Result<Vec<Fig4Row>, CompileError> {
    let benchmarks =
        [Benchmark::Jacobian, Benchmark::Diffusion, Benchmark::Seismic25, Benchmark::Uvkbe];
    let mut rows = Vec::new();
    for benchmark in benchmarks {
        let wse2 = estimate_benchmark(benchmark, ProblemSize::Large, WseTarget::Wse2, 2)?;
        let wse3 = estimate_benchmark(benchmark, ProblemSize::Large, WseTarget::Wse3, 2)?;
        rows.push(Fig4Row {
            benchmark: benchmark.name().to_string(),
            wse2_gpts: wse2.gpts_per_sec,
            wse3_gpts: wse3.gpts_per_sec,
        });
    }
    Ok(rows)
}

/// One row of Figure 5 (seismic speedup over the hand-written kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Problem size label.
    pub size: String,
    /// Hand-written kernel on the WSE2 in GPts/s (the baseline, speedup 1).
    pub handwritten_wse2_gpts: f64,
    /// Our generated code on the WSE2 in GPts/s.
    pub ours_wse2_gpts: f64,
    /// Our generated code on the WSE3 in GPts/s.
    pub ours_wse3_gpts: f64,
    /// Speedup of our WSE2 code over the hand-written kernel.
    pub speedup_wse2: f64,
    /// Speedup of our WSE3 code over the hand-written kernel.
    pub speedup_wse3: f64,
}

/// Figure 5: the 25-point seismic benchmark against the hand-written
/// Cerebras kernel across the three problem sizes.
pub fn fig5_handwritten_comparison() -> Result<Vec<Fig5Row>, CompileError> {
    let sizes = [ProblemSize::Small, ProblemSize::Medium, ProblemSize::Large];
    let mut rows = Vec::new();
    for size in sizes {
        let program = Benchmark::Seismic25.program(size);
        let flops = program.flops_per_point();
        let handwritten = handwritten_seismic_estimate(
            &WseGeneration::Wse2.machine(),
            (program.grid.x, program.grid.y, program.grid.z),
            program.timesteps,
            flops,
        );
        let ours_wse2 = estimate_benchmark(Benchmark::Seismic25, size, WseTarget::Wse2, 1)?;
        let ours_wse3 = estimate_benchmark(Benchmark::Seismic25, size, WseTarget::Wse3, 1)?;
        rows.push(Fig5Row {
            size: size.label(),
            handwritten_wse2_gpts: handwritten.gpts_per_sec,
            ours_wse2_gpts: ours_wse2.gpts_per_sec,
            ours_wse3_gpts: ours_wse3.gpts_per_sec,
            speedup_wse2: ours_wse2.gpts_per_sec / handwritten.gpts_per_sec,
            speedup_wse3: ours_wse3.gpts_per_sec / handwritten.gpts_per_sec,
        });
    }
    Ok(rows)
}

/// Figure 6: the acoustic benchmark on the WSE3 against 128 A100 GPUs and
/// 128 CPU nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// WSE3 throughput in GPts/s.
    pub wse3_gpts: f64,
    /// 128×A100 throughput in GPts/s.
    pub a100_cluster_gpts: f64,
    /// 128-node EPYC throughput in GPts/s.
    pub cpu_cluster_gpts: f64,
    /// WSE3 speedup over the GPU cluster.
    pub speedup_vs_a100: f64,
    /// WSE3 speedup over the CPU cluster.
    pub speedup_vs_cpu: f64,
}

/// Figure 6 data.
pub fn fig6_cluster_comparison() -> Result<Fig6Result, CompileError> {
    let wse3 = estimate_benchmark(Benchmark::Acoustic, ProblemSize::Large, WseTarget::Wse3, 2)?;
    let a100 = a100_cluster_acoustic_gpts();
    let cpu = cpu_cluster_acoustic_gpts();
    Ok(Fig6Result {
        wse3_gpts: wse3.gpts_per_sec,
        a100_cluster_gpts: a100,
        cpu_cluster_gpts: cpu,
        speedup_vs_a100: wse3.gpts_per_sec / a100,
        speedup_vs_cpu: wse3.gpts_per_sec / cpu,
    })
}

/// Figure 7: roofline points for the five benchmarks on the WSE3 (memory
/// and fabric bandwidths) plus the acoustic benchmark on a single A100.
pub fn fig7_roofline() -> Result<Vec<RooflinePoint>, CompileError> {
    let machine = WseGeneration::Wse3.machine();
    let memory = wse_memory_roofline(&machine);
    let fabric = wse_fabric_roofline(&machine);
    let mut points = Vec::new();
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(ProblemSize::Large);
        let estimate = estimate_benchmark(benchmark, ProblemSize::Large, WseTarget::Wse3, 2)?;
        let flops_per_point = program.flops_per_point();
        let achieved_flops = estimate.tflops * 1e12;
        let reads = program.max_points();
        let halo_values_per_point = (4 * program.xy_radius()) as f64
            * program.communicated_fields().len().max(1) as f64
            / program.grid.z as f64;
        points.push(memory.place(
            &format!("{} (memory)", benchmark.name()),
            memory_arithmetic_intensity(flops_per_point, reads),
            achieved_flops,
        ));
        points.push(fabric.place(
            &format!("{} (fabric)", benchmark.name()),
            fabric_arithmetic_intensity(flops_per_point, halo_values_per_point),
            achieved_flops,
        ));
    }
    // Acoustic on a single A100 (memory bound).
    let acoustic = Benchmark::Acoustic.program(ProblemSize::Large);
    let a100 = device_roofline(&A100);
    let ai = cache_arithmetic_intensity(acoustic.flops_per_point(), acoustic.fields.len());
    let achievable = a100.attainable(ai);
    points.push(a100.place("Acoustic (A100)", ai, achievable * 0.8));
    Ok(points)
}

/// One row of Table 1 (lines of code).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Generated CSL kernel lines.
    pub csl_kernel: usize,
    /// Entire generated CSL artifact lines.
    pub csl_entire: usize,
    /// DSL source lines written by the user.
    pub dsl: usize,
}

/// Table 1: lines-of-code comparison.
pub fn table1_loc() -> Result<Vec<Table1Row>, CompileError> {
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(ProblemSize::Large);
        let artifact = Compiler::new().num_chunks(2).compile(&program)?;
        let report = artifact.loc_report();
        rows.push(Table1Row {
            benchmark: benchmark.name().to_string(),
            csl_kernel: report.csl_kernel,
            csl_entire: report.csl_entire,
            dsl: report.dsl,
        });
    }
    Ok(rows)
}

/// TFLOP/s summary quoted in Section 7 (Jacobian and Seismic on CS-2/CS-3).
#[derive(Debug, Clone, PartialEq)]
pub struct TflopsRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Sustained TFLOP/s on the WSE2.
    pub wse2_tflops: f64,
    /// Sustained TFLOP/s on the WSE3.
    pub wse3_tflops: f64,
}

/// Sustained TFLOP/s of the Jacobian and Seismic kernels on both machines.
pub fn tflops_summary() -> Result<Vec<TflopsRow>, CompileError> {
    let mut rows = Vec::new();
    for benchmark in [Benchmark::Jacobian, Benchmark::Seismic25] {
        let wse2 = estimate_benchmark(benchmark, ProblemSize::Large, WseTarget::Wse2, 2)?;
        let wse3 = estimate_benchmark(benchmark, ProblemSize::Large, WseTarget::Wse3, 2)?;
        rows.push(TflopsRow {
            benchmark: benchmark.name().to_string(),
            wse2_tflops: wse2.tflops,
            wse3_tflops: wse3.tflops,
        });
    }
    Ok(rows)
}

/// One row of the chunk-count ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkAblationRow {
    /// Number of chunks per exchange.
    pub num_chunks: i64,
    /// Throughput in GPts/s.
    pub gpts: f64,
    /// Per-PE memory footprint in bytes.
    pub bytes_per_pe: u64,
}

/// Ablation: how the chunk count trades memory footprint for overhead
/// (design choice of Section 4.1).
pub fn ablation_chunks(benchmark: Benchmark) -> Result<Vec<ChunkAblationRow>, CompileError> {
    let program = benchmark.program(ProblemSize::Medium);
    let mut rows = Vec::new();
    for num_chunks in [1, 2, 3, 5, 9] {
        if program.grid.z % num_chunks != 0 {
            continue;
        }
        let artifact = Compiler::new().num_chunks(num_chunks).compile(&program)?;
        let estimate = artifact.estimate();
        rows.push(ChunkAblationRow {
            num_chunks,
            gpts: estimate.gpts_per_sec,
            bytes_per_pe: artifact.bytes_per_pe(),
        });
    }
    Ok(rows)
}

/// One row of the FMA-fusion ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionAblationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Throughput with `@fmacs` fusion enabled.
    pub fused_gpts: f64,
    /// Throughput with fusion disabled.
    pub unfused_gpts: f64,
    /// Number of `@fmacs` builtins in the fused program.
    pub fmacs: usize,
}

/// Ablation: the effect of `linalg-fuse-multiply-add` (Section 5.7).
pub fn ablation_fusion() -> Result<Vec<FusionAblationRow>, CompileError> {
    let mut rows = Vec::new();
    for benchmark in [Benchmark::Seismic25, Benchmark::Diffusion] {
        let program = benchmark.program(ProblemSize::Medium);
        let fused = Compiler::new().compile(&program)?;
        let unfused = Compiler::new().fmac_fusion(false).compile(&program)?;
        rows.push(FusionAblationRow {
            benchmark: benchmark.name().to_string(),
            fused_gpts: fused.estimate().gpts_per_sec,
            unfused_gpts: unfused.estimate().gpts_per_sec,
            fmacs: fused.fmac_count(),
        });
    }
    Ok(rows)
}

/// Renders rows of strings as a plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Convenience: is a roofline point compute bound?
pub fn is_compute_bound(point: &RooflinePoint) -> bool {
    point.boundedness == Boundedness::ComputeBound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_hold() {
        let rows = fig4_wse2_vs_wse3().unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.wse3_gpts > row.wse2_gpts, "{}: WSE3 must beat WSE2", row.benchmark);
            assert!(row.wse3_gpts / row.wse2_gpts < 2.5);
        }
    }

    #[test]
    fn fig5_shapes_hold() {
        let rows = fig5_handwritten_comparison().unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.speedup_wse2 > 0.9,
                "{}: generated code must be competitive with hand-written ({:.2})",
                row.size,
                row.speedup_wse2
            );
            assert!(row.speedup_wse2 < 1.3, "{}: {:.2}", row.size, row.speedup_wse2);
            assert!(row.speedup_wse3 > row.speedup_wse2, "WSE3 adds further speedup");
        }
    }

    #[test]
    fn fig6_shapes_hold() {
        let result = fig6_cluster_comparison().unwrap();
        assert!(result.speedup_vs_a100 > 3.0, "vs A100: {:.1}", result.speedup_vs_a100);
        assert!(result.speedup_vs_cpu > result.speedup_vs_a100);
        assert!(result.speedup_vs_cpu < 100.0);
    }

    #[test]
    fn table1_shapes_hold() {
        let rows = table1_loc().unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.dsl < row.csl_kernel, "{}: DSL must be far shorter", row.benchmark);
            assert!(row.csl_kernel < row.csl_entire);
            assert!(row.csl_entire > 200);
        }
    }

    #[test]
    fn render_table_aligns_columns() {
        let text = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "2".into()]],
        );
        assert!(text.contains("name"));
        assert!(text.lines().count() >= 4);
    }
}
