//! # wse-stencil — an MLIR-style lowering pipeline for stencils at wafer scale
//!
//! Public API of the reproduction of *"An MLIR Lowering Pipeline for
//! Stencils at Wafer-Scale"* (ASPLOS '26): compile stencil programs written
//! against three miniature front-ends (Flang-like Fortran, Devito-like
//! symbolic Python, PSyclone-like kernels) into CSL for the Cerebras WSE,
//! execute them on a functional simulator, and reproduce the paper's
//! evaluation figures.
//!
//! ```
//! use wse_stencil::{Compiler, benchmarks::Benchmark};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Benchmark::Jacobian.tiny_program();
//! let artifact = Compiler::new().num_chunks(2).compile(&program)?;
//! assert!(artifact.sources().file("pe_program.csl").is_some());
//! let deviation = artifact.validate_against_reference()?;
//! assert!(deviation < 1e-4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod compiler;
pub mod experiments;
pub mod service;

pub use artifact::{CslArtifact, LocReport};
pub use compiler::{CompileError, CompileErrorKind, Compiler};
pub use service::{CompileResult, CompileService, ServiceStats, INJECTED_COMPILE_PANIC};

// Re-export the crates a downstream user needs to drive the API.
pub use wse_frontends::{ast, benchmarks, devito, fortran, psyclone, StencilProgram};
pub use wse_lowering::{LowerError, PipelineOptions, WseTarget};
pub use wse_sim::{PerfEstimate, TargetMachine, WseGeneration, WseMachine};
