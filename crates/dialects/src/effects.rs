//! Per-operation memory-effect and access-range descriptions.
//!
//! MLIR models these as op interfaces (`MemoryEffectsOpInterface`,
//! `AccessRange`); here they are a static table keyed by the
//! dialect-qualified operation name, consumed by the static analyzer to
//! build def-use chains over stencil IR without hard-coding per-op
//! knowledge at the use site.  Three questions are answered per op:
//!
//! * does it *read* memory (a field/temp), beyond its SSA operands?
//! * does it *write* memory?
//! * what is the access *range* relative to the iteration point —
//!   [`AccessRange::Point`] for the current cell, [`AccessRange::Offset`]
//!   for a constant-offset neighborhood (the op's attributes carry the
//!   actual offsets), [`AccessRange::Region`] for a whole field/halo?
//!
//! Unlisted operations get [`OpEffects::UNKNOWN`], which claims every
//! effect — the conservative default an analysis must assume for ops it
//! has no model for.

use crate::{dmp, stencil};

/// How far from the current iteration point an op may touch data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRange {
    /// No memory access at all (pure SSA computation).
    None,
    /// Exactly the current cell.
    Point,
    /// A constant-offset neighborhood of the current cell (the op's
    /// offset attribute gives the concrete vector).
    Offset,
    /// A whole field, temp, or halo region.
    Region,
}

/// The memory behaviour of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEffects {
    /// The op reads field/temp memory.
    pub reads: bool,
    /// The op writes field/temp memory.
    pub writes: bool,
    /// The op moves data between PEs (halo exchange).
    pub communicates: bool,
    /// How far from the iteration point accesses may reach.
    pub range: AccessRange,
}

impl OpEffects {
    /// A pure op: no memory effects.
    pub const PURE: OpEffects =
        OpEffects { reads: false, writes: false, communicates: false, range: AccessRange::None };

    /// The conservative answer for unmodelled ops: assume everything.
    pub const UNKNOWN: OpEffects =
        OpEffects { reads: true, writes: true, communicates: true, range: AccessRange::Region };

    /// True when the op has no memory effects at all.
    pub fn is_pure(&self) -> bool {
        !self.reads && !self.writes && !self.communicates
    }
}

const fn read(range: AccessRange) -> OpEffects {
    OpEffects { reads: true, writes: false, communicates: false, range }
}

const fn write(range: AccessRange) -> OpEffects {
    OpEffects { reads: false, writes: true, communicates: false, range }
}

/// The effect table: `(op name, effects)`.
const TABLE: &[(&str, OpEffects)] = &[
    // Stencil dialect.
    (stencil::LOAD, read(AccessRange::Region)),
    (stencil::STORE, write(AccessRange::Region)),
    // The apply itself only orchestrates: reads happen through the
    // `stencil.access` ops of its body, the write through `stencil.store`
    // on its results.
    (stencil::APPLY, OpEffects::PURE),
    (stencil::ACCESS, read(AccessRange::Offset)),
    (stencil::RETURN, OpEffects::PURE),
    // Halo exchange: reads the local interior, writes the halo cells of
    // the same temp on the neighbor — both sides of a communication.
    (
        dmp::SWAP,
        OpEffects { reads: true, writes: true, communicates: true, range: AccessRange::Region },
    ),
    // Pure compute dialects.
    ("arith.constant", OpEffects::PURE),
    ("arith.addf", OpEffects::PURE),
    ("arith.subf", OpEffects::PURE),
    ("arith.mulf", OpEffects::PURE),
    ("varith.add", OpEffects::PURE),
    ("varith.mul", OpEffects::PURE),
];

/// Looks up the effects of an operation by its dialect-qualified name.
/// Returns [`OpEffects::UNKNOWN`] for ops outside the table.
pub fn op_effects(name: &str) -> OpEffects {
    TABLE.iter().find(|(n, _)| *n == name).map(|(_, e)| *e).unwrap_or(OpEffects::UNKNOWN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_dialect_semantics() {
        assert!(op_effects(stencil::ACCESS).reads);
        assert_eq!(op_effects(stencil::ACCESS).range, AccessRange::Offset);
        assert!(op_effects(stencil::STORE).writes);
        assert!(!op_effects(stencil::STORE).reads);
        assert!(op_effects(dmp::SWAP).communicates);
        assert!(op_effects("arith.addf").is_pure());
        // Conservative default for unknown ops.
        let unknown = op_effects("gpu.launch");
        assert!(unknown.reads && unknown.writes && unknown.communicates);
    }

    #[test]
    fn table_names_are_unique() {
        for (i, (a, _)) in TABLE.iter().enumerate() {
            for (b, _) in &TABLE[i + 1..] {
                assert_ne!(a, b, "duplicate effects entry {a:?}");
            }
        }
    }
}
