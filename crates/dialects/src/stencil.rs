//! The `stencil` dialect: the architecture-agnostic mathematical
//! description of stencil computations (Open Earth Compiler / xDSL).
//!
//! A stencil program is expressed over *fields* (grid storage held across
//! timesteps) and *temps* (value-semantics snapshots of a field).  The
//! `stencil.apply` operation runs its body for every grid cell; inside the
//! body, `stencil.access` reads neighboring cells at constant offsets
//! (Listing 2 of the paper).

use wse_ir::{
    Attribute, BlockId, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, Type, ValueId,
};

/// `stencil.load`: converts a field into a value-semantics temp.
pub const LOAD: &str = "stencil.load";
/// `stencil.store`: writes a temp back into a field over given bounds.
pub const STORE: &str = "stencil.store";
/// `stencil.apply`: applies the body to every cell of the iteration space.
pub const APPLY: &str = "stencil.apply";
/// `stencil.access`: reads a value at a constant offset from the current cell.
pub const ACCESS: &str = "stencil.access";
/// `stencil.return`: terminator of an apply body.
pub const RETURN: &str = "stencil.return";

/// Inclusive-exclusive bounds of a stencil iteration space or storage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bounds {
    /// Lower bound per dimension (inclusive).
    pub lb: Vec<i64>,
    /// Upper bound per dimension (exclusive).
    pub ub: Vec<i64>,
}

impl Bounds {
    /// Creates bounds from lower/upper vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different ranks.
    pub fn new(lb: Vec<i64>, ub: Vec<i64>) -> Self {
        assert_eq!(lb.len(), ub.len(), "bounds rank mismatch");
        Self { lb, ub }
    }

    /// Bounds `[0, size_i)` for every dimension.
    pub fn from_shape(shape: &[i64]) -> Self {
        Self { lb: vec![0; shape.len()], ub: shape.to_vec() }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.lb.len()
    }

    /// Extent (`ub - lb`) per dimension.
    pub fn shape(&self) -> Vec<i64> {
        self.lb.iter().zip(&self.ub).map(|(l, u)| u - l).collect()
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> i64 {
        self.shape().iter().product::<i64>().max(0)
    }

    /// Grows the bounds by `halo` cells on every side of every dimension.
    pub fn grown(&self, halo: i64) -> Bounds {
        Bounds {
            lb: self.lb.iter().map(|l| l - halo).collect(),
            ub: self.ub.iter().map(|u| u + halo).collect(),
        }
    }

    /// Keeps only the first `n` dimensions.
    pub fn take_dims(&self, n: usize) -> Bounds {
        Bounds { lb: self.lb[..n].to_vec(), ub: self.ub[..n].to_vec() }
    }

    /// True if `offset`-shifted accesses from every cell of `self` stay
    /// inside `storage`.
    pub fn access_within(&self, offset: &[i64], storage: &Bounds) -> bool {
        if offset.len() != self.rank() || storage.rank() != self.rank() {
            return false;
        }
        (0..self.rank()).all(|d| {
            self.lb[d] + offset[d] >= storage.lb[d] && self.ub[d] + offset[d] <= storage.ub[d]
        })
    }
}

/// Builds a `!stencil.temp<...>` type.
pub fn temp_type(bounds: &Bounds, elem: Type) -> Type {
    shaped_type("temp", bounds, elem)
}

/// Builds a `!stencil.field<...>` type.
pub fn field_type(bounds: &Bounds, elem: Type) -> Type {
    shaped_type("field", bounds, elem)
}

fn shaped_type(name: &str, bounds: &Bounds, elem: Type) -> Type {
    Type::dialect(
        "stencil",
        name,
        vec![
            Attribute::IndexArray(bounds.lb.clone()),
            Attribute::IndexArray(bounds.ub.clone()),
            Attribute::Type(elem),
        ],
    )
}

/// Extracts the bounds of a `!stencil.temp`/`!stencil.field` type.
pub fn type_bounds(ty: &Type) -> Option<Bounds> {
    let d = ty.as_dialect()?;
    if d.dialect != "stencil" || (d.name != "temp" && d.name != "field") {
        return None;
    }
    let lb = d.params.first()?.as_index_array()?.to_vec();
    let ub = d.params.get(1)?.as_index_array()?.to_vec();
    Some(Bounds::new(lb, ub))
}

/// Extracts the element type of a `!stencil.temp`/`!stencil.field` type.
pub fn type_element(ty: &Type) -> Option<Type> {
    let d = ty.as_dialect()?;
    if d.dialect != "stencil" {
        return None;
    }
    d.params.get(2)?.as_type().cloned()
}

/// Returns true for `!stencil.temp` types.
pub fn is_temp_type(ty: &Type) -> bool {
    ty.as_dialect_named("stencil", "temp").is_some()
}

/// Returns true for `!stencil.field` types.
pub fn is_field_type(ty: &Type) -> bool {
    ty.as_dialect_named("stencil", "field").is_some()
}

/// Builds a `stencil.load` converting a field value into a temp.
pub fn load(b: &mut OpBuilder<'_>, field: ValueId) -> ValueId {
    let field_ty = b.ctx_ref().value_type(field).clone();
    let bounds = type_bounds(&field_ty).expect("stencil.load operand must be a field");
    let elem = type_element(&field_ty).expect("field must carry an element type");
    b.insert_value(OpSpec::new(LOAD).operands([field]).results([temp_type(&bounds, elem)]))
}

/// Builds a `stencil.store` writing `temp` into `field` over `bounds`.
pub fn store(b: &mut OpBuilder<'_>, temp: ValueId, field: ValueId, bounds: &Bounds) -> OpId {
    b.insert(
        OpSpec::new(STORE)
            .operands([temp, field])
            .attr("lb", Attribute::IndexArray(bounds.lb.clone()))
            .attr("ub", Attribute::IndexArray(bounds.ub.clone())),
    )
}

/// Builds a `stencil.apply` over `operands` producing temps of
/// `result_types`; returns the op and its body block (whose arguments
/// mirror the operands).
pub fn build_apply(
    b: &mut OpBuilder<'_>,
    operands: Vec<ValueId>,
    result_types: Vec<Type>,
) -> (OpId, BlockId) {
    let arg_types: Vec<Type> =
        operands.iter().map(|&v| b.ctx_ref().value_type(v).clone()).collect();
    let op = b.insert(OpSpec::new(APPLY).operands(operands).results(result_types).regions(1));
    let region = b.ctx_ref().op_region(op, 0);
    let body = b.ctx().add_block(region, arg_types);
    (op, body)
}

/// Builds a `stencil.access` at `offset` from the current cell.
pub fn access(b: &mut OpBuilder<'_>, temp: ValueId, offset: &[i64], result: Type) -> ValueId {
    b.insert_value(
        OpSpec::new(ACCESS)
            .operands([temp])
            .results([result])
            .attr("offset", Attribute::IndexArray(offset.to_vec())),
    )
}

/// Appends a `stencil.return` to an apply body.
pub fn build_return(ctx: &mut IrContext, block: BlockId, values: Vec<ValueId>) -> OpId {
    let mut b = OpBuilder::at_end(ctx, block);
    b.insert(OpSpec::new(RETURN).operands(values))
}

/// The offset attribute of a `stencil.access`.
pub fn access_offset(ctx: &IrContext, op: OpId) -> Option<Vec<i64>> {
    ctx.attr(op, "offset")?.as_index_array().map(<[i64]>::to_vec)
}

/// The body block of a `stencil.apply` (or `csl_stencil.apply` region 0).
pub fn apply_body(ctx: &IrContext, op: OpId) -> Option<BlockId> {
    ctx.entry_block(ctx.op_region(op, 0))
}

/// Collects every `stencil.access` offset appearing in an apply body.
pub fn collect_access_offsets(ctx: &IrContext, apply: OpId) -> Vec<Vec<i64>> {
    ctx.walk_named(apply, ACCESS).into_iter().filter_map(|a| access_offset(ctx, a)).collect()
}

/// Bounds of the store op (`lb`/`ub` attributes).
pub fn store_bounds(ctx: &IrContext, op: OpId) -> Option<Bounds> {
    let lb = ctx.attr(op, "lb")?.as_index_array()?.to_vec();
    let ub = ctx.attr(op, "ub")?.as_index_array()?.to_vec();
    Some(Bounds::new(lb, ub))
}

fn verify_apply(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.op_regions(op).is_empty() {
        return Err("stencil.apply requires a body region".into());
    }
    let body = apply_body(ctx, op).ok_or("stencil.apply body region must have a block")?;
    if ctx.block_args(body).len() != ctx.operands(op).len() {
        return Err(format!(
            "stencil.apply has {} operands but its body has {} arguments",
            ctx.operands(op).len(),
            ctx.block_args(body).len()
        ));
    }
    match ctx.block_ops(body).last() {
        Some(&last) if ctx.op_name(last) == RETURN => {
            if ctx.operands(last).len() != ctx.results(op).len() {
                return Err(format!(
                    "stencil.return yields {} values but the apply has {} results",
                    ctx.operands(last).len(),
                    ctx.results(op).len()
                ));
            }
        }
        _ => return Err("stencil.apply body must end with stencil.return".into()),
    }
    for result in ctx.results(op) {
        if !is_temp_type(ctx.value_type(*result)) {
            return Err("stencil.apply results must be !stencil.temp values".into());
        }
    }
    Ok(())
}

fn verify_access(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 1 {
        return Err("stencil.access requires exactly one operand".into());
    }
    let offset = access_offset(ctx, op).ok_or("stencil.access requires an offset attribute")?;
    let operand_ty = ctx.value_type(ctx.operand(op, 0));
    if let Some(bounds) = type_bounds(operand_ty) {
        if offset.len() != bounds.rank() {
            return Err(format!(
                "access offset rank {} does not match temp rank {}",
                offset.len(),
                bounds.rank()
            ));
        }
    }
    Ok(())
}

fn verify_load(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 1 || ctx.results(op).len() != 1 {
        return Err("stencil.load requires one operand and one result".into());
    }
    if !is_field_type(ctx.value_type(ctx.operand(op, 0))) {
        return Err("stencil.load operand must be a !stencil.field".into());
    }
    if !is_temp_type(ctx.value_type(ctx.result(op, 0))) {
        return Err("stencil.load result must be a !stencil.temp".into());
    }
    Ok(())
}

fn verify_store(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 2 {
        return Err("stencil.store requires temp and field operands".into());
    }
    if store_bounds(ctx, op).is_none() {
        return Err("stencil.store requires lb/ub bound attributes".into());
    }
    if !is_field_type(ctx.value_type(ctx.operand(op, 1))) {
        return Err("stencil.store destination must be a !stencil.field".into());
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("stencil");
    registry.register_op_verifier(APPLY, verify_apply);
    registry.register_op_verifier(ACCESS, verify_access);
    registry.register_op_verifier(LOAD, verify_load);
    registry.register_op_verifier(STORE, verify_store);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin, func};
    use wse_ir::verify;

    fn registry() -> DialectRegistry {
        let mut r = DialectRegistry::new();
        register(&mut r);
        arith::register(&mut r);
        builtin::register(&mut r);
        func::register(&mut r);
        r
    }

    #[test]
    fn bounds_algebra() {
        let b = Bounds::new(vec![-1, -1, -1], vec![255, 255, 511]);
        assert_eq!(b.rank(), 3);
        assert_eq!(b.shape(), vec![256, 256, 512]);
        assert_eq!(b.num_cells(), 256 * 256 * 512);
        let inner = Bounds::new(vec![0, 0, 0], vec![254, 254, 510]);
        assert!(inner.access_within(&[1, 0, 0], &b));
        assert!(inner.access_within(&[-1, -1, -1], &b));
        assert!(!inner.access_within(&[2, 0, 0], &b));
        assert_eq!(inner.grown(1), Bounds::new(vec![-1, -1, -1], vec![255, 255, 511]));
        assert_eq!(b.take_dims(2).rank(), 2);
        assert_eq!(Bounds::from_shape(&[4, 4]), Bounds::new(vec![0, 0], vec![4, 4]));
    }

    #[test]
    fn type_construction_and_inspection() {
        let bounds = Bounds::new(vec![-1, -1], vec![255, 255]);
        let elem = Type::tensor(vec![512], Type::f32());
        let ty = temp_type(&bounds, elem.clone());
        assert!(is_temp_type(&ty));
        assert!(!is_field_type(&ty));
        assert_eq!(type_bounds(&ty), Some(bounds.clone()));
        assert_eq!(type_element(&ty), Some(elem));
        let fty = field_type(&bounds, Type::f32());
        assert!(is_field_type(&fty));
        assert_eq!(type_bounds(&Type::f32()), None);
    }

    /// Builds the running example of the paper (Listing 2): a 3D stencil
    /// adding the value one cell over in x and scaling by a constant.
    fn build_listing2(ctx: &mut IrContext) -> (OpId, OpId) {
        let (module, body) = builtin::module(ctx);
        let storage = Bounds::new(vec![-1, -1, -1], vec![255, 255, 511]);
        let out_bounds = Bounds::new(vec![0, 0, 0], vec![254, 254, 510]);
        let field = field_type(&storage, Type::f32());
        let (_f, entry) = func::build_func(ctx, body, "kernel", vec![field.clone(), field], vec![]);
        let args = ctx.block_args(entry).to_vec();
        let mut b = OpBuilder::at_end(ctx, entry);
        let input = load(&mut b, args[0]);
        let (apply, apply_body_block) =
            build_apply(&mut b, vec![input], vec![temp_type(&out_bounds, Type::f32())]);
        let data = ctx.block_args(apply_body_block)[0];
        let mut ab = OpBuilder::at_end(ctx, apply_body_block);
        let c0 = arith::constant_f32(&mut ab, 0.12345, Type::f32());
        let d0 = access(&mut ab, data, &[1, 0, 0], Type::f32());
        let d1 = access(&mut ab, data, &[0, 0, 0], Type::f32());
        let t0 = arith::addf(&mut ab, d0, d1);
        let r0 = arith::mulf(&mut ab, c0, t0);
        build_return(ctx, apply_body_block, vec![r0]);
        let result = ctx.result(apply, 0);
        let mut b = OpBuilder::after(ctx, apply);
        store(&mut b, result, args[1], &out_bounds);
        func::build_return(ctx, entry, vec![]);
        (module, apply)
    }

    #[test]
    fn listing2_builds_and_verifies() {
        let mut ctx = IrContext::new();
        let (module, apply) = build_listing2(&mut ctx);
        assert!(verify(&ctx, module, &registry()).is_empty());
        let offsets = collect_access_offsets(&ctx, apply);
        assert_eq!(offsets, vec![vec![1, 0, 0], vec![0, 0, 0]]);
    }

    #[test]
    fn apply_without_return_is_invalid() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let bounds = Bounds::new(vec![0], vec![4]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let (_apply, _block) = build_apply(&mut b, vec![], vec![temp_type(&bounds, Type::f32())]);
        let errors = verify(&ctx, module, &registry());
        assert!(errors.iter().any(|e| e.message.contains("must end with stencil.return")));
    }

    #[test]
    fn access_rank_mismatch_is_invalid() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let bounds = Bounds::new(vec![0, 0], vec![4, 4]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let (apply, blk) = build_apply(&mut b, vec![], vec![temp_type(&bounds, Type::f32())]);
        // Add a temp-typed block argument to access.
        let temp = ctx.add_block_arg(blk, temp_type(&bounds, Type::f32()));
        let mut ab = OpBuilder::at_end(&mut ctx, blk);
        let v = access(&mut ab, temp, &[1, 0, 0], Type::f32());
        build_return(&mut ctx, blk, vec![v]);
        let _ = apply;
        let errors = verify(&ctx, module, &registry());
        assert!(errors.iter().any(|e| e.message.contains("offset rank")));
    }

    #[test]
    fn store_requires_bounds() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let bounds = Bounds::new(vec![0], vec![4]);
        let fty = field_type(&bounds, Type::f32());
        let (_f, entry) = func::build_func(&mut ctx, body, "k", vec![fty.clone()], vec![]);
        let arg = ctx.block_args(entry)[0];
        let mut b = OpBuilder::at_end(&mut ctx, entry);
        let t = load(&mut b, arg);
        b.insert(OpSpec::new(STORE).operands([t, arg]));
        let errors = verify(&ctx, module, &registry());
        assert!(errors.iter().any(|e| e.message.contains("lb/ub")));
    }
}
