//! The `tensor` dialect: value-semantics collections used after the
//! tensorize-z transformation (Group 1 of the paper).

use wse_ir::{Attribute, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, Type, ValueId};

/// `tensor.empty`: materializes an uninitialized tensor.
pub const EMPTY: &str = "tensor.empty";
/// `tensor.insert_slice`: inserts a tensor into a slice of a larger tensor.
pub const INSERT_SLICE: &str = "tensor.insert_slice";
/// `tensor.extract_slice`: extracts a slice of a tensor.
pub const EXTRACT_SLICE: &str = "tensor.extract_slice";

/// Builds a `tensor.empty` of the given type.
pub fn empty(b: &mut OpBuilder<'_>, ty: Type) -> ValueId {
    b.insert_value(OpSpec::new(EMPTY).results([ty]))
}

/// Builds a `tensor.insert_slice` of `source` into `dest` at `offset`
/// (1-D, static offset/size).  `size` is the extent of `source`.
pub fn insert_slice(
    b: &mut OpBuilder<'_>,
    source: ValueId,
    dest: ValueId,
    offset: ValueId,
    size: i64,
) -> ValueId {
    let ty = b.ctx_ref().value_type(dest).clone();
    b.insert_value(
        OpSpec::new(INSERT_SLICE)
            .operands([source, dest, offset])
            .results([ty])
            .attr("static_sizes", Attribute::IndexArray(vec![size])),
    )
}

/// Builds a `tensor.extract_slice` of `source` at static `offset` with
/// static `size` (1-D).
pub fn extract_slice(b: &mut OpBuilder<'_>, source: ValueId, offset: i64, size: i64) -> ValueId {
    let elem = b.ctx_ref().value_type(source).element_type().cloned().unwrap_or(Type::f32());
    b.insert_value(
        OpSpec::new(EXTRACT_SLICE)
            .operands([source])
            .results([Type::tensor(vec![size], elem)])
            .attr("static_offsets", Attribute::IndexArray(vec![offset]))
            .attr("static_sizes", Attribute::IndexArray(vec![size])),
    )
}

/// Static offset of an extract_slice.
pub fn extract_slice_offset(ctx: &IrContext, op: OpId) -> Option<i64> {
    ctx.attr(op, "static_offsets")?.as_index_array()?.first().copied()
}

/// Static size of an extract/insert slice.
pub fn slice_size(ctx: &IrContext, op: OpId) -> Option<i64> {
    ctx.attr(op, "static_sizes")?.as_index_array()?.first().copied()
}

fn verify_insert_slice(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 3 {
        return Err("tensor.insert_slice requires source, dest and offset operands".into());
    }
    if ctx.attr(op, "static_sizes").is_none() {
        return Err("tensor.insert_slice requires a static_sizes attribute".into());
    }
    Ok(())
}

fn verify_extract_slice(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 1 {
        return Err("tensor.extract_slice requires exactly one operand".into());
    }
    let src_ty = ctx.value_type(ctx.operand(op, 0));
    if !src_ty.is_tensor() && !src_ty.is_memref() {
        return Err(format!("tensor.extract_slice source must be shaped, got {src_ty}"));
    }
    let (Some(offset), Some(size)) = (extract_slice_offset(ctx, op), slice_size(ctx, op)) else {
        return Err("tensor.extract_slice requires static_offsets and static_sizes".into());
    };
    if let Some(shape) = src_ty.shape() {
        if let Some(&dim) = shape.last() {
            if dim >= 0 && offset + size > dim {
                return Err(format!(
                    "slice [{offset}, {}) is out of bounds for dimension {dim}",
                    offset + size
                ));
            }
        }
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("tensor");
    registry.register_op_verifier(INSERT_SLICE, verify_insert_slice);
    registry.register_op_verifier(EXTRACT_SLICE, verify_extract_slice);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin};
    use wse_ir::verify;

    #[test]
    fn build_slices() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let ty = Type::tensor(vec![512], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let t = empty(&mut b, ty.clone());
        let slice = extract_slice(&mut b, t, 1, 510);
        assert_eq!(b.ctx_ref().value_type(slice), &Type::tensor(vec![510], Type::f32()));
        let off = arith::constant_index(&mut b, 0);
        let inserted = insert_slice(&mut b, slice, t, off, 510);
        assert_eq!(b.ctx_ref().value_type(inserted), &ty);
        let slice_op = ctx.defining_op(slice).unwrap();
        assert_eq!(extract_slice_offset(&ctx, slice_op), Some(1));
        assert_eq!(slice_size(&ctx, slice_op), Some(510));

        let mut registry = DialectRegistry::new();
        register(&mut registry);
        arith::register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn out_of_bounds_slice_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let ty = Type::tensor(vec![100], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let t = empty(&mut b, ty);
        extract_slice(&mut b, t, 50, 60);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("out of bounds")));
    }
}
