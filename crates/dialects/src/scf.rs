//! The `scf` dialect: structured control flow (`scf.for`, `scf.yield`).
//!
//! The time-step loop surrounding stencil applies (Figure 1 of the paper)
//! is represented as an `scf.for` until the continuation-lowering pass
//! converts it into a task graph of CSL functions.

use wse_ir::{BlockId, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, Type, ValueId};

/// `scf.for`: a counted loop with optional iteration arguments.
pub const FOR: &str = "scf.for";
/// `scf.yield`: terminator yielding iteration arguments to the next trip.
pub const YIELD: &str = "scf.yield";
/// `scf.execute_region`: a wrapper region used as a structural helper.
pub const EXECUTE_REGION: &str = "scf.execute_region";

/// Builds an `scf.for` loop.
///
/// Operands are `[lower_bound, upper_bound, step, iter_args...]`.  The body
/// block receives the induction variable (of `index` type) followed by one
/// argument per iteration argument.  Results mirror the iteration
/// arguments.
pub fn build_for(
    b: &mut OpBuilder<'_>,
    lower: ValueId,
    upper: ValueId,
    step: ValueId,
    iter_args: Vec<ValueId>,
) -> (OpId, BlockId) {
    let result_types: Vec<Type> =
        iter_args.iter().map(|&v| b.ctx_ref().value_type(v).clone()).collect();
    let mut operands = vec![lower, upper, step];
    operands.extend(iter_args.iter().copied());
    let op = b.insert(OpSpec::new(FOR).operands(operands).results(result_types.clone()).regions(1));
    let mut block_arg_types = vec![Type::index()];
    block_arg_types.extend(result_types);
    let region = b.ctx_ref().op_region(op, 0);
    let body = b.ctx().add_block(region, block_arg_types);
    (op, body)
}

/// Appends an `scf.yield` to `block`.
pub fn build_yield(ctx: &mut IrContext, block: BlockId, values: Vec<ValueId>) -> OpId {
    let mut b = OpBuilder::at_end(ctx, block);
    b.insert(OpSpec::new(YIELD).operands(values))
}

/// The body block of an `scf.for`.
pub fn for_body(ctx: &IrContext, op: OpId) -> Option<BlockId> {
    ctx.entry_block(ctx.op_region(op, 0))
}

/// The induction variable of an `scf.for`.
pub fn for_induction_var(ctx: &IrContext, op: OpId) -> Option<ValueId> {
    for_body(ctx, op).and_then(|b| ctx.block_args(b).first().copied())
}

/// The `[lower, upper, step]` operands of an `scf.for`.
pub fn for_bounds(ctx: &IrContext, op: OpId) -> (ValueId, ValueId, ValueId) {
    (ctx.operand(op, 0), ctx.operand(op, 1), ctx.operand(op, 2))
}

/// The iteration-argument operands of an `scf.for`.
pub fn for_iter_args(ctx: &IrContext, op: OpId) -> &[ValueId] {
    &ctx.operands(op)[3..]
}

/// Extracts constant trip bounds `(lower, upper, step)` if all three are
/// `arith.constant` ops, returning the trip count.
pub fn constant_trip_count(ctx: &IrContext, op: OpId) -> Option<i64> {
    let (lb, ub, step) = for_bounds(ctx, op);
    let lb = crate::arith::constant_int_value(ctx, ctx.defining_op(lb)?)?;
    let ub = crate::arith::constant_int_value(ctx, ctx.defining_op(ub)?)?;
    let step = crate::arith::constant_int_value(ctx, ctx.defining_op(step)?)?;
    if step <= 0 {
        return None;
    }
    Some(((ub - lb) + step - 1) / step)
}

fn verify_for(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() < 3 {
        return Err("scf.for requires at least lower, upper and step operands".into());
    }
    let num_iter_args = ctx.operands(op).len() - 3;
    if ctx.results(op).len() != num_iter_args {
        return Err(format!(
            "scf.for has {num_iter_args} iter args but {} results",
            ctx.results(op).len()
        ));
    }
    let body = for_body(ctx, op).ok_or("scf.for requires a body block")?;
    if ctx.block_args(body).len() != num_iter_args + 1 {
        return Err(format!(
            "scf.for body must have {} arguments (induction variable + iter args), found {}",
            num_iter_args + 1,
            ctx.block_args(body).len()
        ));
    }
    match ctx.block_ops(body).last() {
        Some(&last) if ctx.op_name(last) == YIELD => {
            if ctx.operands(last).len() != num_iter_args {
                return Err("scf.yield operand count must match the loop's iter args".into());
            }
        }
        _ => return Err("scf.for body must be terminated by scf.yield".into()),
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("scf");
    registry.register_op_verifier(FOR, verify_for);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin};
    use wse_ir::verify;

    fn build_loop(ctx: &mut IrContext, timesteps: i64) -> (OpId, OpId) {
        let (module, body) = builtin::module(ctx);
        let mut b = OpBuilder::at_end(ctx, body);
        let lb = arith::constant_index(&mut b, 0);
        let ub = arith::constant_index(&mut b, timesteps);
        let step = arith::constant_index(&mut b, 1);
        let (for_op, loop_body) = build_for(&mut b, lb, ub, step, vec![]);
        build_yield(ctx, loop_body, vec![]);
        (module, for_op)
    }

    #[test]
    fn loop_construction_and_accessors() {
        let mut ctx = IrContext::new();
        let (module, for_op) = build_loop(&mut ctx, 100);
        assert_eq!(constant_trip_count(&ctx, for_op), Some(100));
        assert!(for_induction_var(&ctx, for_op).is_some());
        assert!(for_iter_args(&ctx, for_op).is_empty());
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        arith::register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn loop_with_iter_args() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let lb = arith::constant_index(&mut b, 0);
        let ub = arith::constant_index(&mut b, 10);
        let step = arith::constant_index(&mut b, 1);
        let init = arith::constant_f32(&mut b, 0.0, Type::f32());
        let (for_op, loop_body) = build_for(&mut b, lb, ub, step, vec![init]);
        let carried = ctx.block_args(loop_body)[1];
        build_yield(&mut ctx, loop_body, vec![carried]);
        assert_eq!(ctx.results(for_op).len(), 1);
        assert_eq!(for_iter_args(&ctx, for_op), &[init]);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn missing_yield_is_invalid() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let lb = arith::constant_index(&mut b, 0);
        let ub = arith::constant_index(&mut b, 10);
        let step = arith::constant_index(&mut b, 1);
        let (_for_op, _loop_body) = build_for(&mut b, lb, ub, step, vec![]);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("terminated by scf.yield")));
    }

    #[test]
    fn trip_count_requires_positive_step() {
        let mut ctx = IrContext::new();
        let (_module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let lb = arith::constant_index(&mut b, 0);
        let ub = arith::constant_index(&mut b, 10);
        let step = arith::constant_index(&mut b, 0);
        let (for_op, loop_body) = build_for(&mut b, lb, ub, step, vec![]);
        build_yield(&mut ctx, loop_body, vec![]);
        assert_eq!(constant_trip_count(&ctx, for_op), None);
    }
}
