//! The `varith` dialect: variadic arithmetic.
//!
//! `varith.add`/`varith.mul` collapse chains of binary `arith` operations
//! into one variadic operation.  The paper uses this representation early
//! in the pipeline because it greatly simplifies splitting a stencil
//! reduction into its remotely- and locally-computed parts, and it enables
//! the `varith-fuse-repeated-operands` optimization (replacing `x + x + x`
//! by `3 * x`, important for the Acoustic kernel).

use wse_ir::{DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, ValueId};

/// `varith.add`: variadic floating point addition.
pub const ADD: &str = "varith.add";
/// `varith.mul`: variadic floating point multiplication.
pub const MUL: &str = "varith.mul";

/// Builds a `varith.add` over `operands` (at least one).
pub fn add(b: &mut OpBuilder<'_>, operands: Vec<ValueId>) -> ValueId {
    variadic(b, ADD, operands)
}

/// Builds a `varith.mul` over `operands` (at least one).
pub fn mul(b: &mut OpBuilder<'_>, operands: Vec<ValueId>) -> ValueId {
    variadic(b, MUL, operands)
}

/// Builds a variadic op of the given name.
pub fn variadic(b: &mut OpBuilder<'_>, name: &str, operands: Vec<ValueId>) -> ValueId {
    assert!(!operands.is_empty(), "variadic arithmetic requires at least one operand");
    let ty = b.ctx_ref().value_type(operands[0]).clone();
    b.insert_value(OpSpec::new(name).operands(operands).results([ty]))
}

/// Returns true for `varith` op names.
pub fn is_varith(name: &str) -> bool {
    name == ADD || name == MUL
}

/// Maps a `varith` op to the corresponding binary `arith` op name.
pub fn to_arith_binary(name: &str) -> Option<&'static str> {
    match name {
        ADD => Some(crate::arith::ADDF),
        MUL => Some(crate::arith::MULF),
        _ => None,
    }
}

/// Maps a binary `arith` op to the corresponding `varith` op name.
pub fn from_arith_binary(name: &str) -> Option<&'static str> {
    match name {
        crate::arith::ADDF => Some(ADD),
        crate::arith::MULF => Some(MUL),
        _ => None,
    }
}

fn verify_varith(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).is_empty() {
        return Err(format!("{} requires at least one operand", ctx.op_name(op)));
    }
    if ctx.results(op).len() != 1 {
        return Err(format!("{} must produce exactly one result", ctx.op_name(op)));
    }
    let first = ctx.value_type(ctx.operand(op, 0));
    for (i, &operand) in ctx.operands(op).iter().enumerate() {
        let ty = ctx.value_type(operand);
        if ty != first {
            return Err(format!("operand #{i} type {ty} differs from operand #0 type {first}"));
        }
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("varith");
    registry.register_op_verifier(ADD, verify_varith);
    registry.register_op_verifier(MUL, verify_varith);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin};
    use wse_ir::{verify, Type};

    #[test]
    fn variadic_ops_build() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let x = arith::constant_f32(&mut b, 1.0, Type::f32());
        let y = arith::constant_f32(&mut b, 2.0, Type::f32());
        let z = arith::constant_f32(&mut b, 3.0, Type::f32());
        let sum = add(&mut b, vec![x, y, z, x]);
        let prod = mul(&mut b, vec![sum, y]);
        assert_eq!(ctx.operands(ctx.defining_op(sum).unwrap()).len(), 4);
        assert_eq!(ctx.value_type(prod), &Type::f32());

        let mut registry = DialectRegistry::new();
        register(&mut registry);
        arith::register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn name_mappings() {
        assert!(is_varith(ADD));
        assert!(!is_varith(arith::ADDF));
        assert_eq!(to_arith_binary(ADD), Some(arith::ADDF));
        assert_eq!(to_arith_binary(MUL), Some(arith::MULF));
        assert_eq!(from_arith_binary(arith::ADDF), Some(ADD));
        assert_eq!(from_arith_binary(arith::SUBF), None);
    }

    #[test]
    fn mixed_operand_types_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let x = arith::constant_f32(&mut b, 1.0, Type::f32());
        let i = arith::constant_index(&mut b, 1);
        b.insert(OpSpec::new(ADD).operands([x, i]).results([Type::f32()]));
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("differs from operand #0")));
    }
}
