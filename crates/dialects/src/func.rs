//! The `func` dialect: functions, returns and calls.

use wse_ir::{
    Attribute, BlockId, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, Type, ValueId,
};

/// `func.func`: a named function with a single-region body.
pub const FUNC: &str = "func.func";
/// `func.return`: terminator returning values from a function.
pub const RETURN: &str = "func.return";
/// `func.call`: direct call to a named function.
pub const CALL: &str = "func.call";

/// Creates a `func.func` named `name` with the given signature inside
/// `block` (usually a module body) and returns the function op and its
/// entry block (whose arguments match `inputs`).
pub fn build_func(
    ctx: &mut IrContext,
    block: BlockId,
    name: &str,
    inputs: Vec<Type>,
    results: Vec<Type>,
) -> (OpId, BlockId) {
    let mut b = OpBuilder::at_end(ctx, block);
    let func = b.insert(
        OpSpec::new(FUNC)
            .attr("sym_name", Attribute::str(name))
            .attr("function_type", Attribute::Type(Type::function(inputs.clone(), results)))
            .regions(1),
    );
    let entry = ctx.add_block(ctx.op_region(func, 0), inputs);
    (func, entry)
}

/// Appends a `func.return` to `block`.
pub fn build_return(ctx: &mut IrContext, block: BlockId, values: Vec<ValueId>) -> OpId {
    let mut b = OpBuilder::at_end(ctx, block);
    b.insert(OpSpec::new(RETURN).operands(values))
}

/// Builds a `func.call` to `callee`.
pub fn build_call(
    b: &mut OpBuilder<'_>,
    callee: &str,
    operands: Vec<ValueId>,
    results: Vec<Type>,
) -> OpId {
    b.insert(
        OpSpec::new(CALL)
            .attr("callee", Attribute::SymbolRef(callee.to_string()))
            .operands(operands)
            .results(results),
    )
}

/// The symbol name of a function.
pub fn func_name(ctx: &IrContext, func: OpId) -> Option<&str> {
    ctx.attr_str(func, "sym_name")
}

/// The function type of a function op.
pub fn func_type(ctx: &IrContext, func: OpId) -> Option<&Type> {
    ctx.attr(func, "function_type").and_then(Attribute::as_type)
}

/// The entry block of a function.
pub fn func_body(ctx: &IrContext, func: OpId) -> Option<BlockId> {
    ctx.entry_block(ctx.op_region(func, 0))
}

/// Finds a function with the given symbol name nested under `root`.
pub fn find_func(ctx: &IrContext, root: OpId, name: &str) -> Option<OpId> {
    ctx.walk_named(root, FUNC).into_iter().find(|&f| func_name(ctx, f) == Some(name))
}

/// The callee symbol of a `func.call`.
pub fn call_callee(ctx: &IrContext, call: OpId) -> Option<&str> {
    ctx.attr_str(call, "callee")
}

fn verify_func(ctx: &IrContext, op: OpId) -> Result<(), String> {
    let name = func_name(ctx, op).ok_or("func.func requires a sym_name attribute")?;
    if name.is_empty() {
        return Err("func.func sym_name must not be empty".into());
    }
    let ty = func_type(ctx, op).ok_or("func.func requires a function_type attribute")?;
    let Type::Function { inputs, .. } = ty else {
        return Err("function_type must be a function type".into());
    };
    if let Some(entry) = func_body(ctx, op) {
        if ctx.block_args(entry).len() != inputs.len() {
            return Err(format!(
                "entry block has {} arguments but the function type has {} inputs",
                ctx.block_args(entry).len(),
                inputs.len()
            ));
        }
    }
    Ok(())
}

fn verify_call(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if call_callee(ctx, op).is_none() {
        return Err("func.call requires a callee symbol".into());
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("func");
    registry.register_op_verifier(FUNC, verify_func);
    registry.register_op_verifier(CALL, verify_call);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use wse_ir::verify;

    #[test]
    fn build_and_find_function() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let (func, entry) =
            build_func(&mut ctx, body, "kernel", vec![Type::f32(), Type::f32()], vec![Type::f32()]);
        assert_eq!(func_name(&ctx, func), Some("kernel"));
        assert_eq!(ctx.block_args(entry).len(), 2);
        assert_eq!(find_func(&ctx, module, "kernel"), Some(func));
        assert_eq!(find_func(&ctx, module, "missing"), None);
        let args = ctx.block_args(entry).to_vec();
        build_return(&mut ctx, entry, vec![args[0]]);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn func_without_name_is_invalid() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        b.insert(OpSpec::new(FUNC).regions(1));
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("sym_name")));
    }

    #[test]
    fn entry_block_arity_mismatch_is_invalid() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let (func, _entry) = build_func(&mut ctx, body, "k", vec![Type::f32()], vec![]);
        // Corrupt the signature: claims two inputs.
        ctx.set_attr(
            func,
            "function_type",
            Attribute::Type(Type::function(vec![Type::f32(), Type::f32()], vec![])),
        );
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("entry block has")));
    }

    #[test]
    fn call_helpers() {
        let mut ctx = IrContext::new();
        let (_module, body) = builtin::module(&mut ctx);
        let (_func, entry) = build_func(&mut ctx, body, "main", vec![], vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, entry);
        let call = build_call(&mut b, "helper", vec![], vec![Type::f32()]);
        assert_eq!(call_callee(&ctx, call), Some("helper"));
        assert_eq!(ctx.results(call).len(), 1);
    }
}
