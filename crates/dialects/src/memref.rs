//! The `memref` dialect: reference-semantics buffers produced by
//! bufferization (Group 3 of the paper).

use wse_ir::{Attribute, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, Type, ValueId};

/// `memref.alloc`: allocates a buffer in PE-local memory.
pub const ALLOC: &str = "memref.alloc";
/// `memref.dealloc`: releases a buffer.
pub const DEALLOC: &str = "memref.dealloc";
/// `memref.global`: a module-level buffer definition.
pub const GLOBAL: &str = "memref.global";
/// `memref.get_global`: obtains a reference to a `memref.global`.
pub const GET_GLOBAL: &str = "memref.get_global";
/// `memref.subview`: a view into a region of a buffer.
pub const SUBVIEW: &str = "memref.subview";
/// `memref.copy`: copies one buffer into another.
pub const COPY: &str = "memref.copy";

/// Builds a `memref.alloc` of the given memref type.
pub fn alloc(b: &mut OpBuilder<'_>, ty: Type) -> ValueId {
    debug_assert!(ty.is_memref(), "memref.alloc requires a memref type");
    b.insert_value(OpSpec::new(ALLOC).results([ty]))
}

/// Builds a module-level `memref.global` named `name`.
pub fn global(b: &mut OpBuilder<'_>, name: &str, ty: Type, init: Option<f32>) -> OpId {
    let mut spec = OpSpec::new(GLOBAL)
        .attr("sym_name", Attribute::str(name))
        .attr("type", Attribute::Type(ty.clone()));
    if let Some(v) = init {
        spec = spec.attr("initial_value", Attribute::dense_splat_f32(v, ty));
    }
    b.insert(spec)
}

/// Builds a `memref.get_global` referencing `name`.
pub fn get_global(b: &mut OpBuilder<'_>, name: &str, ty: Type) -> ValueId {
    b.insert_value(
        OpSpec::new(GET_GLOBAL).results([ty]).attr("name", Attribute::SymbolRef(name.to_string())),
    )
}

/// Builds a 1-D static `memref.subview` of `source`.
pub fn subview(b: &mut OpBuilder<'_>, source: ValueId, offset: i64, size: i64) -> ValueId {
    let elem = b.ctx_ref().value_type(source).element_type().cloned().unwrap_or(Type::f32());
    b.insert_value(
        OpSpec::new(SUBVIEW)
            .operands([source])
            .results([Type::memref(vec![size], elem)])
            .attr("static_offsets", Attribute::IndexArray(vec![offset]))
            .attr("static_sizes", Attribute::IndexArray(vec![size])),
    )
}

/// Builds a 1-D `memref.subview` of `source` at a dynamic `offset` value.
pub fn subview_dynamic(
    b: &mut OpBuilder<'_>,
    source: ValueId,
    offset: ValueId,
    size: i64,
) -> ValueId {
    let elem = b.ctx_ref().value_type(source).element_type().cloned().unwrap_or(Type::f32());
    b.insert_value(
        OpSpec::new(SUBVIEW)
            .operands([source, offset])
            .results([Type::memref(vec![size], elem)])
            .attr("static_sizes", Attribute::IndexArray(vec![size])),
    )
}

/// Builds a `memref.copy` from `source` to `dest`.
pub fn copy(b: &mut OpBuilder<'_>, source: ValueId, dest: ValueId) -> OpId {
    b.insert(OpSpec::new(COPY).operands([source, dest]))
}

/// Static offset of a subview.
pub fn subview_offset(ctx: &IrContext, op: OpId) -> Option<i64> {
    ctx.attr(op, "static_offsets")?.as_index_array()?.first().copied()
}

/// Static size of a subview.
pub fn subview_size(ctx: &IrContext, op: OpId) -> Option<i64> {
    ctx.attr(op, "static_sizes")?.as_index_array()?.first().copied()
}

fn verify_alloc(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.results(op).len() != 1 {
        return Err("memref.alloc must produce exactly one result".into());
    }
    if !ctx.value_type(ctx.result(op, 0)).is_memref() {
        return Err("memref.alloc result must be a memref".into());
    }
    Ok(())
}

fn verify_global(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.attr_str(op, "sym_name").is_none() {
        return Err("memref.global requires a sym_name".into());
    }
    if ctx.attr(op, "type").and_then(Attribute::as_type).map(Type::is_memref) != Some(true) {
        return Err("memref.global requires a memref `type` attribute".into());
    }
    Ok(())
}

fn verify_subview(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).is_empty() || ctx.operands(op).len() > 2 {
        return Err("memref.subview requires a source and an optional dynamic offset".into());
    }
    let src = ctx.value_type(ctx.operand(op, 0));
    if !src.is_memref() {
        return Err(format!("memref.subview source must be a memref, got {src}"));
    }
    let Some(size) = subview_size(ctx, op) else {
        return Err("memref.subview requires static_sizes".into());
    };
    // Static-offset subviews are bounds-checked; dynamic offsets are checked
    // at runtime by the simulator.
    if ctx.operands(op).len() == 1 {
        let Some(offset) = subview_offset(ctx, op) else {
            return Err("memref.subview without a dynamic offset requires static_offsets".into());
        };
        if let Some(&dim) = src.shape().and_then(|s| s.last()) {
            if dim >= 0 && offset + size > dim {
                return Err(format!(
                    "subview [{offset}, {}) is out of bounds for dimension {dim}",
                    offset + size
                ));
            }
        }
    }
    Ok(())
}

fn verify_copy(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 2 {
        return Err("memref.copy requires source and dest operands".into());
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("memref");
    registry.register_op_verifier(ALLOC, verify_alloc);
    registry.register_op_verifier(GLOBAL, verify_global);
    registry.register_op_verifier(SUBVIEW, verify_subview);
    registry.register_op_verifier(COPY, verify_copy);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use wse_ir::verify;

    #[test]
    fn alloc_subview_copy() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let ty = Type::memref(vec![512], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let buf = alloc(&mut b, ty.clone());
        let view = subview(&mut b, buf, 1, 510);
        let dst = alloc(&mut b, Type::memref(vec![510], Type::f32()));
        copy(&mut b, view, dst);
        assert_eq!(ctx.value_type(view), &Type::memref(vec![510], Type::f32()));
        let view_op = ctx.defining_op(view).unwrap();
        assert_eq!(subview_offset(&ctx, view_op), Some(1));
        assert_eq!(subview_size(&ctx, view_op), Some(510));

        let mut registry = DialectRegistry::new();
        register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn globals() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let ty = Type::memref(vec![900], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        global(&mut b, "field_a", ty.clone(), Some(0.0));
        let r = get_global(&mut b, "field_a", ty.clone());
        assert_eq!(ctx.value_type(r), &ty);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn oversized_subview_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let buf = alloc(&mut b, Type::memref(vec![16], Type::f32()));
        subview(&mut b, buf, 10, 10);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("out of bounds")));
    }
}
