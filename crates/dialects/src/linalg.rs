//! The `linalg` dialect: destination-passing-style (DPS) elementwise
//! operations used after bufferization (Group 3 of the paper).
//!
//! CSL's DSD builtins operate on physical memory, reading inputs from and
//! storing results to buffers passed as operands.  The `linalg` ops model
//! exactly that: `ins(...) outs(dest)` where `dest` is a memref that is
//! overwritten.  The final operand of every op is the destination.

use wse_ir::{DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, ValueId};

/// `linalg.add`: `out[i] = a[i] + b[i]`.
pub const ADD: &str = "linalg.add";
/// `linalg.sub`: `out[i] = a[i] - b[i]`.
pub const SUB: &str = "linalg.sub";
/// `linalg.mul`: `out[i] = a[i] * b[i]`.
pub const MUL: &str = "linalg.mul";
/// `linalg.fmac`: fused multiply-accumulate `out[i] = acc[i] + a[i] * b[i]`.
pub const FMAC: &str = "linalg.fmac";
/// `linalg.fill`: `out[i] = scalar`.
pub const FILL: &str = "linalg.fill";
/// `linalg.copy`: `out[i] = a[i]`.
pub const COPY: &str = "linalg.copy";

/// All binary DPS op names (two inputs + one destination).
pub const BINARY_OPS: &[&str] = &[ADD, SUB, MUL];

/// Builds a binary DPS op `name` with inputs `a`, `b` writing to `out`.
pub fn binary(b: &mut OpBuilder<'_>, name: &str, a: ValueId, rhs: ValueId, out: ValueId) -> OpId {
    b.insert(OpSpec::new(name).operands([a, rhs, out]))
}

/// Builds `linalg.add`.
pub fn add(b: &mut OpBuilder<'_>, a: ValueId, rhs: ValueId, out: ValueId) -> OpId {
    binary(b, ADD, a, rhs, out)
}

/// Builds `linalg.sub`.
pub fn sub(b: &mut OpBuilder<'_>, a: ValueId, rhs: ValueId, out: ValueId) -> OpId {
    binary(b, SUB, a, rhs, out)
}

/// Builds `linalg.mul`.
pub fn mul(b: &mut OpBuilder<'_>, a: ValueId, rhs: ValueId, out: ValueId) -> OpId {
    binary(b, MUL, a, rhs, out)
}

/// Builds `linalg.fmac` (`out = acc + a * b`; `acc` may alias `out`).
pub fn fmac(b: &mut OpBuilder<'_>, acc: ValueId, a: ValueId, rhs: ValueId, out: ValueId) -> OpId {
    b.insert(OpSpec::new(FMAC).operands([acc, a, rhs, out]))
}

/// Builds `linalg.fill`.
pub fn fill(b: &mut OpBuilder<'_>, scalar: ValueId, out: ValueId) -> OpId {
    b.insert(OpSpec::new(FILL).operands([scalar, out]))
}

/// Builds `linalg.copy`.
pub fn copy(b: &mut OpBuilder<'_>, a: ValueId, out: ValueId) -> OpId {
    b.insert(OpSpec::new(COPY).operands([a, out]))
}

/// Input operands of a DPS op (everything except the destination).
pub fn inputs(ctx: &IrContext, op: OpId) -> &[ValueId] {
    let operands = ctx.operands(op);
    &operands[..operands.len().saturating_sub(1)]
}

/// The destination operand of a DPS op.
pub fn output(ctx: &IrContext, op: OpId) -> Option<ValueId> {
    ctx.operands(op).last().copied()
}

/// Returns true for binary DPS ops.
pub fn is_binary(name: &str) -> bool {
    BINARY_OPS.contains(&name)
}

fn verify_dps(ctx: &IrContext, op: OpId, expected_operands: usize) -> Result<(), String> {
    if ctx.operands(op).len() != expected_operands {
        return Err(format!(
            "{} requires {expected_operands} operands (inputs + destination), found {}",
            ctx.op_name(op),
            ctx.operands(op).len()
        ));
    }
    if !ctx.results(op).is_empty() {
        return Err(format!("{} writes to its destination and has no results", ctx.op_name(op)));
    }
    let out = output(ctx, op).expect("checked operand count");
    let out_ty = ctx.value_type(out);
    if !out_ty.is_memref() {
        return Err(format!("destination must be a memref, got {out_ty}"));
    }
    Ok(())
}

fn verify_binary_op(ctx: &IrContext, op: OpId) -> Result<(), String> {
    verify_dps(ctx, op, 3)
}

fn verify_fmac(ctx: &IrContext, op: OpId) -> Result<(), String> {
    verify_dps(ctx, op, 4)
}

fn verify_fill(ctx: &IrContext, op: OpId) -> Result<(), String> {
    verify_dps(ctx, op, 2)
}

fn verify_copy(ctx: &IrContext, op: OpId) -> Result<(), String> {
    verify_dps(ctx, op, 2)
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("linalg");
    for name in BINARY_OPS {
        registry.register_op_verifier(*name, verify_binary_op);
    }
    registry.register_op_verifier(FMAC, verify_fmac);
    registry.register_op_verifier(FILL, verify_fill);
    registry.register_op_verifier(COPY, verify_copy);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin, memref};
    use wse_ir::{verify, Type};

    #[test]
    fn dps_ops_build_and_verify() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let ty = Type::memref(vec![510], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let a = memref::alloc(&mut b, ty.clone());
        let c = memref::alloc(&mut b, ty.clone());
        let out = memref::alloc(&mut b, ty.clone());
        let scalar = arith::constant_f32(&mut b, 0.0, Type::f32());
        fill(&mut b, scalar, out);
        let add_op = add(&mut b, a, c, out);
        let fmac_op = fmac(&mut b, out, a, c, out);
        copy(&mut b, out, a);

        assert_eq!(inputs(&ctx, add_op), &[a, c]);
        assert_eq!(output(&ctx, add_op), Some(out));
        assert_eq!(inputs(&ctx, fmac_op).len(), 3);
        assert!(is_binary(ADD));
        assert!(!is_binary(FMAC));

        let mut registry = DialectRegistry::new();
        register(&mut registry);
        arith::register(&mut registry);
        memref::register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn tensor_destination_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let t = crate::tensor::empty(&mut b, Type::tensor(vec![4], Type::f32()));
        b.insert(OpSpec::new(ADD).operands([t, t, t]));
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("destination must be a memref")));
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let buf = memref::alloc(&mut b, Type::memref(vec![4], Type::f32()));
        b.insert(OpSpec::new(FMAC).operands([buf, buf]));
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        memref::register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("requires 4 operands")));
    }
}
