//! The `dmp` (distributed-memory parallelism) dialect.
//!
//! `dmp.swap` marks the halo exchanges that must happen before a
//! `stencil.apply` can run (Listing 3 of the paper).  It was designed for
//! MPI-style clusters, but the same abstract description of "which
//! neighbors must send how much data" applies unchanged to the WSE's 2-D
//! grid of PEs, which is exactly how the paper reuses the distribute
//! stencil pass.

use wse_ir::{Attribute, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, ValueId};

/// `dmp.swap`: describes halo exchanges required before a stencil apply.
pub const SWAP: &str = "dmp.swap";

/// One halo exchange with a neighboring rank / PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Exchange {
    /// Offset of the neighbor in the process grid (e.g. `(1, 0)` = east).
    pub neighbor: (i64, i64),
    /// Halo width (number of cells) exchanged with this neighbor.
    pub width: i64,
}

impl Exchange {
    /// Creates an exchange descriptor.
    pub fn new(dx: i64, dy: i64, width: i64) -> Self {
        Self { neighbor: (dx, dy), width }
    }

    /// Encodes the exchange as a `#dmp.exchange<...>` attribute.
    pub fn to_attr(&self) -> Attribute {
        Attribute::dialect(
            "dmp",
            "exchange",
            vec![
                Attribute::IndexArray(vec![self.neighbor.0, self.neighbor.1]),
                Attribute::int(self.width),
            ],
        )
    }

    /// Decodes an exchange from its attribute form.
    pub fn from_attr(attr: &Attribute) -> Option<Exchange> {
        let d = attr.as_dialect()?;
        if d.dialect != "dmp" || d.name != "exchange" {
            return None;
        }
        let n = d.params.first()?.as_index_array()?;
        let width = d.params.get(1)?.as_int()?;
        Some(Exchange { neighbor: (*n.first()?, *n.get(1)?), width })
    }
}

/// The 2-D decomposition topology (number of PEs in x and y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Grid extent in x.
    pub x: i64,
    /// Grid extent in y.
    pub y: i64,
}

impl Topology {
    /// Creates a topology.
    pub fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// Encodes the topology as a `#dmp.topo<...>` attribute.
    pub fn to_attr(&self) -> Attribute {
        Attribute::dialect("dmp", "topo", vec![Attribute::int(self.x), Attribute::int(self.y)])
    }

    /// Decodes the topology from its attribute form.
    pub fn from_attr(attr: &Attribute) -> Option<Topology> {
        let d = attr.as_dialect()?;
        if d.dialect != "dmp" || d.name != "topo" {
            return None;
        }
        Some(Topology { x: d.params.first()?.as_int()?, y: d.params.get(1)?.as_int()? })
    }
}

/// Builds a `dmp.swap` on `input` (result has the same type).
pub fn swap(
    b: &mut OpBuilder<'_>,
    input: ValueId,
    topology: Topology,
    exchanges: &[Exchange],
) -> ValueId {
    let ty = b.ctx_ref().value_type(input).clone();
    b.insert_value(
        OpSpec::new(SWAP)
            .operands([input])
            .results([ty])
            .attr("topo", topology.to_attr())
            .attr("swaps", Attribute::Array(exchanges.iter().map(Exchange::to_attr).collect())),
    )
}

/// Reads the topology of a `dmp.swap`.
pub fn swap_topology(ctx: &IrContext, op: OpId) -> Option<Topology> {
    ctx.attr(op, "topo").and_then(Topology::from_attr)
}

/// Reads the exchange list of a `dmp.swap`.
pub fn swap_exchanges(ctx: &IrContext, op: OpId) -> Vec<Exchange> {
    ctx.attr(op, "swaps")
        .and_then(Attribute::as_array)
        .map(|attrs| attrs.iter().filter_map(Exchange::from_attr).collect())
        .unwrap_or_default()
}

fn verify_swap(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 1 || ctx.results(op).len() != 1 {
        return Err("dmp.swap requires exactly one operand and one result".into());
    }
    if ctx.value_type(ctx.operand(op, 0)) != ctx.value_type(ctx.result(op, 0)) {
        return Err("dmp.swap result type must match its operand type".into());
    }
    if swap_topology(ctx, op).is_none() {
        return Err("dmp.swap requires a topo attribute".into());
    }
    let exchanges = swap_exchanges(ctx, op);
    for e in &exchanges {
        if e.width <= 0 {
            return Err(format!("exchange with neighbor {:?} has non-positive width", e.neighbor));
        }
        let (dx, dy) = e.neighbor;
        if (dx == 0 && dy == 0) || (dx != 0 && dy != 0) {
            return Err(format!("exchange neighbor {:?} is not a cardinal direction", e.neighbor));
        }
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("dmp");
    registry.register_op_verifier(SWAP, verify_swap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builtin, stencil};
    use wse_ir::{verify, Type};

    #[test]
    fn exchange_attr_roundtrip() {
        let e = Exchange::new(1, 0, 2);
        assert_eq!(Exchange::from_attr(&e.to_attr()), Some(e));
        let t = Topology::new(254, 254);
        assert_eq!(Topology::from_attr(&t.to_attr()), Some(t));
        assert_eq!(Exchange::from_attr(&Attribute::int(3)), None);
        assert_eq!(Topology::from_attr(&Attribute::Unit), None);
    }

    #[test]
    fn swap_builds_and_verifies() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let bounds = stencil::Bounds::new(vec![-1, -1], vec![2, 2]);
        let ty = stencil::temp_type(&bounds, Type::tensor(vec![512], Type::f32()));
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let input = b.insert_value(OpSpec::new("tensor.empty").results([ty]));
        let exchanges = [
            Exchange::new(1, 0, 1),
            Exchange::new(-1, 0, 1),
            Exchange::new(0, 1, 1),
            Exchange::new(0, -1, 1),
        ];
        let out = swap(&mut b, input, Topology::new(254, 254), &exchanges);
        let swap_op = ctx.defining_op(out).unwrap();
        assert_eq!(swap_topology(&ctx, swap_op), Some(Topology::new(254, 254)));
        assert_eq!(swap_exchanges(&ctx, swap_op).len(), 4);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn diagonal_exchange_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let input = b.insert_value(OpSpec::new("tensor.empty").results([Type::f32()]));
        swap(&mut b, input, Topology::new(4, 4), &[Exchange::new(1, 1, 1)]);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("cardinal")));
    }

    #[test]
    fn zero_width_exchange_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let input = b.insert_value(OpSpec::new("tensor.empty").results([Type::f32()]));
        swap(&mut b, input, Topology::new(4, 4), &[Exchange::new(1, 0, 0)]);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("non-positive width")));
    }
}
