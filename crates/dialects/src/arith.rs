//! The `arith` dialect: constants and elementwise arithmetic.
//!
//! Arithmetic operations are rank-polymorphic, as in MLIR: the same
//! `arith.addf` operates on `f32` scalars before tensorization and on
//! `tensor<512xf32>` values afterwards (Listing 3 of the paper).

use wse_ir::{Attribute, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, Type, ValueId};

/// `arith.constant`: materializes a compile-time constant.
pub const CONSTANT: &str = "arith.constant";
/// `arith.addf`: floating point addition.
pub const ADDF: &str = "arith.addf";
/// `arith.subf`: floating point subtraction.
pub const SUBF: &str = "arith.subf";
/// `arith.mulf`: floating point multiplication.
pub const MULF: &str = "arith.mulf";
/// `arith.divf`: floating point division.
pub const DIVF: &str = "arith.divf";
/// `arith.negf`: floating point negation.
pub const NEGF: &str = "arith.negf";
/// `arith.addi`: integer addition.
pub const ADDI: &str = "arith.addi";
/// `arith.muli`: integer multiplication.
pub const MULI: &str = "arith.muli";
/// `arith.cmpi`: integer comparison (predicate attribute).
pub const CMPI: &str = "arith.cmpi";

/// All binary floating-point op names.
pub const BINARY_FLOAT_OPS: &[&str] = &[ADDF, SUBF, MULF, DIVF];

/// Builds an `arith.constant` with a float value of type `ty` (scalar or a
/// dense splat for tensor types).
pub fn constant_f32(b: &mut OpBuilder<'_>, value: f32, ty: Type) -> ValueId {
    let attr = if ty.is_tensor() || ty.is_memref() {
        Attribute::dense_splat_f32(value, ty.clone())
    } else {
        Attribute::f32(value)
    };
    b.insert_value(OpSpec::new(CONSTANT).results([ty]).attr("value", attr))
}

/// Builds an index-typed `arith.constant`.
pub fn constant_index(b: &mut OpBuilder<'_>, value: i64) -> ValueId {
    b.insert_value(
        OpSpec::new(CONSTANT).results([Type::index()]).attr("value", Attribute::index(value)),
    )
}

/// Builds an integer `arith.constant` of type `ty`.
pub fn constant_int(b: &mut OpBuilder<'_>, value: i64, ty: Type) -> ValueId {
    b.insert_value(
        OpSpec::new(CONSTANT).results([ty.clone()]).attr("value", Attribute::int_typed(value, ty)),
    )
}

/// Builds a binary arithmetic op (the result type is the lhs type).
pub fn binary(b: &mut OpBuilder<'_>, name: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    let ty = b.ctx_ref().value_type(lhs).clone();
    b.insert_value(OpSpec::new(name).operands([lhs, rhs]).results([ty]))
}

/// Builds an `arith.addf`.
pub fn addf(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, ADDF, lhs, rhs)
}

/// Builds an `arith.subf`.
pub fn subf(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, SUBF, lhs, rhs)
}

/// Builds an `arith.mulf`.
pub fn mulf(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, MULF, lhs, rhs)
}

/// Builds an `arith.divf`.
pub fn divf(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, DIVF, lhs, rhs)
}

/// Builds an `arith.addi`.
pub fn addi(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, ADDI, lhs, rhs)
}

/// The constant value of an `arith.constant` as `f64`, if it is a float or
/// splat constant.
pub fn constant_float_value(ctx: &IrContext, op: OpId) -> Option<f64> {
    if ctx.op_name(op) != CONSTANT {
        return None;
    }
    ctx.attr(op, "value").and_then(Attribute::as_float)
}

/// The constant value of an `arith.constant` as `i64`, if it is an integer
/// constant.
pub fn constant_int_value(ctx: &IrContext, op: OpId) -> Option<i64> {
    if ctx.op_name(op) != CONSTANT {
        return None;
    }
    ctx.attr(op, "value").and_then(Attribute::as_int)
}

/// Returns true if the op is a binary float arithmetic op.
pub fn is_binary_float_op(name: &str) -> bool {
    BINARY_FLOAT_OPS.contains(&name)
}

fn verify_constant(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.attr(op, "value").is_none() {
        return Err("arith.constant requires a value attribute".into());
    }
    if ctx.results(op).len() != 1 {
        return Err("arith.constant must produce exactly one result".into());
    }
    Ok(())
}

fn verify_binary(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 2 {
        return Err(format!("{} requires exactly two operands", ctx.op_name(op)));
    }
    if ctx.results(op).len() != 1 {
        return Err(format!("{} must produce exactly one result", ctx.op_name(op)));
    }
    let lhs = ctx.value_type(ctx.operand(op, 0));
    let rhs = ctx.value_type(ctx.operand(op, 1));
    if lhs != rhs {
        return Err(format!("operand types differ: {lhs} vs {rhs}"));
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("arith");
    registry.register_op_verifier(CONSTANT, verify_constant);
    for name in [ADDF, SUBF, MULF, DIVF, ADDI, MULI] {
        registry.register_op_verifier(name, verify_binary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use wse_ir::verify;

    #[test]
    fn constants_and_binaries() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let c = constant_f32(&mut b, 0.12345, Type::f32());
        let i = constant_index(&mut b, 42);
        let sum = addf(&mut b, c, c);
        let prod = mulf(&mut b, sum, c);
        assert_eq!(ctx.value_type(prod), &Type::f32());
        assert_eq!(ctx.value_type(i), &Type::index());
        let c_op = ctx.defining_op(c).unwrap();
        assert_eq!(constant_float_value(&ctx, c_op), Some(f64::from(0.12345f32)));
        let i_op = ctx.defining_op(i).unwrap();
        assert_eq!(constant_int_value(&ctx, i_op), Some(42));

        let mut registry = DialectRegistry::new();
        register(&mut registry);
        builtin::register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn tensor_constant_uses_dense_splat() {
        let mut ctx = IrContext::new();
        let (_module, body) = builtin::module(&mut ctx);
        let ty = Type::tensor(vec![510], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let c = constant_f32(&mut b, 0.5, ty.clone());
        let op = ctx.defining_op(c).unwrap();
        assert!(matches!(ctx.attr(op, "value"), Some(Attribute::DenseSplat(_, _))));
        assert_eq!(ctx.value_type(c), &ty);
    }

    #[test]
    fn mismatched_operand_types_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let a = constant_f32(&mut b, 1.0, Type::f32());
        let i = constant_index(&mut b, 1);
        b.insert(OpSpec::new(ADDF).operands([a, i]).results([Type::f32()]));
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("operand types differ")));
    }

    #[test]
    fn op_classification() {
        assert!(is_binary_float_op(ADDF));
        assert!(is_binary_float_op(MULF));
        assert!(!is_binary_float_op(CONSTANT));
        assert!(!is_binary_float_op(ADDI));
    }
}
