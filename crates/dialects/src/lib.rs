//! # wse-dialects — core and stencil dialects
//!
//! Rust re-implementations of the MLIR/xDSL dialect subsets the wafer-scale
//! stencil pipeline consumes:
//!
//! * architecture-agnostic dialects: [`builtin`], [`func`], [`arith`],
//!   [`scf`], [`tensor`], [`memref`], [`linalg`] and [`varith`];
//! * the stencil abstraction: [`stencil`] (Open Earth Compiler dialect) and
//!   [`dmp`] (distributed-memory halo exchanges).
//!
//! Each module provides operation-name constants, typed builder helpers,
//! accessors and verifiers.  [`register_all`] registers every verifier in a
//! [`DialectRegistry`] so the pass manager can verify IR after each pass.
//!
//! ```
//! use wse_dialects::{builtin, func, arith, register_all};
//! use wse_ir::{IrContext, OpBuilder, Type, verify};
//!
//! let mut ctx = IrContext::new();
//! let (module, body) = builtin::module(&mut ctx);
//! let (_f, entry) = func::build_func(&mut ctx, body, "main", vec![], vec![]);
//! let mut b = OpBuilder::at_end(&mut ctx, entry);
//! let c = arith::constant_f32(&mut b, 1.0, Type::f32());
//! func::build_return(&mut ctx, entry, vec![c]);
//! let registry = register_all();
//! assert!(verify(&ctx, module, &registry).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arith;
pub mod builtin;
pub mod dmp;
pub mod effects;
pub mod func;
pub mod linalg;
pub mod memref;
pub mod scf;
pub mod stencil;
pub mod tensor;
pub mod varith;

use wse_ir::DialectRegistry;

/// Builds a [`DialectRegistry`] with every dialect of this crate registered.
pub fn register_all() -> DialectRegistry {
    let mut registry = DialectRegistry::new();
    register_into(&mut registry);
    registry
}

/// Registers every dialect of this crate into an existing registry.
pub fn register_into(registry: &mut DialectRegistry) {
    builtin::register(registry);
    func::register(registry);
    arith::register(registry);
    scf::register(registry);
    tensor::register(registry);
    memref::register(registry);
    linalg::register(registry);
    varith::register(registry);
    dmp::register(registry);
    stencil::register(registry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dialects_registered() {
        let registry = register_all();
        for dialect in [
            "builtin", "func", "arith", "scf", "tensor", "memref", "linalg", "varith", "dmp",
            "stencil",
        ] {
            assert!(registry.has_dialect(dialect), "missing dialect {dialect}");
        }
        assert_eq!(registry.dialect_names().len(), 10);
    }
}
