//! The `builtin` dialect: the top-level `builtin.module` operation.

use wse_ir::{AttrMap, BlockId, DialectRegistry, IrContext, OpId};

/// Name of the module operation.
pub const MODULE: &str = "builtin.module";

/// Creates an empty `builtin.module` with a single-block body and returns
/// the op and its body block.
pub fn module(ctx: &mut IrContext) -> (OpId, BlockId) {
    let module = ctx.create_op(MODULE, vec![], vec![], AttrMap::new(), 1);
    let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
    (module, body)
}

/// Returns the body block of a module.
///
/// # Panics
/// Panics if `op` is not a `builtin.module` or has no body block.
pub fn module_body(ctx: &IrContext, op: OpId) -> BlockId {
    assert_eq!(ctx.op_name(op), MODULE, "expected builtin.module");
    ctx.entry_block(ctx.op_region(op, 0)).expect("module must have a body block")
}

fn verify_module(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if !ctx.operands(op).is_empty() || !ctx.results(op).is_empty() {
        return Err("builtin.module takes no operands and produces no results".into());
    }
    if ctx.op_regions(op).len() != 1 {
        return Err("builtin.module must have exactly one region".into());
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("builtin");
    registry.register_op_verifier(MODULE, verify_module);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_ir::verify;

    #[test]
    fn module_roundtrip() {
        let mut ctx = IrContext::new();
        let (m, body) = module(&mut ctx);
        assert_eq!(ctx.op_name(m), MODULE);
        assert_eq!(module_body(&ctx, m), body);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        assert!(verify(&ctx, m, &registry).is_empty());
    }

    #[test]
    fn module_with_results_is_invalid() {
        let mut ctx = IrContext::new();
        let bad = ctx.create_op(MODULE, vec![], vec![wse_ir::Type::f32()], AttrMap::new(), 1);
        let mut registry = DialectRegistry::new();
        register(&mut registry);
        let errors = verify(&ctx, bad, &registry);
        assert!(errors.iter().any(|e| e.message.contains("no operands")));
    }
}
