//! # testkit — generative stencil workloads + differential conformance
//!
//! The paper's pipeline claims generality over stencil programs; the five
//! fixed benchmarks exercise only a corner of it.  This crate provides
//! the safety net the rest of the workspace runs under:
//!
//! * [`generate`] — a seeded random [`wse_frontends::StencilProgram`]
//!   generator covering arbitrary radii, star/box (diagonal) shapes,
//!   coupled multi-equation systems, additive constants, odd grid/chunk
//!   combinations and both WSE generations;
//! * [`conformance`] — the differential driver: every generated program
//!   must either compile (with per-pass IR verification) and agree across
//!   the linked engine, the legacy interpreter and the sequential
//!   reference executor, or be rejected with a typed diagnostic.  Panics
//!   are conformance failures, full stop;
//! * [`shrink`] — greedy minimization of failing cases;
//! * [`report`] — reproducer rendering, including the program's stencil
//!   IR in the generic form [`wse_ir::parse_op`] accepts.
//!
//! The `conformance` binary drives N seeded cases and is wired into CI;
//! `cargo run --release -p testkit --bin conformance -- --cases 64`
//! reproduces the CI job locally, and
//! `--seed S --cases 1` replays one failing seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod conformance;
pub mod generate;
pub mod report;
pub mod rng;
pub mod shrink;

pub use conformance::{
    case_fusion_evidence, case_product_evidence, install_quiet_panic_hook, run_case,
    run_case_with_tolerance, run_case_with_tolerance_via, run_fault_case, shape_tolerance,
    FaultCaseReport, FaultOutcome, FusionEvidence, ProductEvidence, Verdict, TOLERANCE,
};
pub use generate::{
    generate_case, generate_case_with, has_product_term, has_self_updating_chain,
    try_generate_case, try_generate_case_with, ConformanceCase, GenerateError, GeneratorConfig,
};
pub use report::reproducer;
pub use shrink::shrink_case;
