//! The differential conformance driver.
//!
//! A case passes when the full pipeline (with `verify_each` enabled)
//! either compiles the program and all four executions agree — the linked
//! flat-memory engine ([`wse_sim::WseGridSim`]) with its link-time
//! optimizer on *and* off, the legacy string-keyed interpreter
//! ([`wse_sim::InterpGridSim`]) and the sequential reference executor
//! ([`wse_sim::run_reference`]) — or rejects it with a typed diagnostic.
//! Engine agreement is bitwise: the interpreter executes the same loaded
//! instruction stream, and the optimizer (fused sweeps, copy folding,
//! staging/snapshot elision) is required to preserve results bit for bit,
//! so every seed cross-checks the optimized against the
//! `WSE_SIM_NO_FUSE=1`-equivalent stream.  Reference agreement is within
//! a tolerance (instruction scheduling reassociates the float
//! reductions): the flat [`TOLERANCE`] by default, or a per-shape bound
//! ([`shape_tolerance`]) in the soak profile.
//!
//! Panics anywhere in the pipeline are caught and reported as
//! [`Verdict::Panicked`]: a panic is always a conformance failure, even
//! for invalid input — every rejection must be a typed error.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

use wse_frontends::ast::StencilProgram;
use wse_sim::{
    max_abs_difference, run_reference, ExecErrorKind, FaultOptions, GridState, InterpGridSim,
    LinkOptions, RecoveryOptions, RecoveryStats, WseGridSim, INJECTED_BAND_PANIC,
};
use wse_stencil::{CompileService, Compiler, CslArtifact, PipelineOptions};

use crate::generate::ConformanceCase;

/// Maximum absolute deviation tolerated between the simulated PE grid and
/// the sequential reference executor.
pub const TOLERANCE: f32 = 1e-3;

/// The outcome of one conformance case.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Compiled and all executors agreed.
    Pass {
        /// Maximum absolute deviation of the linked engine from the
        /// reference executor.
        deviation: f32,
    },
    /// The pipeline rejected the program with a typed diagnostic — an
    /// acceptable outcome (the diagnostic is carried for reporting).
    Rejected {
        /// Pipeline stage that rejected the program.
        stage: String,
        /// The diagnostic message.
        message: String,
        /// Stable machine-readable rejection code when the stage attached
        /// one (e.g. `"non-linear"`); harnesses classify on this instead
        /// of string-matching `message`.
        code: Option<String>,
    },
    /// Executors disagreed: the pipeline miscompiled the program.
    Mismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The compiler accepted the program but an executor then failed on
    /// the artifact (link, run, or state extraction).  Unlike
    /// [`Verdict::Rejected`] this is a conformance *failure*: a compiled
    /// artifact the pipeline's own simulators cannot execute is a
    /// pipeline defect, not a typed rejection of the input.
    EngineFailure {
        /// Which executor stage failed.
        stage: String,
        /// The executor's error message.
        message: String,
    },
    /// Something panicked — never acceptable.
    Panicked {
        /// The captured panic payload.
        detail: String,
    },
}

impl Verdict {
    /// True for outcomes that satisfy conformance (pass or typed reject).
    pub fn is_conformant(&self) -> bool {
        matches!(self, Verdict::Pass { .. } | Verdict::Rejected { .. })
    }
}

std::thread_local! {
    /// Whether the current thread is inside a `run_case` pipeline call.
    static CAPTURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// The most recent panic payload captured on this thread.
    static LAST_PANIC: std::cell::RefCell<Option<String>> = const { std::cell::RefCell::new(None) };
}

/// Installs a panic hook that, *only while a [`run_case`] pipeline call
/// is executing on the panicking thread*, records the panic message
/// (with location) instead of printing it.  Panics from anywhere else —
/// including failing test assertions in binaries that use this crate —
/// are forwarded to the previously installed hook, so normal diagnostics
/// stay visible.  Idempotent; [`run_case`] installs it automatically.
pub fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            // Deliberately injected faults (engine band panics, compile
            // service chaos panics) unwind on worker threads and are
            // caught by their respective isolation boundaries; they are
            // part of the fault campaign, not diagnostics worth printing.
            if message.contains(INJECTED_BAND_PANIC)
                || message.contains(wse_stencil::INJECTED_COMPILE_PANIC)
            {
                return;
            }
            if !CAPTURING.with(|c| c.get()) {
                previous(info);
                return;
            }
            let location = info.location().map(|l| format!(" at {l}")).unwrap_or_default();
            LAST_PANIC.with(|p| *p.borrow_mut() = Some(format!("{message}{location}")));
        }));
    });
}

/// Runs one case through the full pipeline and all executions, with the
/// default flat [`TOLERANCE`] against the reference executor.
pub fn run_case(case: &ConformanceCase) -> Verdict {
    run_case_with_tolerance(case, TOLERANCE)
}

/// A per-shape error bound for the reference comparison, used by the soak
/// profile instead of the flat [`TOLERANCE`].
///
/// The simulated engines and the sequential reference reassociate the
/// same f32 linear combination, so the worst-case divergence grows with
/// the reduction width (terms per equation) and the number of timesteps
/// the rounding differences can compound over.  The bound scales with
/// `√terms · timesteps` on top of a couple of ulps of the O(1) field
/// values, floored well above the ~1e-7 worst case observed across 8000
/// default-profile seeds and capped at the flat CI tolerance.
pub fn shape_tolerance(program: &StencilProgram) -> f32 {
    let max_terms =
        program.equations.iter().map(|e| e.num_points().max(1)).max().unwrap_or(1) as f32;
    let steps = program.timesteps.max(1) as f32;
    (1e-6 * max_terms.sqrt() * steps).clamp(5e-6, TOLERANCE)
}

/// [`run_case`] with an explicit reference tolerance (the soak profile
/// passes [`shape_tolerance`] instead of the flat default).
pub fn run_case_with_tolerance(case: &ConformanceCase, tolerance: f32) -> Verdict {
    run_case_with_tolerance_via(case, tolerance, false)
}

/// [`run_case_with_tolerance`], optionally compiling through a shared
/// [`CompileService`] (pooled contexts + artifact cache) instead of a
/// per-case [`Compiler`].  The conformance bin's `--service` flag drives
/// this: every verdict must be identical through either path, which
/// gates the service redesign on the same differential evidence as the
/// pipeline itself.
pub fn run_case_with_tolerance_via(
    case: &ConformanceCase,
    tolerance: f32,
    through_service: bool,
) -> Verdict {
    install_quiet_panic_hook();
    CAPTURING.with(|c| c.set(true));
    let result =
        catch_unwind(AssertUnwindSafe(|| run_case_inner(case, tolerance, through_service)));
    CAPTURING.with(|c| c.set(false));
    match result {
        Ok(verdict) => verdict,
        Err(payload) => {
            let detail = LAST_PANIC
                .with(|p| p.borrow_mut().take())
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            Verdict::Panicked { detail }
        }
    }
}

/// One shared [`CompileService`] per distinct option set, so `--service`
/// runs exercise the pooled-context and artifact-cache paths across many
/// cases the way a long-lived server would.
fn shared_service(compiler: &Compiler) -> Arc<CompileService> {
    static SERVICES: OnceLock<Mutex<HashMap<PipelineOptions, Arc<CompileService>>>> =
        OnceLock::new();
    let services = SERVICES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut services = services.lock().unwrap();
    Arc::clone(
        services.entry(*compiler.options()).or_insert_with(|| Arc::new((*compiler).service())),
    )
}

fn run_case_inner(case: &ConformanceCase, tolerance: f32, through_service: bool) -> Verdict {
    let compiler = Compiler::new()
        .target(case.options.target)
        .num_chunks(case.options.num_chunks)
        .fmac_fusion(case.options.enable_fmac_fusion)
        .inlining(case.options.enable_inlining)
        .coefficient_promotion(case.options.promote_coefficients)
        .verify_each(true);
    let compiled: Result<Arc<CslArtifact>, wse_stencil::CompileError> = if through_service {
        shared_service(&compiler).compile(&case.program)
    } else {
        compiler.compile(&case.program).map(Arc::new)
    };
    let artifact = match compiled {
        Ok(artifact) => artifact,
        Err(e) => {
            // The service isolates mid-pipeline panics into typed
            // `internal-panic` errors; for conformance purposes a panic is
            // still a panic, whichever compile path caught it.
            if e.code() == Some("internal-panic") {
                return Verdict::Panicked { detail: e.message().to_string() };
            }
            return Verdict::Rejected {
                stage: e.stage().to_string(),
                message: e.message().to_string(),
                code: e.code().map(str::to_string),
            };
        }
    };

    // From here on the compiler has accepted the program: any executor
    // failure on its own artifact is a conformance failure, not a typed
    // rejection of the input.

    // Front-end lint cross-check: the lint error codes (`E00x`) model
    // exactly the program classes the pipeline rejects, so a program the
    // compiler just *accepted* must carry no error-severity lint finding.
    // A divergence is an analyzer or pipeline bug, whichever side is
    // wrong.
    let lint = wse_analysis::Analyzer::new().lint(&case.program);
    if let Some(first) = lint.iter().find(|f| f.severity == wse_analysis::Severity::Error) {
        return Verdict::EngineFailure {
            stage: "lint-crosscheck".into(),
            message: format!("compiler accepted a program the linter rejects: {first}"),
        };
    }

    let loaded = artifact.loaded_program().clone();
    // Explicitly optimized (not `WseGridSim::new`, which honors
    // `WSE_SIM_NO_FUSE` from the environment): the cross-check below must
    // always compare a genuinely optimized against a genuinely
    // unoptimized stream, even when a developer debugging a fusion bug
    // has the escape hatch exported.  The *SIMD* toggle, by contrast, is
    // taken from the environment on purpose: `WSE_SIM_NO_SIMD=1` flips
    // every primary stream to the scalar kernel set, and the cross-stream
    // below always runs the opposite set, so a sweep under either setting
    // pins vector against scalar bits on every seed.
    let env = LinkOptions::from_env();
    // `validate` and `mutate` flow through from the environment so a
    // `WSE_SIM_VALIDATE_LINK=1` (or mutated) sweep exercises the
    // translation validator on every conformance seed.
    let options = LinkOptions { optimize: true, simd: env.simd, fast_fma: false, ..env };
    let mut linked = match WseGridSim::with_options(loaded.clone(), options) {
        Ok(sim) => sim,
        Err(e) => return Verdict::EngineFailure { stage: "link".into(), message: e.message },
    };

    // Static gates, before any execution.  A validator rejection means an
    // optimizer pass changed observable dataflow — the stream that runs is
    // the reverted (correct) one, but the pass itself is broken, and that
    // must fail the seed rather than be silently papered over.  Likewise
    // the static race detector must find no error-severity hazard in the
    // stream the optimizer produced.
    let stats = linked.linked().stats();
    if stats.validator_rejections > 0 {
        return Verdict::EngineFailure {
            stage: "validate-link".into(),
            message: format!(
                "translation validator rejected optimizer pass(es) {:?} (E201)",
                stats.rejected_passes
            ),
        };
    }
    let races: Vec<_> = wse_analysis::Analyzer::new()
        .check_stream(linked.linked())
        .into_iter()
        .filter(|f| f.severity == wse_analysis::Severity::Error)
        .collect();
    if let Some(first) = races.first() {
        return Verdict::EngineFailure {
            stage: "race-detect".into(),
            message: format!("{} static race finding(s); first: {first}", races.len()),
        };
    }

    if let Err(e) = linked.run(None) {
        return Verdict::EngineFailure { stage: "execute".into(), message: e.message };
    }
    let linked_state = match linked.grid_state() {
        Ok(state) => state,
        Err(e) => return Verdict::EngineFailure { stage: "extract".into(), message: e.message },
    };

    // The link-time optimizer must be bitwise-transparent: rerun the same
    // loaded program with the optimizer off (the `WSE_SIM_NO_FUSE=1`
    // stream) and require identical bits.
    let mut unoptimized = match WseGridSim::with_options(
        loaded.clone(),
        LinkOptions { optimize: false, ..options },
    ) {
        Ok(sim) => sim,
        Err(e) => return Verdict::EngineFailure { stage: "link-unopt".into(), message: e.message },
    };
    if let Err(e) = unoptimized.run(None) {
        return Verdict::EngineFailure { stage: "execute-unopt".into(), message: e.message };
    }
    match unoptimized.grid_state() {
        Ok(state) => {
            if let Some(detail) = bitwise_difference(&linked_state, &state) {
                return Verdict::Mismatch {
                    detail: format!("optimized vs WSE_SIM_NO_FUSE stream (bitwise): {detail}"),
                };
            }
        }
        Err(e) => {
            return Verdict::EngineFailure { stage: "extract-unopt".into(), message: e.message }
        }
    }

    // The SIMD kernels must also be bitwise-transparent: rerun with the
    // *opposite* kernel set (scalar when the primary ran vector, vector
    // when `WSE_SIM_NO_SIMD=1` made the primary scalar) and require
    // identical bits.
    let cross_options = LinkOptions { simd: !options.simd, ..options };
    let mut simd_cross = match WseGridSim::with_options(loaded.clone(), cross_options) {
        Ok(sim) => sim,
        Err(e) => return Verdict::EngineFailure { stage: "link-simd".into(), message: e.message },
    };
    if let Err(e) = simd_cross.run(None) {
        return Verdict::EngineFailure { stage: "execute-simd".into(), message: e.message };
    }
    match simd_cross.grid_state() {
        Ok(state) => {
            if let Some(detail) = bitwise_difference(&linked_state, &state) {
                return Verdict::Mismatch {
                    detail: format!("simd vs scalar kernel streams (bitwise): {detail}"),
                };
            }
        }
        Err(e) => {
            return Verdict::EngineFailure { stage: "extract-simd".into(), message: e.message }
        }
    }

    // Opt-in fast-FMA stream (`WSE_SIM_FAST_FMA=1`): contracted
    // multiply-adds change rounding, so this stream is validated through
    // the reference *tolerance* path below, never bitwise.
    let fma_state = if env.fast_fma {
        let mut fma = match WseGridSim::with_options(
            loaded.clone(),
            LinkOptions { fast_fma: true, ..options },
        ) {
            Ok(sim) => sim,
            Err(e) => {
                return Verdict::EngineFailure { stage: "link-fma".into(), message: e.message }
            }
        };
        if let Err(e) = fma.run(None) {
            return Verdict::EngineFailure { stage: "execute-fma".into(), message: e.message };
        }
        match fma.grid_state() {
            Ok(state) => Some(state),
            Err(e) => {
                return Verdict::EngineFailure { stage: "extract-fma".into(), message: e.message }
            }
        }
    } else {
        None
    };

    let mut interp = InterpGridSim::new(loaded);
    if let Err(e) = interp.run(None) {
        return Verdict::EngineFailure { stage: "interp".into(), message: e.message };
    }
    let interp_state = interp.grid_state();

    if let Some(detail) = bitwise_difference(&linked_state, &interp_state) {
        return Verdict::Mismatch { detail: format!("linked vs interp (bitwise): {detail}") };
    }

    let reference = run_reference(&case.program, None);
    let deviation = max_abs_difference(&linked_state, &reference);
    if !deviation.is_finite() || deviation > tolerance {
        return Verdict::Mismatch {
            detail: format!("linked vs reference: max |Δ| = {deviation} (tolerance {tolerance})"),
        };
    }
    if let Some(fma_state) = fma_state {
        let fma_deviation = max_abs_difference(&fma_state, &reference);
        if !fma_deviation.is_finite() || fma_deviation > tolerance {
            return Verdict::Mismatch {
                detail: format!(
                    "fast-FMA vs reference: max |Δ| = {fma_deviation} (tolerance {tolerance})"
                ),
            };
        }
    }
    Verdict::Pass { deviation }
}

/// Evidence that the dependence-aware fusion path fired on a compiled
/// case: the double-buffer fields the inliner introduced plus the
/// link-time optimizer's report for the optimized stream.
#[derive(Debug, Clone)]
pub struct FusionEvidence {
    /// Internal double-buffer fields in the loaded program (non-zero iff
    /// the inliner renamed a hazarded field rather than refusing fusion).
    pub internal_fields: usize,
    /// The optimized stream's link-time report.
    pub stats: wse_sim::OptStats,
}

/// Compiles a case (with its own options) and returns the fusion
/// evidence, or `None` when the pipeline rejects the program.  Used by
/// the `--require-fusion` conformance variant to assert that inlining has
/// not silently regressed to the conservative refusal path.
pub fn case_fusion_evidence(case: &ConformanceCase) -> Option<FusionEvidence> {
    let compiler = Compiler::new()
        .target(case.options.target)
        .num_chunks(case.options.num_chunks)
        .fmac_fusion(case.options.enable_fmac_fusion)
        .inlining(case.options.enable_inlining)
        .coefficient_promotion(case.options.promote_coefficients);
    let artifact = compiler.compile(&case.program).ok()?;
    let loaded = artifact.loaded_program();
    let linked = wse_sim::link_program_with(
        loaded,
        &wse_sim::LinkOptions { optimize: true, ..LinkOptions::default() },
    )
    .ok()?;
    Some(FusionEvidence {
        internal_fields: loaded.internal_fields.len(),
        stats: linked.stats().clone(),
    })
}

/// Evidence that product decomposition fired on a compiled case: the
/// `__prod` scratch fields the `decompose-products` pass introduced plus
/// the link-time optimizer's report (whose `product_muls` counts the
/// data×data multiplies in the linked kernels).
#[derive(Debug, Clone)]
pub struct ProductEvidence {
    /// Internal `__prod` scratch fields in the loaded program (non-zero
    /// iff a degree-2 term was decomposed rather than rejected).
    pub product_fields: usize,
    /// The optimized stream's link-time report.
    pub stats: wse_sim::OptStats,
}

/// Compiles a case (with its own options) and returns the product
/// evidence, or `None` when the pipeline rejects the program.  Used by
/// the `--require-products` conformance variant to assert that nonlinear
/// lowering has not silently regressed to the rejection path.
pub fn case_product_evidence(case: &ConformanceCase) -> Option<ProductEvidence> {
    let compiler = Compiler::new()
        .target(case.options.target)
        .num_chunks(case.options.num_chunks)
        .fmac_fusion(case.options.enable_fmac_fusion)
        .inlining(case.options.enable_inlining)
        .coefficient_promotion(case.options.promote_coefficients);
    let artifact = compiler.compile(&case.program).ok()?;
    let loaded = artifact.loaded_program();
    let linked = wse_sim::link_program_with(
        loaded,
        &wse_sim::LinkOptions { optimize: true, ..LinkOptions::default() },
    )
    .ok()?;
    Some(ProductEvidence {
        product_fields: loaded
            .internal_fields
            .iter()
            .filter(|name| name.contains("__prod"))
            .count(),
        stats: linked.stats().clone(),
    })
}

/// Returns a description of the first bitwise difference between two grid
/// states, or `None` when they are bit-for-bit identical.
pub fn bitwise_difference(a: &GridState, b: &GridState) -> Option<String> {
    if a.names != b.names {
        return Some(format!("field sets differ: {:?} vs {:?}", a.names, b.names));
    }
    for (name, (fa, fb)) in a.names.iter().zip(a.fields.iter().zip(&b.fields)) {
        if fa.shape != fb.shape {
            return Some(format!("field {name}: shapes {:?} vs {:?}", fa.shape, fb.shape));
        }
        for (i, (x, y)) in fa.data.iter().zip(&fb.data).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Some(format!(
                    "field {name}[{i}]: {x} ({:#010x}) vs {y} ({:#010x})",
                    x.to_bits(),
                    y.to_bits()
                ));
            }
        }
    }
    None
}

/// The outcome of one fault-injection conformance case.
///
/// The invariant under test: a faulted run must either finish
/// bitwise-identical to the fault-free stream (detect-and-rollback
/// recovery worked) or surface a *typed* error — silent corruption is
/// the one unacceptable outcome.  Additionally, with the recovery
/// machinery enabled but no faults injected, the run must be
/// bitwise-transparent (checksums and checkpoints must not perturb the
/// computation).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOutcome {
    /// The pipeline rejected the program with a typed diagnostic before
    /// any execution — acceptable, same as plain conformance.
    Rejected {
        /// The rejection's machine-readable code, when attached.
        code: Option<String>,
    },
    /// The faulted run recovered: it finished and its final state is
    /// bitwise-identical to the fault-free stream.
    Recovered,
    /// The faulted run gave up with a typed [`wse_sim::ExecError`]
    /// (e.g. rollback budget exhausted) — acceptable: the failure was
    /// surfaced, not silently absorbed.
    TypedError {
        /// The error's typed discriminant.
        kind: ExecErrorKind,
    },
    /// The faulted run "succeeded" but its final state differs from the
    /// fault-free stream: a fault escaped detection.  Never acceptable.
    SilentDivergence {
        /// First differing element.
        detail: String,
    },
    /// With recovery enabled and *no* faults injected, the run diverged
    /// from the plain stream or rolled back spuriously.  Never
    /// acceptable: the checksum/checkpoint machinery must be free of
    /// observable effect when nothing goes wrong.
    TransparencyBroken {
        /// What broke.
        detail: String,
    },
    /// Something panicked outside the engine's own isolation.
    Panicked {
        /// The captured panic payload.
        detail: String,
    },
    /// A baseline (fault-free, recovery-free) execution failed — a
    /// pipeline defect unrelated to the fault campaign.
    EngineFailure {
        /// What failed.
        detail: String,
    },
}

impl FaultOutcome {
    /// True for outcomes the fault campaign accepts: recovery, a typed
    /// error, or a typed rejection.
    pub fn is_conformant(&self) -> bool {
        matches!(
            self,
            FaultOutcome::Rejected { .. }
                | FaultOutcome::Recovered
                | FaultOutcome::TypedError { .. }
        )
    }
}

/// The report for one fault-injection case: the outcome plus the faulted
/// run's recovery counters (present whenever the faulted run was
/// reached), so sweeps can assert faults were actually injected and
/// recovery paths actually fired rather than vacuously passing.
#[derive(Debug, Clone)]
pub struct FaultCaseReport {
    /// What happened.
    pub outcome: FaultOutcome,
    /// The faulted engine's recovery counters.
    pub stats: Option<RecoveryStats>,
}

/// Runs one case through the fault-injection campaign: compile, run the
/// fault-free baseline, prove the recovery machinery bitwise-transparent
/// without faults, then run with a seeded [`FaultPlan`] injected and
/// require bitwise recovery or a typed error (see [`FaultOutcome`]).
///
/// `fault_seed` seeds the deterministic fault plan; `rate` is the
/// per-step event probability.
///
/// [`FaultPlan`]: wse_sim::FaultPlan
pub fn run_fault_case(case: &ConformanceCase, fault_seed: u64, rate: f64) -> FaultCaseReport {
    install_quiet_panic_hook();
    CAPTURING.with(|c| c.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| run_fault_case_inner(case, fault_seed, rate)));
    CAPTURING.with(|c| c.set(false));
    match result {
        Ok(report) => report,
        Err(payload) => {
            let detail = LAST_PANIC
                .with(|p| p.borrow_mut().take())
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            FaultCaseReport { outcome: FaultOutcome::Panicked { detail }, stats: None }
        }
    }
}

fn run_fault_case_inner(case: &ConformanceCase, fault_seed: u64, rate: f64) -> FaultCaseReport {
    let fail = |outcome: FaultOutcome| FaultCaseReport { outcome, stats: None };
    // `verify_each` off: per-pass IR verification is plain conformance's
    // job; the fault campaign's subject is the execution engine.
    let compiler = Compiler::new()
        .target(case.options.target)
        .num_chunks(case.options.num_chunks)
        .fmac_fusion(case.options.enable_fmac_fusion)
        .inlining(case.options.enable_inlining)
        .coefficient_promotion(case.options.promote_coefficients);
    let artifact = match compiler.compile(&case.program) {
        Ok(artifact) => artifact,
        Err(e) => {
            if e.code() == Some("internal-panic") {
                return fail(FaultOutcome::Panicked { detail: e.message().to_string() });
            }
            return fail(FaultOutcome::Rejected { code: e.code().map(str::to_string) });
        }
    };
    let loaded = artifact.loaded_program().clone();
    let env = LinkOptions::from_env();
    // `validate` and `mutate` flow through from the environment so a
    // `WSE_SIM_VALIDATE_LINK=1` (or mutated) sweep exercises the
    // translation validator on every conformance seed.
    let options = LinkOptions { optimize: true, simd: env.simd, fast_fma: false, ..env };

    // 1. Fault-free, recovery-free baseline: the stream every other run
    //    must reproduce bit for bit.
    let mut baseline = match WseGridSim::with_options(loaded.clone(), options) {
        Ok(sim) => sim,
        Err(e) => {
            return fail(FaultOutcome::EngineFailure { detail: format!("link: {}", e.message) })
        }
    };
    if let Err(e) = baseline.run(None) {
        return fail(FaultOutcome::EngineFailure {
            detail: format!("baseline run: {}", e.message),
        });
    }
    let baseline_state = match baseline.grid_state() {
        Ok(state) => state,
        Err(e) => {
            return fail(FaultOutcome::EngineFailure {
                detail: format!("baseline extract: {}", e.message),
            })
        }
    };

    // 2. Recovery enabled (strict fault-campaign configuration: per-step
    //    verification, tight checkpoint cadence), no faults: checksums
    //    refresh and checkpoints are taken every few steps, and none of
    //    it may be observable.
    let mut transparent = match WseGridSim::with_options(loaded.clone(), options) {
        Ok(sim) => sim,
        Err(e) => {
            return fail(FaultOutcome::EngineFailure { detail: format!("link: {}", e.message) })
        }
    };
    transparent.enable_recovery(RecoveryOptions {
        checkpoint_every: 4,
        verify: true,
        ..RecoveryOptions::default()
    });
    if let Err(e) = transparent.run(None) {
        return fail(FaultOutcome::TransparencyBroken {
            detail: format!("recovery-enabled fault-free run failed: {}", e.message),
        });
    }
    match transparent.grid_state() {
        Ok(state) => {
            if let Some(detail) = bitwise_difference(&baseline_state, &state) {
                return fail(FaultOutcome::TransparencyBroken {
                    detail: format!("recovery-enabled fault-free state diverged: {detail}"),
                });
            }
        }
        Err(e) => {
            return fail(FaultOutcome::TransparencyBroken {
                detail: format!("recovery-enabled extract failed: {}", e.message),
            })
        }
    }
    if let Some(stats) = transparent.recovery_stats() {
        if stats.rollbacks > 0 || stats.checksum_failures > 0 {
            return fail(FaultOutcome::TransparencyBroken {
                detail: format!(
                    "spurious recovery without faults: {} rollbacks, {} checksum failures",
                    stats.rollbacks, stats.checksum_failures
                ),
            });
        }
    }

    // 3. The faulted run: a short watchdog keeps injected stalls cheap,
    //    and a generous rollback budget gives dense campaigns room to
    //    recover; exhausting it is still a *typed* outcome.  Linked with
    //    the optimizer *off* so halo captures survive (capture elision
    //    would remove the delivery-fault surface); the optimizer is
    //    bitwise-transparent, so the baseline comparison is unaffected.
    let mut faulted =
        match WseGridSim::with_options(loaded, LinkOptions { optimize: false, ..options }) {
            Ok(sim) => sim,
            Err(e) => {
                return fail(FaultOutcome::EngineFailure { detail: format!("link: {}", e.message) })
            }
        };
    faulted.inject_faults(FaultOptions { seed: fault_seed, rate });
    faulted.enable_recovery(RecoveryOptions {
        checkpoint_every: 2,
        verify: true,
        max_rollbacks: 64,
        watchdog_ms: 200,
    });
    let run = faulted.run(None);
    let stats = faulted.recovery_stats().copied();
    let outcome = match run {
        Err(e) => FaultOutcome::TypedError { kind: e.kind },
        Ok(()) => match faulted.grid_state() {
            Err(e) => FaultOutcome::EngineFailure {
                detail: format!("faulted extract after successful run: {}", e.message),
            },
            Ok(state) => match bitwise_difference(&baseline_state, &state) {
                None => FaultOutcome::Recovered,
                Some(detail) => FaultOutcome::SilentDivergence { detail },
            },
        },
    };
    FaultCaseReport { outcome, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_case;
    use wse_frontends::benchmarks::Benchmark;
    use wse_lowering::PipelineOptions;

    #[test]
    fn paper_benchmarks_are_conformant() {
        install_quiet_panic_hook();
        for benchmark in Benchmark::ALL {
            let case = ConformanceCase {
                seed: 0,
                program: benchmark.tiny_program(),
                options: PipelineOptions { num_chunks: 2, ..PipelineOptions::default() },
            };
            let verdict = run_case(&case);
            assert!(matches!(verdict, Verdict::Pass { .. }), "{}: {verdict:?}", benchmark.name());
        }
    }

    #[test]
    fn invalid_program_is_a_typed_reject_not_a_panic() {
        install_quiet_panic_hook();
        let mut case = ConformanceCase {
            seed: 0,
            program: Benchmark::Jacobian.tiny_program(),
            options: PipelineOptions::default(),
        };
        case.program.timesteps = 0;
        match run_case(&case) {
            Verdict::Rejected { stage, message, .. } => {
                assert_eq!(stage, "emit-stencil-ir");
                assert!(message.contains("timesteps"), "got: {message}");
            }
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn degree_two_products_lower_and_conform() {
        use wse_frontends::ast::{Expr, StencilEquation};
        install_quiet_panic_hook();
        // Burgers-style advection: the degree-2 body is decomposed onto a
        // scratch field, not rejected, and must agree with the reference
        // across all engine variants.
        let mut program = Benchmark::Jacobian.tiny_program();
        program.equations = vec![StencilEquation::new(
            "a",
            Expr::center("a")
                + (Expr::center("a") * (Expr::center("a") - Expr::at("a", -1, 0, 0))).scale(-0.2),
        )];
        let case = ConformanceCase { seed: 0, program, options: PipelineOptions::default() };
        match run_case(&case) {
            Verdict::Pass { .. } => {}
            other => panic!("expected the product body to pass, got {other:?}"),
        }
        let evidence = case_product_evidence(&case).expect("product case compiles");
        assert!(evidence.product_fields > 0, "decomposition introduced a scratch field");
        assert!(evidence.stats.product_muls > 0, "linked stream multiplies data by data");
    }

    #[test]
    fn degree_above_the_cap_rejects_with_a_machine_readable_code() {
        use wse_frontends::ast::{Expr, StencilEquation};
        install_quiet_panic_hook();
        let mut program = Benchmark::Jacobian.tiny_program();
        program.equations.push(StencilEquation::new(
            "a",
            Expr::center("a") * Expr::center("a") * Expr::center("a"),
        ));
        let case = ConformanceCase { seed: 0, program, options: PipelineOptions::default() };
        match run_case(&case) {
            Verdict::Rejected { code, .. } => {
                assert_eq!(
                    code.as_deref(),
                    Some("non-linear-degree"),
                    "classified without text-matching"
                );
            }
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn fault_campaign_on_a_benchmark_recovers_or_types() {
        install_quiet_panic_hook();
        let mut program = Benchmark::Jacobian.tiny_program();
        program.timesteps = 24;
        let case = ConformanceCase {
            seed: 0,
            program,
            options: PipelineOptions { num_chunks: 2, ..PipelineOptions::default() },
        };
        let report = run_fault_case(&case, 7, 0.5);
        assert!(report.outcome.is_conformant(), "outcome: {:?}", report.outcome);
        let stats = report.stats.expect("the faulted run was reached");
        assert!(stats.faults.total() > 0, "the campaign injected nothing: {stats:?}");
    }

    #[test]
    fn a_sample_of_generated_cases_is_conformant() {
        install_quiet_panic_hook();
        for seed in 0..16u64 {
            let case = generate_case(seed);
            let verdict = run_case(&case);
            assert!(verdict.is_conformant(), "seed {seed}: {verdict:?}");
        }
    }
}
