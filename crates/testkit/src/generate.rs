//! Seeded random stencil-workload generator.
//!
//! [`generate_case`] turns a seed into a [`ConformanceCase`]: a valid
//! [`StencilProgram`] (arbitrary grid extents, star/box stencil shapes,
//! asymmetric offsets, coupled multi-equation systems, optional additive
//! constants) plus a randomized compiler configuration (chunk counts,
//! optimization toggles, WSE2/WSE3 target).  The paper's five benchmarks
//! only exercise a thin slice of the lowering surface; the generator's
//! job is to cover the rest of it.
//!
//! Programs are contractive by construction: each equation's coefficients
//! are normalized so their absolute sum stays below one.  Iterating a
//! contraction keeps field values bounded, which keeps the differential
//! tolerance meaningful (a program whose values blow up to 1e6 would hide
//! real bugs inside float round-off).

use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
use wse_lowering::{PipelineOptions, WseTarget};

use crate::rng::Rng;

/// Bounds on the generated workload space.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Maximum PE-grid extent per horizontal dimension.
    pub max_grid_xy: i64,
    /// Maximum PE-local column length.
    pub max_grid_z: i64,
    /// Maximum number of fields.
    pub max_fields: usize,
    /// Maximum number of equations per timestep.
    pub max_equations: usize,
    /// Maximum stencil radius in x/y (clamped below the grid extent).
    pub max_radius_xy: i64,
    /// Maximum stencil radius in z (clamped below the column length).
    pub max_radius_z: i64,
    /// Maximum number of timesteps.
    pub max_timesteps: i64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            max_grid_xy: 7,
            max_grid_z: 16,
            max_fields: 3,
            max_equations: 3,
            max_radius_xy: 3,
            max_radius_z: 3,
            max_timesteps: 3,
        }
    }
}

/// One generated conformance case: the program and how to compile it.
#[derive(Debug, Clone)]
pub struct ConformanceCase {
    /// Seed the case was generated from (0 for hand-built cases).
    pub seed: u64,
    /// The generated program.
    pub program: StencilProgram,
    /// The compiler configuration to push it through.
    pub options: PipelineOptions,
}

/// The coefficient structure of one generated equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// Offsets only along the axes (like all five paper benchmarks).
    Star,
    /// Any offset in the `[-r, r]` cube, including diagonals.
    Box,
}

/// Generates the conformance case for `seed` under the default bounds.
pub fn generate_case(seed: u64) -> ConformanceCase {
    generate_case_with(seed, &GeneratorConfig::default())
}

/// True when the program contains the shape dependence-aware inlining
/// re-enables: an equation reading its own output field (a self-updating
/// producer), followed by a later equation whose accesses to that field
/// are all at the centre — the forwarded, fusable consumer.
pub fn has_self_updating_chain(program: &StencilProgram) -> bool {
    program.equations.iter().enumerate().any(|(i, eq)| {
        eq.expr.accesses().iter().any(|(f, _)| f == &eq.output)
            && program.equations[i + 1..].iter().any(|later| {
                let reads: Vec<[i64; 3]> = later
                    .expr
                    .accesses()
                    .iter()
                    .filter(|(f, _)| f == &eq.output)
                    .map(|(_, o)| *o)
                    .collect();
                !reads.is_empty() && reads.iter().all(|o| *o == [0, 0, 0])
            })
    })
}

/// Generates the conformance case for `seed` under explicit bounds.
pub fn generate_case_with(seed: u64, config: &GeneratorConfig) -> ConformanceCase {
    let mut rng = Rng::new(seed);

    // Grid: occasionally degenerate (extent 1) to exercise local-only
    // paths, otherwise large enough for remote offsets.
    let nx = if rng.chance(0.08) { 1 } else { rng.int_in(2, config.max_grid_xy) };
    let ny = if rng.chance(0.08) { 1 } else { rng.int_in(2, config.max_grid_xy) };
    let nz = rng.int_in(4, config.max_grid_z);
    let timesteps = rng.int_in(1, config.max_timesteps);

    let num_fields = rng.int_in(1, config.max_fields as i64) as usize;
    let fields: Vec<String> = (0..num_fields).map(|i| format!("f{i}")).collect();
    let num_equations = rng.int_in(1, config.max_equations as i64) as usize;

    let mut equations = Vec::with_capacity(num_equations);
    for _ in 0..num_equations {
        let output = rng.pick(&fields).clone();
        equations.push(generate_equation(&mut rng, config, &fields, &output, nx, ny, nz));
    }

    // Bias toward the shapes dependence-aware inlining re-enables: a
    // self-updating producer whose output a later equation reads at the
    // centre only (the forwarded, fusable consumer), optionally with an
    // unrelated or clobbering apply sandwiched between the pair.  Uniform
    // term/output sampling reaches these shapes too rarely to keep the
    // double-buffer renaming paths under continuous differential test.
    if rng.chance(0.35) {
        equations.splice(0..0, generate_chain(&mut rng, &fields, nz));
    }

    let program = StencilProgram {
        name: format!("gen_{seed}"),
        frontend: Frontend::Csl,
        grid: GridSpec::new(nx, ny, nz),
        fields,
        equations,
        timesteps,
        source: format!("# generated stencil workload, seed {seed}"),
    };
    debug_assert!(program.validate().is_ok(), "generator produced an invalid program");

    let options = PipelineOptions {
        target: if rng.chance(0.5) { WseTarget::Wse2 } else { WseTarget::Wse3 },
        width: None,
        height: None,
        // Indivisible chunk counts are deliberately allowed: the pipeline
        // must fall back to a single chunk, and the harness must agree
        // with the reference either way.
        num_chunks: rng.int_in(1, 4),
        enable_inlining: rng.chance(0.75),
        enable_varith: rng.chance(0.75),
        enable_fmac_fusion: rng.chance(0.75),
        promote_coefficients: rng.chance(0.75),
        verify_each: true,
    };

    ConformanceCase { seed, program, options }
}

/// Generates a self-updating producer → (optional sandwich) → centre-only
/// consumer chain.  Each equation is contractive on its own (coefficient
/// magnitudes sum below one).
fn generate_chain(rng: &mut Rng, fields: &[String], nz: i64) -> Vec<StencilEquation> {
    let producer_field = rng.pick(fields).clone();
    let consumer_field = rng.pick(fields).clone();
    let other = fields.iter().find(|f| **f != producer_field).cloned();
    let dz = if nz > 1 && rng.chance(0.6) { -1 } else { 0 };
    // Producer reads its own output (the self-update hazard), plus —
    // when a second field exists — an input the sandwich may clobber.
    let mut producer_terms = vec![
        Expr::at(&producer_field, 0, 0, dz).scale(rng.float_in(-0.3, 0.3)),
        Expr::center(&producer_field).scale(rng.float_in(-0.3, 0.3)),
    ];
    if let Some(other) = &other {
        if rng.chance(0.6) {
            producer_terms.push(Expr::center(other).scale(rng.float_in(-0.3, 0.3)));
        }
    }
    let producer = StencilEquation::new(&producer_field, Expr::sum(producer_terms));
    // Optional sandwich between producer and consumer: an equation over
    // the second field.  Writing it clobbers a producer input (the
    // rename-the-middle path); occasionally reading the producer's output
    // instead produces the unfusable shape, which must also stay refused
    // and conformant.
    let middle = other.filter(|_| rng.chance(0.5)).map(|other| {
        let read = if rng.chance(0.8) { other.clone() } else { producer_field.clone() };
        StencilEquation::new(
            &other,
            Expr::at(&read, 0, 0, 0).scale(rng.float_in(-0.45, 0.45))
                + Expr::c(rng.float_in(-0.05, 0.05)),
        )
    });
    // Consumer reads the producer's output at the centre only, so the
    // emitter forwards the producer's result and the pair is fusable.
    let mut consumer_terms = vec![Expr::center(&producer_field).scale(rng.float_in(-0.45, 0.45))];
    if consumer_field != producer_field && rng.chance(0.5) {
        consumer_terms.push(Expr::at(&consumer_field, 0, 0, 0).scale(rng.float_in(-0.4, 0.4)));
    }
    let consumer = StencilEquation::new(&consumer_field, Expr::sum(consumer_terms));
    let mut chain = vec![producer];
    chain.extend(middle);
    chain.push(consumer);
    chain
}

/// Generates one contractive linear-combination equation.
fn generate_equation(
    rng: &mut Rng,
    config: &GeneratorConfig,
    fields: &[String],
    output: &str,
    nx: i64,
    ny: i64,
    nz: i64,
) -> StencilEquation {
    let r_xy = config.max_radius_xy.min(nx - 1).min(ny - 1).max(0);
    let r_z = config.max_radius_z.min(nz - 1).max(0);
    let radius_xy = if r_xy > 0 { rng.int_in(0, r_xy) } else { 0 };
    let radius_z = if r_z > 0 { rng.int_in(0, r_z) } else { 0 };
    let shape = if rng.chance(0.35) { Shape::Box } else { Shape::Star };

    // Candidate offsets for the shape; each is kept with some probability
    // so the stencil can be sparse and asymmetric.
    let mut offsets: Vec<[i64; 3]> = Vec::new();
    match shape {
        Shape::Star => {
            for r in 1..=radius_xy {
                offsets.extend([[r, 0, 0], [-r, 0, 0], [0, r, 0], [0, -r, 0]]);
            }
            for r in 1..=radius_z {
                offsets.extend([[0, 0, r], [0, 0, -r]]);
            }
        }
        Shape::Box => {
            for dx in -radius_xy..=radius_xy {
                for dy in -radius_xy..=radius_xy {
                    for dz in -radius_z..=radius_z {
                        if (dx, dy, dz) != (0, 0, 0) {
                            offsets.push([dx, dy, dz]);
                        }
                    }
                }
            }
        }
    }

    let keep_probability = match shape {
        Shape::Star => 0.8,
        Shape::Box => 0.4,
    };
    let mut terms: Vec<(String, [i64; 3], f32)> = Vec::new();
    if rng.chance(0.9) {
        terms.push((rng.pick(fields).clone(), [0, 0, 0], rng.float_in(-1.0, 1.0)));
    }
    for offset in offsets {
        if rng.chance(keep_probability) {
            terms.push((rng.pick(fields).clone(), offset, rng.float_in(-1.0, 1.0)));
        }
    }

    // Normalize to a contraction: sum of |coeff| stays below 1.
    let total: f32 = terms.iter().map(|(_, _, c)| c.abs()).sum();
    if total > 1.0 {
        let scale = 1.0 / (total * 1.05);
        for (_, _, c) in &mut terms {
            *c *= scale;
        }
    }

    let mut expr_terms: Vec<Expr> =
        terms.iter().map(|(field, o, c)| Expr::at(field, o[0], o[1], o[2]).scale(*c)).collect();
    // Occasionally add a small additive constant — no paper benchmark has
    // one, which is exactly why the generator must.
    if expr_terms.is_empty() || rng.chance(0.15) {
        expr_terms.push(Expr::c(rng.float_in(-0.1, 0.1)));
    }
    // Rarely emit a nonlinear term (access * access).  The pipeline only
    // supports linear combinations, so these programs must be *rejected
    // with a typed diagnostic* — a panic anywhere is a conformance
    // failure.  This keeps the rejection path under continuous test.
    if rng.chance(0.04) {
        let field = rng.pick(fields).clone();
        expr_terms.push(Expr::Mul(Box::new(Expr::center(&field)), Box::new(Expr::center(&field))));
    }
    StencilEquation::new(output, Expr::sum(expr_terms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 17, 123_456_789] {
            let a = generate_case(seed);
            let b = generate_case(seed);
            assert_eq!(a.program, b.program, "seed {seed} is not reproducible");
            assert_eq!(a.options.num_chunks, b.options.num_chunks);
            assert_eq!(a.options.target, b.options.target);
        }
    }

    #[test]
    fn generated_programs_validate() {
        for seed in 0..256u64 {
            let case = generate_case(seed);
            case.program
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed} generated an invalid program: {e}"));
            assert!(!case.program.equations.is_empty());
        }
    }

    #[test]
    fn generator_covers_the_shape_space() {
        // Across a modest seed range we must see multi-equation systems,
        // box stencils (diagonal offsets), radius > 1, constants, both
        // targets, and chunked exchanges.
        let cases: Vec<ConformanceCase> = (0..256).map(generate_case).collect();
        assert!(cases.iter().any(|c| c.program.equations.len() > 1));
        assert!(cases.iter().any(|c| c.program.fields.len() > 1));
        assert!(cases.iter().any(|c| c.program.xy_radius() > 1));
        assert!(cases.iter().any(|c| c.options.num_chunks > 1));
        assert!(cases.iter().any(|c| c.options.target == WseTarget::Wse2));
        assert!(cases.iter().any(|c| c.options.target == WseTarget::Wse3));
        let has_diagonal = cases.iter().any(|c| {
            c.program
                .equations
                .iter()
                .any(|eq| eq.expr.accesses().iter().any(|(_, o)| o[0] != 0 && o[1] != 0))
        });
        assert!(has_diagonal, "box stencils must appear");
        let has_constant = cases.iter().any(|c| {
            c.program.equations.iter().any(|eq| eq.expr.flops() == 0 || contains_const(&eq.expr))
        });
        assert!(has_constant);
    }

    fn contains_const(e: &Expr) -> bool {
        match e {
            Expr::Const(c) => *c != 0.0,
            Expr::Access { .. } => false,
            Expr::Add(a, b) | Expr::Sub(a, b) => contains_const(a) || contains_const(b),
            // A `scale` multiplies an access by a constant; only count
            // additive constants (bare Const leaves under Add/Sub).
            Expr::Mul(_, _) => false,
        }
    }
}
