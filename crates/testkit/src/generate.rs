//! Seeded random stencil-workload generator.
//!
//! [`generate_case`] turns a seed into a [`ConformanceCase`]: a valid
//! [`StencilProgram`] (arbitrary grid extents, star/box stencil shapes,
//! asymmetric offsets, coupled multi-equation systems, optional additive
//! constants) plus a randomized compiler configuration (chunk counts,
//! optimization toggles, WSE2/WSE3 target).  The paper's five benchmarks
//! only exercise a thin slice of the lowering surface; the generator's
//! job is to cover the rest of it.
//!
//! Programs are contractive by construction: each equation's coefficients
//! are normalized so their absolute sum stays below one.  Iterating a
//! contraction keeps field values bounded, which keeps the differential
//! tolerance meaningful (a program whose values blow up to 1e6 would hide
//! real bugs inside float round-off).

use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
use wse_lowering::{PipelineOptions, WseTarget};

use crate::rng::Rng;

/// Bounds on the generated workload space.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Maximum PE-grid extent per horizontal dimension.
    pub max_grid_xy: i64,
    /// Maximum PE-local column length.
    pub max_grid_z: i64,
    /// Maximum number of fields.
    pub max_fields: usize,
    /// Maximum number of equations per timestep.
    pub max_equations: usize,
    /// Maximum stencil radius in x/y (clamped below the grid extent).
    pub max_radius_xy: i64,
    /// Maximum stencil radius in z (clamped below the column length).
    pub max_radius_z: i64,
    /// Maximum number of timesteps.
    pub max_timesteps: i64,
    /// Per-equation probability of a degree-2 product term (the shapes
    /// `decompose-products` lowers).  The CI nonlinear profile raises
    /// this so most cases exercise the decomposition.
    pub nonlinear_bias: f64,
    /// Probability of a long-horizon case (≥ 32 timesteps instead of the
    /// usual 1–`max_timesteps`).  Zero by default: the fault-injection
    /// profile raises this so checkpoints, rollbacks and replay have
    /// enough steps to land in.  When zero, the draw is skipped entirely
    /// so existing seed streams are unchanged.
    pub fault_bias: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            max_grid_xy: 7,
            max_grid_z: 16,
            max_fields: 3,
            max_equations: 3,
            max_radius_xy: 3,
            max_radius_z: 3,
            max_timesteps: 3,
            nonlinear_bias: 0.12,
            fault_bias: 0.0,
        }
    }
}

/// One generated conformance case: the program and how to compile it.
#[derive(Debug, Clone)]
pub struct ConformanceCase {
    /// Seed the case was generated from (0 for hand-built cases).
    pub seed: u64,
    /// The generated program.
    pub program: StencilProgram,
    /// The compiler configuration to push it through.
    pub options: PipelineOptions,
}

/// The coefficient structure of one generated equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// Offsets only along the axes (like all five paper benchmarks).
    Star,
    /// Any offset in the `[-r, r]` cube, including diagonals.
    Box,
}

/// A seed produced a program that fails [`StencilProgram::validate`].
///
/// The sweep driver records this as a failure of *that seed* and keeps
/// going; a generator bug must not abort a whole conformance run (and
/// the shrinker must still get to run on any genuinely failing cases the
/// rest of the sweep finds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateError {
    /// The seed whose program failed validation.
    pub seed: u64,
    /// The validation error.
    pub message: String,
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {} generated an invalid program: {}", self.seed, self.message)
    }
}

impl std::error::Error for GenerateError {}

/// Generates the conformance case for `seed` under the default bounds.
pub fn generate_case(seed: u64) -> ConformanceCase {
    generate_case_with(seed, &GeneratorConfig::default())
}

/// Fallible form of [`generate_case`].
pub fn try_generate_case(seed: u64) -> Result<ConformanceCase, GenerateError> {
    try_generate_case_with(seed, &GeneratorConfig::default())
}

/// True when the program contains the shape dependence-aware inlining
/// re-enables: an equation reading its own output field (a self-updating
/// producer), followed by a later equation whose accesses to that field
/// are all at the centre — the forwarded, fusable consumer.
pub fn has_self_updating_chain(program: &StencilProgram) -> bool {
    program.equations.iter().enumerate().any(|(i, eq)| {
        eq.expr.accesses().iter().any(|(f, _)| f == &eq.output)
            && program.equations[i + 1..].iter().any(|later| {
                let reads: Vec<[i64; 3]> = later
                    .expr
                    .accesses()
                    .iter()
                    .filter(|(f, _)| f == &eq.output)
                    .map(|(_, o)| *o)
                    .collect();
                !reads.is_empty() && reads.iter().all(|o| *o == [0, 0, 0])
            })
    })
}

/// True when any equation contains a data×data product — a `Mul` whose
/// operands are both non-constant, i.e. the nonlinear shape the
/// `decompose-products` pass lowers into scratch-field Mul kernels.
pub fn has_product_term(program: &StencilProgram) -> bool {
    fn is_data(e: &Expr) -> bool {
        !matches!(e, Expr::Const(_))
    }
    fn walk(e: &Expr) -> bool {
        match e {
            Expr::Mul(a, b) => (is_data(a) && is_data(b)) || walk(a) || walk(b),
            Expr::Add(a, b) | Expr::Sub(a, b) => walk(a) || walk(b),
            Expr::Const(_) | Expr::Access { .. } => false,
        }
    }
    program.equations.iter().any(|eq| walk(&eq.expr))
}

/// Generates the conformance case for `seed` under explicit bounds,
/// panicking if the seed produces an invalid program.  Sweeps over many
/// seeds should prefer [`try_generate_case_with`], which reports the bad
/// seed instead of aborting the whole run.
pub fn generate_case_with(seed: u64, config: &GeneratorConfig) -> ConformanceCase {
    try_generate_case_with(seed, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Generates the conformance case for `seed` under explicit bounds.
pub fn try_generate_case_with(
    seed: u64,
    config: &GeneratorConfig,
) -> Result<ConformanceCase, GenerateError> {
    let mut rng = Rng::new(seed);

    // Grid: occasionally degenerate (extent 1) to exercise local-only
    // paths, otherwise large enough for remote offsets.
    let nx = if rng.chance(0.08) { 1 } else { rng.int_in(2, config.max_grid_xy) };
    let ny = if rng.chance(0.08) { 1 } else { rng.int_in(2, config.max_grid_xy) };
    let nz = rng.int_in(4, config.max_grid_z);
    // Long-horizon draw first checks the bias so that `fault_bias: 0.0`
    // (the default) consumes no randomness and leaves every pre-existing
    // seed stream bit-identical.
    let timesteps = if config.fault_bias > 0.0 && rng.chance(config.fault_bias) {
        rng.int_in(32, 40)
    } else {
        rng.int_in(1, config.max_timesteps)
    };

    let num_fields = rng.int_in(1, config.max_fields as i64) as usize;
    let fields: Vec<String> = (0..num_fields).map(|i| format!("f{i}")).collect();
    let num_equations = rng.int_in(1, config.max_equations as i64) as usize;

    let mut equations = Vec::with_capacity(num_equations);
    for _ in 0..num_equations {
        let output = rng.pick(&fields).clone();
        equations.push(generate_equation(&mut rng, config, &fields, &output, nx, ny, nz));
    }

    // Bias toward the shapes dependence-aware inlining re-enables: a
    // self-updating producer whose output a later equation reads at the
    // centre only (the forwarded, fusable consumer), optionally with an
    // unrelated or clobbering apply sandwiched between the pair.  Uniform
    // term/output sampling reaches these shapes too rarely to keep the
    // double-buffer renaming paths under continuous differential test.
    if rng.chance(0.35) {
        equations.splice(0..0, generate_chain(&mut rng, &fields, nz));
    }

    let program = StencilProgram {
        name: format!("gen_{seed}"),
        frontend: Frontend::Csl,
        grid: GridSpec::new(nx, ny, nz),
        fields,
        equations,
        timesteps,
        source: format!("# generated stencil workload, seed {seed}"),
    };
    if let Err(message) = program.validate() {
        return Err(GenerateError { seed, message });
    }

    let options = PipelineOptions {
        target: if rng.chance(0.5) { WseTarget::Wse2 } else { WseTarget::Wse3 },
        width: None,
        height: None,
        // Indivisible chunk counts are deliberately allowed: the pipeline
        // must fall back to a single chunk, and the harness must agree
        // with the reference either way.
        num_chunks: rng.int_in(1, 4),
        enable_inlining: rng.chance(0.75),
        enable_varith: rng.chance(0.75),
        enable_fmac_fusion: rng.chance(0.75),
        promote_coefficients: rng.chance(0.75),
        verify_each: true,
    };

    Ok(ConformanceCase { seed, program, options })
}

/// Generates a self-updating producer → (optional sandwich) → centre-only
/// consumer chain.  Each equation is contractive on its own (coefficient
/// magnitudes sum below one).
fn generate_chain(rng: &mut Rng, fields: &[String], nz: i64) -> Vec<StencilEquation> {
    let producer_field = rng.pick(fields).clone();
    let consumer_field = rng.pick(fields).clone();
    let other = fields.iter().find(|f| **f != producer_field).cloned();
    let dz = if nz > 1 && rng.chance(0.6) { -1 } else { 0 };
    // Producer reads its own output (the self-update hazard), plus —
    // when a second field exists — an input the sandwich may clobber.
    let mut producer_terms = vec![
        Expr::at(&producer_field, 0, 0, dz).scale(rng.float_in(-0.3, 0.3)),
        Expr::center(&producer_field).scale(rng.float_in(-0.3, 0.3)),
    ];
    if let Some(other) = &other {
        if rng.chance(0.6) {
            producer_terms.push(Expr::center(other).scale(rng.float_in(-0.3, 0.3)));
        }
    }
    let producer = StencilEquation::new(&producer_field, Expr::sum(producer_terms));
    // Optional sandwich between producer and consumer: an equation over
    // the second field.  Writing it clobbers a producer input (the
    // rename-the-middle path); occasionally reading the producer's output
    // instead produces the unfusable shape, which must also stay refused
    // and conformant.
    let middle = other.filter(|_| rng.chance(0.5)).map(|other| {
        let read = if rng.chance(0.8) { other.clone() } else { producer_field.clone() };
        StencilEquation::new(
            &other,
            Expr::at(&read, 0, 0, 0).scale(rng.float_in(-0.45, 0.45))
                + Expr::c(rng.float_in(-0.05, 0.05)),
        )
    });
    // Consumer reads the producer's output at the centre only, so the
    // emitter forwards the producer's result and the pair is fusable.
    let mut consumer_terms = vec![Expr::center(&producer_field).scale(rng.float_in(-0.45, 0.45))];
    if consumer_field != producer_field && rng.chance(0.5) {
        consumer_terms.push(Expr::at(&consumer_field, 0, 0, 0).scale(rng.float_in(-0.4, 0.4)));
    }
    let consumer = StencilEquation::new(&consumer_field, Expr::sum(consumer_terms));
    let mut chain = vec![producer];
    chain.extend(middle);
    chain.push(consumer);
    chain
}

/// Generates one contractive linear-combination equation.
fn generate_equation(
    rng: &mut Rng,
    config: &GeneratorConfig,
    fields: &[String],
    output: &str,
    nx: i64,
    ny: i64,
    nz: i64,
) -> StencilEquation {
    let r_xy = config.max_radius_xy.min(nx - 1).min(ny - 1).max(0);
    let r_z = config.max_radius_z.min(nz - 1).max(0);
    let radius_xy = if r_xy > 0 { rng.int_in(0, r_xy) } else { 0 };
    let radius_z = if r_z > 0 { rng.int_in(0, r_z) } else { 0 };
    let shape = if rng.chance(0.35) { Shape::Box } else { Shape::Star };

    // Candidate offsets for the shape; each is kept with some probability
    // so the stencil can be sparse and asymmetric.
    let mut offsets: Vec<[i64; 3]> = Vec::new();
    match shape {
        Shape::Star => {
            for r in 1..=radius_xy {
                offsets.extend([[r, 0, 0], [-r, 0, 0], [0, r, 0], [0, -r, 0]]);
            }
            for r in 1..=radius_z {
                offsets.extend([[0, 0, r], [0, 0, -r]]);
            }
        }
        Shape::Box => {
            for dx in -radius_xy..=radius_xy {
                for dy in -radius_xy..=radius_xy {
                    for dz in -radius_z..=radius_z {
                        if (dx, dy, dz) != (0, 0, 0) {
                            offsets.push([dx, dy, dz]);
                        }
                    }
                }
            }
        }
    }

    let keep_probability = match shape {
        Shape::Star => 0.8,
        Shape::Box => 0.4,
    };
    let mut terms: Vec<(String, [i64; 3], f32)> = Vec::new();
    if rng.chance(0.9) {
        terms.push((rng.pick(fields).clone(), [0, 0, 0], rng.float_in(-1.0, 1.0)));
    }
    for offset in offsets {
        if rng.chance(keep_probability) {
            terms.push((rng.pick(fields).clone(), offset, rng.float_in(-1.0, 1.0)));
        }
    }

    // Normalize to a contraction: sum of |coeff| stays below 1.
    let total: f32 = terms.iter().map(|(_, _, c)| c.abs()).sum();
    if total > 1.0 {
        let scale = 1.0 / (total * 1.05);
        for (_, _, c) in &mut terms {
            *c *= scale;
        }
    }

    let mut expr_terms: Vec<Expr> =
        terms.iter().map(|(field, o, c)| Expr::at(field, o[0], o[1], o[2]).scale(*c)).collect();
    // Occasionally add a small additive constant — no paper benchmark has
    // one, which is exactly why the generator must.
    if expr_terms.is_empty() || rng.chance(0.15) {
        expr_terms.push(Expr::c(rng.float_in(-0.1, 0.1)));
    }
    // Degree-2 product terms (access · access) are *supported* shapes:
    // the decompose-products pass splits them onto scratch fields and the
    // rest of the pipeline executes them.  Cover the distinct kernel
    // shapes — a squared centre, a product of two (possibly distinct)
    // fields, a z-shifted factor, and an in-plane remote factor — and
    // sometimes place the product first so it lands in the
    // accumulator-init slot rather than a later Mac.  Initial field
    // values are O(0.1), so a modest coefficient keeps products tiny and
    // the iteration contractive.
    if rng.chance(config.nonlinear_bias) {
        let field = rng.pick(fields).clone();
        let coeff = rng.float_in(-0.4, 0.4);
        let other: String = rng.pick(fields).clone();
        let factor2 = match rng.int_in(0, 3) {
            0 => Expr::center(&field),
            1 => Expr::center(&other),
            2 if nz > 1 => Expr::at(&field, 0, 0, if rng.chance(0.5) { 1 } else { -1 }),
            _ if nx > 1 => {
                let dz = if nz > 1 && rng.chance(0.5) { -1 } else { 0 };
                Expr::at(&other, 1, 0, dz)
            }
            _ => Expr::center(&field),
        };
        let product = (Expr::center(&field) * factor2).scale(coeff);
        if rng.chance(0.4) {
            expr_terms.insert(0, product);
        } else {
            expr_terms.push(product);
        }
    }
    // Degree 3 stays above the cap: these programs must be *rejected
    // with the typed `non-linear-degree` diagnostic* — a panic anywhere
    // is a conformance failure.  Rare, to keep the rejection path under
    // continuous test without eating differential coverage.
    if rng.chance(0.01) {
        let field = rng.pick(fields).clone();
        expr_terms.push(Expr::center(&field) * Expr::center(&field) * Expr::center(&field));
    }
    StencilEquation::new(output, Expr::sum(expr_terms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 17, 123_456_789] {
            let a = generate_case(seed);
            let b = generate_case(seed);
            assert_eq!(a.program, b.program, "seed {seed} is not reproducible");
            assert_eq!(a.options.num_chunks, b.options.num_chunks);
            assert_eq!(a.options.target, b.options.target);
        }
    }

    #[test]
    fn generated_programs_validate() {
        for seed in 0..256u64 {
            // A bad seed is a typed per-seed error, not a sweep abort.
            let case = try_generate_case(seed).unwrap_or_else(|e| panic!("{e}"));
            assert!(case.program.validate().is_ok());
            assert!(!case.program.equations.is_empty());
        }
    }

    #[test]
    fn generate_errors_carry_the_seed() {
        // No valid config reaches the error path (that is the point of
        // `generated_programs_validate`); pin the report format the sweep
        // driver prints when a generator bug does slip through.
        let err = GenerateError { seed: 42, message: "timesteps must be positive".into() };
        assert_eq!(
            err.to_string(),
            "seed 42 generated an invalid program: timesteps must be positive"
        );
    }

    #[test]
    fn generator_covers_the_shape_space() {
        // Across a modest seed range we must see multi-equation systems,
        // box stencils (diagonal offsets), radius > 1, constants, both
        // targets, and chunked exchanges.
        let cases: Vec<ConformanceCase> = (0..256).map(generate_case).collect();
        assert!(cases.iter().any(|c| c.program.equations.len() > 1));
        assert!(cases.iter().any(|c| c.program.fields.len() > 1));
        assert!(cases.iter().any(|c| c.program.xy_radius() > 1));
        assert!(cases.iter().any(|c| c.options.num_chunks > 1));
        assert!(cases.iter().any(|c| c.options.target == WseTarget::Wse2));
        assert!(cases.iter().any(|c| c.options.target == WseTarget::Wse3));
        let has_diagonal = cases.iter().any(|c| {
            c.program
                .equations
                .iter()
                .any(|eq| eq.expr.accesses().iter().any(|(_, o)| o[0] != 0 && o[1] != 0))
        });
        assert!(has_diagonal, "box stencils must appear");
        let has_constant = cases.iter().any(|c| {
            c.program.equations.iter().any(|eq| eq.expr.flops() == 0 || contains_const(&eq.expr))
        });
        assert!(has_constant);
    }

    #[test]
    fn generator_covers_the_product_shapes() {
        // Under a raised bias, a modest seed range must reach every
        // degree-2 product shape the decomposition lowers: squared
        // centres, products of two distinct fields, products with a
        // shifted (remote or z-offset) factor, and a product in the
        // accumulator-init (first-term) position — plus the rare degree-3
        // body that must stay rejected.
        let config = GeneratorConfig { nonlinear_bias: 0.6, ..GeneratorConfig::default() };
        let cases: Vec<ConformanceCase> =
            (0..512).map(|s| generate_case_with(s, &config)).collect();
        let products: Vec<(Expr, Expr, bool)> = cases
            .iter()
            .flat_map(|c| c.program.equations.iter())
            .flat_map(|eq| collect_products(&eq.expr))
            .collect();
        assert!(cases.iter().any(|c| has_product_term(&c.program)));
        assert!(products.iter().any(|(a, b, _)| a == b), "squared terms must appear");
        assert!(
            products.iter().any(
                |(a, b, _)| matches!((field_of(a), field_of(b)), (Some(x), Some(y)) if x != y)
            ),
            "distinct-field products must appear"
        );
        assert!(
            products
                .iter()
                .any(|(_, b, _)| matches!(b, Expr::Access { offset, .. } if *offset != [0, 0, 0])),
            "shifted product factors must appear"
        );
        assert!(products.iter().any(|(_, _, first)| *first), "acc-init products must appear");
        assert!(
            cases.iter().flat_map(|c| c.program.equations.iter()).any(|eq| degree(&eq.expr) > 2),
            "rare degree-3 bodies must appear (the rejection path)"
        );
    }

    #[test]
    fn fault_bias_reaches_long_horizons_without_perturbing_default_streams() {
        let config = GeneratorConfig { fault_bias: 0.75, ..GeneratorConfig::default() };
        let biased: Vec<ConformanceCase> =
            (0..64).map(|s| generate_case_with(s, &config)).collect();
        assert!(
            biased.iter().any(|c| c.program.timesteps >= 32),
            "fault_bias must produce long-horizon cases"
        );
        assert!(
            biased.iter().any(|c| c.program.timesteps < 32),
            "short cases must still appear under the bias"
        );
        // The zero-bias draw consumes no randomness, so an explicit 0.0
        // config generates exactly the default stream.
        let zero = GeneratorConfig { fault_bias: 0.0, ..GeneratorConfig::default() };
        for seed in 0..32u64 {
            assert_eq!(generate_case(seed).program, generate_case_with(seed, &zero).program);
        }
    }

    /// Collects (factor1, factor2, is_first_term) for every data×data
    /// product in a sum-of-terms expression.
    fn collect_products(expr: &Expr) -> Vec<(Expr, Expr, bool)> {
        fn product_of(term: &Expr) -> Option<(Expr, Expr)> {
            match term {
                Expr::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
                    (Expr::Const(_), other) | (other, Expr::Const(_)) => product_of(other),
                    (a, b) => Some((a.clone(), b.clone())),
                },
                _ => None,
            }
        }
        fn terms(e: &Expr, out: &mut Vec<Expr>) {
            match e {
                Expr::Add(a, b) => {
                    terms(a, out);
                    terms(b, out);
                }
                other => out.push(other.clone()),
            }
        }
        let mut flat = Vec::new();
        terms(expr, &mut flat);
        flat.iter()
            .enumerate()
            .filter_map(|(i, t)| product_of(t).map(|(a, b)| (a, b, i == 0)))
            .collect()
    }

    fn field_of(e: &Expr) -> Option<&str> {
        match e {
            Expr::Access { field, .. } => Some(field),
            _ => None,
        }
    }

    fn degree(e: &Expr) -> usize {
        match e {
            Expr::Const(_) => 0,
            Expr::Access { .. } => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) => degree(a).max(degree(b)),
            Expr::Mul(a, b) => degree(a) + degree(b),
        }
    }

    fn contains_const(e: &Expr) -> bool {
        match e {
            Expr::Const(c) => *c != 0.0,
            Expr::Access { .. } => false,
            Expr::Add(a, b) | Expr::Sub(a, b) => contains_const(a) || contains_const(b),
            // A `scale` multiplies an access by a constant; only count
            // additive constants (bare Const leaves under Add/Sub).
            Expr::Mul(_, _) => false,
        }
    }
}
