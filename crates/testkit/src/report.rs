//! Failure reporting: renders a shrunk conformance case as a
//! self-contained, parseable reproducer.
//!
//! The report contains the seed, the compiler configuration, a compact
//! description of the program, and — most importantly — the program's
//! `stencil` dialect IR in the generic textual form, which
//! [`wse_ir::parse_op`] parses back verbatim.  Pasting that IR into a
//! test is enough to replay the failing lowering without the generator.

use std::fmt::Write as _;

use wse_frontends::emit_stencil_ir;
use wse_ir::print_op;

use crate::generate::ConformanceCase;

/// Renders the reproducer for a (typically shrunk) failing case.
pub fn reproducer(case: &ConformanceCase) -> String {
    let mut out = String::new();
    let p = &case.program;
    let _ = writeln!(out, "=== conformance reproducer (seed {}) ===", case.seed);
    let _ = writeln!(
        out,
        "grid: {}x{}x{}  timesteps: {}  fields: {:?}",
        p.grid.x, p.grid.y, p.grid.z, p.timesteps, p.fields
    );
    let _ = writeln!(
        out,
        "options: target={} chunks={} inlining={} varith={} fmac_fusion={} promote_coeffs={}",
        case.options.target.name(),
        case.options.num_chunks,
        case.options.enable_inlining,
        case.options.enable_varith,
        case.options.enable_fmac_fusion,
        case.options.promote_coefficients,
    );
    for eq in &p.equations {
        let _ = writeln!(out, "equation: {} <- {} term(s)", eq.output, eq.expr.accesses().len());
    }
    match emit_stencil_ir(p) {
        Ok(ir) => {
            let _ = writeln!(out, "--- stencil IR (parseable via wse_ir::parse_op) ---");
            out.push_str(&print_op(&ir.ctx, ir.module));
        }
        Err(e) => {
            let _ = writeln!(out, "--- stencil IR unavailable: emission failed: {e} ---");
        }
    }
    let _ = writeln!(out, "=== end reproducer ===");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_case;
    use wse_ir::{parse_op, IrContext};

    #[test]
    fn reproducer_ir_parses_back() {
        let case = generate_case(5);
        let report = reproducer(&case);
        assert!(report.contains("seed 5"));
        let ir_start = report.find("\"builtin.module\"").expect("report contains IR");
        let ir_end = report.find("=== end reproducer ===").unwrap();
        let mut ctx = IrContext::new();
        let module = parse_op(&mut ctx, &report[ir_start..ir_end]).expect("IR round-trips");
        assert_eq!(ctx.op_name(module), "builtin.module");
    }
}
