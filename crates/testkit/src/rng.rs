//! Deterministic pseudo-random number generator for the workload
//! generator.
//!
//! A fixed SplitMix64 stream keeps every generated program a pure
//! function of its seed: the same seed reproduces the same program on
//! every machine and every run, which is what makes failing conformance
//! seeds shareable in bug reports and CI logs.

/// SplitMix64: tiny, fast, and statistically solid for test-case
/// generation (the reference generator from Steele et al.,
/// "Fast splittable pseudorandom number generators").
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.  Every distinct seed yields an
    /// independent-looking stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[lo, hi]` (inclusive; requires `lo <= hi`).
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform float in `[lo, hi)`.
    pub fn float_in(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() % items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(43);
                move |_| r.next_u64()
            })
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.int_in(-3, 9);
            assert!((-3..=9).contains(&v));
            let f = r.float_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }
}
