//! Differential conformance harness entry point.
//!
//! Runs `--cases N` seeded random programs (seeds `--seed .. --seed+N`)
//! through the full pipeline and all three executors.  Prints one summary
//! line per outcome class; on any non-conformant case it shrinks to a
//! minimal reproducer, prints it (with parseable stencil IR) and exits
//! with a non-zero status.
//!
//! Usage: `conformance [--cases N] [--seed S] [--stress] [--soak]
//! [--require-fusion] [--require-products] [--faults] [--verbose]`

use testkit::{
    case_fusion_evidence, case_product_evidence, has_product_term, has_self_updating_chain,
    install_quiet_panic_hook, reproducer, run_case_with_tolerance_via, run_fault_case,
    shape_tolerance, shrink_case, try_generate_case_with, FaultOutcome, GeneratorConfig, Verdict,
    TOLERANCE,
};

fn main() {
    let mut cases: u64 = 64;
    let mut base_seed: u64 = 0;
    let mut verbose = false;
    let mut per_shape_bounds = false;
    let mut require_fusion = false;
    let mut require_products = false;
    let mut through_service = false;
    let mut faults = false;
    let mut config = GeneratorConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => cases = parse_number(args.next(), "--cases"),
            "--seed" => base_seed = parse_number(args.next(), "--seed"),
            "--verbose" => verbose = true,
            // Compiles every case through a shared `CompileService`
            // (pooled IR contexts + artifact cache) instead of a fresh
            // per-case `Compiler`, so the differential evidence also
            // gates the compile-as-a-service path.
            "--service" => through_service = true,
            // Forces `enable_inlining` on for every case and requires the
            // dependence-aware fusion path (double-buffer renaming plus
            // the optimizer blocks it unlocks) to actually fire on at
            // least one self-updating chain, per `LinkedProgram::stats` —
            // a guard against silently regressing to the conservative
            // refusal, which would stay green on pure conformance.
            "--require-fusion" => require_fusion = true,
            // The nonlinear-biased profile: raises the generator's
            // product bias and requires the decompose-products lowering
            // (scratch `__prod` fields plus data×data multiplies in the
            // linked stream, per `LinkedProgram::stats`) to actually fire
            // on at least one conformant seed — a guard against silently
            // regressing degree-2 bodies to the rejection path, which
            // would stay green on pure conformance.
            "--require-products" => require_products = true,
            // The fault-injection campaign: every case runs three times
            // (fault-free baseline, recovery-enabled transparency check,
            // seeded fault plan with detect-and-rollback recovery).  A
            // faulted run must end bitwise-identical to the baseline or
            // surface a typed error — silent divergence fails the sweep,
            // and so does a campaign that never actually exercised the
            // recovery paths (see the aggregate assertions below).
            "--faults" => faults = true,
            // Wider workload space: larger grids/radii, more coupled
            // equations, longer runs.  Slower per case; used for deeper
            // local soaking, not the CI budget.
            "--stress" => {
                config = GeneratorConfig {
                    max_grid_xy: 11,
                    max_grid_z: 24,
                    max_fields: 4,
                    max_equations: 4,
                    max_radius_xy: 4,
                    max_radius_z: 4,
                    max_timesteps: 4,
                    ..GeneratorConfig::default()
                };
            }
            // The nightly soak profile: large grids, deep timestep counts,
            // and per-shape error bounds instead of the flat 1e-3.  Far
            // slower per case than the PR-gating profiles.
            "--soak" => {
                per_shape_bounds = true;
                config = GeneratorConfig {
                    max_grid_xy: 20,
                    max_grid_z: 40,
                    max_fields: 4,
                    max_equations: 4,
                    max_radius_xy: 4,
                    max_radius_z: 4,
                    max_timesteps: 8,
                    ..GeneratorConfig::default()
                };
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: conformance [--cases N] [--seed S] [--stress] [--soak] \
                     [--require-fusion] [--require-products] [--service] [--faults] [--verbose]"
                );
                std::process::exit(2);
            }
        }
    }
    if require_products {
        config.nonlinear_bias = config.nonlinear_bias.max(0.6);
    }
    if faults {
        // Long horizons give checkpoints, rollbacks and replay room to
        // land; slightly smaller grids keep the three-runs-per-case
        // campaign within the CI budget.
        config.fault_bias = config.fault_bias.max(0.75);
        config.max_grid_xy = config.max_grid_xy.min(5);
        config.max_grid_z = config.max_grid_z.min(12);
        run_fault_sweep(cases, base_seed, verbose, &config);
        return;
    }

    install_quiet_panic_hook();
    let start = std::time::Instant::now();
    let (mut passed, mut rejected, mut failed) = (0u64, 0u64, 0u64);
    let mut rejection_classes: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let mut worst_deviation = 0.0f32;
    let (mut chain_cases, mut chain_renamed, mut chain_unlocked) = (0u64, 0u64, 0u64);
    let (mut product_cases, mut product_decomposed) = (0u64, 0u64);

    for seed in base_seed..base_seed + cases {
        // A generator bug fails that seed, not the whole sweep.
        let mut case = match try_generate_case_with(seed, &config) {
            Ok(case) => case,
            Err(error) => {
                failed += 1;
                println!("seed {seed}: GENERATOR FAILURE: {error}");
                continue;
            }
        };
        if require_fusion {
            case.options.enable_inlining = true;
        }
        let tolerance = if per_shape_bounds { shape_tolerance(&case.program) } else { TOLERANCE };
        let verdict = run_case_with_tolerance_via(&case, tolerance, through_service);
        if require_fusion && verdict.is_conformant() && has_self_updating_chain(&case.program) {
            chain_cases += 1;
            if let Some(evidence) = case_fusion_evidence(&case) {
                if evidence.internal_fields > 0 {
                    chain_renamed += 1;
                    let stats = &evidence.stats;
                    if stats.copies_folded > 0
                        || stats.captures_elided > 0
                        || stats.dead_writes_elided > 0
                    {
                        chain_unlocked += 1;
                    }
                }
            }
        }
        if require_products
            && matches!(verdict, Verdict::Pass { .. })
            && has_product_term(&case.program)
        {
            product_cases += 1;
            if let Some(evidence) = case_product_evidence(&case) {
                if evidence.product_fields > 0 && evidence.stats.product_muls > 0 {
                    product_decomposed += 1;
                }
            }
        }
        match &verdict {
            Verdict::Pass { deviation } => {
                passed += 1;
                worst_deviation = worst_deviation.max(*deviation);
                if verbose {
                    println!("seed {seed}: pass (max |Δ| {deviation:.2e})");
                }
            }
            Verdict::Rejected { stage, message, code } => {
                rejected += 1;
                *rejection_classes
                    .entry(code.clone().unwrap_or_else(|| format!("untyped:{stage}")))
                    .or_default() += 1;
                if verbose {
                    println!("seed {seed}: rejected by {stage}: {message}");
                }
            }
            Verdict::Mismatch { .. } | Verdict::Panicked { .. } | Verdict::EngineFailure { .. } => {
                failed += 1;
                let (kind, detail) = match &verdict {
                    Verdict::Panicked { detail } => ("PANIC", detail.clone()),
                    Verdict::EngineFailure { stage, message } => {
                        ("ENGINE FAILURE", format!("{stage}: {message}"))
                    }
                    Verdict::Mismatch { detail } => ("MISMATCH", detail.clone()),
                    _ => unreachable!(),
                };
                println!("seed {seed}: {kind}: {detail}");
                println!("shrinking ...");
                let bound = |candidate: &testkit::ConformanceCase| {
                    if per_shape_bounds {
                        shape_tolerance(&candidate.program)
                    } else {
                        TOLERANCE
                    }
                };
                let shrunk = shrink_case(&case, &|candidate| {
                    !run_case_with_tolerance_via(candidate, bound(candidate), through_service)
                        .is_conformant()
                });
                println!("{}", reproducer(&shrunk));
                let verdict = run_case_with_tolerance_via(&shrunk, bound(&shrunk), through_service);
                println!("final verdict on shrunk case: {verdict:?}");
            }
        }
    }

    println!(
        "conformance: {passed} passed, {rejected} rejected (typed), {failed} failed \
         over {cases} cases in {:.1}s (worst pass deviation {worst_deviation:.2e})",
        start.elapsed().as_secs_f64()
    );
    if !rejection_classes.is_empty() {
        let classes: Vec<String> =
            rejection_classes.iter().map(|(code, n)| format!("{code} x{n}")).collect();
        println!("rejection classes: {}", classes.join(", "));
    }
    if failed > 0 {
        std::process::exit(1);
    }
    if require_fusion {
        println!(
            "require-fusion: {chain_cases} self-updating chains, {chain_renamed} double-buffered, \
             {chain_unlocked} with unlocked optimizer blocks (copy folding / snapshot or \
             dead-write elision)"
        );
        if chain_cases == 0 {
            println!("require-fusion: generator produced no self-updating chains — biasing lost");
            std::process::exit(1);
        }
        if chain_renamed == 0 || chain_unlocked == 0 {
            println!(
                "require-fusion: dependence-aware inlining never fired — the pass has \
                 regressed to the conservative refusal path"
            );
            std::process::exit(1);
        }
    }
    if require_products {
        println!(
            "require-products: {product_cases} conformant product cases, {product_decomposed} \
             with scratch-field decomposition evidence (loaded `__prod` fields + linked \
             data×data multiplies)"
        );
        if product_cases == 0 {
            println!("require-products: generator produced no product bodies — biasing lost");
            std::process::exit(1);
        }
        if product_decomposed == 0 {
            println!(
                "require-products: product decomposition never fired — degree-2 bodies have \
                 regressed to the rejection path"
            );
            std::process::exit(1);
        }
    }
    // A run where (almost) nothing compiles is a silent loss of
    // differential coverage, not a green result: only a small fraction of
    // generated programs (the deliberately nonlinear ones) should be
    // rejected.
    if passed < cases / 2 {
        println!(
            "conformance: only {passed}/{cases} cases compiled and ran — differential \
             coverage has collapsed; treating the run as failed"
        );
        std::process::exit(1);
    }
}

/// Per-step fault event probability for the `--faults` campaign.
const FAULT_RATE: f64 = 0.12;

/// The `--faults` sweep: every seed is run through
/// [`testkit::run_fault_case`]; the sweep fails on any silent
/// divergence, transparency break, panic or engine failure — and also
/// when the campaign never exercised the machinery it claims to cover
/// (zero injected faults of some class, zero rollbacks, zero detected
/// checksum failures or band timeouts would all make a green sweep
/// vacuous).
fn run_fault_sweep(cases: u64, base_seed: u64, verbose: bool, config: &GeneratorConfig) {
    install_quiet_panic_hook();
    let start = std::time::Instant::now();
    let (mut recovered, mut rejected, mut typed, mut failed) = (0u64, 0u64, 0u64, 0u64);
    let mut typed_kinds: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let mut injected = wse_sim::FaultCounts::default();
    let (mut rollbacks, mut steps_replayed) = (0u64, 0u64);
    let (mut checksum_failures, mut delivery_failures) = (0u64, 0u64);
    let (mut band_panics_detected, mut band_timeouts) = (0u64, 0u64);
    let (mut checkpoints_saved, mut pages_shared) = (0u64, 0u64);

    for seed in base_seed..base_seed + cases {
        let case = match try_generate_case_with(seed, config) {
            Ok(case) => case,
            Err(error) => {
                failed += 1;
                println!("seed {seed}: GENERATOR FAILURE: {error}");
                continue;
            }
        };
        // A fault seed decorrelated from the case seed, so re-running a
        // case seed under a different base does not replay the same plan.
        let fault_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA17;
        let report = run_fault_case(&case, fault_seed, FAULT_RATE);
        if let Some(stats) = &report.stats {
            injected.bit_flips += stats.faults.bit_flips;
            injected.drops += stats.faults.drops;
            injected.duplicates += stats.faults.duplicates;
            injected.band_panics += stats.faults.band_panics;
            injected.band_stalls += stats.faults.band_stalls;
            rollbacks += stats.rollbacks;
            steps_replayed += stats.steps_replayed;
            checksum_failures += stats.checksum_failures;
            delivery_failures += stats.delivery_failures;
            band_panics_detected += stats.band_panics;
            band_timeouts += stats.band_timeouts;
            checkpoints_saved += stats.checkpoints_saved;
            pages_shared += stats.checkpoint_pages_shared;
        }
        match &report.outcome {
            FaultOutcome::Recovered => {
                recovered += 1;
                if verbose {
                    println!("seed {seed}: recovered (fault seed {fault_seed:#x})");
                }
            }
            FaultOutcome::Rejected { code } => {
                rejected += 1;
                if verbose {
                    println!("seed {seed}: rejected ({code:?})");
                }
            }
            FaultOutcome::TypedError { kind } => {
                typed += 1;
                *typed_kinds.entry(format!("{kind:?}")).or_default() += 1;
                if verbose {
                    println!("seed {seed}: typed error {kind:?} (fault seed {fault_seed:#x})");
                }
            }
            FaultOutcome::SilentDivergence { detail } => {
                failed += 1;
                println!("seed {seed}: SILENT DIVERGENCE (fault seed {fault_seed:#x}): {detail}");
            }
            FaultOutcome::TransparencyBroken { detail } => {
                failed += 1;
                println!("seed {seed}: TRANSPARENCY BROKEN: {detail}");
            }
            FaultOutcome::Panicked { detail } => {
                failed += 1;
                println!("seed {seed}: PANIC: {detail}");
            }
            FaultOutcome::EngineFailure { detail } => {
                failed += 1;
                println!("seed {seed}: ENGINE FAILURE: {detail}");
            }
        }
    }

    println!(
        "faults: {recovered} recovered, {typed} typed errors, {rejected} rejected, \
         {failed} failed over {cases} cases in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    println!(
        "injected: {} bit flips, {} drops, {} duplicates, {} band panics, {} band stalls",
        injected.bit_flips,
        injected.drops,
        injected.duplicates,
        injected.band_panics,
        injected.band_stalls
    );
    println!(
        "recovery: {rollbacks} rollbacks, {steps_replayed} steps replayed, \
         {checksum_failures} checksum failures, {delivery_failures} delivery failures, \
         {band_panics_detected} band panics, {band_timeouts} band timeouts, \
         {checkpoints_saved} checkpoints ({pages_shared} COW pages shared)"
    );
    if !typed_kinds.is_empty() {
        let kinds: Vec<String> = typed_kinds.iter().map(|(k, n)| format!("{k} x{n}")).collect();
        println!("typed error kinds: {}", kinds.join(", "));
    }
    if failed > 0 {
        std::process::exit(1);
    }
    // A green sweep that never injected or never recovered is vacuous.
    let mut vacuous = Vec::new();
    if injected.bit_flips == 0 {
        vacuous.push("no bit flips injected");
    }
    if injected.drops == 0 && injected.duplicates == 0 {
        vacuous.push("no delivery faults injected");
    }
    if injected.band_panics == 0 {
        vacuous.push("no band panics injected");
    }
    if injected.band_stalls == 0 {
        vacuous.push("no band stalls injected");
    }
    if rollbacks == 0 {
        vacuous.push("no rollbacks occurred");
    }
    if checksum_failures == 0 {
        vacuous.push("no checksum failures detected");
    }
    if band_timeouts == 0 {
        vacuous.push("no band timeouts detected");
    }
    if recovered == 0 {
        vacuous.push("no case recovered bitwise");
    }
    if !vacuous.is_empty() {
        println!("faults: campaign was vacuous — {}", vacuous.join("; "));
        std::process::exit(1);
    }
    if recovered < cases / 2 {
        println!(
            "faults: only {recovered}/{cases} cases recovered — coverage has collapsed; \
             treating the run as failed"
        );
        std::process::exit(1);
    }
}

fn parse_number(value: Option<String>, flag: &str) -> u64 {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a non-negative integer");
        std::process::exit(2);
    })
}
