//! Differential conformance harness entry point.
//!
//! Runs `--cases N` seeded random programs (seeds `--seed .. --seed+N`)
//! through the full pipeline and all three executors.  Prints one summary
//! line per outcome class; on any non-conformant case it shrinks to a
//! minimal reproducer, prints it (with parseable stencil IR) and exits
//! with a non-zero status.
//!
//! Usage: `conformance [--cases N] [--seed S] [--stress] [--soak]
//! [--require-fusion] [--require-products] [--verbose]`

use testkit::{
    case_fusion_evidence, case_product_evidence, has_product_term, has_self_updating_chain,
    install_quiet_panic_hook, reproducer, run_case_with_tolerance_via, shape_tolerance,
    shrink_case, try_generate_case_with, GeneratorConfig, Verdict, TOLERANCE,
};

fn main() {
    let mut cases: u64 = 64;
    let mut base_seed: u64 = 0;
    let mut verbose = false;
    let mut per_shape_bounds = false;
    let mut require_fusion = false;
    let mut require_products = false;
    let mut through_service = false;
    let mut config = GeneratorConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => cases = parse_number(args.next(), "--cases"),
            "--seed" => base_seed = parse_number(args.next(), "--seed"),
            "--verbose" => verbose = true,
            // Compiles every case through a shared `CompileService`
            // (pooled IR contexts + artifact cache) instead of a fresh
            // per-case `Compiler`, so the differential evidence also
            // gates the compile-as-a-service path.
            "--service" => through_service = true,
            // Forces `enable_inlining` on for every case and requires the
            // dependence-aware fusion path (double-buffer renaming plus
            // the optimizer blocks it unlocks) to actually fire on at
            // least one self-updating chain, per `LinkedProgram::stats` —
            // a guard against silently regressing to the conservative
            // refusal, which would stay green on pure conformance.
            "--require-fusion" => require_fusion = true,
            // The nonlinear-biased profile: raises the generator's
            // product bias and requires the decompose-products lowering
            // (scratch `__prod` fields plus data×data multiplies in the
            // linked stream, per `LinkedProgram::stats`) to actually fire
            // on at least one conformant seed — a guard against silently
            // regressing degree-2 bodies to the rejection path, which
            // would stay green on pure conformance.
            "--require-products" => require_products = true,
            // Wider workload space: larger grids/radii, more coupled
            // equations, longer runs.  Slower per case; used for deeper
            // local soaking, not the CI budget.
            "--stress" => {
                config = GeneratorConfig {
                    max_grid_xy: 11,
                    max_grid_z: 24,
                    max_fields: 4,
                    max_equations: 4,
                    max_radius_xy: 4,
                    max_radius_z: 4,
                    max_timesteps: 4,
                    ..GeneratorConfig::default()
                };
            }
            // The nightly soak profile: large grids, deep timestep counts,
            // and per-shape error bounds instead of the flat 1e-3.  Far
            // slower per case than the PR-gating profiles.
            "--soak" => {
                per_shape_bounds = true;
                config = GeneratorConfig {
                    max_grid_xy: 20,
                    max_grid_z: 40,
                    max_fields: 4,
                    max_equations: 4,
                    max_radius_xy: 4,
                    max_radius_z: 4,
                    max_timesteps: 8,
                    ..GeneratorConfig::default()
                };
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: conformance [--cases N] [--seed S] [--stress] [--soak] \
                     [--require-fusion] [--require-products] [--service] [--verbose]"
                );
                std::process::exit(2);
            }
        }
    }
    if require_products {
        config.nonlinear_bias = config.nonlinear_bias.max(0.6);
    }

    install_quiet_panic_hook();
    let start = std::time::Instant::now();
    let (mut passed, mut rejected, mut failed) = (0u64, 0u64, 0u64);
    let mut rejection_classes: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let mut worst_deviation = 0.0f32;
    let (mut chain_cases, mut chain_renamed, mut chain_unlocked) = (0u64, 0u64, 0u64);
    let (mut product_cases, mut product_decomposed) = (0u64, 0u64);

    for seed in base_seed..base_seed + cases {
        // A generator bug fails that seed, not the whole sweep.
        let mut case = match try_generate_case_with(seed, &config) {
            Ok(case) => case,
            Err(error) => {
                failed += 1;
                println!("seed {seed}: GENERATOR FAILURE: {error}");
                continue;
            }
        };
        if require_fusion {
            case.options.enable_inlining = true;
        }
        let tolerance = if per_shape_bounds { shape_tolerance(&case.program) } else { TOLERANCE };
        let verdict = run_case_with_tolerance_via(&case, tolerance, through_service);
        if require_fusion && verdict.is_conformant() && has_self_updating_chain(&case.program) {
            chain_cases += 1;
            if let Some(evidence) = case_fusion_evidence(&case) {
                if evidence.internal_fields > 0 {
                    chain_renamed += 1;
                    let stats = &evidence.stats;
                    if stats.copies_folded > 0
                        || stats.captures_elided > 0
                        || stats.dead_writes_elided > 0
                    {
                        chain_unlocked += 1;
                    }
                }
            }
        }
        if require_products
            && matches!(verdict, Verdict::Pass { .. })
            && has_product_term(&case.program)
        {
            product_cases += 1;
            if let Some(evidence) = case_product_evidence(&case) {
                if evidence.product_fields > 0 && evidence.stats.product_muls > 0 {
                    product_decomposed += 1;
                }
            }
        }
        match &verdict {
            Verdict::Pass { deviation } => {
                passed += 1;
                worst_deviation = worst_deviation.max(*deviation);
                if verbose {
                    println!("seed {seed}: pass (max |Δ| {deviation:.2e})");
                }
            }
            Verdict::Rejected { stage, message, code } => {
                rejected += 1;
                *rejection_classes
                    .entry(code.clone().unwrap_or_else(|| format!("untyped:{stage}")))
                    .or_default() += 1;
                if verbose {
                    println!("seed {seed}: rejected by {stage}: {message}");
                }
            }
            Verdict::Mismatch { .. } | Verdict::Panicked { .. } | Verdict::EngineFailure { .. } => {
                failed += 1;
                let (kind, detail) = match &verdict {
                    Verdict::Panicked { detail } => ("PANIC", detail.clone()),
                    Verdict::EngineFailure { stage, message } => {
                        ("ENGINE FAILURE", format!("{stage}: {message}"))
                    }
                    Verdict::Mismatch { detail } => ("MISMATCH", detail.clone()),
                    _ => unreachable!(),
                };
                println!("seed {seed}: {kind}: {detail}");
                println!("shrinking ...");
                let bound = |candidate: &testkit::ConformanceCase| {
                    if per_shape_bounds {
                        shape_tolerance(&candidate.program)
                    } else {
                        TOLERANCE
                    }
                };
                let shrunk = shrink_case(&case, &|candidate| {
                    !run_case_with_tolerance_via(candidate, bound(candidate), through_service)
                        .is_conformant()
                });
                println!("{}", reproducer(&shrunk));
                let verdict = run_case_with_tolerance_via(&shrunk, bound(&shrunk), through_service);
                println!("final verdict on shrunk case: {verdict:?}");
            }
        }
    }

    println!(
        "conformance: {passed} passed, {rejected} rejected (typed), {failed} failed \
         over {cases} cases in {:.1}s (worst pass deviation {worst_deviation:.2e})",
        start.elapsed().as_secs_f64()
    );
    if !rejection_classes.is_empty() {
        let classes: Vec<String> =
            rejection_classes.iter().map(|(code, n)| format!("{code} x{n}")).collect();
        println!("rejection classes: {}", classes.join(", "));
    }
    if failed > 0 {
        std::process::exit(1);
    }
    if require_fusion {
        println!(
            "require-fusion: {chain_cases} self-updating chains, {chain_renamed} double-buffered, \
             {chain_unlocked} with unlocked optimizer blocks (copy folding / snapshot or \
             dead-write elision)"
        );
        if chain_cases == 0 {
            println!("require-fusion: generator produced no self-updating chains — biasing lost");
            std::process::exit(1);
        }
        if chain_renamed == 0 || chain_unlocked == 0 {
            println!(
                "require-fusion: dependence-aware inlining never fired — the pass has \
                 regressed to the conservative refusal path"
            );
            std::process::exit(1);
        }
    }
    if require_products {
        println!(
            "require-products: {product_cases} conformant product cases, {product_decomposed} \
             with scratch-field decomposition evidence (loaded `__prod` fields + linked \
             data×data multiplies)"
        );
        if product_cases == 0 {
            println!("require-products: generator produced no product bodies — biasing lost");
            std::process::exit(1);
        }
        if product_decomposed == 0 {
            println!(
                "require-products: product decomposition never fired — degree-2 bodies have \
                 regressed to the rejection path"
            );
            std::process::exit(1);
        }
    }
    // A run where (almost) nothing compiles is a silent loss of
    // differential coverage, not a green result: only a small fraction of
    // generated programs (the deliberately nonlinear ones) should be
    // rejected.
    if passed < cases / 2 {
        println!(
            "conformance: only {passed}/{cases} cases compiled and ran — differential \
             coverage has collapsed; treating the run as failed"
        );
        std::process::exit(1);
    }
}

fn parse_number(value: Option<String>, flag: &str) -> u64 {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a non-negative integer");
        std::process::exit(2);
    })
}
