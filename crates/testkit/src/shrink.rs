//! Greedy test-case shrinking.
//!
//! When a generated case fails conformance, [`shrink_case`] searches for a
//! smaller case that still fails, so the reproducer attached to the
//! report is close to minimal: fewer timesteps, a smaller grid, fewer
//! equations, fewer terms, rounder coefficients, and default compiler
//! options — whatever can be removed while preserving the failure.

use wse_frontends::ast::{Expr, StencilProgram};

use crate::generate::ConformanceCase;

/// Shrinks `case` while `still_fails` holds, returning the smallest case
/// found.  The predicate must treat panics as failures (the conformance
/// driver's [`crate::conformance::run_case`] already does).
pub fn shrink_case(
    case: &ConformanceCase,
    still_fails: &dyn Fn(&ConformanceCase) -> bool,
) -> ConformanceCase {
    let mut best = case.clone();
    // Greedy fixpoint: retry the whole candidate list until no single
    // transformation keeps the failure alive.  The budget bounds runtime
    // on pathological predicates.
    let mut budget = 500usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if budget == 0 {
                return best;
            }
            budget -= 1;
            if candidate.program.validate().is_ok() && still_fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// All one-step shrink candidates of a case, most aggressive first.
fn candidates(case: &ConformanceCase) -> Vec<ConformanceCase> {
    let mut out = Vec::new();
    let p = &case.program;

    // Fewer timesteps.
    if p.timesteps > 1 {
        out.push(with_program(case, |p| p.timesteps = 1));
        out.push(with_program(case, |p| p.timesteps -= 1));
    }
    // Smaller grid (halve, then decrement).
    for (get, set) in AXES {
        let extent = get(p);
        if extent > 1 {
            out.push(with_program(case, |p| set(p, (extent / 2).max(1))));
            out.push(with_program(case, |p| set(p, extent - 1)));
        }
    }
    // Drop whole equations.
    if p.equations.len() > 1 {
        for i in 0..p.equations.len() {
            out.push(with_program(case, |p| {
                p.equations.remove(i);
            }));
        }
    }
    // Drop unused fields.
    if p.fields.len() > 1 {
        for field in p.fields.clone() {
            let used = p.equations.iter().any(|eq| {
                eq.output == field || eq.expr.accesses().iter().any(|(f, _)| *f == field)
            });
            if !used {
                out.push(with_program(case, |p| p.fields.retain(|f| *f != field)));
            }
        }
    }
    // Drop one term from one equation.
    for (ei, eq) in p.equations.iter().enumerate() {
        let terms = flatten_terms(&eq.expr);
        if terms.len() > 1 {
            for ti in 0..terms.len() {
                let mut kept = terms.clone();
                kept.remove(ti);
                let rebuilt = rebuild(&kept);
                out.push(with_program(case, |p| p.equations[ei].expr = rebuilt.clone()));
            }
        }
        // Round coefficients to one decimal (keeps the failure readable).
        let rounded: Vec<Expr> = terms.iter().map(|t| round_coefficients(t.clone())).collect();
        if rebuild(&rounded) != eq.expr {
            let rebuilt = rebuild(&rounded);
            out.push(with_program(case, |p| p.equations[ei].expr = rebuilt.clone()));
        }
    }
    // Simpler compiler options.
    if case.options.num_chunks > 1 {
        out.push(with_options(case, |o| o.num_chunks = 1));
    }
    let toggles: [fn(&mut wse_lowering::PipelineOptions); 4] = [
        |o| o.enable_inlining = true,
        |o| o.enable_varith = true,
        |o| o.enable_fmac_fusion = true,
        |o| o.promote_coefficients = true,
    ];
    for toggle in toggles {
        let candidate = with_options(case, toggle);
        if options_differ(&candidate.options, &case.options) {
            out.push(candidate);
        }
    }
    out
}

/// The grid axes as accessor pairs (workaround for borrowck in the loop).
type AxisGet = fn(&StencilProgram) -> i64;
type AxisSet = fn(&mut StencilProgram, i64);
const AXES: [(AxisGet, AxisSet); 3] = [
    (|p| p.grid.x, |p, v| p.grid.x = v),
    (|p| p.grid.y, |p, v| p.grid.y = v),
    (|p| p.grid.z, |p, v| p.grid.z = v),
];

fn with_program(case: &ConformanceCase, edit: impl FnOnce(&mut StencilProgram)) -> ConformanceCase {
    let mut out = case.clone();
    edit(&mut out.program);
    out
}

fn with_options(
    case: &ConformanceCase,
    edit: impl FnOnce(&mut wse_lowering::PipelineOptions),
) -> ConformanceCase {
    let mut out = case.clone();
    edit(&mut out.options);
    out
}

fn options_differ(a: &wse_lowering::PipelineOptions, b: &wse_lowering::PipelineOptions) -> bool {
    a.num_chunks != b.num_chunks
        || a.enable_inlining != b.enable_inlining
        || a.enable_varith != b.enable_varith
        || a.enable_fmac_fusion != b.enable_fmac_fusion
        || a.promote_coefficients != b.promote_coefficients
}

/// Splits a sum-of-products expression into its additive terms.
fn flatten_terms(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Add(a, b) => {
            let mut out = flatten_terms(a);
            out.extend(flatten_terms(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Rebuilds a sum from terms (empty sums become the constant 0).
fn rebuild(terms: &[Expr]) -> Expr {
    Expr::sum(terms.iter().cloned())
}

/// Rounds every constant inside a term to one decimal place.
fn round_coefficients(expr: Expr) -> Expr {
    match expr {
        Expr::Const(c) => Expr::Const((c * 10.0).round() / 10.0),
        Expr::Access { .. } => expr,
        Expr::Add(a, b) => {
            Expr::Add(Box::new(round_coefficients(*a)), Box::new(round_coefficients(*b)))
        }
        Expr::Sub(a, b) => {
            Expr::Sub(Box::new(round_coefficients(*a)), Box::new(round_coefficients(*b)))
        }
        Expr::Mul(a, b) => {
            Expr::Mul(Box::new(round_coefficients(*a)), Box::new(round_coefficients(*b)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_case;

    #[test]
    fn shrinking_reduces_a_case_under_an_artificial_failure() {
        // Pretend any program with >= 2 equations "fails": the shrinker
        // must reduce everything else to the floor while keeping 2
        // equations alive.
        let case = generate_case(11);
        let failing = |c: &ConformanceCase| c.program.equations.len() >= 2;
        if !failing(&case) {
            return; // seed without a multi-equation program
        }
        let shrunk = shrink_case(&case, &failing);
        assert_eq!(shrunk.program.equations.len(), 2);
        assert_eq!(shrunk.program.timesteps, 1);
        assert!(shrunk.program.validate().is_ok());
        assert!(shrunk.program.grid.points() <= case.program.grid.points());
    }

    #[test]
    fn shrinking_never_produces_an_invalid_program() {
        let case = generate_case(3);
        let shrunk = shrink_case(&case, &|c| c.program.grid.z >= 4);
        assert!(shrunk.program.validate().is_ok());
        assert_eq!(shrunk.program.grid.z, 4);
    }
}
