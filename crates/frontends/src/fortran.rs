//! A miniature Flang-style Fortran front-end.
//!
//! The paper's Flang integration extracts stencils from ordinary Fortran
//! loop nests (Listing 1).  This module provides the same capability at a
//! miniature scale: it parses a restricted Fortran subset — `real`
//! declarations, a `do step` time loop, a triply-nested spatial loop and
//! array assignments whose indices are `k`, `j`, `i` plus constant offsets
//! — and produces a [`StencilProgram`].

use std::collections::BTreeMap;

use crate::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};

/// Error produced while parsing Fortran input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FortranError {
    /// 1-based line number of the offending line (0 when unknown).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for FortranError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fortran parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FortranError {}

fn err(line: usize, message: impl Into<String>) -> FortranError {
    FortranError { line, message: message.into() }
}

/// Parses a Fortran stencil kernel into a [`StencilProgram`].
///
/// The recognized subset is: `real :: A(z,y,x), ...` declarations, an
/// optional outer `do step = 1, N` time loop, spatial loops over `i`, `j`,
/// `k` (x, y and z respectively) and assignments of the form
/// `A(k,j,i) = expression` where the expression uses `+`, `-`, `*`,
/// parentheses, literals and array references with constant offsets.
///
/// # Errors
/// Returns a [`FortranError`] describing the first malformed line.
pub fn parse_fortran(name: &str, source: &str) -> Result<StencilProgram, FortranError> {
    let mut fields: Vec<String> = Vec::new();
    let mut declared_shapes: BTreeMap<String, [i64; 3]> = BTreeMap::new();
    let mut timesteps: i64 = 1;
    let mut loop_extents: Vec<i64> = Vec::new();
    let mut equations: Vec<StencilEquation> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split('!').next().unwrap_or("").trim().to_lowercase();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("real") {
            let decls = line
                .split("::")
                .nth(1)
                .ok_or_else(|| err(line_no, "malformed real declaration"))?;
            for decl in split_top_level(decls) {
                let decl = decl.trim();
                if decl.is_empty() {
                    continue;
                }
                let (fname, shape) = parse_declaration(decl, line_no)?;
                fields.push(fname.clone());
                declared_shapes.insert(fname, shape);
            }
        } else if let Some(rest) = line.strip_prefix("do ") {
            let (var, bounds) =
                rest.split_once('=').ok_or_else(|| err(line_no, "malformed do statement"))?;
            let var = var.trim();
            let mut parts = bounds.split(',');
            let lb: i64 = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| err(line_no, "missing loop lower bound"))?;
            let ub: i64 = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| err(line_no, "missing loop upper bound"))?;
            if var == "step" || var == "t" || var == "time" {
                timesteps = ub - lb + 1;
            } else {
                loop_extents.push(ub - lb + 1);
            }
        } else if line.starts_with("enddo") || line.starts_with("end do") || line.starts_with("end")
        {
            // Loop nesting is implied by order; nothing to do.
        } else if line.contains('=') {
            let (lhs, rhs) =
                line.split_once('=').ok_or_else(|| err(line_no, "malformed assignment"))?;
            let (out_field, out_offset) = parse_array_ref(lhs.trim(), line_no)?;
            if out_offset != [0, 0, 0] {
                return Err(err(line_no, "assignments must target the centre cell"));
            }
            let expr = ExprParser::new(rhs.trim(), line_no).parse()?;
            equations.push(StencilEquation::new(&out_field, expr));
        } else {
            return Err(err(line_no, format!("unrecognized statement: {line:?}")));
        }
    }

    if fields.is_empty() {
        return Err(err(0, "no field declarations found"));
    }
    if equations.is_empty() {
        return Err(err(0, "no stencil assignments found"));
    }

    // Grid interior: prefer spatial loop extents (i, j, k declared outermost
    // to innermost = x, y, z); fall back to the declared array shape.
    let grid = if loop_extents.len() >= 3 {
        GridSpec::new(loop_extents[0], loop_extents[1], loop_extents[2])
    } else {
        let shape = declared_shapes.values().next().copied().unwrap_or([16, 16, 16]);
        // Declarations are written A(z, y, x).
        GridSpec::new(shape[2], shape[1], shape[0])
    };

    let program = StencilProgram {
        name: name.to_string(),
        frontend: Frontend::Flang,
        grid,
        fields,
        equations,
        timesteps,
        source: source.to_string(),
    };
    program.validate().map_err(|m| err(0, m))?;
    Ok(program)
}

/// Splits on commas that are not inside parentheses.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

fn parse_declaration(decl: &str, line: usize) -> Result<(String, [i64; 3]), FortranError> {
    let open = decl.find('(').ok_or_else(|| err(line, "declaration missing dimensions"))?;
    let close = decl.rfind(')').ok_or_else(|| err(line, "declaration missing ')'"))?;
    let name = decl[..open].trim().to_string();
    let dims: Vec<i64> = decl[open + 1..close]
        .split(',')
        .map(|d| d.trim().parse::<i64>().map_err(|_| err(line, "bad dimension")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(err(line, "only rank-3 arrays are supported"));
    }
    Ok((name, [dims[0], dims[1], dims[2]]))
}

/// Parses `a(k, j+1, i-1)` into a field name and offset `[dx, dy, dz]`.
fn parse_array_ref(text: &str, line: usize) -> Result<(String, [i64; 3]), FortranError> {
    let open = text.find('(').ok_or_else(|| err(line, "expected array reference"))?;
    let close = text.rfind(')').ok_or_else(|| err(line, "array reference missing ')'"))?;
    let name = text[..open].trim().to_string();
    let indices: Vec<&str> = text[open + 1..close].split(',').map(str::trim).collect();
    if indices.len() != 3 {
        return Err(err(line, "array references must have three indices"));
    }
    // Index order in the Fortran source is (k, j, i) = (z, y, x).
    let dz = parse_index(indices[0], "k", line)?;
    let dy = parse_index(indices[1], "j", line)?;
    let dx = parse_index(indices[2], "i", line)?;
    Ok((name, [dx, dy, dz]))
}

fn parse_index(index: &str, var: &str, line: usize) -> Result<i64, FortranError> {
    let index = index.replace(' ', "");
    if index == var {
        return Ok(0);
    }
    if let Some(rest) = index.strip_prefix(&format!("{var}+")) {
        return rest.parse().map_err(|_| err(line, format!("bad offset in index {index:?}")));
    }
    if let Some(rest) = index.strip_prefix(&format!("{var}-")) {
        let v: i64 =
            rest.parse().map_err(|_| err(line, format!("bad offset in index {index:?}")))?;
        return Ok(-v);
    }
    Err(err(line, format!("index {index:?} must be {var} plus/minus a constant")))
}

/// Recursive-descent parser for the right-hand side of an assignment.
struct ExprParser<'a> {
    text: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> ExprParser<'a> {
    fn new(text: &'a str, line: usize) -> Self {
        Self { text: text.as_bytes(), pos: 0, line }
    }

    fn parse(&mut self) -> Result<Expr, FortranError> {
        let e = self.parse_add()?;
        self.skip_ws();
        if self.pos != self.text.len() {
            return Err(err(self.line, "trailing characters in expression"));
        }
        Ok(e)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.text.get(self.pos).copied()
    }

    fn parse_add(&mut self) -> Result<Expr, FortranError> {
        let mut lhs = self.parse_mul()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = lhs + rhs;
                }
                Some(b'-') => {
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = lhs - rhs;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, FortranError> {
        let mut lhs = self.parse_atom()?;
        while self.peek() == Some(b'*') {
            self.pos += 1;
            let rhs = self.parse_atom()?;
            lhs = lhs * rhs;
        }
        Ok(lhs)
    }

    fn parse_atom(&mut self) -> Result<Expr, FortranError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.parse_add()?;
                if self.peek() != Some(b')') {
                    return Err(err(self.line, "missing closing parenthesis"));
                }
                self.pos += 1;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.parse_number(),
            Some(c) if c.is_ascii_alphabetic() => self.parse_reference(),
            _ => Err(err(self.line, "expected a value")),
        }
    }

    fn parse_number(&mut self) -> Result<Expr, FortranError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.text.len()
            && (self.text[self.pos].is_ascii_digit()
                || self.text[self.pos] == b'.'
                || self.text[self.pos] == b'e'
                || self.text[self.pos] == b'-'
                    && self.pos > start
                    && self.text[self.pos - 1] == b'e')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.text[start..self.pos]).unwrap_or("");
        text.parse::<f32>()
            .map(Expr::Const)
            .map_err(|_| err(self.line, format!("bad numeric literal {text:?}")))
    }

    fn parse_reference(&mut self) -> Result<Expr, FortranError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.text.len()
            && (self.text[self.pos].is_ascii_alphanumeric() || self.text[self.pos] == b'_')
        {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.text[start..self.pos]).unwrap_or("").to_string();
        if self.peek() != Some(b'(') {
            return Err(err(self.line, format!("scalar variable {name:?} is not supported")));
        }
        // Consume the balanced index list.
        let open = self.pos;
        let mut depth = 0usize;
        while self.pos < self.text.len() {
            match self.text[self.pos] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        let full =
            format!("{name}{}", std::str::from_utf8(&self.text[open..self.pos]).unwrap_or(""));
        let (field, offset) = parse_array_ref(&full, self.line)?;
        Ok(Expr::Access { field, offset: [offset[0], offset[1], offset[2]] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING1: &str = r"
real :: data(512, 256, 256)
do i = 2, 255
  do j = 2, 255
    do k = 2, 511
      data(k,j,i) = (data(k,j,i) + data(k,j,i+1)) * 0.12345
    enddo
  enddo
enddo
";

    #[test]
    fn parses_listing1() {
        let program = parse_fortran("listing1", LISTING1).expect("parse");
        assert_eq!(program.frontend, Frontend::Flang);
        assert_eq!(program.fields, vec!["data".to_string()]);
        assert_eq!(program.grid, GridSpec::new(254, 254, 510));
        assert_eq!(program.timesteps, 1);
        assert_eq!(program.equations.len(), 1);
        let eq = &program.equations[0];
        assert_eq!(eq.output, "data");
        assert_eq!(eq.num_points(), 2);
        assert_eq!(eq.xy_radius(), 1);
        assert_eq!(eq.expr.flops(), 2);
    }

    #[test]
    fn parses_time_loop_and_two_fields() {
        let src = r"
real :: a(64, 32, 32), b(64, 32, 32)
do step = 1, 10
  do i = 1, 30
    do j = 1, 30
      do k = 1, 62
        a(k,j,i) = (a(k,j,i) + a(k,j,i+1) + a(k,j,i-1) + a(k,j+1,i) + a(k,j-1,i) + a(k+1,j,i) + a(k-1,j,i)) * 0.1666
        b(k,j,i) = (b(k,j+1,i) + b(k,j-1,i) + a(k,j,i)) * 0.5
      enddo
    enddo
  enddo
enddo
";
        let program = parse_fortran("two_fields", src).expect("parse");
        assert_eq!(program.timesteps, 10);
        assert_eq!(program.fields.len(), 2);
        assert_eq!(program.equations.len(), 2);
        assert_eq!(program.equations[0].num_points(), 7);
        assert_eq!(program.grid, GridSpec::new(30, 30, 62));
        assert_eq!(program.communicated_fields(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn z_offsets_are_local() {
        let src = r"
real :: u(64, 16, 16)
do i = 1, 14
 do j = 1, 14
  do k = 2, 63
   u(k,j,i) = (u(k+1,j,i) + u(k-1,j,i)) * 0.5
  enddo
 enddo
enddo
";
        let program = parse_fortran("zonly", src).expect("parse");
        assert_eq!(program.equations[0].xy_radius(), 0);
        assert_eq!(program.equations[0].z_radius(), 1);
        assert!(program.communicated_fields().is_empty());
    }

    #[test]
    fn rejects_unknown_field() {
        let src = r"
real :: u(8, 8, 8)
do i = 1, 6
 do j = 1, 6
  do k = 1, 6
   u(k,j,i) = w(k,j,i) * 2.0
  enddo
 enddo
enddo
";
        assert!(parse_fortran("bad", src).is_err());
    }

    #[test]
    fn rejects_variable_offsets() {
        let src = r"
real :: u(8, 8, 8)
do i = 1, 6
 do j = 1, 6
  do k = 1, 6
   u(k,j,i) = u(k,j,m) * 2.0
  enddo
 enddo
enddo
";
        let e = parse_fortran("bad", src).unwrap_err();
        assert!(e.message.contains("plus/minus a constant"));
    }

    #[test]
    fn rejects_offcentre_assignment() {
        let src = r"
real :: u(8, 8, 8)
do i = 1, 6
 do j = 1, 6
  do k = 1, 6
   u(k,j,i+1) = u(k,j,i) * 2.0
  enddo
 enddo
enddo
";
        let e = parse_fortran("bad", src).unwrap_err();
        assert!(e.message.contains("centre cell"));
    }
}
