//! # wse-frontends — miniature stencil front-ends and the paper benchmarks
//!
//! The paper drives its pipeline from three existing front-ends (Flang,
//! Devito and PSyclone), all of which emit the MLIR/xDSL `stencil`
//! dialect.  This crate provides miniature equivalents of the three
//! front-ends plus the five evaluation benchmarks:
//!
//! * [`ast`] — a front-end-agnostic description of a stencil program;
//! * [`fortran`] — a Flang-like parser for Fortran loop nests;
//! * [`devito`] — a Devito-like symbolic builder (grids, functions,
//!   Laplacians, operators);
//! * [`psyclone`] — a PSyclone-like algorithm/kernel builder;
//! * [`to_stencil`] — emission of the `stencil` dialect, the point where
//!   all front-ends converge;
//! * [`benchmarks`] — Jacobian, Diffusion, Acoustic, 25-point Seismic and
//!   UVKBE at the paper's problem sizes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod benchmarks;
pub mod devito;
pub mod fortran;
pub mod psyclone;
pub mod to_stencil;

pub use ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
pub use benchmarks::{Benchmark, ProblemSize};
pub use to_stencil::{emit_stencil_ir, emit_stencil_ir_into, StencilIr};
