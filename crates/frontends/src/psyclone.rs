//! A miniature PSyclone-style front-end.
//!
//! PSyclone users write Fortran kernels plus an "algorithm layer" that
//! invokes them over fields; the PSyclone compiler stitches these together
//! and (in the paper, via xDSL) emits the stencil dialect.  This module
//! mirrors that structure: an [`Algorithm`] declares fields and a sequence
//! of [`Kernel`] invocations, each kernel being a stencil update.

use crate::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};

/// A PSyclone kernel: one stencil update over the grid interior.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel (subroutine) name.
    pub name: String,
    /// Field written by the kernel.
    pub writes: String,
    /// Right-hand side expression.
    pub expr: Expr,
}

impl Kernel {
    /// Creates a kernel.
    pub fn new(name: &str, writes: &str, expr: Expr) -> Self {
        Self { name: name.to_string(), writes: writes.to_string(), expr }
    }
}

/// A PSyclone algorithm layer: fields plus an ordered list of kernel calls.
#[derive(Debug, Clone, Default)]
pub struct Algorithm {
    name: String,
    grid: Option<GridSpec>,
    fields: Vec<String>,
    kernels: Vec<Kernel>,
    timesteps: i64,
}

impl Algorithm {
    /// Creates an algorithm named `name`.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), timesteps: 1, ..Default::default() }
    }

    /// Sets the grid extents.
    pub fn grid(mut self, x: i64, y: i64, z: i64) -> Self {
        self.grid = Some(GridSpec::new(x, y, z));
        self
    }

    /// Declares a field.
    pub fn field(mut self, name: &str) -> Self {
        self.fields.push(name.to_string());
        self
    }

    /// Adds a kernel invocation (`invoke(kernel_type(field, ...))`).
    pub fn invoke(mut self, kernel: Kernel) -> Self {
        self.kernels.push(kernel);
        self
    }

    /// Sets the number of timesteps the algorithm is run for.
    pub fn timesteps(mut self, timesteps: i64) -> Self {
        self.timesteps = timesteps;
        self
    }

    /// Builds the front-end-agnostic stencil program.
    ///
    /// # Errors
    /// Returns an error if no grid was set or validation fails.
    pub fn build(self) -> Result<StencilProgram, String> {
        let grid = self.grid.ok_or("algorithm requires a grid")?;
        let source = self.synthesize_source();
        let program = StencilProgram {
            name: self.name,
            frontend: Frontend::PSyclone,
            grid,
            fields: self.fields,
            equations: self
                .kernels
                .iter()
                .map(|k| StencilEquation::new(&k.writes, k.expr.clone()))
                .collect(),
            timesteps: self.timesteps,
            source,
        };
        program.validate()?;
        Ok(program)
    }

    /// Synthesizes the Fortran algorithm-layer source a PSyclone user would
    /// write (for the Table 1 LoC comparison).
    fn synthesize_source(&self) -> String {
        let mut src = String::new();
        src.push_str(&format!("program {}\n", self.name));
        src.push_str("  use psyclone_mod, only: invoke\n");
        for f in &self.fields {
            src.push_str(&format!("  type(field_type) :: {f}\n"));
        }
        if let Some(grid) = self.grid {
            src.push_str(&format!("  call init_grid({}, {}, {})\n", grid.x, grid.y, grid.z));
        }
        for _t in 0..1 {
            for k in &self.kernels {
                let inputs = {
                    let mut ins = StencilEquation::new(&k.writes, k.expr.clone()).inputs();
                    ins.retain(|f| f != &k.writes);
                    ins
                };
                src.push_str(&format!(
                    "  call invoke({}_type({}, {}))\n",
                    k.name,
                    k.writes,
                    inputs.join(", ")
                ));
            }
        }
        src.push_str(&format!("end program {}\n", self.name));
        src
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::star_sum;

    #[test]
    fn algorithm_builds_program() {
        let program = Algorithm::new("uvkbe")
            .grid(100, 100, 600)
            .field("unew")
            .field("vnew")
            .field("uvel")
            .field("vvel")
            .invoke(Kernel::new(
                "compute_unew",
                "unew",
                star_sum("uvel", 1, true).scale(0.25) + Expr::center("vvel"),
            ))
            .invoke(Kernel::new(
                "compute_vnew",
                "vnew",
                Expr::center("unew") + star_sum("vvel", 1, true).scale(0.125),
            ))
            .timesteps(1)
            .build()
            .expect("valid");
        assert_eq!(program.frontend, Frontend::PSyclone);
        assert_eq!(program.equations.len(), 2);
        assert_eq!(program.fields.len(), 4);
        assert!(program.source.contains("call invoke(compute_unew_type"));
        assert_eq!(program.communicated_fields(), vec!["uvel".to_string(), "vvel".to_string()]);
    }

    #[test]
    fn missing_grid_is_rejected() {
        let result = Algorithm::new("empty")
            .field("u")
            .invoke(Kernel::new("k", "u", Expr::center("u")))
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn unknown_field_is_rejected() {
        let result = Algorithm::new("bad")
            .grid(8, 8, 8)
            .field("u")
            .invoke(Kernel::new("k", "u", Expr::center("w")))
            .build();
        assert!(result.is_err());
    }
}
