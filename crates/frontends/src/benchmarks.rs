//! The five benchmarks of the paper's evaluation (Section 6).
//!
//! | Benchmark | Front-end | Stencil | Z | Iterations |
//! |---|---|---|---|---|
//! | Jacobian  | Flang    | 3D 6-point  | 900 | 100 000 |
//! | Diffusion | Devito   | 3D 13-point | 704 | 512 |
//! | Acoustic  | Devito   | 3D 13-point | 604 | 512 |
//! | Seismic   | Cerebras | 3D 25-point | 450 | 100 000 |
//! | UVKBE     | PSyclone | 2 applies, 4 fields | 600 | 1 |
//!
//! Problem sizes follow the paper: small 100×100, medium 500×500, large
//! 750×994 (chosen to fully occupy the WSE2 PE grid).

use crate::ast::{star_sum, Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
use crate::devito::{Eq, Function, Grid, Operator};
use crate::fortran::parse_fortran;
use crate::psyclone::{Algorithm, Kernel};

/// The three problem sizes used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemSize {
    /// 100 × 100 PEs.
    Small,
    /// 500 × 500 PEs.
    Medium,
    /// 750 × 994 PEs (fully occupies the WSE2).
    Large,
    /// A custom PE-grid extent (used by tests and the functional simulator).
    Custom(i64, i64),
}

impl ProblemSize {
    /// The (x, y) extents of the PE grid for this size.
    pub fn extents(self) -> (i64, i64) {
        match self {
            ProblemSize::Small => (100, 100),
            ProblemSize::Medium => (500, 500),
            ProblemSize::Large => (750, 994),
            ProblemSize::Custom(x, y) => (x, y),
        }
    }

    /// Human-readable label (`"100x100"`, ...).
    pub fn label(self) -> String {
        let (x, y) = self.extents();
        format!("{x}x{y}")
    }
}

/// All five benchmark identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Laplace diffusion from Fortran (Flang front-end).
    Jacobian,
    /// Heat diffusion in Devito.
    Diffusion,
    /// Isotropic acoustic wave equation in Devito.
    Acoustic,
    /// 25-point seismic kernel translated from Jacquelin et al.
    Seismic25,
    /// PSyclone UVKBE kernel (4 fields, 2 consecutive applies).
    Uvkbe,
}

impl Benchmark {
    /// Every benchmark, in the order used by the paper's figures.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Jacobian,
        Benchmark::Diffusion,
        Benchmark::Seismic25,
        Benchmark::Uvkbe,
        Benchmark::Acoustic,
    ];

    /// Display name used in figures and tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Jacobian => "Jacobian",
            Benchmark::Diffusion => "Diffusion",
            Benchmark::Acoustic => "Acoustic",
            Benchmark::Seismic25 => "25-point Seismic",
            Benchmark::Uvkbe => "UVKBE",
        }
    }

    /// Builds the benchmark's program at the given problem size with the
    /// paper's iteration count and z extent.
    pub fn program(self, size: ProblemSize) -> StencilProgram {
        let (x, y) = size.extents();
        match self {
            Benchmark::Jacobian => jacobian(x, y, 900, 100_000),
            Benchmark::Diffusion => diffusion(x, y, 704, 512),
            Benchmark::Acoustic => acoustic(x, y, 604, 512),
            Benchmark::Seismic25 => seismic_25pt(x, y, 450, 100_000),
            Benchmark::Uvkbe => uvkbe(x, y, 600, 1),
        }
    }

    /// A miniature instance (few PEs, short column, few timesteps) used by
    /// the functional simulator and correctness tests.
    pub fn tiny_program(self) -> StencilProgram {
        match self {
            Benchmark::Jacobian => jacobian(6, 6, 12, 3),
            Benchmark::Diffusion => diffusion(7, 7, 12, 2),
            Benchmark::Acoustic => acoustic(7, 7, 12, 2),
            Benchmark::Seismic25 => seismic_25pt(10, 10, 16, 2),
            Benchmark::Uvkbe => uvkbe(6, 6, 10, 1),
        }
    }
}

/// The Jacobian benchmark: Laplace's equation for diffusion in 3D,
/// extracted from Fortran by the Flang front-end.  Six-point stencil.
pub fn jacobian(x: i64, y: i64, z: i64, timesteps: i64) -> StencilProgram {
    let source = format!(
        r"real :: a({z}, {y}, {x})
do step = 1, {timesteps}
  do i = 1, {x}
    do j = 1, {y}
      do k = 1, {z}
        a(k,j,i) = (a(k,j,i+1) + a(k,j,i-1) + a(k,j+1,i) + a(k,j-1,i) + a(k+1,j,i) + a(k-1,j,i)) * 0.16666
      enddo
    enddo
  enddo
enddo
"
    );
    let mut program = parse_fortran("jacobian", &source).expect("jacobian source is well-formed");
    // The loop bounds above describe the interior directly.
    program.grid = GridSpec::new(x, y, z);
    program.validate().expect("jacobian program is valid");
    program
}

/// The Devito heat-diffusion benchmark: 3D 13-point stencil.
pub fn diffusion(x: i64, y: i64, z: i64, timesteps: i64) -> StencilProgram {
    let grid = Grid::new(x, y, z);
    let u = Function::new("u", 4);
    // u_{t+1} = u + alpha * laplacian(u), 4th-order space discretization.
    let update = u.center() + u.laplace().scale(0.01);
    Operator::new(grid, vec![u.clone()])
        .equation(Eq::new(&u, update))
        .timesteps(timesteps)
        .build("diffusion")
        .expect("diffusion program is valid")
}

/// The Devito isotropic acoustic wave benchmark: 3D 13-point stencil with a
/// second-order approximation in time (two fields).
pub fn acoustic(x: i64, y: i64, z: i64, timesteps: i64) -> StencilProgram {
    let grid = Grid::new(x, y, z);
    let u = Function::new("u", 4);
    let u_prev = Function::new("u_prev", 4);
    // u_{t+1} = 2 u - u_{t-1} + c^2 dt^2 laplacian(u).
    // The repeated addition of the centre value (2u) is what the
    // varith-fuse-repeated-operands optimization targets.
    let update = u.center() + u.center() - u_prev.center() + u.laplace().scale(0.0625);
    Operator::new(grid, vec![u.clone(), u_prev.clone()])
        .equation(Eq::new(&u_prev, u.center()))
        .equation(Eq::new(&u, update))
        .timesteps(timesteps)
        .build("acoustic")
        .expect("acoustic program is valid")
}

/// The 25-point seismic kernel translated from Jacquelin et al. (8th-order
/// star stencil, radius 4), written directly against the stencil dialect.
pub fn seismic_25pt(x: i64, y: i64, z: i64, timesteps: i64) -> StencilProgram {
    let coeffs = [0.28, -0.02, 0.004, -0.0008];
    let mut terms = vec![Expr::center("p").scale(-0.9)];
    for (i, &c) in coeffs.iter().enumerate() {
        let r = (i + 1) as i64;
        terms.push(star_sum_ring("p", r).scale(c));
    }
    let expr = Expr::sum(terms);
    let source = r"# seismic_25pt — translated from the Cerebras SDK 25-pt stencil example
# (Jacquelin et al., SC'22), expressed against the stencil dialect.
grid = Grid(shape=(nx, ny, 450))
p = TimeFunction(name='p', grid=grid, space_order=8)
update = sum(c[r] * ring(p, r) for r in range(1, 5)) - 0.9 * p
op = Operator([Eq(p.forward, update)])
op.apply(time_M=100000)
"
    .to_string();
    let program = StencilProgram {
        name: "seismic_25pt".into(),
        frontend: Frontend::Csl,
        grid: GridSpec::new(x, y, z),
        fields: vec!["p".into()],
        equations: vec![StencilEquation::new("p", expr)],
        timesteps,
        source,
    };
    program.validate().expect("seismic program is valid");
    program
}

/// One "ring" of a star stencil: the six accesses at distance exactly `r`.
fn star_sum_ring(field: &str, r: i64) -> Expr {
    Expr::sum(
        [(r, 0, 0), (-r, 0, 0), (0, r, 0), (0, -r, 0), (0, 0, r), (0, 0, -r)]
            .into_iter()
            .map(|(dx, dy, dz)| Expr::at(field, dx, dy, dz)),
    )
}

/// The PSyclone UVKBE benchmark: four fields, two of which are communicated
/// across PEs, and two consecutive `stencil.apply` operations.
pub fn uvkbe(x: i64, y: i64, z: i64, timesteps: i64) -> StencilProgram {
    Algorithm::new("uvkbe")
        .grid(x, y, z)
        .field("unew")
        .field("vnew")
        .field("uvel")
        .field("vvel")
        .invoke(Kernel::new(
            "compute_unew",
            "unew",
            star_sum("uvel", 1, true).scale(0.25) + Expr::center("vvel").scale(0.5),
        ))
        .invoke(Kernel::new(
            "compute_vnew",
            "vnew",
            Expr::center("unew").scale(0.3)
                + star_sum("vvel", 1, true).scale(0.125)
                + Expr::center("vnew").scale(0.1),
        ))
        .timesteps(timesteps)
        .build()
        .expect("uvkbe program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_shapes_match_the_paper() {
        assert_eq!(Benchmark::Jacobian.tiny_program().max_points(), 6);
        assert_eq!(Benchmark::Diffusion.tiny_program().max_points(), 13);
        assert_eq!(Benchmark::Acoustic.tiny_program().max_points(), 13);
        assert_eq!(Benchmark::Seismic25.tiny_program().max_points(), 25);
        // UVKBE has two applies of radius 1.
        let uvkbe = Benchmark::Uvkbe.tiny_program();
        assert_eq!(uvkbe.equations.len(), 2);
        assert_eq!(uvkbe.fields.len(), 4);
        assert_eq!(uvkbe.communicated_fields().len(), 2);
    }

    #[test]
    fn paper_scale_parameters() {
        let jac = Benchmark::Jacobian.program(ProblemSize::Large);
        assert_eq!(jac.grid, GridSpec::new(750, 994, 900));
        assert_eq!(jac.timesteps, 100_000);
        let diff = Benchmark::Diffusion.program(ProblemSize::Medium);
        assert_eq!(diff.grid, GridSpec::new(500, 500, 704));
        assert_eq!(diff.timesteps, 512);
        let seismic = Benchmark::Seismic25.program(ProblemSize::Small);
        assert_eq!(seismic.grid, GridSpec::new(100, 100, 450));
        let uvkbe = Benchmark::Uvkbe.program(ProblemSize::Large);
        assert_eq!(uvkbe.timesteps, 1);
        let acoustic = Benchmark::Acoustic.program(ProblemSize::Large);
        assert_eq!(acoustic.grid.z, 604);
    }

    #[test]
    fn frontends_match_the_paper() {
        assert_eq!(Benchmark::Jacobian.tiny_program().frontend, Frontend::Flang);
        assert_eq!(Benchmark::Diffusion.tiny_program().frontend, Frontend::Devito);
        assert_eq!(Benchmark::Acoustic.tiny_program().frontend, Frontend::Devito);
        assert_eq!(Benchmark::Seismic25.tiny_program().frontend, Frontend::Csl);
        assert_eq!(Benchmark::Uvkbe.tiny_program().frontend, Frontend::PSyclone);
    }

    #[test]
    fn all_programs_validate() {
        for benchmark in Benchmark::ALL {
            let tiny = benchmark.tiny_program();
            assert!(tiny.validate().is_ok(), "{} tiny program invalid", benchmark.name());
            assert!(tiny.source_loc() > 0, "{} has no DSL source", benchmark.name());
            let large = benchmark.program(ProblemSize::Large);
            assert!(large.validate().is_ok(), "{} large program invalid", benchmark.name());
        }
    }

    #[test]
    fn problem_size_labels() {
        assert_eq!(ProblemSize::Small.label(), "100x100");
        assert_eq!(ProblemSize::Medium.label(), "500x500");
        assert_eq!(ProblemSize::Large.label(), "750x994");
        assert_eq!(ProblemSize::Custom(4, 8).label(), "4x8");
    }

    #[test]
    fn acoustic_has_repeated_center_operand() {
        // The acoustic update contains u + u (2u), the pattern the
        // varith-fuse-repeated-operands pass converts to a multiplication.
        let acoustic = Benchmark::Acoustic.tiny_program();
        let accesses = acoustic.equations[1].expr.accesses();
        let center_reads = accesses.iter().filter(|(f, o)| f == "u" && *o == [0, 0, 0]).count();
        assert!(center_reads >= 2, "expected a repeated centre access, found {center_reads}");
    }
}
