//! Front-end-agnostic description of a stencil program.
//!
//! All three mini front-ends (Flang-like Fortran, Devito-like symbolic
//! Python, PSyclone-like kernel metadata) produce a [`StencilProgram`],
//! which is then translated into the `stencil` dialect by
//! [`crate::to_stencil`].  The reference executor in `wse-sim` also
//! interprets this AST directly to produce ground-truth results.

use std::collections::BTreeSet;
use std::fmt;

/// Which front-end produced a program (Section 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frontend {
    /// Fortran via the Flang stencil-extraction pass.
    Flang,
    /// The Devito symbolic DSL.
    Devito,
    /// The PSyclone climate/weather DSL.
    PSyclone,
    /// A kernel written directly against the stencil dialect (used for the
    /// 25-point seismic benchmark translated from Jacquelin et al.).
    Csl,
}

impl fmt::Display for Frontend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Frontend::Flang => write!(f, "Flang"),
            Frontend::Devito => write!(f, "Devito"),
            Frontend::PSyclone => write!(f, "PSyclone"),
            Frontend::Csl => write!(f, "Cerebras"),
        }
    }
}

/// The interior grid extents (x, y, z) of a stencil program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridSpec {
    /// Extent in x (mapped across PE columns).
    pub x: i64,
    /// Extent in y (mapped across PE rows).
    pub y: i64,
    /// Extent in z (kept local to each PE).
    pub z: i64,
}

impl GridSpec {
    /// Creates a grid specification.
    pub fn new(x: i64, y: i64, z: i64) -> Self {
        Self { x, y, z }
    }

    /// Total number of interior grid points.
    pub fn points(&self) -> i64 {
        self.x * self.y * self.z
    }
}

/// A scalar stencil expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A floating point constant.
    Const(f32),
    /// An access to `field` at the given offset from the current cell.
    Access {
        /// Field name.
        field: String,
        /// Constant offset `(dx, dy, dz)`.
        offset: [i64; 3],
    },
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant helper.
    pub fn c(value: f32) -> Expr {
        Expr::Const(value)
    }

    /// Access helper.
    pub fn at(field: &str, dx: i64, dy: i64, dz: i64) -> Expr {
        Expr::Access { field: field.to_string(), offset: [dx, dy, dz] }
    }

    /// Centre access helper.
    pub fn center(field: &str) -> Expr {
        Expr::at(field, 0, 0, 0)
    }

    /// Sums an iterator of expressions (returns 0.0 for an empty iterator).
    pub fn sum(terms: impl IntoIterator<Item = Expr>) -> Expr {
        let mut iter = terms.into_iter();
        let Some(first) = iter.next() else {
            return Expr::Const(0.0);
        };
        iter.fold(first, |acc, e| Expr::Add(Box::new(acc), Box::new(e)))
    }

    /// Scales by a constant.
    pub fn scale(self, factor: f32) -> Expr {
        Expr::Mul(Box::new(self), Box::new(Expr::Const(factor)))
    }

    /// Every `(field, offset)` access in the expression.
    pub fn accesses(&self) -> Vec<(String, [i64; 3])> {
        let mut out = Vec::new();
        self.collect_accesses(&mut out);
        out
    }

    fn collect_accesses(&self, out: &mut Vec<(String, [i64; 3])>) {
        match self {
            Expr::Const(_) => {}
            Expr::Access { field, offset } => out.push((field.clone(), *offset)),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_accesses(out);
                b.collect_accesses(out);
            }
        }
    }

    /// Number of floating-point operations per grid point.
    pub fn flops(&self) -> u64 {
        match self {
            Expr::Const(_) | Expr::Access { .. } => 0,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => 1 + a.flops() + b.flops(),
        }
    }

    /// Evaluates the expression given a resolver for field accesses.
    pub fn evaluate(&self, read: &impl Fn(&str, [i64; 3]) -> f32) -> f32 {
        match self {
            Expr::Const(c) => *c,
            Expr::Access { field, offset } => read(field, *offset),
            Expr::Add(a, b) => a.evaluate(read) + b.evaluate(read),
            Expr::Sub(a, b) => a.evaluate(read) - b.evaluate(read),
            Expr::Mul(a, b) => a.evaluate(read) * b.evaluate(read),
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

/// One stencil update: `output(i,j,k) = expr` over the interior.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilEquation {
    /// Field written by this equation.
    pub output: String,
    /// Right-hand-side expression.
    pub expr: Expr,
}

impl StencilEquation {
    /// Creates an equation.
    pub fn new(output: &str, expr: Expr) -> Self {
        Self { output: output.to_string(), expr }
    }

    /// Stencil radius in the horizontal (x, y) dimensions — the halo width
    /// required from neighboring PEs after the z-column decomposition.
    pub fn xy_radius(&self) -> i64 {
        self.expr.accesses().iter().map(|(_, o)| o[0].abs().max(o[1].abs())).max().unwrap_or(0)
    }

    /// Stencil radius in the z dimension (kept PE-local).
    pub fn z_radius(&self) -> i64 {
        self.expr.accesses().iter().map(|(_, o)| o[2].abs()).max().unwrap_or(0)
    }

    /// Number of distinct stencil points touched (the "N-point" figure).
    pub fn num_points(&self) -> usize {
        let set: BTreeSet<[i64; 3]> = self.expr.accesses().into_iter().map(|(_, o)| o).collect();
        set.len()
    }

    /// Fields read by this equation.
    pub fn inputs(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        for (f, _) in self.expr.accesses() {
            set.insert(f);
        }
        set.into_iter().collect()
    }

    /// Fields whose non-zero x/y offsets require halo exchange.
    pub fn communicated_inputs(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        for (f, o) in self.expr.accesses() {
            if o[0] != 0 || o[1] != 0 {
                set.insert(f);
            }
        }
        set.into_iter().collect()
    }
}

/// A complete stencil program as described by a front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilProgram {
    /// Benchmark / kernel name.
    pub name: String,
    /// Producing front-end.
    pub frontend: Frontend,
    /// Interior grid extents.
    pub grid: GridSpec,
    /// All fields, in declaration order.
    pub fields: Vec<String>,
    /// Equations, applied in order within one timestep.
    pub equations: Vec<StencilEquation>,
    /// Number of timesteps.
    pub timesteps: i64,
    /// The DSL source the user wrote (counted for Table 1).
    pub source: String,
}

impl StencilProgram {
    /// Lines of code of the DSL source (non-empty lines).
    pub fn source_loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Total floating point operations per timestep.
    pub fn flops_per_timestep(&self) -> u64 {
        self.equations.iter().map(|e| e.expr.flops() as i64 * self.grid.points()).sum::<i64>()
            as u64
    }

    /// Floating point operations per grid point per timestep.
    pub fn flops_per_point(&self) -> u64 {
        self.equations.iter().map(|e| e.expr.flops()).sum()
    }

    /// The maximum horizontal stencil radius across equations.
    pub fn xy_radius(&self) -> i64 {
        self.equations.iter().map(StencilEquation::xy_radius).max().unwrap_or(0)
    }

    /// The maximum number of stencil points across equations.
    pub fn max_points(&self) -> usize {
        self.equations.iter().map(StencilEquation::num_points).max().unwrap_or(0)
    }

    /// Fields that must be exchanged between PEs each timestep.
    pub fn communicated_fields(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        for eq in &self.equations {
            for f in eq.communicated_inputs() {
                set.insert(f);
            }
        }
        set.into_iter().collect()
    }

    /// Validates internal consistency (fields referenced exist, grid sizes
    /// are positive, offsets stay within a reasonable halo).
    pub fn validate(&self) -> Result<(), String> {
        if self.grid.x <= 0 || self.grid.y <= 0 || self.grid.z <= 0 {
            return Err(format!("grid extents must be positive: {:?}", self.grid));
        }
        if self.timesteps <= 0 {
            return Err("timesteps must be positive".into());
        }
        if self.equations.is_empty() {
            return Err("a stencil program requires at least one equation".into());
        }
        for eq in &self.equations {
            if !self.fields.contains(&eq.output) {
                return Err(format!("equation writes unknown field '{}'", eq.output));
            }
            for (field, offset) in eq.expr.accesses() {
                if !self.fields.contains(&field) {
                    return Err(format!("equation reads unknown field '{field}'"));
                }
                for (d, &o) in offset.iter().enumerate() {
                    let extent = [self.grid.x, self.grid.y, self.grid.z][d];
                    if o.abs() >= extent {
                        return Err(format!(
                            "offset {o} in dimension {d} exceeds the grid extent {extent}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builds a star-shaped sum of neighbor accesses of the given radius, the
/// building block of all five paper benchmarks.
pub fn star_sum(field: &str, radius: i64, include_center: bool) -> Expr {
    let mut terms = Vec::new();
    if include_center {
        terms.push(Expr::center(field));
    }
    for r in 1..=radius {
        for (dx, dy, dz) in [(r, 0, 0), (-r, 0, 0), (0, r, 0), (0, -r, 0), (0, 0, r), (0, 0, -r)] {
            terms.push(Expr::at(field, dx, dy, dz));
        }
    }
    Expr::sum(terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_analysis() {
        let e = (Expr::at("u", 1, 0, 0) + Expr::center("u")).scale(0.12345);
        assert_eq!(e.flops(), 2);
        assert_eq!(e.accesses().len(), 2);
        let eq = StencilEquation::new("u", e);
        assert_eq!(eq.xy_radius(), 1);
        assert_eq!(eq.z_radius(), 0);
        assert_eq!(eq.num_points(), 2);
        assert_eq!(eq.inputs(), vec!["u".to_string()]);
        assert_eq!(eq.communicated_inputs(), vec!["u".to_string()]);
    }

    #[test]
    fn star_shapes() {
        // Radius 1 star with centre = 7-point; radius 2 star = 13-point;
        // radius 2 star without centre has 12 points.
        assert_eq!(StencilEquation::new("u", star_sum("u", 1, true)).num_points(), 7);
        assert_eq!(StencilEquation::new("u", star_sum("u", 2, true)).num_points(), 13);
        assert_eq!(StencilEquation::new("u", star_sum("u", 2, false)).num_points(), 12);
        // 25-point = radius-4 star with centre (4*6 + 1).
        assert_eq!(StencilEquation::new("u", star_sum("u", 4, true)).num_points(), 25);
    }

    #[test]
    fn evaluation() {
        let e = (Expr::at("u", 1, 0, 0) + Expr::center("u")).scale(0.5);
        let value = e.evaluate(&|_, offset| if offset == [1, 0, 0] { 3.0 } else { 1.0 });
        assert!((value - 2.0).abs() < 1e-6);
    }

    #[test]
    fn program_validation() {
        let mut p = StencilProgram {
            name: "test".into(),
            frontend: Frontend::Flang,
            grid: GridSpec::new(8, 8, 16),
            fields: vec!["u".into()],
            equations: vec![StencilEquation::new("u", star_sum("u", 1, true).scale(0.1))],
            timesteps: 2,
            source: "do i\nenddo".into(),
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.source_loc(), 2);
        assert_eq!(p.flops_per_point(), 7);
        assert_eq!(p.communicated_fields(), vec!["u".to_string()]);

        p.equations[0].output = "missing".into();
        assert!(p.validate().is_err());
        p.equations[0].output = "u".into();
        p.grid.z = 0;
        assert!(p.validate().is_err());
        p.grid.z = 16;
        p.timesteps = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn oversized_offset_rejected() {
        let p = StencilProgram {
            name: "bad".into(),
            frontend: Frontend::Devito,
            grid: GridSpec::new(4, 4, 4),
            fields: vec!["u".into()],
            equations: vec![StencilEquation::new("u", Expr::at("u", 5, 0, 0))],
            timesteps: 1,
            source: String::new(),
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn frontend_display() {
        assert_eq!(Frontend::Flang.to_string(), "Flang");
        assert_eq!(Frontend::Devito.to_string(), "Devito");
        assert_eq!(Frontend::PSyclone.to_string(), "PSyclone");
        assert_eq!(Frontend::Csl.to_string(), "Cerebras");
    }
}
