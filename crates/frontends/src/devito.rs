//! A miniature Devito-style symbolic front-end.
//!
//! Devito expresses finite-difference PDE solvers as symbolic equations
//! over `Function`/`TimeFunction` objects defined on a `Grid`.  This module
//! mirrors that API shape (grid, functions with a space order, Laplacians,
//! time-stepping equations, an operator) and produces a
//! [`StencilProgram`], exactly as the real Devito front-end produces the
//! stencil dialect through xDSL.

use crate::ast::{star_sum, Expr, Frontend, GridSpec, StencilEquation, StencilProgram};

/// A structured grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Interior extents (x, y, z).
    pub shape: GridSpec,
}

impl Grid {
    /// Creates a grid with the given interior extents.
    pub fn new(x: i64, y: i64, z: i64) -> Self {
        Self { shape: GridSpec::new(x, y, z) }
    }
}

/// A symbolic function (field) discretized on a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Field name.
    pub name: String,
    /// Space order of the finite-difference approximation (2 or 4).
    pub space_order: i64,
}

impl Function {
    /// Creates a function named `name` with the given space order.
    pub fn new(name: &str, space_order: i64) -> Self {
        assert!(space_order == 2 || space_order == 4, "supported space orders are 2 and 4");
        Self { name: name.to_string(), space_order }
    }

    /// Access at the centre cell.
    pub fn center(&self) -> Expr {
        Expr::center(&self.name)
    }

    /// Access at an explicit offset.
    pub fn shifted(&self, dx: i64, dy: i64, dz: i64) -> Expr {
        Expr::at(&self.name, dx, dy, dz)
    }

    /// A star-shaped discrete Laplacian of radius `space_order / 2`:
    /// `sum(neighbors) - 2 * radius * 3 * center`, scaled by `h^-2 = 1`.
    pub fn laplace(&self) -> Expr {
        let radius = self.space_order / 2;
        let neighbors = star_sum(&self.name, radius, false);
        let center_weight = (6 * radius) as f32;
        neighbors - self.center().scale(center_weight)
    }

    /// The star-shaped sum of all neighbors within the stencil radius,
    /// including the centre (a "smoothing" pattern used by the diffusion
    /// benchmark).
    pub fn star(&self) -> Expr {
        star_sum(&self.name, self.space_order / 2, true)
    }
}

/// A symbolic update equation `lhs(t+1) = rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eq {
    /// Field updated by the equation.
    pub target: Function,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Eq {
    /// Creates an equation.
    pub fn new(target: &Function, rhs: Expr) -> Self {
        Self { target: target.clone(), rhs }
    }
}

/// A Devito operator: a set of equations executed for a number of
/// timesteps.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    grid: Grid,
    functions: Vec<Function>,
    equations: Vec<Eq>,
    timesteps: i64,
    source: String,
}

impl Operator {
    /// Creates an operator over `grid` with the given functions.
    pub fn new(grid: Grid, functions: Vec<Function>) -> Self {
        Self { grid, functions, equations: Vec::new(), timesteps: 1, source: String::new() }
    }

    /// Adds an equation.
    pub fn equation(mut self, eq: Eq) -> Self {
        self.equations.push(eq);
        self
    }

    /// Sets the number of timesteps.
    pub fn timesteps(mut self, timesteps: i64) -> Self {
        self.timesteps = timesteps;
        self
    }

    /// Attaches the Python-level source the scientist wrote (for the lines
    /// of code study; falls back to a synthesized listing when empty).
    pub fn source(mut self, source: &str) -> Self {
        self.source = source.to_string();
        self
    }

    /// Builds the front-end-agnostic stencil program.
    ///
    /// # Errors
    /// Returns an error if the resulting program fails validation.
    pub fn build(self, name: &str) -> Result<StencilProgram, String> {
        let source =
            if self.source.is_empty() { self.synthesize_source(name) } else { self.source };
        let program = StencilProgram {
            name: name.to_string(),
            frontend: Frontend::Devito,
            grid: self.grid.shape,
            fields: self.functions.iter().map(|f| f.name.clone()).collect(),
            equations: self
                .equations
                .iter()
                .map(|e| StencilEquation::new(&e.target.name, e.rhs.clone()))
                .collect(),
            timesteps: self.timesteps,
            source,
        };
        program.validate()?;
        Ok(program)
    }

    /// Synthesizes the Python DSL source a Devito user would write for this
    /// operator (used for the Table 1 LoC comparison).
    fn synthesize_source(&self, name: &str) -> String {
        let mut src = String::new();
        src.push_str(&format!("# {name}.py — Devito\n"));
        src.push_str("from devito import Grid, TimeFunction, Eq, Operator, solve\n");
        src.push_str(&format!(
            "grid = Grid(shape=({}, {}, {}))\n",
            self.grid.shape.x, self.grid.shape.y, self.grid.shape.z
        ));
        for f in &self.functions {
            src.push_str(&format!(
                "{} = TimeFunction(name='{}', grid=grid, space_order={})\n",
                f.name, f.name, f.space_order
            ));
        }
        for (i, eq) in self.equations.iter().enumerate() {
            src.push_str(&format!(
                "eq{i} = Eq({}.forward, solve(..., {}))\n",
                eq.target.name, eq.target.name
            ));
        }
        let eq_list: Vec<String> = (0..self.equations.len()).map(|i| format!("eq{i}")).collect();
        src.push_str(&format!("op = Operator([{}])\n", eq_list.join(", ")));
        src.push_str(&format!("op.apply(time_M={})\n", self.timesteps));
        src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_shapes() {
        let u2 = Function::new("u", 2);
        assert_eq!(StencilEquation::new("u", u2.laplace()).num_points(), 7);
        let u4 = Function::new("u", 4);
        assert_eq!(StencilEquation::new("u", u4.laplace()).num_points(), 13);
        assert_eq!(StencilEquation::new("u", u4.star()).num_points(), 13);
    }

    #[test]
    #[should_panic(expected = "space orders")]
    fn odd_space_order_rejected() {
        Function::new("u", 3);
    }

    #[test]
    fn operator_builds_program() {
        let grid = Grid::new(100, 100, 704);
        let u = Function::new("u", 4);
        let eq = Eq::new(&u, u.center() + u.laplace().scale(0.1));
        let program = Operator::new(grid, vec![u]).equation(eq).timesteps(512).build("diffusion");
        let program = program.expect("valid program");
        assert_eq!(program.frontend, Frontend::Devito);
        assert_eq!(program.timesteps, 512);
        assert_eq!(program.max_points(), 13);
        assert!(program.source.contains("TimeFunction"));
        assert!(program.source_loc() >= 6);
    }

    #[test]
    fn invalid_operator_is_rejected() {
        let grid = Grid::new(8, 8, 8);
        let u = Function::new("u", 2);
        let w = Function::new("w", 2);
        // Equation writes a function that was not registered with the operator.
        let eq = Eq::new(&w, u.center());
        assert!(Operator::new(grid, vec![u]).equation(eq).build("bad").is_err());
    }

    #[test]
    fn two_field_acoustic_shape() {
        let grid = Grid::new(64, 64, 64);
        let u = Function::new("u", 4);
        let u_prev = Function::new("u_prev", 4);
        let update = u.center().scale(2.0) - u_prev.center() + u.laplace().scale(0.25);
        let program = Operator::new(grid, vec![u.clone(), u_prev.clone()])
            .equation(Eq::new(&u_prev, u.center()))
            .equation(Eq::new(&u, update))
            .timesteps(4)
            .build("acoustic")
            .expect("valid");
        assert_eq!(program.equations.len(), 2);
        assert_eq!(program.communicated_fields(), vec!["u".to_string()]);
    }
}
