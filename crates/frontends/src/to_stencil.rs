//! Emission of the `stencil` dialect from a front-end [`StencilProgram`].
//!
//! This is the point where all three front-ends converge: everything below
//! here (the whole lowering pipeline) is front-end agnostic, which is the
//! paper's central design argument.

use std::collections::HashMap;

use wse_dialects::{arith, builtin, func, scf, stencil};
use wse_ir::{IrContext, OpBuilder, OpId, Type, ValueId};

use crate::ast::{Expr, StencilProgram};

/// The result of emitting a program into the stencil dialect.
#[derive(Debug)]
pub struct StencilIr {
    /// The IR context owning the module.
    pub ctx: IrContext,
    /// The top-level `builtin.module`.
    pub module: OpId,
    /// The kernel function.
    pub func: OpId,
}

/// Storage bounds used for every field of `program`: the interior grown by
/// the stencil radius in each dimension.
pub fn field_bounds(program: &StencilProgram) -> stencil::Bounds {
    let r_xy = program.xy_radius();
    let r_z = program.equations.iter().map(|e| e.z_radius()).max().unwrap_or(0);
    stencil::Bounds::new(
        vec![-r_xy, -r_xy, -r_z],
        vec![program.grid.x + r_xy, program.grid.y + r_xy, program.grid.z + r_z],
    )
}

/// Interior (iteration-space) bounds of `program`.
pub fn interior_bounds(program: &StencilProgram) -> stencil::Bounds {
    stencil::Bounds::new(vec![0, 0, 0], vec![program.grid.x, program.grid.y, program.grid.z])
}

/// Emits `program` as a `builtin.module` containing one `func.func` whose
/// arguments are `!stencil.field` values (one per field), with an
/// `scf.for` time loop when the program runs for more than one timestep.
///
/// # Errors
/// Returns an error string if the program fails validation.
pub fn emit_stencil_ir(program: &StencilProgram) -> Result<StencilIr, String> {
    let mut ctx = IrContext::new();
    let (module, func) = emit_stencil_ir_into(&mut ctx, program)?;
    Ok(StencilIr { ctx, module, func })
}

/// Emits `program` into an existing (typically pooled and reset) context,
/// reusing its interned type/attribute storage.  Returns the module and the
/// kernel function.  This is the entry point the compile service uses so a
/// long-lived [`IrContext`] amortizes interning across requests.
///
/// # Errors
/// Returns an error string if the program fails validation.
pub fn emit_stencil_ir_into(
    ctx: &mut IrContext,
    program: &StencilProgram,
) -> Result<(OpId, OpId), String> {
    program.validate()?;
    let (module, module_body) = builtin::module(ctx);

    let storage = field_bounds(program);
    let interior = interior_bounds(program);
    let field_ty = stencil::field_type(&storage, Type::f32());
    let arg_types = vec![field_ty; program.fields.len()];
    let (kernel, entry) = func::build_func(ctx, module_body, &program.name, arg_types, vec![]);
    ctx.set_attr(
        kernel,
        "field_names",
        wse_ir::Attribute::Array(
            program.fields.iter().map(|f| wse_ir::Attribute::str(f.clone())).collect(),
        ),
    );
    ctx.set_attr(kernel, "timesteps", wse_ir::Attribute::int(program.timesteps));
    let args = ctx.block_args(entry).to_vec();
    let field_args: HashMap<String, ValueId> =
        program.fields.iter().cloned().zip(args.iter().copied()).collect();

    // The block that holds one timestep's worth of applies: either the
    // function entry (single timestep) or the body of an scf.for.
    let timestep_block = if program.timesteps > 1 {
        let mut b = OpBuilder::at_end(ctx, entry);
        let lb = arith::constant_index(&mut b, 0);
        let ub = arith::constant_index(&mut b, program.timesteps);
        let step = arith::constant_index(&mut b, 1);
        let (_for_op, loop_body) = scf::build_for(&mut b, lb, ub, step, vec![]);
        loop_body
    } else {
        entry
    };

    // Values produced by earlier equations in the same timestep, forwarded
    // directly to later equations when they only read the centre cell (this
    // is what exposes the stencil-inlining opportunity for UVKBE).
    let mut forwarded: HashMap<String, ValueId> = HashMap::new();
    for equation in &program.equations {
        // Load every input field into a temp.
        let inputs = equation.inputs();
        let mut temps: HashMap<String, ValueId> = HashMap::new();
        {
            let mut b = OpBuilder::at_end(ctx, timestep_block);
            for input in &inputs {
                let center_only = equation
                    .expr
                    .accesses()
                    .iter()
                    .filter(|(f, _)| f == input)
                    .all(|(_, o)| *o == [0, 0, 0]);
                if center_only {
                    if let Some(&value) = forwarded.get(input) {
                        temps.insert(input.clone(), value);
                        continue;
                    }
                }
                let field = field_args
                    .get(input)
                    .copied()
                    .ok_or_else(|| format!("unknown field {input}"))?;
                let temp = stencil::load(&mut b, field);
                temps.insert(input.clone(), temp);
            }
        }
        // Build the apply.
        let operand_order: Vec<String> = inputs.clone();
        let operands: Vec<ValueId> = operand_order.iter().map(|f| temps[f]).collect();
        let result_ty = stencil::temp_type(&interior, Type::f32());
        let mut b = OpBuilder::at_end(ctx, timestep_block);
        let (apply, body) = stencil::build_apply(&mut b, operands, vec![result_ty]);
        let body_args = ctx.block_args(body).to_vec();
        let arg_map: HashMap<String, ValueId> =
            operand_order.iter().cloned().zip(body_args.iter().copied()).collect();
        let mut ab = OpBuilder::at_end(ctx, body);
        let result = emit_expr(&mut ab, &equation.expr, &arg_map);
        stencil::build_return(ctx, body, vec![result]);

        // Store the apply result into the output field.
        let out_field = field_args[&equation.output];
        let apply_result = ctx.result(apply, 0);
        let mut b = OpBuilder::at_end(ctx, timestep_block);
        stencil::store(&mut b, apply_result, out_field, &interior);
        forwarded.insert(equation.output.clone(), apply_result);
    }

    if program.timesteps > 1 {
        scf::build_yield(ctx, timestep_block, vec![]);
    }
    func::build_return(ctx, entry, vec![]);

    Ok((module, kernel))
}

/// Emits the arithmetic for one expression inside an apply body.
fn emit_expr(b: &mut OpBuilder<'_>, expr: &Expr, temps: &HashMap<String, ValueId>) -> ValueId {
    match expr {
        Expr::Const(c) => arith::constant_f32(b, *c, Type::f32()),
        Expr::Access { field, offset } => {
            let temp = temps[field];
            stencil::access(b, temp, &offset[..], Type::f32())
        }
        Expr::Add(lhs, rhs) => {
            let l = emit_expr(b, lhs, temps);
            let r = emit_expr(b, rhs, temps);
            arith::addf(b, l, r)
        }
        Expr::Sub(lhs, rhs) => {
            let l = emit_expr(b, lhs, temps);
            let r = emit_expr(b, rhs, temps);
            arith::subf(b, l, r)
        }
        Expr::Mul(lhs, rhs) => {
            let l = emit_expr(b, lhs, temps);
            let r = emit_expr(b, rhs, temps);
            arith::mulf(b, l, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Frontend, GridSpec, StencilEquation};
    use crate::fortran::parse_fortran;
    use wse_ir::verify;

    fn small_program() -> StencilProgram {
        StencilProgram {
            name: "small".into(),
            frontend: Frontend::Devito,
            grid: GridSpec::new(8, 8, 16),
            fields: vec!["u".into()],
            equations: vec![StencilEquation::new(
                "u",
                crate::ast::star_sum("u", 1, true).scale(1.0 / 7.0),
            )],
            timesteps: 4,
            source: String::new(),
        }
    }

    #[test]
    fn emits_valid_stencil_ir() {
        let program = small_program();
        let ir = emit_stencil_ir(&program).expect("emit");
        let registry = wse_dialects::register_all();
        let errors = verify(&ir.ctx, ir.module, &registry);
        assert!(errors.is_empty(), "verification failed: {errors:?}");

        // One load, one apply, one store inside the time loop.
        assert_eq!(ir.ctx.walk_named(ir.module, stencil::APPLY).len(), 1);
        assert_eq!(ir.ctx.walk_named(ir.module, stencil::LOAD).len(), 1);
        assert_eq!(ir.ctx.walk_named(ir.module, stencil::STORE).len(), 1);
        assert_eq!(ir.ctx.walk_named(ir.module, scf::FOR).len(), 1);
        // The apply contains 7 accesses.
        let apply = ir.ctx.walk_named(ir.module, stencil::APPLY)[0];
        assert_eq!(stencil::collect_access_offsets(&ir.ctx, apply).len(), 7);
    }

    #[test]
    fn single_timestep_has_no_loop() {
        let mut program = small_program();
        program.timesteps = 1;
        let ir = emit_stencil_ir(&program).expect("emit");
        assert!(ir.ctx.walk_named(ir.module, scf::FOR).is_empty());
    }

    #[test]
    fn field_bounds_include_halo() {
        let program = small_program();
        let bounds = field_bounds(&program);
        assert_eq!(bounds, stencil::Bounds::new(vec![-1, -1, -1], vec![9, 9, 17]));
        assert_eq!(interior_bounds(&program), stencil::Bounds::new(vec![0, 0, 0], vec![8, 8, 16]));
    }

    #[test]
    fn fortran_listing_roundtrips_to_ir() {
        let src = r"
real :: data(64, 32, 32)
do i = 1, 30
  do j = 1, 30
    do k = 1, 62
      data(k,j,i) = (data(k,j,i) + data(k,j,i+1)) * 0.12345
    enddo
  enddo
enddo
";
        let program = parse_fortran("listing1", src).expect("parse");
        let ir = emit_stencil_ir(&program).expect("emit");
        let registry = wse_dialects::register_all();
        assert!(verify(&ir.ctx, ir.module, &registry).is_empty());
        let apply = ir.ctx.walk_named(ir.module, stencil::APPLY)[0];
        let offsets = stencil::collect_access_offsets(&ir.ctx, apply);
        assert!(offsets.contains(&vec![0, 0, 0]));
        assert!(offsets.contains(&vec![1, 0, 0]));
    }

    #[test]
    fn multi_equation_program_emits_multiple_applies() {
        let mut program = small_program();
        program.fields.push("v".into());
        program.equations.push(StencilEquation::new(
            "v",
            (Expr::center("u") + Expr::at("v", 0, 1, 0)).scale(0.5),
        ));
        program.timesteps = 1;
        let ir = emit_stencil_ir(&program).expect("emit");
        assert_eq!(ir.ctx.walk_named(ir.module, stencil::APPLY).len(), 2);
        // Second apply reads two fields.
        let second = ir.ctx.walk_named(ir.module, stencil::APPLY)[1];
        assert_eq!(ir.ctx.operands(second).len(), 2);
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut program = small_program();
        program.timesteps = 0;
        assert!(emit_stencil_ir(&program).is_err());
    }
}
