//! Benchmark harness helpers for regenerating the paper's tables/figures.
//!
//! The heavy lifting lives in [`wse_stencil::experiments`]; this crate's
//! benches and the `reproduce` binary print those results and measure the
//! compilation pipeline itself with Criterion.

/// Formats a floating point value with a fixed number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}
