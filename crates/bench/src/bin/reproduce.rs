//! Prints every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run -p wse-bench --bin reproduce [-- fig4|fig5|fig6|fig7|table1|tflops|ablations|all]`

use wse_stencil::experiments as exp;

fn print_fig4() {
    let rows = exp::fig4_wse2_vs_wse3().expect("figure 4");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.0}", r.wse2_gpts),
                format!("{:.0}", r.wse3_gpts),
                format!("{:.2}x", r.wse3_gpts / r.wse2_gpts),
            ]
        })
        .collect();
    println!(
        "Figure 4 — WSE2 vs WSE3, large problem size\n{}",
        exp::render_table(&["benchmark", "WSE2 GPts/s", "WSE3 GPts/s", "WSE3/WSE2"], &table)
    );
}

fn print_fig5() {
    let rows = exp::fig5_handwritten_comparison().expect("figure 5");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.clone(),
                format!("{:.0}", r.handwritten_wse2_gpts),
                format!("{:.0}", r.ours_wse2_gpts),
                format!("{:.0}", r.ours_wse3_gpts),
                format!("{:.3}", r.speedup_wse2),
                format!("{:.3}", r.speedup_wse3),
            ]
        })
        .collect();
    println!(
        "Figure 5 — 25-pt seismic vs the hand-written WSE2 kernel\n{}",
        exp::render_table(
            &["size", "hand-written", "ours WSE2", "ours WSE3", "speedup WSE2", "speedup WSE3"],
            &table
        )
    );
}

fn print_fig6() {
    let r = exp::fig6_cluster_comparison().expect("figure 6");
    let table = vec![
        vec!["WSE3 (1 wafer)".to_string(), format!("{:.0}", r.wse3_gpts), "1.0".to_string()],
        vec![
            "128 x A100 (Tursa)".to_string(),
            format!("{:.0}", r.a100_cluster_gpts),
            format!("{:.1}x slower", r.speedup_vs_a100),
        ],
        vec![
            "128 x dual EPYC 7742 (ARCHER2)".to_string(),
            format!("{:.0}", r.cpu_cluster_gpts),
            format!("{:.1}x slower", r.speedup_vs_cpu),
        ],
    ];
    println!(
        "Figure 6 — Devito acoustic, WSE3 vs GPU/CPU clusters\n{}",
        exp::render_table(&["system", "GPts/s", "relative"], &table)
    );
}

fn print_fig7() {
    let points = exp::fig7_roofline().expect("figure 7");
    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.3}", p.arithmetic_intensity),
                format!("{:.3e}", p.flops),
                format!("{:.3e}", p.attainable_flops),
                if exp::is_compute_bound(p) {
                    "compute-bound".into()
                } else {
                    "memory-bound".into()
                },
            ]
        })
        .collect();
    println!(
        "Figure 7 — roofline\n{}",
        exp::render_table(
            &["kernel", "AI [FLOP/B]", "achieved FLOP/s", "attainable FLOP/s", "bound"],
            &table
        )
    );
}

fn print_table1() {
    let rows = exp::table1_loc().expect("table 1");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.csl_kernel.to_string(),
                r.csl_entire.to_string(),
                r.dsl.to_string(),
            ]
        })
        .collect();
    println!(
        "Table 1 — lines of code\n{}",
        exp::render_table(
            &["benchmark", "CSL kernel only", "CSL entire", "DSL & our approach"],
            &table
        )
    );
}

fn print_tflops() {
    let rows = exp::tflops_summary().expect("tflops");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.0}", r.wse2_tflops),
                format!("{:.0}", r.wse3_tflops),
            ]
        })
        .collect();
    println!(
        "Sustained TFLOP/s (Section 7 discussion)\n{}",
        exp::render_table(&["benchmark", "CS-2 TFLOP/s", "CS-3 TFLOP/s"], &table)
    );
}

fn print_ablations() {
    for benchmark in [
        wse_stencil::benchmarks::Benchmark::Seismic25,
        wse_stencil::benchmarks::Benchmark::Diffusion,
    ] {
        let rows = exp::ablation_chunks(benchmark).expect("ablation");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![r.num_chunks.to_string(), format!("{:.0}", r.gpts), r.bytes_per_pe.to_string()]
            })
            .collect();
        println!(
            "Ablation (chunk count) — {}\n{}",
            benchmark.name(),
            exp::render_table(&["num_chunks", "GPts/s", "bytes per PE"], &table)
        );
    }
    let rows = exp::ablation_fusion().expect("ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.0}", r.fused_gpts),
                format!("{:.0}", r.unfused_gpts),
                r.fmacs.to_string(),
            ]
        })
        .collect();
    println!(
        "Ablation (fmac fusion)\n{}",
        exp::render_table(&["benchmark", "fused GPts/s", "unfused GPts/s", "@fmacs"], &table)
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "fig4" => print_fig4(),
        "fig5" => print_fig5(),
        "fig6" => print_fig6(),
        "fig7" => print_fig7(),
        "table1" => print_table1(),
        "tflops" => print_tflops(),
        "ablations" => print_ablations(),
        _ => {
            print_fig4();
            print_fig5();
            print_fig6();
            print_fig7();
            print_table1();
            print_tflops();
            print_ablations();
        }
    }
}
