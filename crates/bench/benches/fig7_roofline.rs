//! Figure 7: roofline placement of the five benchmarks on the WSE3 and the
//! acoustic benchmark on a single A100.
use criterion::{criterion_group, criterion_main, Criterion};
use wse_stencil::experiments::{fig7_roofline, is_compute_bound, render_table};

fn bench(c: &mut Criterion) {
    let points = fig7_roofline().expect("figure 7");
    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.3}", p.arithmetic_intensity),
                format!("{:.3e}", p.flops),
                format!("{:.3e}", p.attainable_flops),
                if is_compute_bound(p) { "compute-bound".into() } else { "memory-bound".into() },
            ]
        })
        .collect();
    println!(
        "\nFigure 7 — roofline points\n{}",
        render_table(
            &["kernel", "AI [FLOP/B]", "achieved FLOP/s", "attainable FLOP/s", "bound"],
            &table
        )
    );

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("roofline_all_points", |b| b.iter(|| fig7_roofline().unwrap()));
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
