//! Table 1: lines-of-code comparison between generated CSL and the DSL input.
use criterion::{criterion_group, criterion_main, Criterion};
use wse_stencil::benchmarks::{Benchmark, ProblemSize};
use wse_stencil::experiments::{render_table, table1_loc};
use wse_stencil::Compiler;

fn bench(c: &mut Criterion) {
    let rows = table1_loc().expect("table 1");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.csl_kernel.to_string(),
                r.csl_entire.to_string(),
                r.dsl.to_string(),
            ]
        })
        .collect();
    println!(
        "\nTable 1 — lines of code\n{}",
        render_table(&["benchmark", "CSL kernel only", "CSL entire", "DSL & our approach"], &table)
    );

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("generate_csl_sources_seismic", |b| {
        let program = Benchmark::Seismic25.program(ProblemSize::Large);
        b.iter(|| Compiler::new().num_chunks(2).compile(&program).unwrap().sources().total_loc())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
