//! Figure 4: WSE2 vs WSE3 throughput for Jacobian, Diffusion, Seismic and
//! UVKBE at the large problem size.
use criterion::{criterion_group, criterion_main, Criterion};
use wse_stencil::benchmarks::{Benchmark, ProblemSize};
use wse_stencil::experiments::{estimate_benchmark, fig4_wse2_vs_wse3, render_table};
use wse_stencil::WseTarget;

fn bench(c: &mut Criterion) {
    let rows = fig4_wse2_vs_wse3().expect("figure 4");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.0}", r.wse2_gpts),
                format!("{:.0}", r.wse3_gpts),
                format!("{:.2}x", r.wse3_gpts / r.wse2_gpts),
            ]
        })
        .collect();
    println!(
        "\nFigure 4 — GPts/s on the large problem size\n{}",
        render_table(&["benchmark", "WSE2 GPts/s", "WSE3 GPts/s", "WSE3/WSE2"], &table)
    );

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("compile_and_estimate_jacobian_wse3", |b| {
        b.iter(|| {
            estimate_benchmark(Benchmark::Jacobian, ProblemSize::Large, WseTarget::Wse3, 2).unwrap()
        })
    });
    group.bench_function("compile_and_estimate_jacobian_wse2", |b| {
        b.iter(|| {
            estimate_benchmark(Benchmark::Jacobian, ProblemSize::Large, WseTarget::Wse2, 2).unwrap()
        })
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
