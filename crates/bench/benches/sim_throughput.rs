//! Simulator throughput: simulated grid-point rate of the compiled
//! flat-memory execution engine (MPts/s), plus its speedup over the
//! pre-refactor string-keyed interpreter.
//!
//! This bench is the perf trajectory for the functional simulator: future
//! engine changes must not regress the MPts/s numbers printed here.  Run
//! with `cargo bench -p wse-bench --bench sim_throughput`; CI smoke-runs
//! it with `-- --test` (one iteration per case, no timing).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use wse_frontends::ast::StencilProgram;
use wse_frontends::benchmarks::{jacobian, seismic_25pt};
use wse_lowering::{lower_program, PipelineOptions};
use wse_sim::{load_program, InterpGridSim, LoadedProgram, WseGridSim};

/// One throughput case: a sim-scale program instance and how many
/// timesteps to simulate per measurement.
struct Case {
    name: &'static str,
    program: StencilProgram,
    steps: i64,
}

fn cases() -> Vec<Case> {
    let mut cases = vec![
        Case { name: "jacobian_tiny_6x6x12", program: jacobian(6, 6, 12, 3), steps: 3 },
        Case { name: "seismic_tiny_10x10x16", program: seismic_25pt(10, 10, 16, 2), steps: 2 },
    ];
    if !criterion::is_test_mode() {
        cases.push(Case {
            name: "jacobian_medium_48x48x96",
            program: jacobian(48, 48, 96, 4),
            steps: 4,
        });
        cases.push(Case {
            name: "seismic_medium_32x32x64",
            program: seismic_25pt(32, 32, 64, 2),
            steps: 2,
        });
    }
    cases
}

fn load(program: &StencilProgram) -> LoadedProgram {
    let options = PipelineOptions { num_chunks: 2, ..PipelineOptions::default() };
    let lowered = lower_program(program, &options).expect("lowering succeeds");
    load_program(&lowered.ctx, lowered.module).expect("loading succeeds")
}

/// Median over `samples` of the seconds reported by one `sample` call.
/// Each sample constructs a fresh simulator but times only the run phase:
/// linking/allocation is one-time work, amortized over the 100k-timestep
/// runs of the paper's workloads.
fn median_seconds(samples: usize, mut sample: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..samples).map(|_| sample()).collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn time_linked(loaded: &LoadedProgram, steps: i64, samples: usize) -> f64 {
    median_seconds(samples, || {
        let mut sim = WseGridSim::new(loaded.clone()).expect("program links");
        let start = Instant::now();
        sim.run(Some(steps)).expect("run succeeds");
        criterion::black_box(&sim);
        start.elapsed().as_secs_f64()
    })
}

fn time_interp(loaded: &LoadedProgram, steps: i64, samples: usize) -> f64 {
    median_seconds(samples, || {
        let mut sim = InterpGridSim::new(loaded.clone());
        let start = Instant::now();
        sim.run(Some(steps)).expect("run succeeds");
        criterion::black_box(&sim);
        start.elapsed().as_secs_f64()
    })
}

fn mpts(program: &StencilProgram, steps: i64, seconds: f64) -> f64 {
    program.grid.points() as f64 * steps as f64 / seconds / 1e6
}

fn bench(c: &mut Criterion) {
    let samples = if criterion::is_test_mode() { 1 } else { 5 };

    // Lower and load each case exactly once; both report sections below
    // reuse the loaded programs.
    let cases: Vec<(Case, LoadedProgram)> = cases()
        .into_iter()
        .map(|case| {
            let loaded = load(&case.program);
            (case, loaded)
        })
        .collect();

    println!("\nsim_throughput — simulated grid-point throughput (linked flat-memory engine)");
    for (case, loaded) in &cases {
        let seconds = time_linked(loaded, case.steps, samples);
        println!(
            "  {:<28} {:>10.2} MPts/s  ({} steps in {:.3} ms)",
            case.name,
            mpts(&case.program, case.steps, seconds),
            case.steps,
            seconds * 1e3
        );
    }

    // Speedup over the pre-refactor engine, on the acceptance-criterion
    // case (Jacobian tiny, the first case).  The interpreter is too slow
    // to time at the medium sizes, which is the point of the refactor.
    let (tiny, tiny_loaded) = &cases[0];
    let linked = time_linked(tiny_loaded, tiny.steps, samples);
    let interp = time_interp(tiny_loaded, tiny.steps, samples);
    println!(
        "  legacy interpreter (jacobian_tiny): {:>10.2} MPts/s — linked engine speedup {:.1}x",
        mpts(&tiny.program, tiny.steps, interp),
        interp / linked
    );

    // Criterion-tracked timings for trend comparisons across PRs.  Each
    // sample runs the same simulator again so, like the MPts/s section,
    // the trend tracks the run phase only (not clone + link).
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(samples);
    for (case, loaded) in &cases {
        let mut sim = WseGridSim::new(loaded.clone()).expect("program links");
        group.bench_function(format!("linked_{}", case.name), |b| {
            b.iter(|| sim.run(Some(case.steps)).expect("run succeeds"))
        });
    }
    let (tiny, tiny_loaded) = &cases[0];
    let mut sim = InterpGridSim::new(tiny_loaded.clone());
    group.bench_function("interp_jacobian_tiny_6x6x12", |b| {
        b.iter(|| sim.run(Some(tiny.steps)).expect("run succeeds"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
