//! Simulator throughput: simulated grid-point rate of the compiled
//! flat-memory execution engine (MPts/s), its speedup over the
//! unoptimized (`WSE_SIM_NO_FUSE=1`) instruction stream, its rate
//! through the scalar kernel set (`WSE_SIM_NO_SIMD=1`-equivalent) with
//! the achieved fraction of the host's SIMD peak (lanes × FP ports ×
//! clock; override the assumed clock with `WSE_SIM_HOST_GHZ`), its rate
//! with fault-free checkpoint/rollback recovery enabled (the COW
//! checkpoint overhead column, measured steady-state over a longer
//! window against an equal-length plain run), and its speedup over the
//! pre-refactor string-keyed interpreter.
//!
//! This bench is the perf trajectory for the functional simulator: future
//! engine changes must not regress the MPts/s numbers printed here.  A
//! full (non-`--test`) run also snapshots the numbers to
//! `BENCH_sim_throughput.json` at the workspace root so the trajectory is
//! recorded in-repo per PR.  Run with
//! `cargo bench -p wse-bench --bench sim_throughput`; CI smoke-runs it
//! with `-- --test` (one iteration per case, no timing, no snapshot).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
use wse_frontends::benchmarks::{jacobian, seismic_25pt};
use wse_lowering::{lower_program, PipelineOptions};
use wse_sim::{
    load_program, InterpGridSim, Isa, LinkOptions, LoadedProgram, RecoveryOptions, SimdPeak,
    WseGridSim,
};

/// One throughput case: a sim-scale program instance and how many
/// timesteps to simulate per measurement.
struct Case {
    name: &'static str,
    program: StencilProgram,
    steps: i64,
}

/// A radius-1 box stencil (all eight in-plane neighbors, diagonals
/// included, plus center and z-neighbors): the non-cardinal shape class
/// the generator covers but no paper benchmark exercises.
fn box_stencil(nx: i64, ny: i64, nz: i64, timesteps: i64) -> StencilProgram {
    let mut terms = Vec::new();
    for dx in -1..=1 {
        for dy in -1..=1 {
            terms.push(Expr::at("a", dx, dy, 0).scale(0.08));
        }
    }
    terms.push(Expr::at("a", 0, 0, 1).scale(0.1));
    terms.push(Expr::at("a", 0, 0, -1).scale(0.1));
    let program = StencilProgram {
        name: "box9".into(),
        frontend: Frontend::Csl,
        grid: GridSpec::new(nx, ny, nz),
        fields: vec!["a".into()],
        equations: vec![StencilEquation::new("a", Expr::sum(terms))],
        timesteps,
        source: String::new(),
    };
    program.validate().expect("box stencil is valid");
    program
}

fn cases() -> Vec<Case> {
    let mut cases = vec![
        Case { name: "jacobian_tiny_6x6x12", program: jacobian(6, 6, 12, 3), steps: 3 },
        Case { name: "seismic_tiny_10x10x16", program: seismic_25pt(10, 10, 16, 2), steps: 2 },
    ];
    if !criterion::is_test_mode() {
        cases.push(Case {
            name: "jacobian_medium_48x48x96",
            program: jacobian(48, 48, 96, 4),
            steps: 4,
        });
        cases.push(Case {
            name: "seismic_medium_32x32x64",
            program: seismic_25pt(32, 32, 64, 2),
            steps: 2,
        });
        // The large-grid profile (≥ 64x64 PEs) and a box/diagonal
        // workload: the shapes the optimizer's staging/snapshot elision
        // and the non-cardinal perf model are aimed at.
        cases.push(Case {
            name: "jacobian_large_64x64x64",
            program: jacobian(64, 64, 64, 4),
            steps: 4,
        });
        cases.push(Case {
            name: "box9_medium_32x32x32",
            program: box_stencil(32, 32, 32, 3),
            steps: 3,
        });
    }
    cases
}

fn load(program: &StencilProgram) -> LoadedProgram {
    let options = PipelineOptions { num_chunks: 2, ..PipelineOptions::default() };
    let lowered = lower_program(program, &options).expect("lowering succeeds");
    load_program(&lowered.ctx, lowered.module).expect("loading succeeds")
}

/// Median over `samples` of the seconds reported by one `sample` call.
/// Each sample constructs a fresh simulator but times only the run phase:
/// linking/allocation is one-time work, amortized over the 100k-timestep
/// runs of the paper's workloads.
fn median_seconds(samples: usize, mut sample: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..samples).map(|_| sample()).collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn time_engine(loaded: &LoadedProgram, steps: i64, samples: usize, options: LinkOptions) -> f64 {
    median_seconds(samples, || {
        let mut sim = WseGridSim::with_options(loaded.clone(), options).expect("program links");
        let start = Instant::now();
        sim.run(Some(steps)).expect("run succeeds");
        criterion::black_box(&sim);
        start.elapsed().as_secs_f64()
    })
}

/// Like [`time_engine`] with default link options, but with fault-free
/// checkpoint/rollback recovery enabled (default posture: COW
/// checkpoints on the default cadence, watchdog armed): the measured gap
/// against a plain run of the same length is the recovery machinery's
/// steady-state overhead, which must stay under 5%.
fn time_engine_checkpointed(loaded: &LoadedProgram, steps: i64, samples: usize) -> f64 {
    median_seconds(samples, || {
        let mut sim = WseGridSim::with_options(loaded.clone(), LinkOptions::default())
            .expect("program links");
        sim.enable_recovery(RecoveryOptions::default());
        let start = Instant::now();
        sim.run(Some(steps)).expect("run succeeds");
        criterion::black_box(&sim);
        start.elapsed().as_secs_f64()
    })
}

fn time_interp(loaded: &LoadedProgram, steps: i64, samples: usize) -> f64 {
    median_seconds(samples, || {
        let mut sim = InterpGridSim::new(loaded.clone());
        let start = Instant::now();
        sim.run(Some(steps)).expect("run succeeds");
        criterion::black_box(&sim);
        start.elapsed().as_secs_f64()
    })
}

fn mpts(program: &StencilProgram, steps: i64, seconds: f64) -> f64 {
    program.grid.points() as f64 * steps as f64 / seconds / 1e6
}

/// Nominal f32 FLOPs per grid point per timestep: one multiply and one
/// add per stencil term, summed over the program's equations.
fn flops_per_point(program: &StencilProgram) -> u64 {
    program.equations.iter().map(|e| 2 * e.num_points() as u64).sum()
}

/// The host SIMD peak the achieved-fraction column is measured against.
/// The assumed core clock comes from `WSE_SIM_HOST_GHZ` (default 2.1).
fn host_peak() -> SimdPeak {
    let ghz = wse_sim::env_value::<f64>("WSE_SIM_HOST_GHZ").unwrap_or(2.1);
    SimdPeak::new(Isa::detect(), ghz)
}

/// One measured case: engine rates in MPts/s per link configuration plus
/// the achieved fraction of the host's non-fused SIMD peak.
struct Row {
    name: String,
    optimized: f64,
    no_fuse: f64,
    no_simd: f64,
    checkpointed: f64,
    checkpoint_overhead: f64,
    peak_fraction: f64,
}

/// Writes the measured numbers to `BENCH_sim_throughput.json` at the
/// workspace root (hand-rolled JSON; no serde in-tree).
fn write_snapshot(rows: &[Row]) {
    let mut json = String::from("{\n  \"bench\": \"sim_throughput\",\n  \"unit\": \"MPts/s\",\n");
    json.push_str(&format!("  \"simd_isa\": \"{:?}\",\n", host_peak().isa));
    json.push_str("  \"cases\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"optimized\": {:.2}, \"no_fuse\": {:.2}, \
             \"no_simd\": {:.2}, \"checkpointed\": {:.2}, \"speedup\": {:.2}, \
             \"checkpoint_overhead\": {:.3}, \"simd_peak_fraction\": {:.3}}}{}\n",
            row.name,
            row.optimized,
            row.no_fuse,
            row.no_simd,
            row.checkpointed,
            row.optimized / row.no_fuse,
            row.checkpoint_overhead,
            row.peak_fraction,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_throughput.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

fn bench(c: &mut Criterion) {
    let samples = if criterion::is_test_mode() { 1 } else { 5 };

    // Lower and load each case exactly once; every report section below
    // reuses the loaded programs.
    let cases: Vec<(Case, LoadedProgram)> = cases()
        .into_iter()
        .map(|case| {
            let loaded = load(&case.program);
            (case, loaded)
        })
        .collect();

    let peak = host_peak();
    println!("\nsim_throughput — simulated grid-point throughput (linked flat-memory engine)");
    println!(
        "  SIMD peak reference: {:?}, {} lanes x {} FP ports @ {:.2} GHz",
        peak.isa, peak.lanes, peak.fp_ports, peak.ghz
    );
    let mut rows: Vec<Row> = Vec::new();
    for (case, loaded) in &cases {
        let optimized = time_engine(loaded, case.steps, samples, LinkOptions::default());
        let unoptimized = time_engine(
            loaded,
            case.steps,
            samples,
            LinkOptions { optimize: false, ..LinkOptions::default() },
        );
        let scalar = time_engine(
            loaded,
            case.steps,
            samples,
            LinkOptions { simd: false, ..LinkOptions::default() },
        );
        // Checkpoint overhead is a steady-state property — the anchor
        // checkpoint and cadence captures amortize over long runs (the
        // paper's workloads run 100k timesteps) — so it is measured over a
        // longer window than the per-configuration rates above, against a
        // plain run of the same length.
        let ckpt_steps = if criterion::is_test_mode() { 16 } else { 1024 };
        let plain_long = time_engine(loaded, ckpt_steps, samples, LinkOptions::default());
        let checkpointed = time_engine_checkpointed(loaded, ckpt_steps, samples);
        let opt_rate = mpts(&case.program, case.steps, optimized);
        let unopt_rate = mpts(&case.program, case.steps, unoptimized);
        let scalar_rate = mpts(&case.program, case.steps, scalar);
        let ckpt_rate = mpts(&case.program, ckpt_steps, checkpointed);
        let ckpt_overhead = (checkpointed / plain_long - 1.0).max(0.0);
        let flops = opt_rate * 1e6 * flops_per_point(&case.program) as f64;
        let fraction = peak.achieved_fraction(flops, false);
        println!(
            "  {:<26} {:>9.2} MPts/s  (no-fuse {:>9.2}, no-simd {:>9.2}, optimizer {:>4.2}x, \
             checkpointed {:>9.2} [{:+.1}% overhead], {:>4.1}% of SIMD peak)",
            case.name,
            opt_rate,
            unopt_rate,
            scalar_rate,
            opt_rate / unopt_rate,
            ckpt_rate,
            ckpt_overhead * 100.0,
            fraction * 100.0
        );
        rows.push(Row {
            name: case.name.to_string(),
            optimized: opt_rate,
            no_fuse: unopt_rate,
            no_simd: scalar_rate,
            checkpointed: ckpt_rate,
            checkpoint_overhead: ckpt_overhead,
            peak_fraction: fraction,
        });
    }
    if !criterion::is_test_mode() {
        write_snapshot(&rows);
    }

    // Speedup over the pre-refactor engine, on the first (tiny) case.
    // The interpreter is too slow to time at the medium sizes, which is
    // the point of the refactor.
    let (tiny, tiny_loaded) = &cases[0];
    let linked = time_engine(tiny_loaded, tiny.steps, samples, LinkOptions::default());
    let interp = time_interp(tiny_loaded, tiny.steps, samples);
    println!(
        "  legacy interpreter (jacobian_tiny): {:>10.2} MPts/s — linked engine speedup {:.1}x",
        mpts(&tiny.program, tiny.steps, interp),
        interp / linked
    );

    // Criterion-tracked timings for trend comparisons across PRs.  Each
    // sample runs the same simulator again so, like the MPts/s section,
    // the trend tracks the run phase only (not clone + link).
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(samples);
    for (case, loaded) in &cases {
        let mut sim = WseGridSim::new(loaded.clone()).expect("program links");
        group.bench_function(format!("linked_{}", case.name), |b| {
            b.iter(|| sim.run(Some(case.steps)).expect("run succeeds"))
        });
    }
    let (tiny, tiny_loaded) = &cases[0];
    let mut sim = InterpGridSim::new(tiny_loaded.clone());
    group.bench_function("interp_jacobian_tiny_6x6x12", |b| {
        b.iter(|| sim.run(Some(tiny.steps)).expect("run succeeds"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
