//! Ablation: effect of the linalg-fuse-multiply-add pass (@fmacs generation).
use criterion::{criterion_group, criterion_main, Criterion};
use wse_stencil::benchmarks::{Benchmark, ProblemSize};
use wse_stencil::experiments::{ablation_fusion, render_table};
use wse_stencil::Compiler;

fn bench(c: &mut Criterion) {
    let rows = ablation_fusion().expect("ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.0}", r.fused_gpts),
                format!("{:.0}", r.unfused_gpts),
                format!("{:.2}x", r.fused_gpts / r.unfused_gpts),
                r.fmacs.to_string(),
            ]
        })
        .collect();
    println!(
        "\nAblation (fmac fusion)\n{}",
        render_table(
            &["benchmark", "fused GPts/s", "unfused GPts/s", "gain", "@fmacs count"],
            &table
        )
    );

    let mut group = c.benchmark_group("ablation_fusion");
    group.sample_size(10);
    group.bench_function("compile_diffusion_fused", |b| {
        let program = Benchmark::Diffusion.program(ProblemSize::Medium);
        b.iter(|| Compiler::new().compile(&program).unwrap())
    });
    group.bench_function("compile_diffusion_unfused", |b| {
        let program = Benchmark::Diffusion.program(ProblemSize::Medium);
        b.iter(|| Compiler::new().fmac_fusion(false).compile(&program).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
