//! Figure 5: generated seismic code vs the hand-written WSE2 kernel.
use criterion::{criterion_group, criterion_main, Criterion};
use wse_stencil::benchmarks::{Benchmark, ProblemSize};
use wse_stencil::experiments::{estimate_benchmark, fig5_handwritten_comparison, render_table};
use wse_stencil::WseTarget;

fn bench(c: &mut Criterion) {
    let rows = fig5_handwritten_comparison().expect("figure 5");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.clone(),
                format!("{:.0}", r.handwritten_wse2_gpts),
                format!("{:.0}", r.ours_wse2_gpts),
                format!("{:.0}", r.ours_wse3_gpts),
                format!("{:.3}", r.speedup_wse2),
                format!("{:.3}", r.speedup_wse3),
            ]
        })
        .collect();
    println!(
        "\nFigure 5 — 25-pt seismic vs hand-written (speedup relative to hand-written WSE2)\n{}",
        render_table(
            &[
                "size",
                "hand-written WSE2",
                "ours WSE2",
                "ours WSE3",
                "speedup WSE2",
                "speedup WSE3"
            ],
            &table
        )
    );

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("compile_and_estimate_seismic_wse2", |b| {
        b.iter(|| {
            estimate_benchmark(Benchmark::Seismic25, ProblemSize::Large, WseTarget::Wse2, 1)
                .unwrap()
        })
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
