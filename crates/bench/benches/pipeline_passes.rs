//! Micro-benchmarks of the lowering pipeline itself (compile times per
//! benchmark and functional-simulation throughput on a tiny grid).
use criterion::{criterion_group, criterion_main, Criterion};
use wse_stencil::benchmarks::Benchmark;
use wse_stencil::Compiler;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for benchmark in Benchmark::ALL {
        group.bench_function(format!("lower_{}", benchmark.name().replace(' ', "_")), |b| {
            let program = benchmark.tiny_program();
            b.iter(|| Compiler::new().num_chunks(2).compile(&program).unwrap())
        });
    }
    group.bench_function("functional_simulation_jacobian_tiny", |b| {
        let program = Benchmark::Jacobian.tiny_program();
        let artifact = Compiler::new().compile(&program).unwrap();
        b.iter(|| artifact.validate_against_reference().unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
