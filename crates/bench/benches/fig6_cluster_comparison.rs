//! Figure 6: WSE3 acoustic throughput vs 128 A100 GPUs and 128 CPU nodes.
use criterion::{criterion_group, criterion_main, Criterion};
use wse_stencil::benchmarks::{Benchmark, ProblemSize};
use wse_stencil::experiments::{estimate_benchmark, fig6_cluster_comparison, render_table};
use wse_stencil::WseTarget;

fn bench(c: &mut Criterion) {
    let r = fig6_cluster_comparison().expect("figure 6");
    let table = vec![
        vec!["WSE3".to_string(), format!("{:.0}", r.wse3_gpts), "1.0x".to_string()],
        vec![
            "128 x A100".to_string(),
            format!("{:.0}", r.a100_cluster_gpts),
            format!("{:.1}x slower", r.speedup_vs_a100),
        ],
        vec![
            "128 x dual EPYC 7742".to_string(),
            format!("{:.0}", r.cpu_cluster_gpts),
            format!("{:.1}x slower", r.speedup_vs_cpu),
        ],
    ];
    println!(
        "\nFigure 6 — Devito acoustic (large, 100k iterations)\n{}",
        render_table(&["system", "GPts/s", "relative"], &table)
    );

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("compile_and_estimate_acoustic_wse3", |b| {
        b.iter(|| {
            estimate_benchmark(Benchmark::Acoustic, ProblemSize::Large, WseTarget::Wse3, 2).unwrap()
        })
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
