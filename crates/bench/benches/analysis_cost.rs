//! Analysis cost: what the static analyzer adds on top of a compile.
//!
//! The dependence-DAG build, the static race detector, and the AST lint
//! all run inside developer loops (`wse-lint`) and the conformance
//! harness (every seed), so their cost must stay a small fraction of a
//! compile.  This bench prints an analysis-cost column next to the
//! compile rate for each paper benchmark — microseconds per program for
//! lint, DAG build, and race check, plus the DAG size — so a regression
//! in the O(n²) interval pass shows up as a number, not a slow CI run.
//! Run with `cargo bench -p wse-bench --bench analysis_cost`; CI
//! smoke-runs it with `-- --test`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use wse_analysis::Analyzer;
use wse_frontends::benchmarks::Benchmark;
use wse_sim::{link_program_with, LinkOptions};
use wse_stencil::Compiler;

/// Median seconds per call over `samples` timed batches of `iters`.
fn secs_per_call(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let (samples, iters) = if criterion::is_test_mode() { (1, 1) } else { (5, 200) };
    let compiler = Compiler::new().num_chunks(2);
    let analyzer = Analyzer::new();

    println!("\nanalysis_cost — static analyzer cost per paper benchmark");
    for benchmark in Benchmark::ALL {
        let program = benchmark.tiny_program();
        let artifact = compiler.compile(&program).expect("benchmark compiles");
        let loaded = artifact.loaded_program().clone();
        let linked = link_program_with(
            &loaded,
            &LinkOptions { optimize: true, validate: false, ..LinkOptions::default() },
        )
        .expect("benchmark links");

        let compile = secs_per_call(samples, iters.min(40), || {
            criterion::black_box(compiler.compile(&program).expect("compile succeeds"));
        });
        let lint = secs_per_call(samples, iters, || {
            criterion::black_box(analyzer.lint(&program));
        });
        let dag = secs_per_call(samples, iters, || {
            criterion::black_box(analyzer.dependence_graph(&linked));
        });
        let race = secs_per_call(samples, iters, || {
            criterion::black_box(analyzer.check_stream(&linked));
        });
        // The validator is the costly consumer (it abstractly executes the
        // stream), so it is timed as a whole relink with validation on.
        let validate = secs_per_call(samples, iters.min(40), || {
            criterion::black_box(
                link_program_with(
                    &loaded,
                    &LinkOptions { optimize: true, validate: true, ..LinkOptions::default() },
                )
                .expect("validated link succeeds"),
            );
        });

        let counts = analyzer.dependence_graph(&linked).counts();
        println!(
            "  {:<12} compile {:>8.1}us | lint {:>6.1}us  dag {:>6.1}us  race {:>6.1}us  \
             validated-link {:>8.1}us | dag {} nodes / {} edges ({:.1}% of compile)",
            benchmark.name(),
            compile * 1e6,
            lint * 1e6,
            dag * 1e6,
            race * 1e6,
            validate * 1e6,
            counts.nodes,
            counts.edges(),
            (lint + dag + race) / compile * 100.0,
        );
    }

    // Criterion-tracked timings for trend comparisons across PRs.
    let mut group = c.benchmark_group("analysis_cost");
    group.sample_size(samples.max(2));
    let program = Benchmark::Seismic25.tiny_program();
    let artifact = compiler.compile(&program).expect("seismic compiles");
    let linked = link_program_with(
        &artifact.loaded_program().clone(),
        &LinkOptions { optimize: true, validate: false, ..LinkOptions::default() },
    )
    .expect("seismic links");
    group.bench_function("lint_seismic", |b| b.iter(|| analyzer.lint(&program)));
    group.bench_function("dag_seismic", |b| b.iter(|| analyzer.dependence_graph(&linked)));
    group.bench_function("race_seismic", |b| b.iter(|| analyzer.check_stream(&linked)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
