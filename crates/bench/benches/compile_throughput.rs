//! Compile throughput: programs/sec through the compiler facade, the
//! pooled-context compile service (cold), and the artifact cache (hit).
//!
//! This bench is the perf trajectory for the compile-as-a-service
//! redesign, the way `sim_throughput` tracks the simulator: the embedded
//! `BASELINE` numbers are the pre-refactor facade (one fresh arena per
//! compile, clone-per-pass IR) measured on the same cases, and future
//! pipeline changes must not regress the rates printed here.  A full
//! (non-`--test`) run snapshots the numbers to
//! `BENCH_compile_throughput.json` at the workspace root.  Run with
//! `cargo bench -p wse-bench --bench compile_throughput`; CI smoke-runs
//! it with `-- --test` (one iteration per case, no timing, no snapshot).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use wse_frontends::ast::StencilProgram;
use wse_frontends::benchmarks::{jacobian, seismic_25pt};
use wse_stencil::Compiler;

/// One compile-throughput case plus the pre-refactor fresh-compile rate
/// (programs/sec) measured on the clone-per-pass baseline.  Compile time
/// is grid-size independent (the pipeline manipulates IR, not field
/// data), so "medium" differs from "tiny" only through timestep count
/// and equation structure.
struct Case {
    name: &'static str,
    program: StencilProgram,
    baseline_per_sec: f64,
}

fn cases() -> Vec<Case> {
    let mut cases = vec![
        Case {
            name: "jacobian_tiny_6x6x12",
            program: jacobian(6, 6, 12, 3),
            baseline_per_sec: 3028.1,
        },
        Case {
            name: "seismic_tiny_10x10x16",
            program: seismic_25pt(10, 10, 16, 2),
            baseline_per_sec: 1170.8,
        },
    ];
    if !criterion::is_test_mode() {
        cases.push(Case {
            name: "jacobian_medium_48x48x96",
            program: jacobian(48, 48, 96, 4),
            baseline_per_sec: 2966.1,
        });
        cases.push(Case {
            name: "seismic_medium_32x32x64",
            program: seismic_25pt(32, 32, 64, 2),
            baseline_per_sec: 1160.5,
        });
    }
    cases
}

/// Median over `samples` of the per-sample programs/sec (each sample
/// times `iters` compiles).
fn rate(samples: usize, iters: usize, mut compile: impl FnMut()) -> f64 {
    let mut rates: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                compile();
            }
            iters as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

struct Row {
    name: String,
    fresh: f64,
    cold: f64,
    hit: f64,
    baseline: f64,
}

/// Writes the measured numbers to `BENCH_compile_throughput.json` at the
/// workspace root (hand-rolled JSON; no serde in-tree).
fn write_snapshot(rows: &[Row]) {
    let mut json =
        String::from("{\n  \"bench\": \"compile_throughput\",\n  \"unit\": \"programs/sec\",\n");
    json.push_str("  \"baseline\": \"pre-refactor facade (fresh arena per compile)\",\n");
    json.push_str("  \"cases\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"fresh\": {:.1}, \"service_cold\": {:.1}, \
             \"cache_hit\": {:.1}, \"baseline\": {:.1}, \"repeat_vs_baseline\": {:.1}, \
             \"cache_hit_vs_cold\": {:.1}}}{}\n",
            row.name,
            row.fresh,
            row.cold,
            row.hit,
            row.baseline,
            row.hit / row.baseline,
            row.hit / row.cold,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile_throughput.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

fn bench(c: &mut Criterion) {
    let (samples, iters) = if criterion::is_test_mode() { (1, 1) } else { (5, 40) };
    let compiler = Compiler::new().num_chunks(2);

    println!("\ncompile_throughput — programs/sec through the compile API");
    let mut rows: Vec<Row> = Vec::new();
    for case in &cases() {
        // Fresh facade: a new arena per compile (the classic `compile()`).
        let fresh = rate(samples, iters, || {
            let artifact = compiler.compile(&case.program).expect("compile succeeds");
            criterion::black_box(&artifact);
        });
        // Service, cold: pooled contexts, cache disabled — every request
        // runs the full pipeline but reuses interned type storage.
        let cold_service = compiler.service().cache(false);
        let cold = rate(samples, iters, || {
            let artifact = cold_service.compile(&case.program).expect("compile succeeds");
            criterion::black_box(&artifact);
        });
        // Service, repeated request: served from the artifact cache.
        let hot_service = compiler.service();
        hot_service.compile(&case.program).expect("warmup compile succeeds");
        let hit = rate(samples, iters, || {
            let artifact = hot_service.compile(&case.program).expect("compile succeeds");
            criterion::black_box(&artifact);
        });
        println!(
            "  {:<26} fresh {:>7.0}/s  cold {:>7.0}/s  cache-hit {:>10.0}/s  \
             (repeat vs baseline {:>6.1}x, hit vs cold {:>6.1}x)",
            case.name,
            fresh,
            cold,
            hit,
            hit / case.baseline_per_sec,
            hit / cold,
        );
        rows.push(Row {
            name: case.name.to_string(),
            fresh,
            cold,
            hit,
            baseline: case.baseline_per_sec,
        });
    }
    if !criterion::is_test_mode() {
        write_snapshot(&rows);
    }

    // Batch path: the whole benchmark suite as one request batch.
    let programs: Vec<StencilProgram> = cases().into_iter().map(|c| c.program).collect();
    let batch_service = compiler.service().cache(false);
    let batch = rate(samples, 1, || {
        let results = batch_service.compile_batch(&programs);
        assert!(results.iter().all(Result::is_ok));
        criterion::black_box(&results);
    });
    println!("  batch of {} programs: {:.0} batches/s (cache disabled)", programs.len(), batch);

    // Criterion-tracked timings for trend comparisons across PRs.
    let mut group = c.benchmark_group("compile_throughput");
    group.sample_size(samples.max(2));
    for case in &cases() {
        group.bench_function(format!("fresh_{}", case.name), |b| {
            b.iter(|| compiler.compile(&case.program).expect("compile succeeds"))
        });
        let service = compiler.service();
        group.bench_function(format!("cached_{}", case.name), |b| {
            b.iter(|| service.compile(&case.program).expect("compile succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
