//! Ablation: chunk count vs throughput and per-PE memory footprint.
use criterion::{criterion_group, criterion_main, Criterion};
use wse_stencil::benchmarks::{Benchmark, ProblemSize};
use wse_stencil::experiments::{ablation_chunks, render_table};
use wse_stencil::Compiler;

fn bench(c: &mut Criterion) {
    for benchmark in [Benchmark::Seismic25, Benchmark::Diffusion] {
        let rows = ablation_chunks(benchmark).expect("ablation");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.num_chunks.to_string(),
                    format!("{:.0}", r.gpts),
                    format!("{}", r.bytes_per_pe),
                ]
            })
            .collect();
        println!(
            "\nAblation (chunk count) — {}\n{}",
            benchmark.name(),
            render_table(&["num_chunks", "GPts/s", "bytes per PE"], &table)
        );
    }

    let mut group = c.benchmark_group("ablation_chunks");
    group.sample_size(10);
    group.bench_function("compile_seismic_2_chunks", |b| {
        let program = Benchmark::Seismic25.program(ProblemSize::Medium);
        b.iter(|| Compiler::new().num_chunks(2).compile(&program).unwrap())
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
