//! Baselines used by the evaluation: the hand-written 25-point seismic CSL
//! kernel (Figure 5) and the GPU / CPU clusters of Figure 6.

use crate::machine::{ComparisonDevice, WseMachine, A100, EPYC_7742_NODE};
use crate::perf::{CycleBreakdown, PerfEstimate};

/// Per-PE cycle model of the hand-written 25-point seismic kernel of
/// Jacquelin et al. (available in the Cerebras SDK for the WSE2 only).
///
/// Structural differences from the generated code, as reported in
/// Section 6.1 of the paper:
/// * the full column (including values not needed by the calculation) is
///   transmitted, whereas the generated code only sends the interior;
/// * the exchange always uses two chunks because of its larger buffers;
/// * roughly twice as many tasks are used per exchange.
pub fn handwritten_seismic_estimate(
    machine: &WseMachine,
    grid: (i64, i64, i64),
    timesteps: i64,
    flops_per_point: u64,
) -> PerfEstimate {
    let z = grid.2;
    let pattern = 4i64; // 25-point stencil radius
    let num_chunks = 2i64;
    let chunk = (z + num_chunks - 1) / num_chunks;
    let directions = 4u64;

    // The hand-written kernel performs the same split reduction as the
    // generated code (16 remote contributions handled while receiving, 9
    // local contributions plus the write-back afterwards), but always over
    // the *full* column and always in two chunks.
    let local_ops = 10u64; // 9 local fmacs + the column write-back
    let pre_ops = 1u64; // accumulator reset
    let compute_local = (local_ops + pre_ops) * (2 * z as u64 + 4);
    let mut recv_compute = (16u64 * (2 * chunk as u64 + 4)) * num_chunks as u64;
    if machine.self_transmit {
        recv_compute = recv_compute * 3 / 2;
    }

    // Communication: the full column is sent (the generated code omits the
    // first/last `pattern` values that the calculation does not need).
    let self_transmit_factor = if machine.self_transmit { 1.25 } else { 1.0 };
    let per_chunk = (pattern * chunk) as f64 * self_transmit_factor;
    let fabric = 60 + (per_chunk as u64 + 7 * pattern as u64) * num_chunks as u64;

    // Task management: roughly twice the generated code's task count
    // (Section 6.1 reports our library reduces task count by ~50 %).
    let tasks = 2 * (num_chunks as u64 * (2 * directions + 1) + 1) + 4;
    let task_overhead = tasks * machine.task_activation_cycles;

    let overlapped = fabric.max(recv_compute);
    let breakdown = CycleBreakdown {
        compute: compute_local + recv_compute.min(overlapped),
        communication: overlapped.saturating_sub(recv_compute.min(overlapped)),
        task_overhead,
    };
    let cycles = breakdown.total();
    let seconds = cycles as f64 * timesteps as f64 / (machine.clock_ghz * 1e9);
    let points = grid.0 as f64 * grid.1 as f64 * grid.2 as f64;
    let gpts = points * timesteps as f64 / seconds / 1e9;
    let tflops = gpts * 1e9 * flops_per_point as f64 / 1e12;
    PerfEstimate {
        cycles_per_timestep: cycles,
        breakdown,
        seconds,
        gpts_per_sec: gpts,
        tflops,
        fraction_of_peak: tflops * 1e12 / machine.peak_flops(),
        tasks_per_timestep: tasks,
    }
}

/// Throughput of a memory-bound stencil on a cluster of conventional
/// devices (used for Figure 6).
///
/// `bytes_per_point` is the main-memory traffic per grid point per sweep,
/// `efficiency` the sustained fraction of STREAM bandwidth (halo exchange,
/// strided access and launch overheads), taken from the strong-scaling
/// study of Bisbas et al.
pub fn cluster_gpts(
    device: &ComparisonDevice,
    num_devices: usize,
    bytes_per_point: f64,
    efficiency: f64,
) -> f64 {
    let bandwidth = device.memory_bandwidth_tbs * 1e12 * efficiency;
    num_devices as f64 * bandwidth / bytes_per_point / 1e9
}

/// The 128×A100 (Tursa) acoustic baseline of Figure 6.
pub fn a100_cluster_acoustic_gpts() -> f64 {
    // Devito's acoustic propagator touches several wave-field and model
    // arrays per point (~10 values of 4 bytes once cache reuse is accounted
    // for).  Strong-scaling a 1158³ domain over 128 GPUs leaves each device
    // a small sub-domain with a high communication-to-computation ratio, so
    // only ~22 % of STREAM bandwidth is sustained (Bisbas et al.).
    cluster_gpts(&A100, 128, 40.0, 0.22)
}

/// The 128-node ARCHER2 (dual EPYC 7742) acoustic baseline of Figure 6.
pub fn cpu_cluster_acoustic_gpts() -> f64 {
    // CPU nodes sustain a larger fraction of their (much lower) bandwidth
    // because each node holds a bigger sub-domain of the 1024³ problem.
    cluster_gpts(&EPYC_7742_NODE, 128, 40.0, 0.75)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::WseGeneration;

    #[test]
    fn handwritten_kernel_is_close_to_but_below_generated_performance_shape() {
        let machine = WseGeneration::Wse2.machine();
        let est = handwritten_seismic_estimate(&machine, (750, 994, 450), 100_000, 50);
        // Jacquelin et al. report ~28 % of peak on the WSE2.
        assert!(est.fraction_of_peak > 0.10, "peak fraction {:.3}", est.fraction_of_peak);
        assert!(est.fraction_of_peak < 0.60, "peak fraction {:.3}", est.fraction_of_peak);
        assert!(est.gpts_per_sec > 100.0);
    }

    #[test]
    fn cluster_baselines_are_orders_of_magnitude_below_the_wafer() {
        let a100 = a100_cluster_acoustic_gpts();
        let cpu = cpu_cluster_acoustic_gpts();
        assert!(a100 > cpu, "A100 cluster must beat the CPU cluster");
        // Both are in the hundreds-to-thousands of GPts/s range.
        assert!(a100 > 100.0 && a100 < 20_000.0, "a100 = {a100}");
        assert!(cpu > 10.0 && cpu < 10_000.0, "cpu = {cpu}");
    }

    #[test]
    fn cluster_scaling_is_linear_in_devices() {
        let one = cluster_gpts(&A100, 1, 20.0, 0.5);
        let many = cluster_gpts(&A100, 128, 20.0, 0.5);
        assert!((many / one - 128.0).abs() < 1e-9);
    }
}
