//! # wse-sim — a Wafer-Scale Engine simulator and performance model
//!
//! The paper's evaluation runs on Cerebras CS-2 and CS-3 systems; this
//! crate provides the substitute substrate used by the reproduction:
//!
//! * [`machine`] — WSE2/WSE3 machine models plus the comparison devices;
//! * [`loader`] — turns the final `csl` dialect program into an executable
//!   per-PE program;
//! * [`link`] — compiles the loaded program into a flat-memory form:
//!   interned buffer ids, one arena per PE, resolved instruction streams
//!   with all bounds validated up front;
//! * [`kernels`] — monomorphized SIMD kernels (AVX2/SSE2/scalar, selected
//!   by runtime feature detection) with a bitwise-exact default mode and an
//!   opt-in `fast_fma` contraction mode;
//! * [`plan`] — the kernel-plan compiler: lowers linked instruction
//!   streams into flat plans of pre-specialized kernel calls, proving
//!   scratch round-trips away with link-time disjointness;
//! * [`exec`] — lock-step execution of the planned program over the PE
//!   grid (used to validate generated code against the reference
//!   executor);
//! * [`fault`] — deterministic, seeded fault injection (arena bit-flips,
//!   dropped/duplicated halo deliveries, stalled or panicking bands);
//! * [`checkpoint`] — copy-on-write checkpoints, ABFT-style row
//!   checksums, and the recovery configuration behind the engine's
//!   detect-and-rollback loop;
//! * [`interp`] — the pre-refactor string-keyed interpreter, kept as the
//!   baseline for the `sim_throughput` bench and engine-parity tests;
//! * [`reference`] — a sequential reference executor over dense 3-D grids;
//! * [`perf`] — the analytic cycle model (DSD throughput, fabric hops,
//!   task activation overheads, WSE2 self-transmit penalty);
//! * [`roofline`] — the roofline model of Figure 7;
//! * [`baselines`] — the hand-written seismic kernel and the GPU/CPU
//!   cluster baselines of Figures 5 and 6.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod checkpoint;
pub mod env;
pub mod exec;
pub mod fault;
pub mod interp;
pub mod kernels;
pub mod link;
pub mod loader;
pub mod machine;
pub mod perf;
pub mod plan;
pub mod reference;
pub mod roofline;
pub mod validate;

pub use checkpoint::{checksum_f32, row_checksums, Checkpoint, RecoveryOptions, RecoveryStats};
pub use env::{env_flag, env_value};
pub use exec::{ExecError, ExecErrorKind, WseGridSim};
pub use fault::{FaultCounts, FaultKind, FaultOptions, FaultPlan, INJECTED_BAND_PANIC};
pub use interp::InterpGridSim;
pub use kernels::Isa;
pub use link::{
    link_program, link_program_with, LinkMutation, LinkOptions, LinkedProgram, OptStats, SkipCounts,
};
pub use loader::{load_program, LoadError, LoadedProgram};
pub use machine::{TargetMachine, WseGeneration, WseMachine, A100, EPYC_7742_NODE};
pub use perf::{estimate_performance, fabric_profile, CycleBreakdown, FabricProfile, PerfEstimate};
pub use plan::{plan_program, PlanCounts, ProgramPlan};
pub use reference::{initial_state, max_abs_difference, run_reference, Field3D, GridState};
pub use roofline::SimdPeak;
pub use validate::{observable_summary, streams_equivalent};
