//! # wse-sim — a Wafer-Scale Engine simulator and performance model
//!
//! The paper's evaluation runs on Cerebras CS-2 and CS-3 systems; this
//! crate provides the substitute substrate used by the reproduction:
//!
//! * [`machine`] — WSE2/WSE3 machine models plus the comparison devices;
//! * [`loader`] — turns the final `csl` dialect program into an executable
//!   per-PE program;
//! * [`exec`] — functional lock-step execution of the PE grid (used to
//!   validate generated code against the reference executor);
//! * [`reference`] — a sequential reference executor over dense 3-D grids;
//! * [`perf`] — the analytic cycle model (DSD throughput, fabric hops,
//!   task activation overheads, WSE2 self-transmit penalty);
//! * [`roofline`] — the roofline model of Figure 7;
//! * [`baselines`] — the hand-written seismic kernel and the GPU/CPU
//!   cluster baselines of Figures 5 and 6.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod exec;
pub mod loader;
pub mod machine;
pub mod perf;
pub mod reference;
pub mod roofline;

pub use exec::{ExecError, WseGridSim};
pub use loader::{load_program, LoadError, LoadedProgram};
pub use machine::{WseGeneration, WseMachine, A100, EPYC_7742_NODE};
pub use perf::{estimate_performance, CycleBreakdown, PerfEstimate};
pub use reference::{initial_state, max_abs_difference, run_reference, Field3D, GridState};
