//! Link phase of the two-phase simulator: resolves a [`LoadedProgram`]
//! into a flat-memory [`LinkedProgram`], then optimizes the instruction
//! stream.
//!
//! The loader produces a portable, string-keyed program (buffer names,
//! per-kernel instruction lists, a communication spec).  Executing that
//! form directly means hashing a buffer name on every operand of every
//! instruction of every PE — which dominates simulation time.  Linking
//! happens once, at load time:
//!
//! * every buffer name is interned into a dense [`BufferId`] and all of a
//!   PE's buffers are laid out back to back in one flat `f32` arena
//!   ([`BufferLayout`] records each buffer's base offset);
//! * every [`ViewRef`] becomes a [`LinkedView`] — an absolute arena offset
//!   plus a length and the dynamic-chunk-offset flag — and every
//!   [`Instr`] becomes a [`LinkedInstr`] with all operands resolved;
//! * the halo exchange is resolved into a [`LinkedComm`]: which interior
//!   columns must be snapshotted ([`SnapField`]) and which snapshot column
//!   each receive slot reads ([`LinkedSlot`]).
//!
//! All bounds are validated here (views inside their buffer even at the
//! maximum dynamic chunk offset, receive slots inside the receive buffer,
//! field buffers long enough for the interior), so the run phase in
//! [`crate::exec`] needs no per-instruction error paths.
//!
//! # The link-time optimizer
//!
//! After resolution, [`link_program`] rewrites each kernel's instruction
//! stream into fused superinstructions (disable with `WSE_SIM_NO_FUSE=1`
//! or [`LinkOptions`]).  Three rewrites run, in order:
//!
//! 1. **FMA-chain fusion.** A `Fill(d, c)` followed by a run of
//!    `Macs(d, d, src_i, coeff_i)` — or a bare run of such `Macs` — is one
//!    multi-pass reduction: the destination is re-streamed once per
//!    instruction.  The run collapses into a single [`LinkedInstr::FusedMacs`]
//!    computing `d[j] = init(j) + Σ coeff_i · src_i[j]` in one sweep over
//!    `d`.  *Safety:* every source view must be provably disjoint from the
//!    destination (conservative interval check that extends dynamic views
//!    by the maximum runtime chunk offset), because the one-pass sweep
//!    must not observe its own writes; the only aliasing permitted is the
//!    initial accumulator being the destination itself, which reads each
//!    element before overwriting it.  Chains never cross an instruction
//!    that is not part of the pattern (an interleaved `Copy` or `Binary`
//!    is a barrier), and never cross block boundaries.
//!
//! 2. **Copy folding.** A `FusedMacs` into an accumulator that is
//!    immediately copied to an output view (`Copy { dest: out, src: acc }`)
//!    re-streams the column twice.  When (a) every chain source — and the
//!    initial accumulator, which keeps feeding the sweep — is disjoint
//!    from `out`, and (b) the eliminated write to `acc` is *dead* (a
//!    conservative scan over the program's cyclic execution order — kernel
//!    by kernel, wrapping through the timestep loop, with field interiors
//!    always live because they are observable — proves `acc` is fully
//!    overwritten before it is next read), the chain retargets `out` and
//!    the `Copy` disappears.
//!
//! 3. **Arena coalescing.** Buffers left unreferenced by any instruction,
//!    receive slot, or snapshot — typically `scratch` and promoted
//!    coefficient constants once their users fused away, or a folded
//!    accumulator — are removed and the arena re-packed, shrinking every
//!    PE's working set.
//!
//! Every rewrite preserves *bitwise* results: fused sweeps perform the
//! identical sequence of f32 multiplies and adds per element as the
//! instructions they replace (see the shared-semantics note in
//! [`crate::interp`]), and [`crate::exec`] runs optimized and unoptimized
//! streams to identical bits.  The conformance harness enforces this by
//! running every case through both streams.  [`LinkedProgram::stats`]
//! reports what fired: instruction counts before/after, chain lengths,
//! folded copies, and arena bytes reclaimed.
//!
//! [`Instr`]: crate::loader::Instr
//! [`ViewRef`]: crate::loader::ViewRef

use std::collections::HashMap;

use crate::exec::ExecError;
use crate::loader::{BinKind, CommSpec, Instr, LoadedProgram, Src, ViewRef};

/// A link-time rejection: an [`ExecError`] carrying the stable
/// rejection-class `code` (one of the `link-*` entries of the
/// [`wse_ir::diagnostics`] registry; a unit test enforces that every code
/// used here is registered).
fn err(code: &'static str, message: impl Into<String>) -> ExecError {
    ExecError::invalid(message).with_code(code)
}

/// A deliberately broken rewrite, injectable through
/// [`LinkOptions::mutate`] (or `WSE_SIM_MUTATE_LINK`) to prove the
/// translation validator catches miscompilations *statically* rather than
/// relying on the bitwise conformance net alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkMutation {
    /// Drop the source/destination disjointness check in FMA-chain fusion
    /// ([`fuse_block`]): aliasing chains then fuse into one-pass sweeps
    /// that observe their own writes — a real miscompilation the
    /// validator must reject (diagnostic `E201`).
    DropAliasingCheck,
}

/// Options controlling the link phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOptions {
    /// Run the link-time optimizer (FMA-chain fusion, copy folding, arena
    /// coalescing).  Optimized and unoptimized streams produce bitwise
    /// identical results; the toggle exists so conformance can prove it.
    pub optimize: bool,
    /// Dispatch the planned kernels on the widest instruction set the host
    /// supports (see [`crate::kernels::Isa::detect`]).  SIMD-on and
    /// SIMD-off streams produce bitwise identical results — the vector
    /// kernels preserve the exact per-element f32 operation sequence — and
    /// the conformance harness runs both to prove it.
    pub simd: bool,
    /// Contract each multiply-then-add pair into a single-rounded fused
    /// multiply-add.  This *changes* results (one rounding instead of
    /// two per term), so it is off by default and fast-FMA streams are
    /// validated through the conformance tolerance path against the
    /// reference executor, never the bitwise path.
    pub fast_fma: bool,
    /// Run the translation validator over every optimizer pass: the
    /// observable dataflow of the instruction stream (see
    /// [`crate::validate`]) is summarized before optimization and
    /// re-checked after each pass unit; a pass that drops or reorders a
    /// dependence is rejected and its rewrite reverted, counted in
    /// [`OptStats::validator_rejections`] with the pass name recorded.
    /// Defaults to on in debug builds; `WSE_SIM_VALIDATE_LINK=1` turns it
    /// on anywhere (the conformance driver's CI sweep does).
    pub validate: bool,
    /// Deliberately break one rewrite (see [`LinkMutation`]) to exercise
    /// the validator.  Never set outside tests and the
    /// `WSE_SIM_MUTATE_LINK` escape hatch.
    pub mutate: Option<LinkMutation>,
}

impl Default for LinkOptions {
    fn default() -> Self {
        Self {
            optimize: true,
            simd: true,
            fast_fma: false,
            validate: cfg!(debug_assertions),
            mutate: None,
        }
    }
}

impl LinkOptions {
    /// Reads the process-wide escape hatches: `WSE_SIM_NO_FUSE` disables
    /// the link-time optimizer, `WSE_SIM_NO_SIMD` forces the scalar
    /// kernel set, `WSE_SIM_FAST_FMA` opts into contracted multiply-adds
    /// (tolerance-path only), `WSE_SIM_VALIDATE_LINK` forces the
    /// translation validator on (it already defaults to on in debug
    /// builds), and `WSE_SIM_MUTATE_LINK=drop-aliasing-check` injects the
    /// broken rewrite the validator's mutation test hunts.  Truthiness
    /// follows [`crate::env::env_flag`] (`1`/`true`/`yes`/`on`, any case).
    pub fn from_env() -> Self {
        let mutate = match crate::env::env_value::<String>("WSE_SIM_MUTATE_LINK").as_deref() {
            Some("drop-aliasing-check") => Some(LinkMutation::DropAliasingCheck),
            _ => None,
        };
        Self {
            optimize: !crate::env::env_flag("WSE_SIM_NO_FUSE"),
            simd: !crate::env::env_flag("WSE_SIM_NO_SIMD"),
            fast_fma: crate::env::env_flag("WSE_SIM_FAST_FMA"),
            validate: cfg!(debug_assertions) || crate::env::env_flag("WSE_SIM_VALIDATE_LINK"),
            mutate,
        }
    }
}

/// Dense handle of a PE-local buffer: an index into [`LinkedProgram::layouts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub u32);

/// Placement of one buffer inside the per-PE arena.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferLayout {
    /// Buffer symbol (kept for diagnostics and field extraction).
    pub name: String,
    /// First element of the buffer in the arena.
    pub base: usize,
    /// Length in elements.
    pub len: usize,
    /// Initial fill value.
    pub init: f32,
}

/// A fully resolved view: an absolute arena range instead of a buffer name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkedView {
    /// Arena offset of the first element (buffer base + static view offset).
    pub base: u32,
    /// Number of elements.
    pub len: u32,
    /// Whether the runtime chunk offset is added to `base`.
    pub dynamic: bool,
}

impl LinkedView {
    /// The arena element range addressed at the given chunk offset.
    #[inline]
    pub fn range(&self, chunk_offset: usize) -> std::ops::Range<usize> {
        let start = self.base as usize + if self.dynamic { chunk_offset } else { 0 };
        start..start + self.len as usize
    }
}

/// One resolved instruction.  Compared with [`Instr`], scalar and view
/// moves are split so the run phase dispatches without inspecting a
/// nested [`Src`].
#[derive(Debug, Clone, PartialEq)]
pub enum LinkedInstr {
    /// `dest[i] = value` (a scalar `@fmovs`).
    Fill {
        /// Destination view.
        dest: LinkedView,
        /// Fill value.
        value: f32,
    },
    /// `dest[i] = src[i]` (a view `@fmovs`; overlap behaves like memmove).
    Copy {
        /// Destination view.
        dest: LinkedView,
        /// Source view.
        src: LinkedView,
    },
    /// `dest[i] = a[i] <op> b[i]`.
    Binary {
        /// Operation kind.
        kind: BinKind,
        /// Destination view.
        dest: LinkedView,
        /// First source.
        a: LinkedView,
        /// Second source.
        b: LinkedView,
    },
    /// `dest[i] = acc[i] + src[i] * coeff`.
    Macs {
        /// Destination view.
        dest: LinkedView,
        /// Accumulator view.
        acc: LinkedView,
        /// Source view.
        src: LinkedView,
        /// Scalar coefficient.
        coeff: f32,
    },
    /// A fused reduction sweep produced by the link-time optimizer:
    /// `dest[j] = init(j) + Σ_i terms[i].coeff · terms[i].src[j]`, computed
    /// left to right in a single pass over `dest` with exactly the same
    /// per-element f32 operation sequence as the `Fill`/`Macs` chain it
    /// replaced (bitwise identical results).  The linker guarantees every
    /// term source (and a distinct init accumulator) is disjoint from
    /// `dest`, so the one-pass sweep cannot observe its own writes.
    FusedMacs {
        /// Destination view.
        dest: LinkedView,
        /// Where element `j`'s running value starts.
        init: FusedInit,
        /// The fused multiply-accumulate terms, in chain order.
        terms: Vec<FusedTerm>,
    },
}

/// The initial value of a [`LinkedInstr::FusedMacs`] sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedInit {
    /// A scalar constant (the chain began with a `Fill`).
    Fill(f32),
    /// An accumulator view read element-by-element.  May equal the
    /// destination view (each element is read before it is overwritten);
    /// any other view is disjoint from the destination by construction.
    Acc(LinkedView),
}

/// One multiply-accumulate term of a [`LinkedInstr::FusedMacs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedTerm {
    /// Source (disjoint from the sweep destination).
    pub src: SrcRef,
    /// Scalar coefficient.
    pub coeff: f32,
}

/// Where a fused term reads from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SrcRef {
    /// A PE-local arena view.
    Arena(LinkedView),
    /// The neighbor snapshot column behind receive slot `slot`, read
    /// directly (staging elided): elements
    /// `[offset + chunk · chunk_size, offset + chunk · chunk_size + len)`
    /// of the transmitted column, zeros outside the PE grid.  Produced by
    /// the optimizer for receive-callback reads that lie entirely inside
    /// one receive slot — the staged copy in `recv_buffer` holds exactly
    /// these elements, so reading the snapshot is bitwise identical.
    Slot {
        /// Index into [`LinkedComm::slots`].
        slot: u32,
        /// Element offset inside the slot's chunk window.
        offset: u32,
        /// Number of elements.
        len: u32,
    },
}

/// One interior column captured by the pre-kernel snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapField {
    /// The field buffer the column is captured from (used by the run
    /// phase to skip re-snapshotting buffers that were not written since
    /// the previous capture).
    pub buffer: BufferId,
    /// Arena offset of the first interior element of the source buffer.
    pub src_base: usize,
    /// Elements copied from the buffer; the rest of the snapshot column is
    /// zero-filled (matching the zero halo of out-of-range reads).
    pub copy_len: usize,
}

/// One receive slot resolved against the snapshot layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkedSlot {
    /// Index into [`LinkedComm::snap_fields`].
    pub snap_index: usize,
    /// Neighbor offset in x.
    pub dx: i64,
    /// Neighbor offset in y.
    pub dy: i64,
    /// Whether the run phase must copy the slot's chunks into the receive
    /// buffer.  The optimizer clears this when every observation of the
    /// staged data was rewritten into a direct snapshot read
    /// ([`SrcRef::Slot`]).
    pub staged: bool,
}

/// The halo exchange of one kernel, resolved to arena and snapshot offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedComm {
    /// Number of chunks.
    pub num_chunks: usize,
    /// Chunk size in elements.
    pub chunk_size: usize,
    /// Arena offset of the receive buffer.
    pub recv_base: usize,
    /// Receive slots in buffer order.
    pub slots: Vec<LinkedSlot>,
    /// Interior columns cross-PE reads observe (deduplicated fields).
    pub snap_fields: Vec<SnapField>,
    /// Snapshot column length per field per PE (`num_chunks * chunk_size`).
    pub col_len: usize,
    /// Whether the run phase must capture the columns into the snapshot
    /// buffer before the sweep.  The optimizer clears this when every
    /// write to a transmitted field sits in the kernel's deferred commit
    /// block ([`LinkedKernel::commit`]): cross-PE reads can then take the
    /// pre-kernel state straight from the neighbor arenas.
    pub capture: bool,
}

impl LinkedComm {
    /// Snapshot elements required per PE for this exchange (zero once the
    /// capture is elided).
    pub fn snap_len(&self) -> usize {
        if self.capture {
            self.snap_fields.len() * self.col_len
        } else {
            0
        }
    }

    /// The commit lag in rows: how many rows of sweeps may still read a
    /// row's pre-kernel state through the exchange.
    pub fn max_dy(&self) -> usize {
        self.slots.iter().map(|s| s.dy.unsigned_abs() as usize).max().unwrap_or(0)
    }
}

/// One kernel with all callbacks resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedKernel {
    /// Instructions of the kernel body itself.
    pub pre: Vec<LinkedInstr>,
    /// The halo exchange, if any.
    pub comm: Option<LinkedComm>,
    /// Receive-chunk instructions (run once per chunk).
    pub recv: Vec<LinkedInstr>,
    /// Done-exchange instructions (run once).
    pub done: Vec<LinkedInstr>,
    /// Deferred write-back instructions split off the end of `done` by the
    /// optimizer when it elides the snapshot capture: they run only after
    /// every sweep that may still read this PE's pre-kernel state has
    /// finished (the run phase lags them by [`LinkedComm::max_dy`] rows,
    /// or a barrier in the parallel path).  Empty unless
    /// [`LinkedComm::capture`] is `false`.
    pub commit: Vec<LinkedInstr>,
    /// Elements processed per PE per kernel invocation (used to decide
    /// whether parallel execution is worthwhile).
    pub work_per_pe: usize,
    /// Buffers this kernel writes (dest views plus the receive buffer),
    /// deduplicated.  The run phase uses this to invalidate only the halo
    /// snapshots whose backing buffers actually changed.
    pub writes: Vec<BufferId>,
}

/// The executable flat-memory form of a program: phase 1 of the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedProgram {
    /// PE-grid extent in x.
    pub width: i64,
    /// PE-grid extent in y.
    pub height: i64,
    /// Interior column length per PE.
    pub z_dim: i64,
    /// Halo cells at each end of a column buffer.
    pub z_halo: i64,
    /// Number of timesteps.
    pub timesteps: i64,
    /// Arena elements per PE (sum of all buffer lengths).
    pub arena_len: usize,
    /// Buffer placements, in declaration order.
    pub layouts: Vec<BufferLayout>,
    /// Field buffers in field order, as layout indices.
    pub field_ids: Vec<BufferId>,
    /// Parallel to [`LinkedProgram::field_ids`]: `true` for
    /// compiler-internal double-buffer fields.  Internal fields are not
    /// observable program state, so — unlike real fields — they are *not*
    /// kept always-live by the cyclic liveness scan: a write to one is
    /// dead once overwritten before its next read, which is what lets
    /// copy folding and dead-write elision fire on double-buffered
    /// (previously self-aliasing) shapes.
    pub field_internal: Vec<bool>,
    /// Kernels in execution order.
    pub kernels: Vec<LinkedKernel>,
    /// Largest view length of any instruction (sizes the scratch buffer).
    pub max_view_len: usize,
    /// Whether the kernel planner may use the host's vector instruction
    /// sets (from [`LinkOptions::simd`]; results are bitwise identical
    /// either way).
    pub simd: bool,
    /// Whether the planner contracts multiply-adds (from
    /// [`LinkOptions::fast_fma`]; tolerance-path only).
    pub fast_fma: bool,
    /// What the link-time optimizer did (all-zero when disabled).
    pub stats: OptStats,
}

impl LinkedProgram {
    /// The link-time optimizer's report for this program.
    pub fn stats(&self) -> &OptStats {
        &self.stats
    }
}

/// Observability report of the link-time optimizer (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Whether the optimizer ran at all.
    pub optimized: bool,
    /// Instructions across all kernels before optimization.
    pub instrs_before: usize,
    /// Instructions across all kernels after optimization.
    pub instrs_after: usize,
    /// Number of fused chains (≥ 2 instructions collapsed into one).
    pub fused_chains: usize,
    /// Total multiply-accumulate terms absorbed into fused chains.
    pub fused_terms: usize,
    /// Length (in original instructions) of the longest fused chain.
    pub longest_chain: usize,
    /// `Copy` instructions folded into the preceding fused sweep.
    pub copies_folded: usize,
    /// Receive slots whose per-chunk staging copy was elided (fused terms
    /// read the neighbor snapshot column directly).
    pub slots_elided: usize,
    /// Exchanges whose snapshot capture was elided entirely by deferring
    /// the field write-back into a commit block.
    pub captures_elided: usize,
    /// Multi-chunk exchanges flattened into one full-column chunk.
    pub chunks_flattened: usize,
    /// Adjacent fused sweeps (or a `Fill` and its sweep) merged into one.
    pub sweeps_merged: usize,
    /// `Binary(Mul)`+`Binary(Add)` pairs (the `enable_fmac_fusion=false`
    /// spelling of a multiply-accumulate) rewritten into `Macs` because
    /// the multiplier is a constant-initialized, never-written buffer.
    pub binary_macs_fused: usize,
    /// Data×data `Binary(Mul)` instructions in the pre-optimization
    /// stream: both sources read written buffers rather than splat
    /// coefficient constants.  These are the elementwise products the
    /// `decompose-products` lowering emits for nonlinear stencil bodies,
    /// so a non-zero count is the link-level evidence that product
    /// decomposition fired for this program.
    pub product_muls: usize,
    /// Unfused `Binary` instructions whose result copy into the output
    /// field was folded away by retargeting the binary at the copy's
    /// destination (the product-kernel `mul` + write-back pair).
    pub binary_copies_folded: usize,
    /// Writes to internal double-buffer fields removed because the cyclic
    /// liveness scan proved them dead (fully overwritten before any read).
    pub dead_writes_elided: usize,
    /// Arithmetic operations (binaries, multiply-accumulates, sweep
    /// groups) planned onto vector SIMD kernels (see [`crate::plan`]).
    pub simd_planned: usize,
    /// Arithmetic operations planned onto the portable scalar kernel set
    /// (SIMD disabled, or no vector unit on the host).  Exactly one of
    /// `simd_planned`/`simd_fallback` is non-zero on any program with
    /// arithmetic.
    pub simd_fallback: usize,
    /// Unfused `Binary`/`Macs` operations whose scratch round-trip the
    /// planner elided because the linker proved every source view is
    /// either exactly the destination or disjoint from it.
    pub scratch_elided: usize,
    /// Per-PE arena bytes before coalescing.
    pub arena_bytes_before: usize,
    /// Per-PE arena bytes after coalescing.
    pub arena_bytes_after: usize,
    /// Buffers removed from the arena by coalescing.
    pub buffers_coalesced: usize,
    /// Why candidate rewrites were *not* applied, at the optimizer's
    /// fixed point (each counter reflects one final scan, so rescan
    /// loops do not inflate it).  The static analyzer diffs these
    /// against its own dependence-DAG verdicts.
    pub skipped: SkipCounts,
    /// Optimizer pass units checked by the translation validator (zero
    /// when [`LinkOptions::validate`] is off).
    pub validated_passes: usize,
    /// Pass units the validator rejected: their rewrites changed the
    /// observable dataflow summary and were reverted (diagnostic `E201`).
    /// Always zero for a correct optimizer; non-zero only under an
    /// injected [`LinkMutation`] or a real optimizer bug.
    pub validator_rejections: usize,
    /// Names of the rejected pass units, in pass order.
    pub rejected_passes: Vec<&'static str>,
}

/// Counters for candidate rewrites the optimizer declined, by reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SkipCounts {
    /// A source/accumulator/scratch view overlaps the rewrite's
    /// destination, so the one-pass replacement would observe its own
    /// writes (FMA-chain fusion, copy folding, binary-copy folding).
    pub aliasing: usize,
    /// A fusable `Macs` chain was cut short by an unrelated interposed
    /// instruction even though more same-destination terms follow later
    /// in the block — the adjacency-window fusion barrier the ROADMAP's
    /// dependence-DAG scheduler item targets.
    pub window_barrier: usize,
    /// The eliminated scratch write is *not* dead: the cyclic liveness
    /// scan found another consumer, so the value has more than one
    /// result and the folding rewrite would drop an observable store.
    pub multi_result: usize,
    /// A `Binary(Mul)` whose operands both read written (data) buffers —
    /// a decomposed product term — cannot become a coefficient `Macs`;
    /// the fmac peephole fences these out.
    pub product_fence: usize,
}

impl SkipCounts {
    /// Total rewrites declined across all reasons.
    pub fn total(&self) -> usize {
        self.aliasing + self.window_barrier + self.multi_result + self.product_fence
    }

    fn merge(&mut self, other: &SkipCounts) {
        self.aliasing += other.aliasing;
        self.window_barrier += other.window_barrier;
        self.multi_result += other.multi_result;
        self.product_fence += other.product_fence;
    }
}

impl OptStats {
    /// Per-PE arena bytes reclaimed by buffer coalescing.
    pub fn arena_bytes_saved(&self) -> usize {
        self.arena_bytes_before - self.arena_bytes_after
    }
}

/// Checks that `layouts` tile the arena without overlap or overflow.
///
/// `link_program` lays buffers out back to back, so this can only fail on
/// a hand-constructed layout — it exists as a guard for future layout
/// strategies (and is exercised directly by tests).
pub fn validate_layouts(layouts: &[BufferLayout], arena_len: usize) -> Result<(), ExecError> {
    let mut sorted: Vec<&BufferLayout> = layouts.iter().collect();
    sorted.sort_by_key(|l| l.base);
    let mut end = 0usize;
    for layout in sorted {
        if layout.base < end {
            return Err(err(
                "link-layout",
                format!(
                    "buffer {} at [{}, {}) overlaps the previous buffer ending at {end}",
                    layout.name,
                    layout.base,
                    layout.base + layout.len
                ),
            ));
        }
        end = layout.base + layout.len;
    }
    if end > arena_len {
        return Err(err(
            "link-layout",
            format!("buffer layout ends at {end}, beyond the arena (len {arena_len})"),
        ));
    }
    Ok(())
}

/// Links a loaded program with [`LinkOptions::from_env`] (the link-time
/// optimizer runs unless `WSE_SIM_NO_FUSE=1` is set).  See
/// [`link_program_with`].
pub fn link_program(program: &LoadedProgram) -> Result<LinkedProgram, ExecError> {
    link_program_with(program, &LinkOptions::from_env())
}

/// Links a loaded program: interns buffer names, lays out the per-PE
/// arena, resolves every instruction and the communication spec, and
/// validates all bounds.  When `options.optimize` is set, the link-time
/// optimizer then rewrites the stream (see the module docs).
pub fn link_program_with(
    program: &LoadedProgram,
    options: &LinkOptions,
) -> Result<LinkedProgram, ExecError> {
    if program.width <= 0 || program.height <= 0 {
        return Err(err(
            "link-grid",
            format!("invalid PE grid {}x{}", program.width, program.height),
        ));
    }
    if program.z_dim < 0 || program.z_halo < 0 {
        return Err(err("link-geometry", "negative z_dim or z_halo"));
    }

    // Arena layout: buffers back to back in declaration order.
    let mut layouts = Vec::with_capacity(program.buffers.len());
    let mut by_name: HashMap<&str, BufferId> = HashMap::new();
    let mut arena_len = 0usize;
    for decl in &program.buffers {
        if decl.len < 0 {
            return Err(err(
                "link-buffer-decl",
                format!("buffer {} has negative length {}", decl.name, decl.len),
            ));
        }
        if by_name.insert(&decl.name, BufferId(layouts.len() as u32)).is_some() {
            return Err(err(
                "link-buffer-decl",
                format!("duplicate buffer {}: two buffers may not share one layout", decl.name),
            ));
        }
        layouts.push(BufferLayout {
            name: decl.name.clone(),
            base: arena_len,
            len: decl.len as usize,
            init: decl.init,
        });
        arena_len += decl.len as usize;
    }
    validate_layouts(&layouts, arena_len)?;

    // Field buffers must exist and hold the full interior column; a miss
    // here was previously a silent drop during state extraction.
    let mut field_ids = Vec::with_capacity(program.field_buffers.len());
    for field in &program.field_buffers {
        let id = *by_name
            .get(field.as_str())
            .ok_or_else(|| err("link-unknown-buffer", format!("unknown field buffer {field}")))?;
        let layout = &layouts[id.0 as usize];
        let needed = (program.z_halo + program.z_dim) as usize;
        if layout.len < needed {
            return Err(err(
                "link-geometry",
                format!(
                    "field buffer {field} (len {}) is shorter than halo + interior ({needed})",
                    layout.len
                ),
            ));
        }
        field_ids.push(id);
    }

    let mut kernels = Vec::with_capacity(program.kernels.len());
    let mut max_view_len = 0usize;
    for kernel in &program.kernels {
        let comm = kernel
            .comm
            .as_ref()
            .map(|c| {
                link_comm(c, &by_name, &layouts, &program.field_buffers, program.z_halo as usize)
            })
            .transpose()?;
        // Dynamic views only occur in receive callbacks; their largest
        // runtime offset is reached on the final chunk.
        let max_dyn = comm.as_ref().map(|c| (c.num_chunks - 1) * c.chunk_size).unwrap_or(0);
        let pre = link_block(&kernel.pre, &by_name, &layouts, 0, &mut max_view_len)?;
        let recv = link_block(&kernel.recv, &by_name, &layouts, max_dyn, &mut max_view_len)?;
        let done = link_block(&kernel.done, &by_name, &layouts, 0, &mut max_view_len)?;
        kernels.push(LinkedKernel {
            pre,
            comm,
            recv,
            done,
            commit: Vec::new(),
            work_per_pe: 0,
            writes: Vec::new(),
        });
    }

    let field_internal: Vec<bool> = program
        .field_buffers
        .iter()
        .map(|name| program.internal_fields.iter().any(|i| i == name))
        .collect();
    let mut linked = LinkedProgram {
        width: program.width,
        height: program.height,
        z_dim: program.z_dim,
        z_halo: program.z_halo,
        timesteps: program.timesteps,
        arena_len,
        layouts,
        field_ids,
        field_internal,
        kernels,
        max_view_len,
        simd: options.simd,
        fast_fma: options.fast_fma,
        stats: OptStats::default(),
    };
    linked.stats.instrs_before = instr_count(&linked);
    linked.stats.arena_bytes_before = linked.arena_len * 4;
    if options.optimize {
        optimize_program(&mut linked, options);
    }
    finalize(&mut linked);
    Ok(linked)
}

/// Total instructions across all kernels and blocks.
fn instr_count(linked: &LinkedProgram) -> usize {
    linked.kernels.iter().map(|k| k.pre.len() + k.recv.len() + k.done.len() + k.commit.len()).sum()
}

/// Recomputes the derived per-kernel quantities (work estimates, written
/// buffers, snapshot sizing) after the instruction streams settled.
fn finalize(linked: &mut LinkedProgram) {
    linked.stats.instrs_after = instr_count(linked);
    linked.stats.arena_bytes_after = linked.arena_len * 4;
    let layouts = std::mem::take(&mut linked.layouts);
    for kernel in &mut linked.kernels {
        let elements =
            |instrs: &[LinkedInstr]| -> usize { instrs.iter().map(instr_elements).sum() };
        kernel.work_per_pe =
            elements(&kernel.pre) + elements(&kernel.done) + elements(&kernel.commit);
        if let Some(c) = &kernel.comm {
            let staged = c.slots.iter().filter(|s| s.staged).count();
            kernel.work_per_pe += c.num_chunks * (elements(&kernel.recv) + staged * c.chunk_size);
        }
        let mut writes: Vec<BufferId> = kernel
            .pre
            .iter()
            .chain(&kernel.recv)
            .chain(&kernel.done)
            .chain(&kernel.commit)
            .map(|i| buffer_at(&layouts, instr_dest(i).base))
            .collect();
        if let Some(c) = &kernel.comm {
            writes.push(buffer_at(&layouts, c.recv_base as u32));
        }
        writes.sort_unstable_by_key(|b| b.0);
        writes.dedup();
        kernel.writes = writes;
    }
    linked.layouts = layouts;
    // Run the kernel planner once for its report: how many arithmetic ops
    // land on vector kernels vs the scalar fallback, and how many scratch
    // round-trips the disjointness proofs elide.  (The run phase rebuilds
    // the plan at construction time — planning is a cheap walk over the
    // static instruction stream.)
    let counts = crate::plan::plan_program(linked).counts;
    linked.stats.simd_planned = counts.simd_planned;
    linked.stats.simd_fallback = counts.simd_fallback;
    linked.stats.scratch_elided = counts.scratch_elided;
}

/// The buffer containing arena offset `offset`.  Layouts are laid out back
/// to back in base order, so a binary search on the base finds the owner;
/// every queried offset comes from a bounds-validated view.
fn buffer_at(layouts: &[BufferLayout], offset: u32) -> BufferId {
    let index = layouts.partition_point(|l| l.base <= offset as usize);
    BufferId(index.saturating_sub(1) as u32)
}

fn instr_dest(instr: &LinkedInstr) -> &LinkedView {
    match instr {
        LinkedInstr::Fill { dest, .. }
        | LinkedInstr::Copy { dest, .. }
        | LinkedInstr::Binary { dest, .. }
        | LinkedInstr::Macs { dest, .. }
        | LinkedInstr::FusedMacs { dest, .. } => dest,
    }
}

fn instr_elements(instr: &LinkedInstr) -> usize {
    match instr {
        LinkedInstr::Fill { dest, .. }
        | LinkedInstr::Copy { dest, .. }
        | LinkedInstr::Binary { dest, .. }
        | LinkedInstr::Macs { dest, .. } => dest.len as usize,
        // A fused sweep streams the destination once and each source once.
        LinkedInstr::FusedMacs { dest, terms, .. } => dest.len as usize * (1 + terms.len()),
    }
}

fn link_comm(
    comm: &CommSpec,
    by_name: &HashMap<&str, BufferId>,
    layouts: &[BufferLayout],
    field_buffers: &[String],
    z_halo: usize,
) -> Result<LinkedComm, ExecError> {
    if comm.num_chunks < 1 || comm.chunk_size < 0 {
        return Err(err(
            "link-exchange",
            format!("invalid exchange: {} chunks of {} elements", comm.num_chunks, comm.chunk_size),
        ));
    }
    let num_chunks = comm.num_chunks as usize;
    let chunk_size = comm.chunk_size as usize;
    let col_len = num_chunks * chunk_size;

    let recv =
        *by_name.get("recv_buffer").ok_or_else(|| err("link-exchange", "missing recv_buffer"))?;
    let recv_layout = &layouts[recv.0 as usize];
    if comm.slots.len() * chunk_size > recv_layout.len {
        return Err(err(
            "link-exchange",
            format!(
                "receive buffer overflow: {} slots of {chunk_size} elements exceed recv_buffer \
             (len {})",
                comm.slots.len(),
                recv_layout.len
            ),
        ));
    }

    let mut snap_fields = Vec::new();
    let mut snap_of: HashMap<&str, usize> = HashMap::new();
    let mut slots = Vec::with_capacity(comm.slots.len());
    for spec in &comm.slots {
        // Slots may only transmit declared field buffers — a slot naming
        // any other buffer (or an unknown one) is a malformed program.
        if !field_buffers.iter().any(|f| f == &spec.field) {
            return Err(err("link-unknown-buffer", format!("unknown field buffer {}", spec.field)));
        }
        let id = *by_name.get(spec.field.as_str()).ok_or_else(|| {
            err("link-unknown-buffer", format!("unknown field buffer {}", spec.field))
        })?;
        let layout = &layouts[id.0 as usize];
        let snap_index = match snap_of.get(spec.field.as_str()) {
            Some(&i) => i,
            None => {
                let start = z_halo.min(layout.len);
                snap_fields.push(SnapField {
                    buffer: id,
                    src_base: layout.base + start,
                    copy_len: col_len.min(layout.len - start),
                });
                snap_of.insert(&spec.field, snap_fields.len() - 1);
                snap_fields.len() - 1
            }
        };
        slots.push(LinkedSlot { snap_index, dx: spec.dx, dy: spec.dy, staged: true });
    }

    Ok(LinkedComm {
        num_chunks,
        chunk_size,
        recv_base: recv_layout.base,
        slots,
        snap_fields,
        col_len,
        capture: true,
    })
}

fn link_block(
    instrs: &[Instr],
    by_name: &HashMap<&str, BufferId>,
    layouts: &[BufferLayout],
    max_dyn: usize,
    max_view_len: &mut usize,
) -> Result<Vec<LinkedInstr>, ExecError> {
    let view = |v: &ViewRef| link_view(v, by_name, layouts, max_dyn);
    let mut out = Vec::with_capacity(instrs.len());
    for instr in instrs {
        let linked = match instr {
            Instr::Movs { dest, src } => {
                let dest = view(dest)?;
                match src {
                    Src::Scalar(value) => LinkedInstr::Fill { dest, value: *value },
                    Src::View(src) => {
                        let src = view(src)?;
                        require_same_len(dest, &[src])?;
                        LinkedInstr::Copy { dest, src }
                    }
                }
            }
            Instr::Binary { kind, dest, a, b } => {
                let (dest, a, b) = (view(dest)?, view(a)?, view(b)?);
                require_same_len(dest, &[a, b])?;
                LinkedInstr::Binary { kind: *kind, dest, a, b }
            }
            Instr::Macs { dest, acc, src, coeff } => {
                let (dest, acc, src) = (view(dest)?, view(acc)?, view(src)?);
                require_same_len(dest, &[acc, src])?;
                LinkedInstr::Macs { dest, acc, src, coeff: *coeff }
            }
        };
        *max_view_len = (*max_view_len).max(instr_elements(&linked));
        out.push(linked);
    }
    Ok(out)
}

fn require_same_len(dest: LinkedView, srcs: &[LinkedView]) -> Result<(), ExecError> {
    for src in srcs {
        if src.len != dest.len {
            return Err(err(
                "link-view-bounds",
                format!(
                    "operand length mismatch: destination has {} elements, source has {}",
                    dest.len, src.len
                ),
            ));
        }
    }
    Ok(())
}

fn link_view(
    view: &ViewRef,
    by_name: &HashMap<&str, BufferId>,
    layouts: &[BufferLayout],
    max_dyn: usize,
) -> Result<LinkedView, ExecError> {
    let id = *by_name
        .get(view.buffer.as_str())
        .ok_or_else(|| err("link-unknown-buffer", format!("unknown buffer {}", view.buffer)))?;
    let layout = &layouts[id.0 as usize];
    if view.offset < 0 || view.len < 0 {
        return Err(err(
            "link-view-bounds",
            format!(
                "negative view [offset {}, len {}] of buffer {}",
                view.offset, view.len, view.buffer
            ),
        ));
    }
    let (offset, len) = (view.offset as usize, view.len as usize);
    let reach = offset + if view.dynamic { max_dyn } else { 0 } + len;
    if reach > layout.len {
        return Err(err(
            "link-view-bounds",
            format!(
                "view [{offset}, {reach}) out of bounds for buffer {} (len {})",
                view.buffer, layout.len
            ),
        ));
    }
    Ok(LinkedView { base: (layout.base + offset) as u32, len: len as u32, dynamic: view.dynamic })
}

// ------------------------------------------------------------------------
// The link-time optimizer (see module docs for the rewrite rules and
// their safety conditions).
// ------------------------------------------------------------------------

/// Conservative arena interval a view may touch at any chunk offset
/// (dynamic views are extended by the largest runtime offset).
fn view_span(view: &LinkedView, max_dyn: usize) -> (usize, usize) {
    let start = view.base as usize;
    (start, start + view.len as usize + if view.dynamic { max_dyn } else { 0 })
}

/// True when the two views cannot touch a common arena element at any
/// chunk offset.
pub(crate) fn views_disjoint(a: &LinkedView, b: &LinkedView, max_dyn: usize) -> bool {
    let (a0, a1) = view_span(a, max_dyn);
    let (b0, b1) = view_span(b, max_dyn);
    a1 <= b0 || b1 <= a0
}

/// Largest runtime chunk offset of the kernel's receive callback.
fn max_dyn_of(kernel: &LinkedKernel) -> usize {
    kernel.comm.as_ref().map(|c| (c.num_chunks - 1) * c.chunk_size).unwrap_or(0)
}

/// Runs the optimizer rewrites over every kernel.
///
/// With [`LinkOptions::validate`] set, every pass unit runs under the
/// translation validator: the observable dataflow summary (see
/// [`crate::validate`]) is computed once before any rewriting, recomputed
/// after each pass, and a pass whose rewrite changed it — i.e. dropped or
/// reordered a dependence — is *reverted* and counted in
/// [`OptStats::validator_rejections`] (diagnostic `E201`).  Reverting
/// keeps the emitted stream correct even when a rewrite (or an injected
/// [`LinkMutation`]) is broken.
fn optimize_program(linked: &mut LinkedProgram, options: &LinkOptions) {
    let mut stats = std::mem::take(&mut linked.stats);
    stats.optimized = true;
    let baseline = options.validate.then(|| crate::validate::observable_summary(linked));
    let mutate = options.mutate;
    let pass = |linked: &mut LinkedProgram,
                stats: &mut OptStats,
                name: &'static str,
                body: &dyn Fn(&mut LinkedProgram, &mut OptStats)| {
        let Some(base) = &baseline else {
            body(linked, stats);
            return;
        };
        let saved = linked.clone();
        let saved_stats = stats.clone();
        body(linked, stats);
        stats.validated_passes += 1;
        if crate::validate::observable_summary(linked) != *base {
            let validated = stats.validated_passes;
            *linked = saved;
            *stats = saved_stats;
            stats.validated_passes = validated;
            stats.validator_rejections += 1;
            stats.rejected_passes.push(name);
        }
    };
    // First normalize `Binary(Mul)`+`Binary(Add)` accumulate pairs into
    // `Macs` so streams lowered with `enable_fmac_fusion=false` feed the
    // same chain fusion as fmacs-lowered ones.
    pass(linked, &mut stats, "fuse-mul-add-pairs", &fuse_mul_add_pairs);
    pass(linked, &mut stats, "fuse-block", &|linked, stats| {
        for kernel in &mut linked.kernels {
            let max_dyn = max_dyn_of(kernel);
            // Dynamic views only take a non-zero offset in the receive
            // callback; pre/done always run at chunk offset 0.
            kernel.pre = fuse_block(&kernel.pre, 0, mutate, stats);
            kernel.recv = fuse_block(&kernel.recv, max_dyn, mutate, stats);
            kernel.done = fuse_block(&kernel.done, 0, mutate, stats);
        }
    });
    pass(linked, &mut stats, "elide-staging", &elide_staging);
    pass(linked, &mut stats, "flatten-chunks", &flatten_chunks);
    pass(linked, &mut stats, "merge-single-chunk-blocks", &merge_single_chunk_blocks);
    pass(linked, &mut stats, "fold-copies", &fold_copies);
    pass(linked, &mut stats, "fold-binary-copies", &fold_binary_copies);
    pass(linked, &mut stats, "elide-dead-internal-writes", &elide_dead_internal_writes);
    pass(linked, &mut stats, "defer-commits", &defer_commits);
    pass(linked, &mut stats, "coalesce-arena", &coalesce_arena);
    linked.stats = stats;
}

/// Rewrites `t = src * coeffbuf; d = d + t` pairs into
/// `Macs { dest: d, acc: d, src, coeff }` — the two-instruction spelling a
/// pipeline with `enable_fmac_fusion=false` emits for every
/// multiply-accumulate.
///
/// The rewrite requires: the multiplier view reads a buffer that is never
/// written by any instruction or receive staging and is not a field (so
/// every element holds the buffer's `init` — the scalar coefficient); the
/// `Add` accumulates in place (`d = d + t` or `d = t + d`; f32 addition is
/// commutative bitwise); `src` and the scratch `t` are disjoint from `d`
/// and from each other (the one-pass `Macs` must observe the same values
/// as the two full sweeps); and the eliminated write to `t` is dead under
/// the cyclic liveness scan.  Per element the replacement performs the
/// identical multiply-then-add, so results are bitwise unchanged.  The
/// produced `Macs` then participates in FMA-chain fusion like any
/// loader-emitted one.
fn fuse_mul_add_pairs(linked: &mut LinkedProgram, stats: &mut OptStats) {
    let layouts = linked.layouts.clone();
    let mut written = vec![false; layouts.len()];
    for kernel in &linked.kernels {
        for instr in kernel.pre.iter().chain(&kernel.recv).chain(&kernel.done) {
            written[buffer_at(&layouts, instr_dest(instr).base).0 as usize] = true;
        }
        if let Some(comm) = &kernel.comm {
            written[buffer_at(&layouts, comm.recv_base as u32).0 as usize] = true;
        }
    }
    // Field buffers carry per-element initial conditions, so a view of one
    // is not a splat of its `init` even when no instruction writes it.
    for id in &linked.field_ids {
        written[id.0 as usize] = true;
    }
    let constant_of = |v: &LinkedView| -> Option<f32> {
        let owner = buffer_at(&layouts, v.base);
        if written[owner.0 as usize] {
            return None;
        }
        Some(layouts[owner.0 as usize].init)
    };
    // Count the data×data multiplies (product-decomposition evidence)
    // before any rewriting; the coefficient muls below are excluded
    // because one side reads a splat constant buffer.
    for kernel in &linked.kernels {
        for instr in kernel.pre.iter().chain(&kernel.recv).chain(&kernel.done) {
            if let LinkedInstr::Binary { kind: BinKind::Mul, a, b, .. } = instr {
                if constant_of(a).is_none() && constant_of(b).is_none() {
                    stats.product_muls += 1;
                }
            }
        }
    }
    'rescan: loop {
        // Skip reasons accumulate into a scratch tally that is only
        // merged at the fixed point (the iteration that rewrites
        // nothing), so rescans do not double-count.
        let mut skipped = SkipCounts::default();
        let (events, position) = program_events(linked);
        for k in 0..linked.kernels.len() {
            let max_dyn = max_dyn_of(&linked.kernels[k]);
            for block_index in 0..3 {
                let block = match block_index {
                    0 => &linked.kernels[k].pre,
                    1 => &linked.kernels[k].recv,
                    _ => &linked.kernels[k].done,
                };
                for i in 0..block.len().saturating_sub(1) {
                    let LinkedInstr::Binary { kind: BinKind::Mul, dest: t, a, b } = &block[i]
                    else {
                        continue;
                    };
                    let LinkedInstr::Binary { kind: BinKind::Add, dest: d, a: x, b: y } =
                        &block[i + 1]
                    else {
                        continue;
                    };
                    // The add must accumulate the scratch into its own
                    // destination (either operand order).
                    let accumulates = (x == t && y == d) || (y == t && x == d);
                    if !accumulates {
                        continue;
                    }
                    let (src, coeff) = match (constant_of(b), constant_of(a)) {
                        (Some(c), _) => (*a, c),
                        (_, Some(c)) => (*b, c),
                        _ => {
                            // Both operands read written (data) buffers: a
                            // decomposed product term, fenced out.
                            skipped.product_fence += 1;
                            continue;
                        }
                    };
                    if !views_disjoint(&src, d, max_dyn)
                        || !views_disjoint(t, d, max_dyn)
                        || !views_disjoint(t, &src, max_dyn)
                    {
                        skipped.aliasing += 1;
                        continue;
                    }
                    // Dropping the scratch write requires it to be dead.
                    let pos = position[&(k, block_index, i + 1)];
                    if !write_is_dead(&events, pos, view_span(t, max_dyn)) {
                        skipped.multi_result += 1;
                        continue;
                    }
                    let d = *d;
                    let block = match block_index {
                        0 => &mut linked.kernels[k].pre,
                        1 => &mut linked.kernels[k].recv,
                        _ => &mut linked.kernels[k].done,
                    };
                    block[i] = LinkedInstr::Macs { dest: d, acc: d, src, coeff };
                    block.remove(i + 1);
                    stats.binary_macs_fused += 1;
                    continue 'rescan;
                }
            }
        }
        stats.skipped.merge(&skipped);
        return;
    }
}

/// Removes writes to internal double-buffer fields that the cyclic
/// liveness scan proves dead — typically the producer's renamed store
/// when every consumer was substituted away during inlining, so nothing
/// ever reads the buffered generation.  Internal fields are excluded from
/// the always-live set (see [`LinkedProgram::field_internal`]); writes to
/// observable fields are never touched.
fn elide_dead_internal_writes(linked: &mut LinkedProgram, stats: &mut OptStats) {
    let internal: Vec<BufferId> = linked
        .field_ids
        .iter()
        .zip(&linked.field_internal)
        .filter(|&(_, &internal)| internal)
        .map(|(&id, _)| id)
        .collect();
    if internal.is_empty() {
        return;
    }
    let layouts = linked.layouts.clone();
    'rescan: loop {
        let (events, position) = program_events(linked);
        for k in 0..linked.kernels.len() {
            let max_dyn = max_dyn_of(&linked.kernels[k]);
            for block_index in 0..3 {
                let block = match block_index {
                    0 => &linked.kernels[k].pre,
                    1 => &linked.kernels[k].recv,
                    _ => &linked.kernels[k].done,
                };
                for i in 0..block.len() {
                    let dest = instr_dest(&block[i]);
                    if !internal.contains(&buffer_at(&layouts, dest.base)) {
                        continue;
                    }
                    let pos = position[&(k, block_index, i)];
                    if !write_is_dead(&events, pos, view_span(dest, max_dyn)) {
                        continue;
                    }
                    let block = match block_index {
                        0 => &mut linked.kernels[k].pre,
                        1 => &mut linked.kernels[k].recv,
                        _ => &mut linked.kernels[k].done,
                    };
                    block.remove(i);
                    stats.dead_writes_elided += 1;
                    continue 'rescan;
                }
            }
        }
        return;
    }
}

/// Collapses a multi-chunk exchange into a single full-column chunk when
/// the chunks are provably independent: every receive slot's staging was
/// elided, and every receive-callback operand advances with the chunk
/// offset over a contiguous window (dynamic arena views and slot reads of
/// exactly one chunk, starting at the window base).  Executing chunk `c`
/// then touches exactly elements `[c·chunk, (c+1)·chunk)` of each view, so
/// running all chunks as one sweep performs the identical per-element
/// operation sequence — bitwise equal, with `num_chunks − 1` fewer
/// dispatches per PE.
fn flatten_chunks(linked: &mut LinkedProgram, stats: &mut OptStats) {
    for kernel in &mut linked.kernels {
        let Some(comm) = &mut kernel.comm else { continue };
        if comm.num_chunks <= 1 || comm.slots.iter().any(|s| s.staged) {
            continue;
        }
        let chunk = comm.chunk_size as u32;
        if chunk == 0 {
            continue;
        }
        let view_ok = |v: &LinkedView| v.dynamic && v.len == chunk;
        // Only fused sweeps qualify: their operands are proven disjoint
        // from the destination, so no chunk can observe another chunk's
        // writes.  The scratch-semantics instructions (`Copy`, `Binary`,
        // `Macs`) may alias across chunk boundaries, where chunk-by-chunk
        // and whole-column execution genuinely differ.
        let flattenable = kernel.recv.iter().all(|instr| match instr {
            LinkedInstr::FusedMacs { dest, init, terms } => {
                view_ok(dest)
                    && match init {
                        FusedInit::Fill(_) => false, // re-applied per chunk, not per column
                        FusedInit::Acc(a) => view_ok(a),
                    }
                    && terms.iter().all(|t| match &t.src {
                        SrcRef::Arena(v) => view_ok(v),
                        SrcRef::Slot { offset, len, .. } => *offset == 0 && *len == chunk,
                    })
            }
            _ => false,
        });
        if !flattenable {
            continue;
        }
        let col = comm.col_len as u32;
        for instr in &mut kernel.recv {
            for view in instr_views_mut(instr) {
                view.len = col;
            }
            if let LinkedInstr::FusedMacs { terms, .. } = instr {
                for term in terms {
                    if let SrcRef::Slot { len, .. } = &mut term.src {
                        *len = col;
                    }
                }
            }
        }
        comm.chunk_size = comm.col_len;
        comm.num_chunks = 1;
        stats.chunks_flattened += 1;
    }
}

/// With a single chunk and no staging, a kernel's `pre`, `recv`, and
/// `done` blocks execute back to back per PE — the split is purely
/// structural.  Concatenating them exposes cross-block fusion: the
/// accumulator `Fill` merges into the first sweep's init, and adjacent
/// sweeps over the same destination merge into one wider sweep (both
/// rewrites preserve the per-element operation sequence exactly).
fn merge_single_chunk_blocks(linked: &mut LinkedProgram, stats: &mut OptStats) {
    for kernel in &mut linked.kernels {
        let Some(comm) = &kernel.comm else { continue };
        if comm.num_chunks != 1 || comm.slots.iter().any(|s| s.staged) {
            continue;
        }
        let mut merged = std::mem::take(&mut kernel.pre);
        merged.append(&mut kernel.recv);
        merged.append(&mut kernel.done);
        kernel.done = merge_fused_sweeps(merged, stats);
    }
}

/// True when the two views address the same range at chunk offset 0 (the
/// only offset a single-chunk kernel ever runs at — the dynamic flag is
/// immaterial there).
fn same_range(a: &LinkedView, b: &LinkedView) -> bool {
    a.base == b.base && a.len == b.len
}

/// The peephole behind [`merge_single_chunk_blocks`]: merges
/// `Fill(d, c); FusedMacs(d, Acc(d), T)` into `FusedMacs(d, Fill(c), T)`
/// and `FusedMacs(d, I, T1); FusedMacs(d, Acc(d), T2)` into
/// `FusedMacs(d, I, T1 ++ T2)` (sources are disjoint from `d`, so the
/// per-element chains concatenate unchanged).
fn merge_fused_sweeps(instrs: Vec<LinkedInstr>, stats: &mut OptStats) -> Vec<LinkedInstr> {
    let mut out: Vec<LinkedInstr> = Vec::with_capacity(instrs.len());
    for instr in instrs {
        match (out.pop(), instr) {
            (
                Some(LinkedInstr::Fill { dest: d, value }),
                LinkedInstr::FusedMacs { dest, init: FusedInit::Acc(a), terms },
            ) if same_range(&d, &dest) && same_range(&a, &dest) => {
                out.push(LinkedInstr::FusedMacs { dest, init: FusedInit::Fill(value), terms });
                stats.sweeps_merged += 1;
            }
            (
                Some(LinkedInstr::FusedMacs { dest: d, init, terms: mut t1 }),
                LinkedInstr::FusedMacs { dest, init: FusedInit::Acc(a), terms },
            ) if same_range(&d, &dest) && same_range(&a, &dest) => {
                t1.extend(terms);
                out.push(LinkedInstr::FusedMacs { dest: d, init, terms: t1 });
                stats.sweeps_merged += 1;
            }
            (prev, instr) => {
                if let Some(prev) = prev {
                    out.push(prev);
                }
                out.push(instr);
            }
        }
    }
    out
}

/// Elides the pre-kernel snapshot capture for kernels whose transmitted
/// fields are written only by a trailing write-back.
///
/// The snapshot exists so cross-PE reads observe the pre-kernel state.
/// When every write to a snapshotted buffer sits in a suffix of the
/// `done` block, that suffix can instead run as a *deferred commit*
/// ([`LinkedKernel::commit`]): the run phase executes all sweeps against
/// the live arenas — which still hold the pre-kernel state, because
/// nothing else writes those buffers — and applies the commits once no
/// sweep can observe them (lagging [`LinkedComm::max_dy`] rows behind in
/// the serial wavefront, or after a barrier in the parallel path).  This
/// removes the snapshot copy entirely; direct slot reads
/// ([`SrcRef::Slot`]) then resolve to the neighbor's arena column.
///
/// Conditions: every snapshot column covers its full window
/// (`copy_len == col_len`, otherwise the capture's zero tail has no arena
/// backing), and no instruction outside the commit suffix writes any
/// snapshotted buffer.  Commit instructions only touch PE-local state, so
/// deferring them preserves each PE's own observation order — results
/// stay bitwise identical.
fn defer_commits(linked: &mut LinkedProgram, stats: &mut OptStats) {
    let layouts = linked.layouts.clone();
    for kernel in &mut linked.kernels {
        let Some(comm) = &kernel.comm else { continue };
        if !comm.capture || comm.snap_fields.iter().any(|f| f.copy_len != comm.col_len) {
            continue;
        }
        let snapped: Vec<BufferId> = comm.snap_fields.iter().map(|f| f.buffer).collect();
        let writes_snapped =
            |instr: &LinkedInstr| snapped.contains(&buffer_at(&layouts, instr_dest(instr).base));
        // Deferred commits run after the sweeps, against the live arenas:
        // a direct slot read ([`SrcRef::Slot`]) inside one would observe
        // *post*-commit neighbor state (and the run phase does not even
        // resolve slot columns in the commit pass), so such instructions
        // can never be deferred.
        let has_slot_src = |instr: &LinkedInstr| match instr {
            LinkedInstr::FusedMacs { terms, .. } => {
                terms.iter().any(|t| matches!(t.src, SrcRef::Slot { .. }))
            }
            _ => false,
        };
        // The commit suffix: trailing `done` instructions whose destination
        // is a snapshotted buffer.
        let mut split = kernel.done.len();
        while split > 0
            && writes_snapped(&kernel.done[split - 1])
            && !has_slot_src(&kernel.done[split - 1])
        {
            split -= 1;
        }
        // Every other write to a snapshotted buffer blocks the deferral.
        let sweep_writes = kernel
            .pre
            .iter()
            .chain(&kernel.recv)
            .chain(kernel.done.iter().take(split))
            .any(writes_snapped);
        if sweep_writes {
            continue;
        }
        kernel.commit = kernel.done.split_off(split);
        let comm = kernel.comm.as_mut().expect("checked above");
        comm.capture = false;
        stats.captures_elided += 1;
    }
}

/// Rewrites receive-callback fused-term reads of staged slot data into
/// direct snapshot reads ([`SrcRef::Slot`]), then clears
/// [`LinkedSlot::staged`] for every slot whose staged copy is provably
/// never observed afterwards — the run phase skips those copies entirely.
///
/// The rewrite targets static views that lie fully inside one slot's chunk
/// window of the receive buffer: the staged copy holds exactly the
/// snapshot elements `[offset + chunk · chunk_size, … + len)` of the
/// slot's column (zeros outside the grid), so the direct read is bitwise
/// identical.  The staging decision reuses the cyclic liveness scan: a
/// slot keeps its copy as long as any instruction still reads its window
/// before the next full overwrite.
fn elide_staging(linked: &mut LinkedProgram, stats: &mut OptStats) {
    for kernel in &mut linked.kernels {
        let Some(comm) = &kernel.comm else { continue };
        let chunk = comm.chunk_size;
        if chunk == 0 || comm.num_chunks == 0 {
            continue;
        }
        let recv_base = comm.recv_base;
        let num_slots = comm.slots.len();
        for instr in &mut kernel.recv {
            let LinkedInstr::FusedMacs { terms, .. } = instr else { continue };
            for term in terms {
                let SrcRef::Arena(v) = &term.src else { continue };
                if v.dynamic || v.len == 0 {
                    continue;
                }
                let (start, len) = (v.base as usize, v.len as usize);
                if start < recv_base || start + len > recv_base + num_slots * chunk {
                    continue;
                }
                let slot = (start - recv_base) / chunk;
                let offset = start - recv_base - slot * chunk;
                if offset + len > chunk {
                    // Straddles two slots: the windows belong to different
                    // neighbors, so the read cannot be redirected.
                    continue;
                }
                term.src =
                    SrcRef::Slot { slot: slot as u32, offset: offset as u32, len: len as u32 };
            }
        }
    }
    let (events, position) = program_events(linked);
    for (k, kernel) in linked.kernels.iter_mut().enumerate() {
        let Some(comm) = &mut kernel.comm else { continue };
        let chunk = comm.chunk_size;
        let recv_base = comm.recv_base;
        for (slot, spec) in comm.slots.iter_mut().enumerate() {
            let Some(&stage_pos) = position.get(&(k, 3, slot)) else { continue };
            let range = (recv_base + slot * chunk, recv_base + (slot + 1) * chunk);
            if write_is_dead(&events, stage_pos, range) {
                spec.staged = false;
                stats.slots_elided += 1;
            }
        }
    }
}

/// Collapses `Fill`/`Macs` chains into [`LinkedInstr::FusedMacs`] sweeps.
///
/// A chain is `[Fill(d, c)]? Macs(d, a₀, s₀, c₀) (Macs(d, d, sᵢ, cᵢ))*`
/// where the first accumulator `a₀` is either `d` itself (or the preceding
/// `Fill` value) or a distinct disjoint view, and every source `sᵢ` is
/// provably disjoint from `d`.  A single safe `Macs` also becomes an
/// arity-1 sweep: it drops the scratch double-buffer the generic path
/// needs for aliasing safety.
///
/// `mutate` injects [`LinkMutation::DropAliasingCheck`]: the
/// source/destination disjointness check is skipped, producing the broken
/// fusions the translation validator's mutation test must catch.
fn fuse_block(
    instrs: &[LinkedInstr],
    max_dyn: usize,
    mutate: Option<LinkMutation>,
    stats: &mut OptStats,
) -> Vec<LinkedInstr> {
    let ignore_aliasing = mutate == Some(LinkMutation::DropAliasingCheck);
    let mut out = Vec::with_capacity(instrs.len());
    let mut i = 0;
    while i < instrs.len() {
        let (mut init, dest, first_macs) = match &instrs[i] {
            LinkedInstr::Fill { dest, value } => (Some(FusedInit::Fill(*value)), *dest, i + 1),
            LinkedInstr::Macs { dest, .. } => (None, *dest, i),
            other => {
                out.push(other.clone());
                i += 1;
                continue;
            }
        };
        let mut terms: Vec<FusedTerm> = Vec::new();
        let mut j = first_macs;
        while j < instrs.len() {
            let LinkedInstr::Macs { dest: d, acc, src, coeff } = &instrs[j] else {
                // An unrelated instruction cut the chain; when more
                // fusable same-destination terms follow later in the
                // block, the adjacency window just cost a wider sweep —
                // the fusion barrier the ROADMAP's DAG scheduler targets.
                if !terms.is_empty()
                    && instrs[j + 1..].iter().any(|later| {
                        matches!(later, LinkedInstr::Macs { dest: d2, acc: a2, .. }
                            if *d2 == dest && *a2 == dest)
                    })
                {
                    stats.skipped.window_barrier += 1;
                }
                break;
            };
            if *d != dest {
                break;
            }
            if !ignore_aliasing && !views_disjoint(src, &dest, max_dyn) {
                stats.skipped.aliasing += 1;
                break;
            }
            if terms.is_empty() && init.is_none() {
                // The first term of a bare chain supplies the init: the
                // destination itself, or a distinct disjoint accumulator.
                if *acc == dest || views_disjoint(acc, &dest, max_dyn) {
                    init = Some(FusedInit::Acc(*acc));
                } else {
                    stats.skipped.aliasing += 1;
                    break;
                }
            } else if *acc != dest {
                break;
            }
            terms.push(FusedTerm { src: SrcRef::Arena(*src), coeff: *coeff });
            j += 1;
        }
        let absorbed = j - i;
        if terms.is_empty() {
            // No fusable Macs followed (a bare Fill, or an aliasing Macs).
            out.push(instrs[i].clone());
            i += 1;
            continue;
        }
        if absorbed >= 2 {
            stats.fused_chains += 1;
            stats.fused_terms += terms.len();
            stats.longest_chain = stats.longest_chain.max(absorbed);
        }
        out.push(LinkedInstr::FusedMacs { dest, init: init.expect("set with first term"), terms });
        i = j;
    }
    out
}

/// One step of the program's cyclic execution order, for the conservative
/// liveness scan behind copy folding.
struct Event {
    /// Arena intervals the step may read (dynamic views extended).
    reads: Vec<(usize, usize)>,
    /// Interval the step writes, and whether the write fully covers it on
    /// every execution (dynamic writes shift per chunk, so they never
    /// cover).
    write: Option<(usize, usize, bool)>,
}

fn instr_event(instr: &LinkedInstr, max_dyn: usize) -> Event {
    let read = |v: &LinkedView| view_span(v, max_dyn);
    let write = |v: &LinkedView| {
        let (start, end) = view_span(v, max_dyn);
        Some((start, end, !v.dynamic))
    };
    match instr {
        LinkedInstr::Fill { dest, .. } => Event { reads: Vec::new(), write: write(dest) },
        LinkedInstr::Copy { dest, src } => Event { reads: vec![read(src)], write: write(dest) },
        LinkedInstr::Binary { dest, a, b, .. } => {
            Event { reads: vec![read(a), read(b)], write: write(dest) }
        }
        LinkedInstr::Macs { dest, acc, src, .. } => {
            Event { reads: vec![read(acc), read(src)], write: write(dest) }
        }
        LinkedInstr::FusedMacs { dest, init, terms } => {
            // Slot sources read the snapshot, not the arena, so they do
            // not appear in arena liveness.
            let mut reads: Vec<(usize, usize)> = terms
                .iter()
                .filter_map(|t| match &t.src {
                    SrcRef::Arena(v) => Some(read(v)),
                    SrcRef::Slot { .. } => None,
                })
                .collect();
            if let FusedInit::Acc(a) = init {
                reads.push(read(a));
            }
            Event { reads, write: write(dest) }
        }
    }
}

/// Flattens the program into its cyclic execution order: per kernel the
/// snapshot reads, the `pre` block, the receive staging writes and `recv`
/// block (once — repetition per chunk does not change first-read /
/// first-cover order), then `done`; one trailing event keeps every field
/// interior live (fields are observable between any two timesteps).
/// Returns the events plus the event index of each instruction, keyed by
/// `(kernel, block, index)` with blocks `0 = pre`, `1 = recv`, `2 = done`.
/// Event index of each instruction, keyed by `(kernel, block, index)`
/// with blocks `0 = pre`, `1 = recv`, `2 = done`, `3 = staging slot`.
type EventPositions = HashMap<(usize, usize, usize), usize>;

fn program_events(linked: &LinkedProgram) -> (Vec<Event>, EventPositions) {
    let mut events = Vec::new();
    let mut position = HashMap::new();
    for (k, kernel) in linked.kernels.iter().enumerate() {
        let max_dyn = max_dyn_of(kernel);
        if let Some(comm) = &kernel.comm {
            let reads =
                comm.snap_fields.iter().map(|f| (f.src_base, f.src_base + f.copy_len)).collect();
            events.push(Event { reads, write: None });
        }
        for (i, instr) in kernel.pre.iter().enumerate() {
            position.insert((k, 0, i), events.len());
            events.push(instr_event(instr, 0));
        }
        if let Some(comm) = &kernel.comm {
            for (slot, spec) in comm.slots.iter().enumerate() {
                if !spec.staged {
                    continue;
                }
                let start = comm.recv_base + slot * comm.chunk_size;
                position.insert((k, 3, slot), events.len());
                events.push(Event {
                    reads: Vec::new(),
                    write: Some((start, start + comm.chunk_size, true)),
                });
            }
        }
        for (i, instr) in kernel.recv.iter().enumerate() {
            position.insert((k, 1, i), events.len());
            events.push(instr_event(instr, max_dyn));
        }
        for (i, instr) in kernel.done.iter().enumerate() {
            position.insert((k, 2, i), events.len());
            events.push(instr_event(instr, 0));
        }
    }
    // Observable fields are live between any two timesteps; internal
    // double-buffer fields are not observable, so their liveness is fully
    // described by the explicit instruction and snapshot events above.
    let field_reads = linked
        .field_ids
        .iter()
        .enumerate()
        .filter(|&(fi, _)| !linked.field_internal.get(fi).copied().unwrap_or(false))
        .map(|(_, id)| {
            let layout = &linked.layouts[id.0 as usize];
            let start = layout.base + (linked.z_halo as usize).min(layout.len);
            (start, (start + linked.z_dim as usize).min(layout.base + layout.len))
        })
        .collect();
    events.push(Event { reads: field_reads, write: None });
    (events, position)
}

/// True when a write to `range` issued just before `events[after + 1]` is
/// never observed: scanning the cyclic execution order, the range is fully
/// overwritten before any overlapping read.
fn write_is_dead(events: &[Event], after: usize, range: (usize, usize)) -> bool {
    let n = events.len();
    for step in 1..=n {
        let event = &events[(after + step) % n];
        if event.reads.iter().any(|&(r0, r1)| r0 < range.1 && range.0 < r1) {
            return false;
        }
        if let Some((w0, w1, covers)) = event.write {
            if covers && w0 <= range.0 && w1 >= range.1 {
                return true;
            }
        }
    }
    true
}

/// Folds `Copy { dest: out, src: acc }` instructions into the immediately
/// preceding fused sweep over `acc`, retargeting the sweep at `out`, when
/// the sweep's sources stay disjoint from `out` and the eliminated write
/// to `acc` is provably dead (see module docs).
fn fold_copies(linked: &mut LinkedProgram, stats: &mut OptStats) {
    'rescan: loop {
        let mut skipped = SkipCounts::default();
        let (events, position) = program_events(linked);
        for k in 0..linked.kernels.len() {
            let max_dyn = max_dyn_of(&linked.kernels[k]);
            for block_index in 0..3 {
                let block = match block_index {
                    0 => &linked.kernels[k].pre,
                    1 => &linked.kernels[k].recv,
                    _ => &linked.kernels[k].done,
                };
                for i in 0..block.len().saturating_sub(1) {
                    let LinkedInstr::FusedMacs { dest, init, terms } = &block[i] else { continue };
                    let LinkedInstr::Copy { dest: out, src } = &block[i + 1] else { continue };
                    if src != dest {
                        continue;
                    }
                    // The retargeted sweep writes `out` while reading its
                    // sources and (for an accumulator init) the old
                    // destination, so all of them must be disjoint from
                    // `out` (slot sources read the snapshot and cannot
                    // alias any arena view).
                    let sources_safe = terms.iter().all(|t| match &t.src {
                        SrcRef::Arena(v) => views_disjoint(v, out, max_dyn),
                        SrcRef::Slot { .. } => true,
                    });
                    let init_safe = match init {
                        FusedInit::Fill(_) => true,
                        FusedInit::Acc(a) => views_disjoint(a, out, max_dyn),
                    };
                    if !sources_safe || !init_safe {
                        skipped.aliasing += 1;
                        continue;
                    }
                    let copy_pos = position[&(k, block_index, i + 1)];
                    if !write_is_dead(&events, copy_pos, view_span(dest, max_dyn)) {
                        skipped.multi_result += 1;
                        continue;
                    }
                    let out = *out;
                    let block = match block_index {
                        0 => &mut linked.kernels[k].pre,
                        1 => &mut linked.kernels[k].recv,
                        _ => &mut linked.kernels[k].done,
                    };
                    let LinkedInstr::FusedMacs { dest, .. } = &mut block[i] else { unreachable!() };
                    *dest = out;
                    block.remove(i + 1);
                    stats.copies_folded += 1;
                    continue 'rescan;
                }
            }
        }
        stats.skipped.merge(&skipped);
        return;
    }
}

/// Folds `Binary { dest: t, .. }` + `Copy { dest: out, src: t }` pairs by
/// retargeting the binary at `out`, when both sources and `t` itself are
/// disjoint from `out` and the eliminated write to `t` is provably dead.
/// This is the write-back shape of a product kernel (`acc = a · b; out =
/// acc`); per element the retargeted instruction performs the identical
/// operation, so results are bitwise unchanged.
fn fold_binary_copies(linked: &mut LinkedProgram, stats: &mut OptStats) {
    'rescan: loop {
        let mut skipped = SkipCounts::default();
        let (events, position) = program_events(linked);
        for k in 0..linked.kernels.len() {
            let max_dyn = max_dyn_of(&linked.kernels[k]);
            for block_index in 0..3 {
                let block = match block_index {
                    0 => &linked.kernels[k].pre,
                    1 => &linked.kernels[k].recv,
                    _ => &linked.kernels[k].done,
                };
                for i in 0..block.len().saturating_sub(1) {
                    let LinkedInstr::Binary { dest: t, a, b, .. } = &block[i] else { continue };
                    let LinkedInstr::Copy { dest: out, src } = &block[i + 1] else { continue };
                    if src != t {
                        continue;
                    }
                    if !views_disjoint(a, out, max_dyn)
                        || !views_disjoint(b, out, max_dyn)
                        || !views_disjoint(t, out, max_dyn)
                    {
                        skipped.aliasing += 1;
                        continue;
                    }
                    let copy_pos = position[&(k, block_index, i + 1)];
                    if !write_is_dead(&events, copy_pos, view_span(t, max_dyn)) {
                        skipped.multi_result += 1;
                        continue;
                    }
                    let out = *out;
                    let block = match block_index {
                        0 => &mut linked.kernels[k].pre,
                        1 => &mut linked.kernels[k].recv,
                        _ => &mut linked.kernels[k].done,
                    };
                    let LinkedInstr::Binary { dest, .. } = &mut block[i] else { unreachable!() };
                    *dest = out;
                    block.remove(i + 1);
                    stats.binary_copies_folded += 1;
                    continue 'rescan;
                }
            }
        }
        stats.skipped.merge(&skipped);
        return;
    }
}

/// Every view an instruction touches (destination first).
fn instr_views(instr: &LinkedInstr) -> Vec<&LinkedView> {
    match instr {
        LinkedInstr::Fill { dest, .. } => vec![dest],
        LinkedInstr::Copy { dest, src } => vec![dest, src],
        LinkedInstr::Binary { dest, a, b, .. } => vec![dest, a, b],
        LinkedInstr::Macs { dest, acc, src, .. } => vec![dest, acc, src],
        LinkedInstr::FusedMacs { dest, init, terms } => {
            let mut views = vec![dest];
            if let FusedInit::Acc(a) = init {
                views.push(a);
            }
            views.extend(terms.iter().filter_map(|t| match &t.src {
                SrcRef::Arena(v) => Some(v),
                SrcRef::Slot { .. } => None,
            }));
            views
        }
    }
}

/// Mutable variant of [`instr_views`] (arena views only — slot sources
/// address the snapshot, which coalescing never moves).
fn instr_views_mut(instr: &mut LinkedInstr) -> Vec<&mut LinkedView> {
    match instr {
        LinkedInstr::Fill { dest, .. } => vec![dest],
        LinkedInstr::Copy { dest, src } => vec![dest, src],
        LinkedInstr::Binary { dest, a, b, .. } => vec![dest, a, b],
        LinkedInstr::Macs { dest, acc, src, .. } => vec![dest, acc, src],
        LinkedInstr::FusedMacs { dest, init, terms } => {
            let mut views = vec![dest];
            if let FusedInit::Acc(a) = init {
                views.push(a);
            }
            views.extend(terms.iter_mut().filter_map(|t| match &mut t.src {
                SrcRef::Arena(v) => Some(v),
                SrcRef::Slot { .. } => None,
            }));
            views
        }
    }
}

/// Removes buffers no instruction, receive slot, or snapshot references,
/// re-packing the survivors back to back and remapping every view.
fn coalesce_arena(linked: &mut LinkedProgram, stats: &mut OptStats) {
    let old_layouts = linked.layouts.clone();
    if old_layouts.is_empty() {
        return;
    }
    let mut used = vec![false; old_layouts.len()];
    for id in &linked.field_ids {
        used[id.0 as usize] = true;
    }
    for kernel in &linked.kernels {
        for instr in kernel.pre.iter().chain(&kernel.recv).chain(&kernel.done).chain(&kernel.commit)
        {
            for view in instr_views(instr) {
                used[buffer_at(&old_layouts, view.base).0 as usize] = true;
            }
        }
        if let Some(comm) = &kernel.comm {
            used[buffer_at(&old_layouts, comm.recv_base as u32).0 as usize] = true;
            for field in &comm.snap_fields {
                used[field.buffer.0 as usize] = true;
            }
        }
    }
    if used.iter().all(|&u| u) {
        return;
    }

    // Re-pack the surviving buffers and record each old buffer's offset
    // delta and new id.
    let mut new_layouts = Vec::new();
    let mut new_id = vec![BufferId(u32::MAX); old_layouts.len()];
    let mut delta = vec![0i64; old_layouts.len()];
    let mut base = 0usize;
    for (i, layout) in old_layouts.iter().enumerate() {
        if !used[i] {
            continue;
        }
        new_id[i] = BufferId(new_layouts.len() as u32);
        delta[i] = base as i64 - layout.base as i64;
        new_layouts.push(BufferLayout { base, ..layout.clone() });
        base += layout.len;
    }
    stats.buffers_coalesced += old_layouts.len() - new_layouts.len();

    for kernel in &mut linked.kernels {
        for instr in kernel
            .pre
            .iter_mut()
            .chain(&mut kernel.recv)
            .chain(&mut kernel.done)
            .chain(&mut kernel.commit)
        {
            for view in instr_views_mut(instr) {
                let owner = buffer_at(&old_layouts, view.base).0 as usize;
                view.base = (view.base as i64 + delta[owner]) as u32;
            }
        }
        if let Some(comm) = &mut kernel.comm {
            let owner = buffer_at(&old_layouts, comm.recv_base as u32).0 as usize;
            comm.recv_base = (comm.recv_base as i64 + delta[owner]) as usize;
            for field in &mut comm.snap_fields {
                let owner = field.buffer.0 as usize;
                field.src_base = (field.src_base as i64 + delta[owner]) as usize;
                field.buffer = new_id[owner];
            }
        }
    }
    for id in &mut linked.field_ids {
        *id = new_id[id.0 as usize];
    }
    linked.arena_len = base;
    linked.layouts = new_layouts;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{BufferDecl, LoadedKernel};

    fn program_with(buffers: Vec<BufferDecl>, pre: Vec<Instr>) -> LoadedProgram {
        LoadedProgram {
            width: 2,
            height: 2,
            z_dim: 4,
            z_halo: 1,
            timesteps: 1,
            buffers,
            field_buffers: vec!["a".into()],
            internal_fields: Vec::new(),
            kernels: vec![LoadedKernel {
                name: "seq_kernel0".into(),
                pre,
                comm: None,
                recv: Vec::new(),
                done: Vec::new(),
            }],
        }
    }

    fn decl(name: &str, len: i64) -> BufferDecl {
        BufferDecl { name: name.into(), len, init: 0.0 }
    }

    fn view(buffer: &str, offset: i64, len: i64) -> ViewRef {
        ViewRef { buffer: buffer.into(), offset, dynamic: false, len }
    }

    #[test]
    fn links_a_minimal_program() {
        let program = program_with(
            vec![decl("a", 6), decl("b", 6)],
            vec![Instr::Movs { dest: view("b", 0, 6), src: Src::View(view("a", 0, 6)) }],
        );
        let linked = link_program(&program).unwrap();
        assert_eq!(linked.arena_len, 12);
        assert_eq!(linked.layouts[1].base, 6, "buffers are laid out back to back");
        assert_eq!(linked.field_ids, vec![BufferId(0)]);
        assert_eq!(linked.max_view_len, 6);
        assert_eq!(linked.kernels[0].work_per_pe, 6);
    }

    #[test]
    fn rejects_out_of_bounds_views() {
        let program = program_with(
            vec![decl("a", 6), decl("b", 6)],
            // Spills past the end of `a` into `b`'s arena region.
            vec![Instr::Movs { dest: view("a", 4, 4), src: Src::Scalar(1.0) }],
        );
        let message = link_program(&program).unwrap_err().message;
        assert!(message.contains("out of bounds"), "got: {message}");
    }

    #[test]
    fn rejects_unknown_buffers_and_fields() {
        let program = program_with(
            vec![decl("a", 6)],
            vec![Instr::Movs { dest: view("ghost", 0, 1), src: Src::Scalar(0.0) }],
        );
        assert!(link_program(&program).unwrap_err().message.contains("unknown buffer ghost"));

        let mut missing_field = program_with(vec![decl("a", 6)], Vec::new());
        missing_field.field_buffers = vec!["missing".into()];
        let message = link_program(&missing_field).unwrap_err().message;
        assert!(message.contains("unknown field buffer missing"), "got: {message}");
    }

    #[test]
    fn rejects_overlapping_layouts() {
        // Duplicate declarations would alias one arena region.
        let program = program_with(vec![decl("a", 6), decl("a", 6)], Vec::new());
        assert!(link_program(&program).unwrap_err().message.contains("duplicate buffer"));

        // The defensive layout validator catches overlap and overflow in
        // hand-built layouts.
        let overlapping = vec![
            BufferLayout { name: "a".into(), base: 0, len: 6, init: 0.0 },
            BufferLayout { name: "b".into(), base: 4, len: 6, init: 0.0 },
        ];
        assert!(validate_layouts(&overlapping, 10).unwrap_err().message.contains("overlaps"));
        let overflowing = vec![BufferLayout { name: "a".into(), base: 0, len: 8, init: 0.0 }];
        assert!(validate_layouts(&overflowing, 6).unwrap_err().message.contains("beyond"));
    }

    #[test]
    fn rejects_short_field_buffers_and_length_mismatches() {
        // Field buffer shorter than halo + interior.
        let short = program_with(vec![decl("a", 3)], Vec::new());
        assert!(link_program(&short).unwrap_err().message.contains("shorter than"));

        let mismatch = program_with(
            vec![decl("a", 6), decl("b", 6)],
            vec![Instr::Binary {
                kind: BinKind::Add,
                dest: view("b", 0, 4),
                a: view("a", 0, 4),
                b: view("a", 0, 3),
            }],
        );
        assert!(link_program(&mismatch).unwrap_err().message.contains("length mismatch"));
    }

    #[test]
    fn rejects_slots_over_non_field_buffers() {
        use crate::loader::SlotSpec;
        let mut program = program_with(vec![decl("a", 6), decl("recv_buffer", 8)], Vec::new());
        program.kernels[0].comm = Some(CommSpec {
            num_chunks: 1,
            chunk_size: 4,
            // recv_buffer exists but is not a declared field buffer.
            slots: vec![SlotSpec { field: "recv_buffer".into(), dx: 1, dy: 0 }],
            fields: vec!["a".into()],
            pattern: 1,
        });
        let message = link_program(&program).unwrap_err().message;
        assert!(message.contains("unknown field buffer recv_buffer"), "got: {message}");
    }

    /// Table-driven negative-path coverage: every rejection class of the
    /// linker must produce a typed [`ExecError`] whose message names the
    /// problem — no panics, no silent acceptance.  Classes marked (new)
    /// had no test before this table existed.
    #[test]
    fn every_rejection_class_is_a_typed_error() {
        use crate::loader::SlotSpec;
        type Mutate = fn(&mut LoadedProgram);
        let cases: [(&str, Mutate, &str); 9] = [
            ("zero-width PE grid (new)", |p| p.width = 0, "invalid PE grid"),
            ("negative grid height (new)", |p| p.height = -3, "invalid PE grid"),
            ("negative z dimension (new)", |p| p.z_dim = -1, "negative z_dim"),
            ("negative z halo (new)", |p| p.z_halo = -2, "negative z_dim or z_halo"),
            ("negative buffer length (new)", |p| p.buffers[0].len = -6, "negative length"),
            (
                "negative view offset (new)",
                |p| {
                    p.kernels[0].pre = vec![Instr::Movs {
                        dest: ViewRef { buffer: "a".into(), offset: -1, dynamic: false, len: 2 },
                        src: Src::Scalar(0.0),
                    }];
                },
                "negative view",
            ),
            (
                "zero-chunk exchange (new)",
                |p| {
                    p.buffers.push(BufferDecl { name: "recv_buffer".into(), len: 8, init: 0.0 });
                    p.kernels[0].comm = Some(CommSpec {
                        num_chunks: 0,
                        chunk_size: 4,
                        slots: vec![],
                        fields: vec!["a".into()],
                        pattern: 1,
                    });
                },
                "invalid exchange",
            ),
            (
                "receive buffer overflow (new)",
                |p| {
                    p.buffers.push(BufferDecl { name: "recv_buffer".into(), len: 4, init: 0.0 });
                    p.kernels[0].comm = Some(CommSpec {
                        num_chunks: 1,
                        chunk_size: 4,
                        slots: vec![
                            SlotSpec { field: "a".into(), dx: 1, dy: 0 },
                            SlotSpec { field: "a".into(), dx: -1, dy: 0 },
                        ],
                        fields: vec!["a".into()],
                        pattern: 1,
                    });
                },
                "receive buffer overflow",
            ),
            (
                "missing recv_buffer (new)",
                |p| {
                    p.kernels[0].comm = Some(CommSpec {
                        num_chunks: 1,
                        chunk_size: 4,
                        slots: vec![SlotSpec { field: "a".into(), dx: 1, dy: 0 }],
                        fields: vec!["a".into()],
                        pattern: 1,
                    });
                },
                "missing recv_buffer",
            ),
        ];
        for (label, mutate, needle) in cases {
            let mut program = program_with(vec![decl("a", 6)], Vec::new());
            mutate(&mut program);
            let error = link_program(&program)
                .expect_err(&format!("{label}: malformed program was accepted"));
            assert!(
                error.message.contains(needle),
                "{label}: diagnostic {:?} does not mention {needle:?}",
                error.message
            );
            let code = error
                .code()
                .unwrap_or_else(|| panic!("{label}: rejection carries no diagnostic code"));
            assert!(
                wse_ir::lookup_diagnostic(code).is_some(),
                "{label}: code {code:?} is not in the wse_ir::diagnostics registry"
            );
        }
    }

    #[test]
    fn mul_add_pairs_fuse_into_macs_without_fmac_lowering() {
        // The `enable_fmac_fusion=false` spelling of `acc += 0.5 * a`:
        // scratch = a * coeff_buffer; acc = acc + scratch.  The peephole
        // must rewrite it into a Macs (and then a fused sweep), because
        // the coefficient buffer is constant-initialized and unwritten.
        let program = LoadedProgram {
            width: 2,
            height: 2,
            z_dim: 4,
            z_halo: 1,
            timesteps: 1,
            buffers: vec![
                decl("a", 6),
                decl("acc", 4),
                decl("scratch", 4),
                BufferDecl { name: "coeff0".into(), len: 4, init: 0.5 },
                BufferDecl { name: "coeff1".into(), len: 4, init: -0.25 },
            ],
            field_buffers: vec!["a".into()],
            internal_fields: Vec::new(),
            kernels: vec![LoadedKernel {
                name: "seq_kernel0".into(),
                pre: vec![
                    Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.0) },
                    Instr::Binary {
                        kind: BinKind::Mul,
                        dest: view("scratch", 0, 4),
                        a: view("a", 1, 4),
                        b: view("coeff0", 0, 4),
                    },
                    Instr::Binary {
                        kind: BinKind::Add,
                        dest: view("acc", 0, 4),
                        a: view("acc", 0, 4),
                        b: view("scratch", 0, 4),
                    },
                    Instr::Binary {
                        kind: BinKind::Mul,
                        dest: view("scratch", 0, 4),
                        a: view("a", 0, 4),
                        b: view("coeff1", 0, 4),
                    },
                    Instr::Binary {
                        kind: BinKind::Add,
                        dest: view("acc", 0, 4),
                        a: view("acc", 0, 4),
                        b: view("scratch", 0, 4),
                    },
                    Instr::Movs { dest: view("a", 1, 4), src: Src::View(view("acc", 0, 4)) },
                ],
                comm: None,
                recv: Vec::new(),
                done: Vec::new(),
            }],
        };
        let linked =
            link_program_with(&program, &LinkOptions { optimize: true, ..LinkOptions::default() })
                .unwrap();
        assert_eq!(linked.stats.binary_macs_fused, 2, "both pairs become Macs");
        // The two Macs then chain into one fused sweep with two terms.
        let sweeps: Vec<&LinkedInstr> = linked.kernels[0]
            .pre
            .iter()
            .filter(|i| matches!(i, LinkedInstr::FusedMacs { .. }))
            .collect();
        assert_eq!(sweeps.len(), 1, "stream: {:?}", linked.kernels[0].pre);
        let LinkedInstr::FusedMacs { terms, .. } = sweeps[0] else { unreachable!() };
        assert_eq!(terms.len(), 2);
        assert_eq!(terms[0].coeff, 0.5);
        assert_eq!(terms[1].coeff, -0.25);
    }

    #[test]
    fn mul_add_peephole_respects_aliasing_and_written_coefficients() {
        // (1) The "coefficient" buffer is written elsewhere: not a
        // constant, the pair must survive untouched.
        let mut program = program_with(
            vec![decl("a", 6), decl("acc", 4), decl("scratch", 4), decl("k", 4)],
            vec![
                Instr::Movs { dest: view("k", 0, 4), src: Src::Scalar(2.0) },
                Instr::Binary {
                    kind: BinKind::Mul,
                    dest: view("scratch", 0, 4),
                    a: view("a", 0, 4),
                    b: view("k", 0, 4),
                },
                Instr::Binary {
                    kind: BinKind::Add,
                    dest: view("acc", 0, 4),
                    a: view("acc", 0, 4),
                    b: view("scratch", 0, 4),
                },
            ],
        );
        let linked =
            link_program_with(&program, &LinkOptions { optimize: true, ..LinkOptions::default() })
                .unwrap();
        assert_eq!(linked.stats.binary_macs_fused, 0, "written multiplier is not a constant");

        // (2) Source overlaps the accumulator: the two-sweep semantics are
        // observable, the pair must survive.
        program.buffers = vec![decl("a", 6), decl("scratch", 4), decl("c", 4)];
        program.buffers[2].init = 0.5;
        program.kernels[0].pre = vec![
            Instr::Binary {
                kind: BinKind::Mul,
                dest: view("scratch", 0, 4),
                a: view("a", 1, 4),
                b: view("c", 0, 4),
            },
            Instr::Binary {
                kind: BinKind::Add,
                dest: view("a", 0, 4),
                a: view("a", 0, 4),
                b: view("scratch", 0, 4),
            },
        ];
        let linked =
            link_program_with(&program, &LinkOptions { optimize: true, ..LinkOptions::default() })
                .unwrap();
        assert_eq!(linked.stats.binary_macs_fused, 0, "aliased src/dest must not fuse");
    }

    #[test]
    fn product_muls_are_counted_and_their_write_back_folds() {
        // The product-kernel stream a decomposed nonlinear body produces:
        // acc = b · b (both sources are data), then the write-back copy
        // into the output field.
        let mut program = program_with(
            vec![decl("a", 6), decl("b", 6), decl("acc", 4)],
            vec![
                Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.0) },
                Instr::Binary {
                    kind: BinKind::Mul,
                    dest: view("acc", 0, 4),
                    a: view("b", 1, 4),
                    b: view("b", 1, 4),
                },
                Instr::Movs { dest: view("a", 1, 4), src: Src::View(view("acc", 0, 4)) },
            ],
        );
        program.field_buffers = vec!["a".into(), "b".into()];
        let linked =
            link_program_with(&program, &LinkOptions { optimize: true, ..LinkOptions::default() })
                .unwrap();
        assert_eq!(linked.stats.product_muls, 1, "data×data mul is counted");
        assert_eq!(linked.stats.binary_macs_fused, 0, "a product is not a coefficient mac");
        assert_eq!(linked.stats.binary_copies_folded, 1, "write-back copy folds");
        // The multiply now writes the field window directly.
        let mul_dests: Vec<u32> = linked.kernels[0]
            .pre
            .iter()
            .filter_map(|i| match i {
                LinkedInstr::Binary { kind: BinKind::Mul, dest, .. } => Some(dest.base),
                _ => None,
            })
            .collect();
        let a_layout = linked.layouts.iter().find(|l| l.name == "a").unwrap();
        assert_eq!(mul_dests, vec![a_layout.base as u32 + 1]);
        assert!(!linked.kernels[0].pre.iter().any(|i| matches!(i, LinkedInstr::Copy { .. })));
    }

    #[test]
    fn binary_copy_folding_respects_aliasing_and_windows() {
        // (1) The write-back destination overlaps a multiply source
        // (`u = u · u` written back into `u`): must not fold.
        let mut program = program_with(
            vec![decl("a", 6), decl("acc", 4)],
            vec![
                Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.0) },
                Instr::Binary {
                    kind: BinKind::Mul,
                    dest: view("acc", 0, 4),
                    a: view("a", 1, 4),
                    b: view("a", 1, 4),
                },
                Instr::Movs { dest: view("a", 1, 4), src: Src::View(view("acc", 0, 4)) },
            ],
        );
        let linked =
            link_program_with(&program, &LinkOptions { optimize: true, ..LinkOptions::default() })
                .unwrap();
        assert_eq!(linked.stats.product_muls, 1);
        assert_eq!(linked.stats.binary_copies_folded, 0, "aliased write-back must not fold");

        // (2) The multiply writes a window of the accumulator but the copy
        // moves the whole buffer (z-shifted remote factor): must not fold.
        program.field_buffers = vec!["a".into(), "b".into()];
        program.buffers = vec![decl("a", 6), decl("b", 6), decl("acc", 4)];
        program.kernels[0].pre = vec![
            Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.0) },
            Instr::Binary {
                kind: BinKind::Mul,
                dest: view("acc", 1, 2),
                a: view("b", 1, 2),
                b: view("b", 2, 2),
            },
            Instr::Movs { dest: view("a", 1, 4), src: Src::View(view("acc", 0, 4)) },
        ];
        let linked =
            link_program_with(&program, &LinkOptions { optimize: true, ..LinkOptions::default() })
                .unwrap();
        assert_eq!(linked.stats.binary_copies_folded, 0, "windowed product must keep its copy");
    }

    #[test]
    fn dynamic_views_are_checked_at_the_last_chunk() {
        use crate::loader::SlotSpec;
        let mut program = program_with(vec![decl("a", 6), decl("recv_buffer", 8)], Vec::new());
        program.z_halo = 0;
        program.kernels[0].comm = Some(CommSpec {
            num_chunks: 2,
            chunk_size: 2,
            slots: vec![SlotSpec { field: "a".into(), dx: 1, dy: 0 }],
            fields: vec!["a".into()],
            pattern: 1,
        });
        // Reaches a[3 + 2 + 2) = a[..7) on the last chunk: out of bounds.
        program.kernels[0].recv = vec![Instr::Movs {
            dest: ViewRef { buffer: "a".into(), offset: 3, dynamic: true, len: 2 },
            src: Src::Scalar(0.0),
        }];
        let message = link_program(&program).unwrap_err().message;
        assert!(message.contains("out of bounds"), "got: {message}");

        // One element earlier fits exactly.
        program.kernels[0].recv = vec![Instr::Movs {
            dest: ViewRef { buffer: "a".into(), offset: 2, dynamic: true, len: 2 },
            src: Src::Scalar(0.0),
        }];
        let linked = link_program(&program).unwrap();
        let comm = linked.kernels[0].comm.as_ref().unwrap();
        assert_eq!(comm.col_len, 4);
        assert_eq!(comm.snap_fields.len(), 1);
        assert_eq!(comm.snap_fields[0].copy_len, 4);
    }

    /// A program whose `Fill`/`Macs` chain reads one element *behind* its
    /// own destination: safe under the generic scratch path, wrong under
    /// an in-place fused sweep.  The aliasing check must refuse the fusion
    /// — and with the check mutated away, the translation validator must
    /// catch the broken rewrite.
    fn aliasing_chain_program() -> LoadedProgram {
        let mut program = program_with(
            vec![decl("a", 6), BufferDecl { name: "acc".into(), len: 6, init: 1.5 }],
            vec![
                Instr::Movs { dest: view("acc", 1, 4), src: Src::Scalar(0.0) },
                Instr::Macs {
                    dest: view("acc", 1, 4),
                    acc: view("acc", 1, 4),
                    // Reads acc[0..4]: element j-1 of the sweep's own
                    // destination window acc[1..5].
                    src: view("acc", 0, 4),
                    coeff: 2.0,
                },
                // Make the damage observable: the field interior a[1..5].
                Instr::Movs { dest: view("a", 1, 4), src: Src::View(view("acc", 1, 4)) },
            ],
        );
        program.timesteps = 1;
        program
    }

    #[test]
    fn aliasing_chains_are_skipped_and_counted() {
        let program = aliasing_chain_program();
        let linked = link_program_with(
            &program,
            &LinkOptions { optimize: true, validate: false, ..LinkOptions::default() },
        )
        .unwrap();
        assert!(
            linked.stats.skipped.aliasing >= 1,
            "the aliasing break must be counted: {:?}",
            linked.stats.skipped
        );
        assert_eq!(linked.stats.fused_chains, 0, "nothing fusable here: {:?}", linked.stats);
    }

    #[test]
    fn window_barriers_are_counted() {
        let program = program_with(
            vec![decl("a", 6), decl("acc", 4), decl("b", 4), decl("x", 4), decl("y", 4)],
            vec![
                Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.0) },
                Instr::Macs {
                    dest: view("acc", 0, 4),
                    acc: view("acc", 0, 4),
                    src: view("b", 0, 4),
                    coeff: 2.0,
                },
                // Unrelated copy cuts the chain although a fusable term
                // follows: the adjacency-window fusion barrier.
                Instr::Movs { dest: view("x", 0, 4), src: Src::View(view("y", 0, 4)) },
                Instr::Macs {
                    dest: view("acc", 0, 4),
                    acc: view("acc", 0, 4),
                    src: view("b", 0, 4),
                    coeff: 3.0,
                },
            ],
        );
        let linked = link_program_with(
            &program,
            &LinkOptions { optimize: true, validate: true, ..LinkOptions::default() },
        )
        .unwrap();
        assert_eq!(linked.stats.skipped.window_barrier, 1, "stats: {:?}", linked.stats.skipped);
        assert_eq!(linked.stats.validator_rejections, 0, "stats: {:?}", linked.stats);
        assert!(linked.stats.validated_passes >= 10, "stats: {:?}", linked.stats);
    }

    #[test]
    fn validator_catches_a_dropped_aliasing_check() {
        let program = aliasing_chain_program();
        let reference =
            link_program_with(&program, &LinkOptions { optimize: false, ..LinkOptions::default() })
                .unwrap();

        // Without validation the mutated optimizer emits a broken in-place
        // sweep: the stream's dataflow diverges from the unoptimized one.
        let broken = link_program_with(
            &program,
            &LinkOptions {
                optimize: true,
                validate: false,
                mutate: Some(LinkMutation::DropAliasingCheck),
                ..LinkOptions::default()
            },
        )
        .unwrap();
        assert!(
            broken.stats.fused_chains >= 1,
            "mutation must force the fusion: {:?}",
            broken.stats
        );
        assert!(
            !crate::validate::streams_equivalent(&reference, &broken),
            "the dropped check must actually corrupt the stream"
        );

        // With validation on, the fuse-block pass is rejected and reverted:
        // the final stream is equivalent to the unoptimized one again.
        let guarded = link_program_with(
            &program,
            &LinkOptions {
                optimize: true,
                validate: true,
                mutate: Some(LinkMutation::DropAliasingCheck),
                ..LinkOptions::default()
            },
        )
        .unwrap();
        assert!(
            guarded.stats.validator_rejections >= 1,
            "the validator must reject the broken pass: {:?}",
            guarded.stats
        );
        assert!(
            guarded.stats.rejected_passes.contains(&"fuse-block"),
            "the rejected pass must be named: {:?}",
            guarded.stats.rejected_passes
        );
        assert!(
            crate::validate::streams_equivalent(&reference, &guarded),
            "the reverted stream must match the unoptimized dataflow"
        );
    }

    #[test]
    fn clean_optimization_passes_validation() {
        let program = program_with(
            vec![decl("a", 6), decl("acc", 4), decl("b", 4)],
            vec![
                Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.25) },
                Instr::Macs {
                    dest: view("acc", 0, 4),
                    acc: view("acc", 0, 4),
                    src: view("b", 0, 4),
                    coeff: 0.5,
                },
                Instr::Macs {
                    dest: view("acc", 0, 4),
                    acc: view("acc", 0, 4),
                    src: view("a", 0, 4),
                    coeff: -1.0,
                },
                Instr::Movs { dest: view("a", 1, 4), src: Src::View(view("acc", 0, 4)) },
            ],
        );
        let linked = link_program_with(
            &program,
            &LinkOptions { optimize: true, validate: true, ..LinkOptions::default() },
        )
        .unwrap();
        assert!(linked.stats.fused_chains >= 1, "stats: {:?}", linked.stats);
        assert_eq!(linked.stats.validator_rejections, 0, "stats: {:?}", linked.stats);
        assert!(linked.stats.rejected_passes.is_empty(), "stats: {:?}", linked.stats);
    }
}
