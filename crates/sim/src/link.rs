//! Link phase of the two-phase simulator: resolves a [`LoadedProgram`]
//! into a flat-memory [`LinkedProgram`].
//!
//! The loader produces a portable, string-keyed program (buffer names,
//! per-kernel instruction lists, a communication spec).  Executing that
//! form directly means hashing a buffer name on every operand of every
//! instruction of every PE — which dominates simulation time.  Linking
//! happens once, at load time:
//!
//! * every buffer name is interned into a dense [`BufferId`] and all of a
//!   PE's buffers are laid out back to back in one flat `f32` arena
//!   ([`BufferLayout`] records each buffer's base offset);
//! * every [`ViewRef`] becomes a [`LinkedView`] — an absolute arena offset
//!   plus a length and the dynamic-chunk-offset flag — and every
//!   [`Instr`] becomes a [`LinkedInstr`] with all operands resolved;
//! * the halo exchange is resolved into a [`LinkedComm`]: which interior
//!   columns must be snapshotted ([`SnapField`]) and which snapshot column
//!   each receive slot reads ([`LinkedSlot`]).
//!
//! All bounds are validated here (views inside their buffer even at the
//! maximum dynamic chunk offset, receive slots inside the receive buffer,
//! field buffers long enough for the interior), so the run phase in
//! [`crate::exec`] needs no per-instruction error paths.
//!
//! [`Instr`]: crate::loader::Instr
//! [`ViewRef`]: crate::loader::ViewRef

use std::collections::HashMap;

use crate::exec::ExecError;
use crate::loader::{BinKind, CommSpec, Instr, LoadedProgram, Src, ViewRef};

fn err(message: impl Into<String>) -> ExecError {
    ExecError { message: message.into() }
}

/// Dense handle of a PE-local buffer: an index into [`LinkedProgram::layouts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub u32);

/// Placement of one buffer inside the per-PE arena.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferLayout {
    /// Buffer symbol (kept for diagnostics and field extraction).
    pub name: String,
    /// First element of the buffer in the arena.
    pub base: usize,
    /// Length in elements.
    pub len: usize,
    /// Initial fill value.
    pub init: f32,
}

/// A fully resolved view: an absolute arena range instead of a buffer name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkedView {
    /// Arena offset of the first element (buffer base + static view offset).
    pub base: u32,
    /// Number of elements.
    pub len: u32,
    /// Whether the runtime chunk offset is added to `base`.
    pub dynamic: bool,
}

impl LinkedView {
    /// The arena element range addressed at the given chunk offset.
    #[inline]
    pub fn range(&self, chunk_offset: usize) -> std::ops::Range<usize> {
        let start = self.base as usize + if self.dynamic { chunk_offset } else { 0 };
        start..start + self.len as usize
    }
}

/// One resolved instruction.  Compared with [`Instr`], scalar and view
/// moves are split so the run phase dispatches without inspecting a
/// nested [`Src`].
#[derive(Debug, Clone, PartialEq)]
pub enum LinkedInstr {
    /// `dest[i] = value` (a scalar `@fmovs`).
    Fill {
        /// Destination view.
        dest: LinkedView,
        /// Fill value.
        value: f32,
    },
    /// `dest[i] = src[i]` (a view `@fmovs`; overlap behaves like memmove).
    Copy {
        /// Destination view.
        dest: LinkedView,
        /// Source view.
        src: LinkedView,
    },
    /// `dest[i] = a[i] <op> b[i]`.
    Binary {
        /// Operation kind.
        kind: BinKind,
        /// Destination view.
        dest: LinkedView,
        /// First source.
        a: LinkedView,
        /// Second source.
        b: LinkedView,
    },
    /// `dest[i] = acc[i] + src[i] * coeff`.
    Macs {
        /// Destination view.
        dest: LinkedView,
        /// Accumulator view.
        acc: LinkedView,
        /// Source view.
        src: LinkedView,
        /// Scalar coefficient.
        coeff: f32,
    },
}

/// One interior column captured by the pre-kernel snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapField {
    /// Arena offset of the first interior element of the source buffer.
    pub src_base: usize,
    /// Elements copied from the buffer; the rest of the snapshot column is
    /// zero-filled (matching the zero halo of out-of-range reads).
    pub copy_len: usize,
}

/// One receive slot resolved against the snapshot layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkedSlot {
    /// Index into [`LinkedComm::snap_fields`].
    pub snap_index: usize,
    /// Neighbor offset in x.
    pub dx: i64,
    /// Neighbor offset in y.
    pub dy: i64,
}

/// The halo exchange of one kernel, resolved to arena and snapshot offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedComm {
    /// Number of chunks.
    pub num_chunks: usize,
    /// Chunk size in elements.
    pub chunk_size: usize,
    /// Arena offset of the receive buffer.
    pub recv_base: usize,
    /// Receive slots in buffer order.
    pub slots: Vec<LinkedSlot>,
    /// Interior columns the snapshot must capture (deduplicated fields).
    pub snap_fields: Vec<SnapField>,
    /// Snapshot column length per field per PE (`num_chunks * chunk_size`).
    pub col_len: usize,
}

impl LinkedComm {
    /// Snapshot elements required per PE for this exchange.
    pub fn snap_len(&self) -> usize {
        self.snap_fields.len() * self.col_len
    }
}

/// One kernel with all callbacks resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedKernel {
    /// Instructions of the kernel body itself.
    pub pre: Vec<LinkedInstr>,
    /// The halo exchange, if any.
    pub comm: Option<LinkedComm>,
    /// Receive-chunk instructions (run once per chunk).
    pub recv: Vec<LinkedInstr>,
    /// Done-exchange instructions (run once).
    pub done: Vec<LinkedInstr>,
    /// Elements processed per PE per kernel invocation (used to decide
    /// whether parallel execution is worthwhile).
    pub work_per_pe: usize,
}

/// The executable flat-memory form of a program: phase 1 of the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedProgram {
    /// PE-grid extent in x.
    pub width: i64,
    /// PE-grid extent in y.
    pub height: i64,
    /// Interior column length per PE.
    pub z_dim: i64,
    /// Halo cells at each end of a column buffer.
    pub z_halo: i64,
    /// Number of timesteps.
    pub timesteps: i64,
    /// Arena elements per PE (sum of all buffer lengths).
    pub arena_len: usize,
    /// Buffer placements, in declaration order.
    pub layouts: Vec<BufferLayout>,
    /// Field buffers in field order, as layout indices.
    pub field_ids: Vec<BufferId>,
    /// Kernels in execution order.
    pub kernels: Vec<LinkedKernel>,
    /// Largest view length of any instruction (sizes the scratch buffer).
    pub max_view_len: usize,
    /// Largest per-PE snapshot of any kernel (sizes the snapshot buffer).
    pub max_snap_len: usize,
}

/// Checks that `layouts` tile the arena without overlap or overflow.
///
/// `link_program` lays buffers out back to back, so this can only fail on
/// a hand-constructed layout — it exists as a guard for future layout
/// strategies (and is exercised directly by tests).
pub fn validate_layouts(layouts: &[BufferLayout], arena_len: usize) -> Result<(), ExecError> {
    let mut sorted: Vec<&BufferLayout> = layouts.iter().collect();
    sorted.sort_by_key(|l| l.base);
    let mut end = 0usize;
    for layout in sorted {
        if layout.base < end {
            return Err(err(format!(
                "buffer {} at [{}, {}) overlaps the previous buffer ending at {end}",
                layout.name,
                layout.base,
                layout.base + layout.len
            )));
        }
        end = layout.base + layout.len;
    }
    if end > arena_len {
        return Err(err(format!(
            "buffer layout ends at {end}, beyond the arena (len {arena_len})"
        )));
    }
    Ok(())
}

/// Links a loaded program: interns buffer names, lays out the per-PE
/// arena, resolves every instruction and the communication spec, and
/// validates all bounds.
pub fn link_program(program: &LoadedProgram) -> Result<LinkedProgram, ExecError> {
    if program.width <= 0 || program.height <= 0 {
        return Err(err(format!("invalid PE grid {}x{}", program.width, program.height)));
    }
    if program.z_dim < 0 || program.z_halo < 0 {
        return Err(err("negative z_dim or z_halo"));
    }

    // Arena layout: buffers back to back in declaration order.
    let mut layouts = Vec::with_capacity(program.buffers.len());
    let mut by_name: HashMap<&str, BufferId> = HashMap::new();
    let mut arena_len = 0usize;
    for decl in &program.buffers {
        if decl.len < 0 {
            return Err(err(format!("buffer {} has negative length {}", decl.name, decl.len)));
        }
        if by_name.insert(&decl.name, BufferId(layouts.len() as u32)).is_some() {
            return Err(err(format!(
                "duplicate buffer {}: two buffers may not share one layout",
                decl.name
            )));
        }
        layouts.push(BufferLayout {
            name: decl.name.clone(),
            base: arena_len,
            len: decl.len as usize,
            init: decl.init,
        });
        arena_len += decl.len as usize;
    }
    validate_layouts(&layouts, arena_len)?;

    // Field buffers must exist and hold the full interior column; a miss
    // here was previously a silent drop during state extraction.
    let mut field_ids = Vec::with_capacity(program.field_buffers.len());
    for field in &program.field_buffers {
        let id = *by_name
            .get(field.as_str())
            .ok_or_else(|| err(format!("unknown field buffer {field}")))?;
        let layout = &layouts[id.0 as usize];
        let needed = (program.z_halo + program.z_dim) as usize;
        if layout.len < needed {
            return Err(err(format!(
                "field buffer {field} (len {}) is shorter than halo + interior ({needed})",
                layout.len
            )));
        }
        field_ids.push(id);
    }

    let mut kernels = Vec::with_capacity(program.kernels.len());
    let mut max_view_len = 0usize;
    let mut max_snap_len = 0usize;
    for kernel in &program.kernels {
        let comm = kernel
            .comm
            .as_ref()
            .map(|c| {
                link_comm(c, &by_name, &layouts, &program.field_buffers, program.z_halo as usize)
            })
            .transpose()?;
        // Dynamic views only occur in receive callbacks; their largest
        // runtime offset is reached on the final chunk.
        let max_dyn = comm.as_ref().map(|c| (c.num_chunks - 1) * c.chunk_size).unwrap_or(0);
        let pre = link_block(&kernel.pre, &by_name, &layouts, 0, &mut max_view_len)?;
        let recv = link_block(&kernel.recv, &by_name, &layouts, max_dyn, &mut max_view_len)?;
        let done = link_block(&kernel.done, &by_name, &layouts, 0, &mut max_view_len)?;

        let elements =
            |instrs: &[LinkedInstr]| -> usize { instrs.iter().map(instr_elements).sum() };
        let mut work_per_pe = elements(&pre) + elements(&done);
        if let Some(c) = &comm {
            work_per_pe += c.num_chunks * (elements(&recv) + c.slots.len() * c.chunk_size);
            max_snap_len = max_snap_len.max(c.snap_len());
        }
        kernels.push(LinkedKernel { pre, comm, recv, done, work_per_pe });
    }

    Ok(LinkedProgram {
        width: program.width,
        height: program.height,
        z_dim: program.z_dim,
        z_halo: program.z_halo,
        timesteps: program.timesteps,
        arena_len,
        layouts,
        field_ids,
        kernels,
        max_view_len,
        max_snap_len,
    })
}

fn instr_elements(instr: &LinkedInstr) -> usize {
    match instr {
        LinkedInstr::Fill { dest, .. }
        | LinkedInstr::Copy { dest, .. }
        | LinkedInstr::Binary { dest, .. }
        | LinkedInstr::Macs { dest, .. } => dest.len as usize,
    }
}

fn link_comm(
    comm: &CommSpec,
    by_name: &HashMap<&str, BufferId>,
    layouts: &[BufferLayout],
    field_buffers: &[String],
    z_halo: usize,
) -> Result<LinkedComm, ExecError> {
    if comm.num_chunks < 1 || comm.chunk_size < 0 {
        return Err(err(format!(
            "invalid exchange: {} chunks of {} elements",
            comm.num_chunks, comm.chunk_size
        )));
    }
    let num_chunks = comm.num_chunks as usize;
    let chunk_size = comm.chunk_size as usize;
    let col_len = num_chunks * chunk_size;

    let recv = *by_name.get("recv_buffer").ok_or_else(|| err("missing recv_buffer"))?;
    let recv_layout = &layouts[recv.0 as usize];
    if comm.slots.len() * chunk_size > recv_layout.len {
        return Err(err(format!(
            "receive buffer overflow: {} slots of {chunk_size} elements exceed recv_buffer \
             (len {})",
            comm.slots.len(),
            recv_layout.len
        )));
    }

    let mut snap_fields = Vec::new();
    let mut snap_of: HashMap<&str, usize> = HashMap::new();
    let mut slots = Vec::with_capacity(comm.slots.len());
    for spec in &comm.slots {
        // Slots may only transmit declared field buffers — a slot naming
        // any other buffer (or an unknown one) is a malformed program.
        if !field_buffers.iter().any(|f| f == &spec.field) {
            return Err(err(format!("unknown field buffer {}", spec.field)));
        }
        let id = *by_name
            .get(spec.field.as_str())
            .ok_or_else(|| err(format!("unknown field buffer {}", spec.field)))?;
        let layout = &layouts[id.0 as usize];
        let snap_index = match snap_of.get(spec.field.as_str()) {
            Some(&i) => i,
            None => {
                let start = z_halo.min(layout.len);
                snap_fields.push(SnapField {
                    src_base: layout.base + start,
                    copy_len: col_len.min(layout.len - start),
                });
                snap_of.insert(&spec.field, snap_fields.len() - 1);
                snap_fields.len() - 1
            }
        };
        slots.push(LinkedSlot { snap_index, dx: spec.dx, dy: spec.dy });
    }

    Ok(LinkedComm {
        num_chunks,
        chunk_size,
        recv_base: recv_layout.base,
        slots,
        snap_fields,
        col_len,
    })
}

fn link_block(
    instrs: &[Instr],
    by_name: &HashMap<&str, BufferId>,
    layouts: &[BufferLayout],
    max_dyn: usize,
    max_view_len: &mut usize,
) -> Result<Vec<LinkedInstr>, ExecError> {
    let view = |v: &ViewRef| link_view(v, by_name, layouts, max_dyn);
    let mut out = Vec::with_capacity(instrs.len());
    for instr in instrs {
        let linked = match instr {
            Instr::Movs { dest, src } => {
                let dest = view(dest)?;
                match src {
                    Src::Scalar(value) => LinkedInstr::Fill { dest, value: *value },
                    Src::View(src) => {
                        let src = view(src)?;
                        require_same_len(dest, &[src])?;
                        LinkedInstr::Copy { dest, src }
                    }
                }
            }
            Instr::Binary { kind, dest, a, b } => {
                let (dest, a, b) = (view(dest)?, view(a)?, view(b)?);
                require_same_len(dest, &[a, b])?;
                LinkedInstr::Binary { kind: *kind, dest, a, b }
            }
            Instr::Macs { dest, acc, src, coeff } => {
                let (dest, acc, src) = (view(dest)?, view(acc)?, view(src)?);
                require_same_len(dest, &[acc, src])?;
                LinkedInstr::Macs { dest, acc, src, coeff: *coeff }
            }
        };
        *max_view_len = (*max_view_len).max(instr_elements(&linked));
        out.push(linked);
    }
    Ok(out)
}

fn require_same_len(dest: LinkedView, srcs: &[LinkedView]) -> Result<(), ExecError> {
    for src in srcs {
        if src.len != dest.len {
            return Err(err(format!(
                "operand length mismatch: destination has {} elements, source has {}",
                dest.len, src.len
            )));
        }
    }
    Ok(())
}

fn link_view(
    view: &ViewRef,
    by_name: &HashMap<&str, BufferId>,
    layouts: &[BufferLayout],
    max_dyn: usize,
) -> Result<LinkedView, ExecError> {
    let id = *by_name
        .get(view.buffer.as_str())
        .ok_or_else(|| err(format!("unknown buffer {}", view.buffer)))?;
    let layout = &layouts[id.0 as usize];
    if view.offset < 0 || view.len < 0 {
        return Err(err(format!(
            "negative view [offset {}, len {}] of buffer {}",
            view.offset, view.len, view.buffer
        )));
    }
    let (offset, len) = (view.offset as usize, view.len as usize);
    let reach = offset + if view.dynamic { max_dyn } else { 0 } + len;
    if reach > layout.len {
        return Err(err(format!(
            "view [{offset}, {reach}) out of bounds for buffer {} (len {})",
            view.buffer, layout.len
        )));
    }
    Ok(LinkedView { base: (layout.base + offset) as u32, len: len as u32, dynamic: view.dynamic })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{BufferDecl, LoadedKernel};

    fn program_with(buffers: Vec<BufferDecl>, pre: Vec<Instr>) -> LoadedProgram {
        LoadedProgram {
            width: 2,
            height: 2,
            z_dim: 4,
            z_halo: 1,
            timesteps: 1,
            buffers,
            field_buffers: vec!["a".into()],
            kernels: vec![LoadedKernel {
                name: "seq_kernel0".into(),
                pre,
                comm: None,
                recv: Vec::new(),
                done: Vec::new(),
            }],
        }
    }

    fn decl(name: &str, len: i64) -> BufferDecl {
        BufferDecl { name: name.into(), len, init: 0.0 }
    }

    fn view(buffer: &str, offset: i64, len: i64) -> ViewRef {
        ViewRef { buffer: buffer.into(), offset, dynamic: false, len }
    }

    #[test]
    fn links_a_minimal_program() {
        let program = program_with(
            vec![decl("a", 6), decl("b", 6)],
            vec![Instr::Movs { dest: view("b", 0, 6), src: Src::View(view("a", 0, 6)) }],
        );
        let linked = link_program(&program).unwrap();
        assert_eq!(linked.arena_len, 12);
        assert_eq!(linked.layouts[1].base, 6, "buffers are laid out back to back");
        assert_eq!(linked.field_ids, vec![BufferId(0)]);
        assert_eq!(linked.max_view_len, 6);
        assert_eq!(linked.kernels[0].work_per_pe, 6);
    }

    #[test]
    fn rejects_out_of_bounds_views() {
        let program = program_with(
            vec![decl("a", 6), decl("b", 6)],
            // Spills past the end of `a` into `b`'s arena region.
            vec![Instr::Movs { dest: view("a", 4, 4), src: Src::Scalar(1.0) }],
        );
        let message = link_program(&program).unwrap_err().message;
        assert!(message.contains("out of bounds"), "got: {message}");
    }

    #[test]
    fn rejects_unknown_buffers_and_fields() {
        let program = program_with(
            vec![decl("a", 6)],
            vec![Instr::Movs { dest: view("ghost", 0, 1), src: Src::Scalar(0.0) }],
        );
        assert!(link_program(&program).unwrap_err().message.contains("unknown buffer ghost"));

        let mut missing_field = program_with(vec![decl("a", 6)], Vec::new());
        missing_field.field_buffers = vec!["missing".into()];
        let message = link_program(&missing_field).unwrap_err().message;
        assert!(message.contains("unknown field buffer missing"), "got: {message}");
    }

    #[test]
    fn rejects_overlapping_layouts() {
        // Duplicate declarations would alias one arena region.
        let program = program_with(vec![decl("a", 6), decl("a", 6)], Vec::new());
        assert!(link_program(&program).unwrap_err().message.contains("duplicate buffer"));

        // The defensive layout validator catches overlap and overflow in
        // hand-built layouts.
        let overlapping = vec![
            BufferLayout { name: "a".into(), base: 0, len: 6, init: 0.0 },
            BufferLayout { name: "b".into(), base: 4, len: 6, init: 0.0 },
        ];
        assert!(validate_layouts(&overlapping, 10).unwrap_err().message.contains("overlaps"));
        let overflowing = vec![BufferLayout { name: "a".into(), base: 0, len: 8, init: 0.0 }];
        assert!(validate_layouts(&overflowing, 6).unwrap_err().message.contains("beyond"));
    }

    #[test]
    fn rejects_short_field_buffers_and_length_mismatches() {
        // Field buffer shorter than halo + interior.
        let short = program_with(vec![decl("a", 3)], Vec::new());
        assert!(link_program(&short).unwrap_err().message.contains("shorter than"));

        let mismatch = program_with(
            vec![decl("a", 6), decl("b", 6)],
            vec![Instr::Binary {
                kind: BinKind::Add,
                dest: view("b", 0, 4),
                a: view("a", 0, 4),
                b: view("a", 0, 3),
            }],
        );
        assert!(link_program(&mismatch).unwrap_err().message.contains("length mismatch"));
    }

    #[test]
    fn rejects_slots_over_non_field_buffers() {
        use crate::loader::SlotSpec;
        let mut program = program_with(vec![decl("a", 6), decl("recv_buffer", 8)], Vec::new());
        program.kernels[0].comm = Some(CommSpec {
            num_chunks: 1,
            chunk_size: 4,
            // recv_buffer exists but is not a declared field buffer.
            slots: vec![SlotSpec { field: "recv_buffer".into(), dx: 1, dy: 0 }],
            fields: vec!["a".into()],
            pattern: 1,
        });
        let message = link_program(&program).unwrap_err().message;
        assert!(message.contains("unknown field buffer recv_buffer"), "got: {message}");
    }

    /// Table-driven negative-path coverage: every rejection class of the
    /// linker must produce a typed [`ExecError`] whose message names the
    /// problem — no panics, no silent acceptance.  Classes marked (new)
    /// had no test before this table existed.
    #[test]
    fn every_rejection_class_is_a_typed_error() {
        use crate::loader::SlotSpec;
        type Mutate = fn(&mut LoadedProgram);
        let cases: [(&str, Mutate, &str); 9] = [
            ("zero-width PE grid (new)", |p| p.width = 0, "invalid PE grid"),
            ("negative grid height (new)", |p| p.height = -3, "invalid PE grid"),
            ("negative z dimension (new)", |p| p.z_dim = -1, "negative z_dim"),
            ("negative z halo (new)", |p| p.z_halo = -2, "negative z_dim or z_halo"),
            ("negative buffer length (new)", |p| p.buffers[0].len = -6, "negative length"),
            (
                "negative view offset (new)",
                |p| {
                    p.kernels[0].pre = vec![Instr::Movs {
                        dest: ViewRef { buffer: "a".into(), offset: -1, dynamic: false, len: 2 },
                        src: Src::Scalar(0.0),
                    }];
                },
                "negative view",
            ),
            (
                "zero-chunk exchange (new)",
                |p| {
                    p.buffers.push(BufferDecl { name: "recv_buffer".into(), len: 8, init: 0.0 });
                    p.kernels[0].comm = Some(CommSpec {
                        num_chunks: 0,
                        chunk_size: 4,
                        slots: vec![],
                        fields: vec!["a".into()],
                        pattern: 1,
                    });
                },
                "invalid exchange",
            ),
            (
                "receive buffer overflow (new)",
                |p| {
                    p.buffers.push(BufferDecl { name: "recv_buffer".into(), len: 4, init: 0.0 });
                    p.kernels[0].comm = Some(CommSpec {
                        num_chunks: 1,
                        chunk_size: 4,
                        slots: vec![
                            SlotSpec { field: "a".into(), dx: 1, dy: 0 },
                            SlotSpec { field: "a".into(), dx: -1, dy: 0 },
                        ],
                        fields: vec!["a".into()],
                        pattern: 1,
                    });
                },
                "receive buffer overflow",
            ),
            (
                "missing recv_buffer (new)",
                |p| {
                    p.kernels[0].comm = Some(CommSpec {
                        num_chunks: 1,
                        chunk_size: 4,
                        slots: vec![SlotSpec { field: "a".into(), dx: 1, dy: 0 }],
                        fields: vec!["a".into()],
                        pattern: 1,
                    });
                },
                "missing recv_buffer",
            ),
        ];
        for (label, mutate, needle) in cases {
            let mut program = program_with(vec![decl("a", 6)], Vec::new());
            mutate(&mut program);
            let error = link_program(&program)
                .expect_err(&format!("{label}: malformed program was accepted"));
            assert!(
                error.message.contains(needle),
                "{label}: diagnostic {:?} does not mention {needle:?}",
                error.message
            );
        }
    }

    #[test]
    fn dynamic_views_are_checked_at_the_last_chunk() {
        use crate::loader::SlotSpec;
        let mut program = program_with(vec![decl("a", 6), decl("recv_buffer", 8)], Vec::new());
        program.z_halo = 0;
        program.kernels[0].comm = Some(CommSpec {
            num_chunks: 2,
            chunk_size: 2,
            slots: vec![SlotSpec { field: "a".into(), dx: 1, dy: 0 }],
            fields: vec!["a".into()],
            pattern: 1,
        });
        // Reaches a[3 + 2 + 2) = a[..7) on the last chunk: out of bounds.
        program.kernels[0].recv = vec![Instr::Movs {
            dest: ViewRef { buffer: "a".into(), offset: 3, dynamic: true, len: 2 },
            src: Src::Scalar(0.0),
        }];
        let message = link_program(&program).unwrap_err().message;
        assert!(message.contains("out of bounds"), "got: {message}");

        // One element earlier fits exactly.
        program.kernels[0].recv = vec![Instr::Movs {
            dest: ViewRef { buffer: "a".into(), offset: 2, dynamic: true, len: 2 },
            src: Src::Scalar(0.0),
        }];
        let linked = link_program(&program).unwrap();
        let comm = linked.kernels[0].comm.as_ref().unwrap();
        assert_eq!(comm.col_len, 4);
        assert_eq!(comm.snap_fields.len(), 1);
        assert_eq!(comm.snap_fields[0].copy_len, 4);
    }
}
