//! Copy-on-write checkpoints and ABFT-style integrity checksums.
//!
//! A [`Checkpoint`] is a bitwise-exact snapshot of the per-PE arenas plus
//! the step counter, stored as shared pages: saving a new checkpoint
//! against its predecessor reuses (via `Arc`) every 4096-element page
//! whose bits did not change, so the steady-state cost of a cadence of
//! checkpoints is proportional to the write set, not the grid.
//!
//! Corruption is detected ABFT-style: [`row_checksums`] folds each
//! PE-grid row of the arenas into a 64-bit checksum (an 8-lane XOR-rotate
//! accumulator chosen so the compiler can vectorize it).  A single
//! flipped bit anywhere in a row changes its checksum.  With
//! [`RecoveryOptions::verify`] on, the engine verifies the stored sums at
//! every step boundary and recovers by rollback-and-replay (see
//! [`crate::exec::WseGridSim::enable_recovery`]) instead of silently
//! diverging.
//!
//! # Cost model
//!
//! Per-step verification is honest about its price: sums can only be
//! compared against the exact state version they were taken of, so every
//! step pays two full passes over the arenas (refresh after the sweep,
//! verify before the next) — memory-bound work comparable to the stencil
//! sweep itself on the fused engine.  It is the *fault-campaign and
//! forensics mode*, the configuration the conformance `--faults` sweep
//! runs, not the production default.  The default posture keeps recovery
//! overhead under 5% of `jacobian_medium` throughput the way production
//! HPC systems do: periodic copy-on-write checkpoints on a long cadence
//! (the Young/Daly optimum for realistic MTBFs is thousands of steps at
//! these step times; the default is a conservative 256), halo delivery
//! checksums inside capturing kernels, and the worker-band
//! watchdog/panic capture — with whole-arena verification off.  Faulty
//! state is then caught by the typed failure paths (band panics,
//! timeouts, delivery mismatches) and replayed from the last checkpoint.
//!
//! Environment toggles (all optional, parsed via [`crate::env`]):
//! `WSE_SIM_CHECKPOINT_EVERY` (steps between checkpoints, default 256),
//! `WSE_SIM_WATCHDOG_MS` (worker-band watchdog deadline, default
//! 60000), `WSE_SIM_MAX_ROLLBACKS` (rollback budget before the engine
//! gives up with a typed error, default 32).

use std::sync::Arc;

use crate::env::env_value;
use crate::fault::FaultCounts;

/// Elements per copy-on-write page.  4096 f32s = 16 KiB: small enough
/// that a localized write set shares most pages, large enough that the
/// per-page bookkeeping stays negligible.
const PAGE: usize = 4096;

/// A bitwise-exact snapshot of the engine's mutable state: the per-PE
/// arenas (as shared copy-on-write pages) plus the step counter.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pages: Vec<Arc<[f32]>>,
    len: usize,
    step: i64,
}

impl Checkpoint {
    /// Captures `arenas` at `step`.  When `prev` is given, every page
    /// whose bits match the previous checkpoint is shared instead of
    /// copied (copy-on-write across the checkpoint chain).
    pub fn capture(arenas: &[f32], step: i64, prev: Option<&Checkpoint>) -> Self {
        let reusable = prev.filter(|p| p.len == arenas.len());
        let mut pages = Vec::with_capacity(arenas.len().div_ceil(PAGE));
        for (index, chunk) in arenas.chunks(PAGE).enumerate() {
            let shared = reusable.and_then(|p| p.pages.get(index)).filter(|page| {
                page.len() == chunk.len()
                    && page.iter().zip(chunk).all(|(a, b)| a.to_bits() == b.to_bits())
            });
            match shared {
                Some(page) => pages.push(Arc::clone(page)),
                None => pages.push(Arc::from(chunk)),
            }
        }
        Checkpoint { pages, len: arenas.len(), step }
    }

    /// Restores the captured arena contents into `arenas`, which must
    /// have the length the checkpoint was captured from.
    pub fn restore_into(&self, arenas: &mut [f32]) {
        assert_eq!(arenas.len(), self.len, "checkpoint/arena length mismatch");
        for (chunk, page) in arenas.chunks_mut(PAGE).zip(&self.pages) {
            chunk.copy_from_slice(page);
        }
    }

    /// The step counter at capture time: the number of completed steps.
    pub fn step(&self) -> i64 {
        self.step
    }

    /// Arena elements captured.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a checkpoint of an empty arena.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many of this checkpoint's pages are shared (pointer-identical)
    /// with `prev` — the copy-on-write evidence used by tests and stats.
    pub fn pages_shared_with(&self, prev: &Checkpoint) -> usize {
        self.pages.iter().zip(&prev.pages).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Total page count.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Configuration of the detect-and-rollback recovery loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Steps between checkpoints (a checkpoint is always taken at step 0,
    /// before any sweep runs).  The default of 256 is deliberately long:
    /// a capture streams the whole arena, so short cadences show up
    /// directly in throughput (see the module-level cost model).
    pub checkpoint_every: i64,
    /// Verify per-row arena checksums at every step boundary — the
    /// fault-campaign mode, costing two full arena passes per step (see
    /// the module-level cost model; off by default).  With this off, only
    /// typed execution failures (band panics, watchdog timeouts, delivery
    /// checksum mismatches) trigger rollback.  Engines with a seeded
    /// [`crate::fault::FaultPlan`] but no explicit recovery configuration
    /// turn it on automatically — injecting faults without verification
    /// would be asking for the silent divergence this machinery exists to
    /// prevent.
    pub verify: bool,
    /// Rollback budget: after this many rollbacks the engine stops with
    /// [`crate::exec::ExecErrorKind::RecoveryFailed`] instead of looping
    /// forever on a persistent (non-transient) fault.
    pub max_rollbacks: u32,
    /// Worker-band watchdog deadline in milliseconds: a parallel sweep
    /// whose bands have not all reported within the deadline returns
    /// [`crate::exec::ExecErrorKind::Timeout`] instead of hanging the
    /// barrier forever.
    pub watchdog_ms: u64,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            checkpoint_every: 256,
            verify: false,
            max_rollbacks: 32,
            watchdog_ms: 60_000,
        }
    }
}

impl RecoveryOptions {
    /// Defaults overridden by `WSE_SIM_CHECKPOINT_EVERY`,
    /// `WSE_SIM_WATCHDOG_MS`, and `WSE_SIM_MAX_ROLLBACKS` where set.
    pub fn from_env() -> Self {
        let mut options = RecoveryOptions::default();
        if let Some(every) = env_value::<i64>("WSE_SIM_CHECKPOINT_EVERY") {
            options.checkpoint_every = every.max(1);
        }
        if let Some(ms) = env_value::<u64>("WSE_SIM_WATCHDOG_MS") {
            options.watchdog_ms = ms.max(1);
        }
        if let Some(max) = env_value::<u32>("WSE_SIM_MAX_ROLLBACKS") {
            options.max_rollbacks = max;
        }
        options
    }

    /// The watchdog deadline as a [`std::time::Duration`].
    pub fn watchdog(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.watchdog_ms.max(1))
    }
}

/// What the recovery machinery did during a run — the observable evidence
/// that checksums, checkpoints, and rollbacks actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoints captured.
    pub checkpoints_saved: u64,
    /// Pages shared with the previous checkpoint (copy-on-write hits).
    pub checkpoint_pages_shared: u64,
    /// Total pages across all captured checkpoints.
    pub checkpoint_pages_total: u64,
    /// Rollbacks performed (each restores the latest checkpoint).
    pub rollbacks: u64,
    /// Steps re-executed due to rollback (lost work, in steps).
    pub steps_replayed: u64,
    /// Step boundaries where a row checksum mismatched the stored value.
    pub checksum_failures: u64,
    /// Halo delivery checksum mismatches detected inside kernels.
    pub delivery_failures: u64,
    /// Worker-band panics captured and converted to typed errors.
    pub band_panics: u64,
    /// Worker-band watchdog timeouts.
    pub band_timeouts: u64,
    /// Fault events injected by the active [`crate::fault::FaultPlan`].
    pub faults: FaultCounts,
}

/// Folds `data` into a 64-bit checksum that changes under any single-bit
/// flip.  Eight independent XOR-rotate lanes (one per element of an
/// 8-wide block, rotation stepped per block) keep the loop free of
/// cross-iteration dependencies so the compiler can vectorize it; the
/// lanes are mixed FNV-style at the end.
pub fn checksum_f32(data: &[f32]) -> u64 {
    let mut lanes = [0u64; 8];
    let mut chunks = data.chunks_exact(8);
    let mut block = 0u32;
    for chunk in &mut chunks {
        for (j, v) in chunk.iter().enumerate() {
            lanes[j] ^= (v.to_bits() as u64).rotate_left(block & 63);
        }
        block = block.wrapping_add(1);
    }
    for (j, v) in chunks.remainder().iter().enumerate() {
        lanes[j] ^= (v.to_bits() as u64).rotate_left(block & 63);
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (j, lane) in lanes.iter().enumerate() {
        h ^= lane.rotate_left((j * 8) as u32);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-PE-grid-row checksums of the arenas: one 64-bit sum per
/// `row_stride` elements (the arenas of one row of PEs), ABFT-style.  A
/// mismatch localizes corruption to a row band.  A `row_stride` of zero
/// yields a single whole-arena sum.
pub fn row_checksums(arenas: &[f32], row_stride: usize) -> Vec<u64> {
    if row_stride == 0 {
        return vec![checksum_f32(arenas)];
    }
    arenas.chunks(row_stride).map(checksum_f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_restore_are_bitwise_exact() {
        let arenas: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let ck = Checkpoint::capture(&arenas, 7, None);
        assert_eq!(ck.step(), 7);
        let mut out = vec![0.0f32; arenas.len()];
        ck.restore_into(&mut out);
        for (a, b) in arenas.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn unchanged_pages_are_shared_not_copied() {
        let mut arenas: Vec<f32> = vec![1.5; PAGE * 4];
        let first = Checkpoint::capture(&arenas, 0, None);
        // Touch one element in the last page: three pages must be shared.
        arenas[PAGE * 3 + 17] = 2.5;
        let second = Checkpoint::capture(&arenas, 8, Some(&first));
        assert_eq!(second.pages_shared_with(&first), 3);
        assert_eq!(second.page_count(), 4);
        // And the shared-page checkpoint still restores the new bits.
        let mut out = vec![0.0f32; arenas.len()];
        second.restore_into(&mut out);
        assert_eq!(out[PAGE * 3 + 17], 2.5);
        assert_eq!(out[0], 1.5);
    }

    #[test]
    fn negative_zero_is_not_shared_with_positive_zero() {
        let arenas = vec![0.0f32; 8];
        let first = Checkpoint::capture(&arenas, 0, None);
        let negated = vec![-0.0f32; 8];
        let second = Checkpoint::capture(&negated, 1, Some(&first));
        assert_eq!(second.pages_shared_with(&first), 0, "sharing must compare bits, not values");
        let mut out = vec![1.0f32; 8];
        second.restore_into(&mut out);
        assert!(out.iter().all(|v| v.to_bits() == (-0.0f32).to_bits()));
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let clean = checksum_f32(&data);
        for offset in [0usize, 1, 7, 8, 9, 63, 99] {
            for bit in [0u32, 11, 22, 31] {
                let mut corrupt = data.clone();
                corrupt[offset] = f32::from_bits(corrupt[offset].to_bits() ^ (1 << bit));
                assert_ne!(
                    checksum_f32(&corrupt),
                    clean,
                    "flip at elem {offset} bit {bit} must change the checksum"
                );
            }
        }
    }

    #[test]
    fn row_checksums_localize_corruption() {
        let mut arenas: Vec<f32> = (0..400).map(|i| i as f32).collect();
        let clean = row_checksums(&arenas, 100);
        assert_eq!(clean.len(), 4);
        arenas[250] = f32::from_bits(arenas[250].to_bits() ^ 1);
        let dirty = row_checksums(&arenas, 100);
        assert_eq!(clean[0], dirty[0]);
        assert_eq!(clean[1], dirty[1]);
        assert_ne!(clean[2], dirty[2]);
        assert_eq!(clean[3], dirty[3]);
    }

    // `RecoveryOptions::from_env` is deliberately untested here: the test
    // binary is one shared process, and toggling the real WSE_SIM_*
    // variables would race with every other test that constructs an
    // engine (the same rule env.rs's own tests follow).
}
