//! Loader: turns the final `csl` dialect program module into an executable
//! [`LoadedProgram`] for the simulator.
//!
//! The loader is the simulator's "SDK compiler": it walks the generated
//! `csl.module` (tasks, functions, DSD builtins, the communicate call) and
//! produces per-PE instruction lists plus the communication specification.
//!
//! The [`LoadedProgram`] it produces is the *portable* form of a program:
//! buffers and views are still addressed by name, which keeps the
//! structure easy to inspect, diff, and hand-construct in tests.  It is
//! not what the simulator executes.  Execution is two-phase: the linker
//! ([`crate::link`]) interns every name into a dense id, lays all of a
//! PE's buffers out in one flat arena, resolves each [`Instr`] into an
//! offset-based instruction, and validates all bounds; the engine
//! ([`crate::exec`]) then runs that linked stream in place with no string
//! lookups or per-instruction allocation.

use std::collections::HashMap;

use wse_csl::csl;
use wse_dialects::arith;
use wse_ir::{Attribute, BlockId, IrContext, OpId, ValueId};

/// A view into a named PE-local buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewRef {
    /// Buffer symbol (e.g. `"accumulator"`).
    pub buffer: String,
    /// Static element offset.
    pub offset: i64,
    /// Whether the chunk offset (the receive task's argument) is added at
    /// runtime.
    pub dynamic: bool,
    /// Number of elements.
    pub len: i64,
}

/// A source operand of a DSD move.
#[derive(Debug, Clone, PartialEq)]
pub enum Src {
    /// Another buffer view.
    View(ViewRef),
    /// A scalar immediate.
    Scalar(f32),
}

/// Elementwise binary operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `dest[i] = a[i] + b[i]`.
    Add,
    /// `dest[i] = a[i] - b[i]`.
    Sub,
    /// `dest[i] = a[i] * b[i]`.
    Mul,
}

/// One DSD builtin instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `@fmovs(dest, src)`.
    Movs {
        /// Destination view.
        dest: ViewRef,
        /// Source view or scalar.
        src: Src,
    },
    /// `@fadds` / `@fsubs` / `@fmuls`.
    Binary {
        /// Operation kind.
        kind: BinKind,
        /// Destination view.
        dest: ViewRef,
        /// First source.
        a: ViewRef,
        /// Second source.
        b: ViewRef,
    },
    /// `@fmacs(dest, acc, src, coeff)`: `dest[i] = acc[i] + src[i] * coeff`.
    Macs {
        /// Destination view.
        dest: ViewRef,
        /// Accumulator view.
        acc: ViewRef,
        /// Source view.
        src: ViewRef,
        /// Scalar coefficient.
        coeff: f32,
    },
}

impl Instr {
    /// Number of elements processed (used by the cycle model).
    pub fn elements(&self) -> i64 {
        match self {
            Instr::Movs { dest, .. } => dest.len,
            Instr::Binary { dest, .. } => dest.len,
            Instr::Macs { dest, .. } => dest.len,
        }
    }

    /// True for fused multiply-accumulate instructions.
    pub fn is_fmac(&self) -> bool {
        matches!(self, Instr::Macs { .. })
    }
}

/// One halo-exchange slot: which field arrives from which neighbor.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSpec {
    /// Field buffer name.
    pub field: String,
    /// Neighbor offset in x.
    pub dx: i64,
    /// Neighbor offset in y.
    pub dy: i64,
}

/// The communication performed by one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CommSpec {
    /// Number of chunks.
    pub num_chunks: i64,
    /// Chunk size in elements.
    pub chunk_size: i64,
    /// Receive slots in buffer order.
    pub slots: Vec<SlotSpec>,
    /// Field buffers whose columns are transmitted.
    pub fields: Vec<String>,
    /// Halo width (pattern radius) of the exchange.
    pub pattern: i64,
}

/// One `seq_kernel` with its callbacks.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedKernel {
    /// Kernel name (`seq_kernel0`, ...).
    pub name: String,
    /// Instructions of the kernel body itself.
    pub pre: Vec<Instr>,
    /// The halo exchange, if any.
    pub comm: Option<CommSpec>,
    /// Receive-chunk callback instructions (run once per chunk).
    pub recv: Vec<Instr>,
    /// Done-exchange callback instructions (run once).
    pub done: Vec<Instr>,
}

/// A PE-local buffer declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDecl {
    /// Buffer symbol.
    pub name: String,
    /// Length in `f32` elements.
    pub len: i64,
    /// Initial fill value.
    pub init: f32,
}

/// The executable form of a lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedProgram {
    /// PE-grid extent in x.
    pub width: i64,
    /// PE-grid extent in y.
    pub height: i64,
    /// Interior column length per PE.
    pub z_dim: i64,
    /// Halo cells at each end of a column buffer.
    pub z_halo: i64,
    /// Number of timesteps.
    pub timesteps: i64,
    /// All PE-local buffers.
    pub buffers: Vec<BufferDecl>,
    /// Field buffer names in field order.
    pub field_buffers: Vec<String>,
    /// Field buffers that are compiler-internal double buffers (introduced
    /// by dependence-aware inlining).  They are allocated, exchanged, and
    /// executed like any other field, but excluded from observable
    /// [`GridState`](crate::reference::GridState) extraction and from the
    /// link-time optimizer's always-live set.
    pub internal_fields: Vec<String>,
    /// Kernels in execution order.
    pub kernels: Vec<LoadedKernel>,
}

impl LoadedProgram {
    /// Bytes of PE-local memory used by the declared buffers.
    pub fn bytes_per_pe(&self) -> u64 {
        self.buffers.iter().map(|b| b.len as u64 * 4).sum()
    }

    /// Total number of `@fmacs` instructions across all kernels.
    pub fn fmac_count(&self) -> usize {
        self.kernels
            .iter()
            .flat_map(|k| k.pre.iter().chain(&k.recv).chain(&k.done))
            .filter(|i| i.is_fmac())
            .count()
    }
}

/// Error produced while loading a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "load error: {}", self.message)
    }
}

impl std::error::Error for LoadError {}

fn err(message: impl Into<String>) -> LoadError {
    LoadError { message: message.into() }
}

/// Loads the final lowered module into an executable program.
pub fn load_program(ctx: &IrContext, module: OpId) -> Result<LoadedProgram, LoadError> {
    let program_module = ctx
        .walk_named(module, csl::MODULE)
        .into_iter()
        .find(|&m| csl::module_kind(ctx, m) == Some(csl::ModuleKind::Program))
        .ok_or_else(|| err("no program csl.module found"))?;
    let body = csl::body_block(ctx, program_module).ok_or_else(|| err("program module empty"))?;

    let width = ctx.attr_int(program_module, "width").unwrap_or(1);
    let height = ctx.attr_int(program_module, "height").unwrap_or(1);
    let z_dim = ctx.attr_int(program_module, "z_dim").unwrap_or(1);
    let z_halo = ctx.attr_int(program_module, "z_halo").unwrap_or(0);
    let timesteps = ctx.attr_int(program_module, "timesteps").unwrap_or(1);
    // Set by the actor lowering for double-buffer fields introduced by
    // `stencil-inlining` (see `LoadedProgram::internal_fields`).
    let internal_fields: Vec<String> = ctx
        .attr(program_module, "internal_fields")
        .and_then(Attribute::as_array)
        .map(|a| a.iter().filter_map(|x| x.as_str().map(str::to_string)).collect())
        .unwrap_or_default();

    // Buffers and the value → buffer-name map.
    let mut buffers = Vec::new();
    let mut buffer_of: HashMap<ValueId, String> = HashMap::new();
    let mut field_buffers = Vec::new();
    for &op in ctx.block_ops(body) {
        match ctx.op_name(op) {
            csl::ZEROS | csl::CONSTANTS => {
                let name = csl::symbol_name(ctx, op).unwrap_or("buf").to_string();
                let len = ctx.value_type(ctx.result(op, 0)).shape().map(|s| s[0]).unwrap_or(1);
                let init = if ctx.op_name(op) == csl::CONSTANTS {
                    ctx.attr(op, "value").and_then(Attribute::as_float).unwrap_or(0.0) as f32
                } else {
                    0.0
                };
                buffers.push(BufferDecl { name: name.clone(), len, init });
                buffer_of.insert(ctx.result(op, 0), name);
            }
            csl::EXPORT if ctx.attr_str(op, "kind") == Some("buffer") => {
                if let Some(sym) = ctx.attr_str(op, "symbol") {
                    field_buffers.push(sym.to_string());
                }
            }
            _ => {}
        }
    }

    // Kernels.
    let mut kernels = Vec::new();
    for k in 0.. {
        let name = format!("seq_kernel{k}");
        let Some(func) = csl::find_callable(ctx, program_module, &name) else { break };
        let func_body = csl::body_block(ctx, func).ok_or_else(|| err("kernel has no body"))?;
        let (pre, comm_call) = parse_block(ctx, func_body, &buffer_of, None)?;
        let (comm, recv, done) = match comm_call {
            Some(call) => {
                let callbacks = csl::callbacks(ctx, call);
                if callbacks.len() != 2 {
                    return Err(err("communicate call must have two callbacks"));
                }
                let recv_task = csl::find_callable(ctx, program_module, &callbacks[0])
                    .ok_or_else(|| err(format!("missing task {}", callbacks[0])))?;
                let done_task = csl::find_callable(ctx, program_module, &callbacks[1])
                    .ok_or_else(|| err(format!("missing task {}", callbacks[1])))?;
                let recv_body =
                    csl::body_block(ctx, recv_task).ok_or_else(|| err("recv task empty"))?;
                let done_body =
                    csl::body_block(ctx, done_task).ok_or_else(|| err("done task empty"))?;
                let chunk_arg = ctx.block_args(recv_body).first().copied();
                let (recv, _) = parse_block(ctx, recv_body, &buffer_of, chunk_arg)?;
                let (done, _) = parse_block(ctx, done_body, &buffer_of, None)?;
                let slots = parse_slots(ctx, call, &field_buffers)?;
                let pattern = slots.iter().map(|s| s.dx.abs().max(s.dy.abs())).max().unwrap_or(1);
                let comm = CommSpec {
                    num_chunks: ctx.attr_int(call, "num_chunks").unwrap_or(1),
                    chunk_size: ctx.attr_int(call, "chunk_size").unwrap_or(z_dim),
                    fields: ctx
                        .attr(call, "fields")
                        .and_then(Attribute::as_index_array)
                        .map(|idx| {
                            idx.iter()
                                .filter_map(|&i| field_buffers.get(i as usize).cloned())
                                .collect()
                        })
                        .unwrap_or_default(),
                    slots,
                    pattern,
                };
                (Some(comm), recv, done)
            }
            None => (None, Vec::new(), Vec::new()),
        };
        kernels.push(LoadedKernel { name, pre, comm, recv, done });
    }
    if kernels.is_empty() {
        return Err(err("program has no seq_kernel functions"));
    }

    Ok(LoadedProgram {
        width,
        height,
        z_dim,
        z_halo,
        timesteps,
        buffers,
        field_buffers,
        internal_fields,
        kernels,
    })
}

fn parse_slots(
    ctx: &IrContext,
    call: OpId,
    field_buffers: &[String],
) -> Result<Vec<SlotSpec>, LoadError> {
    let neighbors = ctx
        .attr(call, "slot_neighbors")
        .and_then(Attribute::as_array)
        .ok_or_else(|| err("communicate call is missing slot_neighbors"))?;
    let slot_fields = ctx
        .attr(call, "slot_fields")
        .and_then(Attribute::as_index_array)
        .ok_or_else(|| err("communicate call is missing slot_fields"))?;
    let mut slots = Vec::new();
    for (i, n) in neighbors.iter().enumerate() {
        let offsets = n.as_index_array().ok_or_else(|| err("bad slot neighbor"))?;
        let field_index = slot_fields.get(i).copied().unwrap_or(0) as usize;
        slots.push(SlotSpec {
            field: field_buffers
                .get(field_index)
                .cloned()
                .ok_or_else(|| err("slot references an unknown field"))?,
            dx: offsets.first().copied().unwrap_or(0),
            dy: offsets.get(1).copied().unwrap_or(0),
        });
    }
    Ok(slots)
}

#[derive(Debug, Clone)]
enum LocalValue {
    Dsd(ViewRef),
    Scalar(f32),
}

/// Parses the DSD instructions of a block; returns the instructions and the
/// communicate call (if any).
fn parse_block(
    ctx: &IrContext,
    block: BlockId,
    buffer_of: &HashMap<ValueId, String>,
    chunk_arg: Option<ValueId>,
) -> Result<(Vec<Instr>, Option<OpId>), LoadError> {
    let mut values: HashMap<ValueId, LocalValue> = HashMap::new();
    let mut instrs = Vec::new();
    let mut comm_call = None;

    let view_of =
        |values: &HashMap<ValueId, LocalValue>, v: ValueId| -> Result<ViewRef, LoadError> {
            match values.get(&v) {
                Some(LocalValue::Dsd(view)) => Ok(view.clone()),
                _ => Err(err("operand is not a DSD view")),
            }
        };

    for &op in ctx.block_ops(block) {
        match ctx.op_name(op) {
            csl::GET_MEM_DSD => {
                let root = ctx.operand(op, 0);
                let buffer = buffer_of
                    .get(&root)
                    .cloned()
                    .ok_or_else(|| err("DSD over an unknown buffer"))?;
                let dynamic = ctx
                    .operands(op)
                    .get(1)
                    .map(|second| Some(*second) == chunk_arg || chunk_arg.is_some())
                    .unwrap_or(false);
                values.insert(
                    ctx.result(op, 0),
                    LocalValue::Dsd(ViewRef {
                        buffer,
                        offset: ctx.attr_int(op, "offset").unwrap_or(0),
                        dynamic,
                        len: ctx.attr_int(op, "length").unwrap_or(1),
                    }),
                );
            }
            arith::CONSTANT => {
                let value = arith::constant_float_value(ctx, op)
                    .or_else(|| arith::constant_int_value(ctx, op).map(|v| v as f64))
                    .unwrap_or(0.0);
                values.insert(ctx.result(op, 0), LocalValue::Scalar(value as f32));
            }
            csl::FMOVS => {
                let dest = view_of(&values, ctx.operand(op, 0))?;
                let src = match values.get(&ctx.operand(op, 1)) {
                    Some(LocalValue::Dsd(view)) => Src::View(view.clone()),
                    Some(LocalValue::Scalar(s)) => Src::Scalar(*s),
                    None => Src::Scalar(0.0),
                };
                instrs.push(Instr::Movs { dest, src });
            }
            csl::FADDS | csl::FSUBS | csl::FMULS => {
                let kind = match ctx.op_name(op) {
                    csl::FADDS => BinKind::Add,
                    csl::FSUBS => BinKind::Sub,
                    _ => BinKind::Mul,
                };
                instrs.push(Instr::Binary {
                    kind,
                    dest: view_of(&values, ctx.operand(op, 0))?,
                    a: view_of(&values, ctx.operand(op, 1))?,
                    b: view_of(&values, ctx.operand(op, 2))?,
                });
            }
            csl::FMACS => {
                let coeff = match values.get(&ctx.operand(op, 3)) {
                    Some(LocalValue::Scalar(s)) => *s,
                    _ => return Err(err("fmacs coefficient is not a scalar constant")),
                };
                instrs.push(Instr::Macs {
                    dest: view_of(&values, ctx.operand(op, 0))?,
                    acc: view_of(&values, ctx.operand(op, 1))?,
                    src: view_of(&values, ctx.operand(op, 2))?,
                    coeff,
                });
            }
            csl::MEMBER_CALL if ctx.attr_str(op, "field") == Some("communicate") => {
                comm_call = Some(op);
            }
            // Control flow and declarations are handled structurally.
            _ => {}
        }
    }
    Ok((instrs, comm_call))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::benchmarks::Benchmark;
    use wse_lowering::{lower_program, PipelineOptions};

    fn load(benchmark: Benchmark, num_chunks: i64) -> LoadedProgram {
        let program = benchmark.tiny_program();
        let lowered =
            lower_program(&program, &PipelineOptions { num_chunks, ..PipelineOptions::default() })
                .unwrap();
        load_program(&lowered.ctx, lowered.module).unwrap()
    }

    #[test]
    fn jacobian_loads_with_comm_and_callbacks() {
        let loaded = load(Benchmark::Jacobian, 2);
        assert_eq!(loaded.kernels.len(), 1);
        let kernel = &loaded.kernels[0];
        let comm = kernel.comm.as_ref().expect("jacobian communicates");
        assert_eq!(comm.num_chunks, 2);
        assert_eq!(comm.slots.len(), 4);
        assert_eq!(comm.pattern, 1);
        assert!(!kernel.recv.is_empty());
        assert!(!kernel.done.is_empty());
        assert!(loaded.field_buffers.contains(&"a".to_string()));
        assert!(loaded.timesteps > 1);
        assert!(loaded.fmac_count() > 0);
        // Receive instructions use chunk-relative (dynamic) accumulator views.
        assert!(kernel.recv.iter().any(|i| match i {
            Instr::Macs { dest, .. } => dest.dynamic,
            _ => false,
        }));
    }

    #[test]
    fn acoustic_loads_two_kernels() {
        let loaded = load(Benchmark::Acoustic, 1);
        assert_eq!(loaded.kernels.len(), 2);
        assert!(loaded.kernels[0].comm.is_none(), "first kernel is local-only");
        assert!(loaded.kernels[1].comm.is_some(), "second kernel communicates");
        assert_eq!(loaded.field_buffers.len(), 2);
    }

    #[test]
    fn buffers_fit_in_pe_sram_for_tiny_programs() {
        let loaded = load(Benchmark::Seismic25, 2);
        assert!(loaded.bytes_per_pe() < 48 * 1024);
        assert!(loaded.buffers.iter().any(|b| b.name == "accumulator"));
        assert!(loaded.buffers.iter().any(|b| b.name == "recv_buffer"));
    }
}
