//! Sequential reference executor for stencil programs.
//!
//! Executes a front-end [`StencilProgram`] directly on dense 3-D arrays,
//! providing the ground truth against which the WSE simulator's results are
//! compared (out-of-range accesses read zero, matching the zero-initialized
//! halos of the PE-local buffers).
//!
//! The inner loop is compiled rather than interpreted: each equation's
//! expression tree is resolved once per run (field names to indices,
//! offsets to linear strides), and interior points — where every access is
//! statically in bounds — evaluate through direct indexing with no
//! per-point branch or string comparison.  Only the thin boundary shell
//! pays for zero-padded bounds checking.

use wse_frontends::ast::{Expr, StencilProgram};

/// A dense 3-D field of `f32` values over the program interior.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3D {
    /// Extents (x, y, z).
    pub shape: (i64, i64, i64),
    /// Row-major data, indexed `[x][y][z]`.
    pub data: Vec<f32>,
    /// Precomputed linear stride between consecutive x indices (`ny * nz`).
    pub stride_x: i64,
    /// Precomputed linear stride between consecutive y indices (`nz`).
    pub stride_y: i64,
}

impl Field3D {
    /// Creates a zero-filled field.
    pub fn zeros(x: i64, y: i64, z: i64) -> Self {
        Self {
            shape: (x, y, z),
            data: vec![0.0; (x * y * z) as usize],
            stride_x: y * z,
            stride_y: z,
        }
    }

    fn index(&self, x: i64, y: i64, z: i64) -> Option<usize> {
        let (nx, ny, nz) = self.shape;
        if x < 0 || y < 0 || z < 0 || x >= nx || y >= ny || z >= nz {
            return None;
        }
        Some((x * self.stride_x + y * self.stride_y + z) as usize)
    }

    /// Reads a value; out-of-range accesses return 0 (the halo value).
    pub fn get(&self, x: i64, y: i64, z: i64) -> f32 {
        self.index(x, y, z).map(|i| self.data[i]).unwrap_or(0.0)
    }

    /// Writes a value (panics when out of range).
    pub fn set(&mut self, x: i64, y: i64, z: i64, value: f32) {
        let i = self.index(x, y, z).expect("write inside the interior");
        self.data[i] = value;
    }
}

/// The state of every field of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct GridState {
    /// Field names in program order.
    pub names: Vec<String>,
    /// One dense array per field.
    pub fields: Vec<Field3D>,
}

impl GridState {
    /// Returns the field with the given name.
    pub fn field(&self, name: &str) -> Option<&Field3D> {
        self.names.iter().position(|n| n == name).map(|i| &self.fields[i])
    }
}

/// Deterministic initial condition shared by the reference executor and the
/// WSE simulator: a smooth, field-dependent function of the coordinates.
pub fn initial_value(field_index: usize, x: i64, y: i64, z: i64) -> f32 {
    let f = field_index as f32;
    let (x, y, z) = (x as f32, y as f32, z as f32);
    0.01 * (f + 1.0) + 0.002 * x - 0.003 * y + 0.001 * z + 0.0001 * x * z - 0.0002 * y * z
}

/// Creates the initial grid state of a program.
pub fn initial_state(program: &StencilProgram) -> GridState {
    let (nx, ny, nz) = (program.grid.x, program.grid.y, program.grid.z);
    let mut fields = Vec::new();
    for (fi, _) in program.fields.iter().enumerate() {
        let mut field = Field3D::zeros(nx, ny, nz);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    field.set(x, y, z, initial_value(fi, x, y, z));
                }
            }
        }
        fields.push(field);
    }
    GridState { names: program.fields.clone(), fields }
}

/// An expression with field names resolved to indices and offsets resolved
/// to linear strides, so interior evaluation is pure index arithmetic.
enum CompiledExpr {
    Const(f32),
    Access {
        /// Index into `GridState::fields`.
        field: usize,
        /// Linear offset from the current point for in-bounds accesses.
        rel: i64,
        /// Original (dx, dy, dz) offset, used on the boundary shell.
        offset: [i64; 3],
    },
    Add(Box<CompiledExpr>, Box<CompiledExpr>),
    Sub(Box<CompiledExpr>, Box<CompiledExpr>),
    Mul(Box<CompiledExpr>, Box<CompiledExpr>),
}

impl CompiledExpr {
    fn compile(expr: &Expr, fields: &[String], stride_x: i64, stride_y: i64) -> CompiledExpr {
        match expr {
            Expr::Const(v) => CompiledExpr::Const(*v),
            Expr::Access { field, offset } => CompiledExpr::Access {
                field: fields.iter().position(|f| f == field).expect("validated input"),
                rel: offset[0] * stride_x + offset[1] * stride_y + offset[2],
                offset: *offset,
            },
            Expr::Add(a, b) => CompiledExpr::Add(
                Box::new(Self::compile(a, fields, stride_x, stride_y)),
                Box::new(Self::compile(b, fields, stride_x, stride_y)),
            ),
            Expr::Sub(a, b) => CompiledExpr::Sub(
                Box::new(Self::compile(a, fields, stride_x, stride_y)),
                Box::new(Self::compile(b, fields, stride_x, stride_y)),
            ),
            Expr::Mul(a, b) => CompiledExpr::Mul(
                Box::new(Self::compile(a, fields, stride_x, stride_y)),
                Box::new(Self::compile(b, fields, stride_x, stride_y)),
            ),
        }
    }

    /// Interior evaluation: every access is in bounds, so reads are direct
    /// linear indexing off the current point's `base` index.
    fn eval_fast(&self, fields: &[Field3D], base: i64) -> f32 {
        match self {
            CompiledExpr::Const(v) => *v,
            CompiledExpr::Access { field, rel, .. } => fields[*field].data[(base + rel) as usize],
            CompiledExpr::Add(a, b) => a.eval_fast(fields, base) + b.eval_fast(fields, base),
            CompiledExpr::Sub(a, b) => a.eval_fast(fields, base) - b.eval_fast(fields, base),
            CompiledExpr::Mul(a, b) => a.eval_fast(fields, base) * b.eval_fast(fields, base),
        }
    }

    /// Boundary evaluation: out-of-range accesses read zero.
    fn eval_slow(&self, fields: &[Field3D], x: i64, y: i64, z: i64) -> f32 {
        match self {
            CompiledExpr::Const(v) => *v,
            CompiledExpr::Access { field, offset, .. } => {
                fields[*field].get(x + offset[0], y + offset[1], z + offset[2])
            }
            CompiledExpr::Add(a, b) => a.eval_slow(fields, x, y, z) + b.eval_slow(fields, x, y, z),
            CompiledExpr::Sub(a, b) => a.eval_slow(fields, x, y, z) - b.eval_slow(fields, x, y, z),
            CompiledExpr::Mul(a, b) => a.eval_slow(fields, x, y, z) * b.eval_slow(fields, x, y, z),
        }
    }
}

/// One equation resolved for execution.
struct CompiledEquation {
    out: usize,
    expr: CompiledExpr,
    /// Stencil radius per dimension (max absolute access offset).
    radius: [i64; 3],
}

/// Runs the program sequentially for its configured number of timesteps
/// (or `override_timesteps` when provided) and returns the final state.
pub fn run_reference(program: &StencilProgram, override_timesteps: Option<i64>) -> GridState {
    let mut state = initial_state(program);
    let timesteps = override_timesteps.unwrap_or(program.timesteps);
    let (nx, ny, nz) = (program.grid.x, program.grid.y, program.grid.z);
    let (stride_x, stride_y) = (ny * nz, nz);

    let equations: Vec<CompiledEquation> = program
        .equations
        .iter()
        .map(|eq| {
            let mut radius = [0i64; 3];
            for (_, offset) in eq.expr.accesses() {
                for d in 0..3 {
                    radius[d] = radius[d].max(offset[d].abs());
                }
            }
            CompiledEquation {
                out: program.fields.iter().position(|f| f == &eq.output).expect("validated output"),
                expr: CompiledExpr::compile(&eq.expr, &program.fields, stride_x, stride_y),
                radius,
            }
        })
        .collect();

    // Double buffer: each equation writes the full output field into
    // `next`, which is then swapped with the state (no per-step clone).
    let mut next = Field3D::zeros(nx, ny, nz);
    for _ in 0..timesteps {
        for eq in &equations {
            let [rx, ry, rz] = eq.radius;
            let z_lo = rz.min(nz);
            let z_hi = (nz - rz).max(z_lo);
            for x in 0..nx {
                for y in 0..ny {
                    let base = x * stride_x + y * stride_y;
                    let interior_row = x >= rx && x < nx - rx && y >= ry && y < ny - ry;
                    if interior_row {
                        for z in 0..z_lo {
                            next.data[(base + z) as usize] =
                                eq.expr.eval_slow(&state.fields, x, y, z);
                        }
                        for z in z_lo..z_hi {
                            next.data[(base + z) as usize] =
                                eq.expr.eval_fast(&state.fields, base + z);
                        }
                        for z in z_hi..nz {
                            next.data[(base + z) as usize] =
                                eq.expr.eval_slow(&state.fields, x, y, z);
                        }
                    } else {
                        for z in 0..nz {
                            next.data[(base + z) as usize] =
                                eq.expr.eval_slow(&state.fields, x, y, z);
                        }
                    }
                }
            }
            std::mem::swap(&mut state.fields[eq.out], &mut next);
        }
    }
    state
}

/// Maximum absolute difference between two grid states (same shape).
pub fn max_abs_difference(a: &GridState, b: &GridState) -> f32 {
    a.fields
        .iter()
        .zip(&b.fields)
        .flat_map(|(fa, fb)| fa.data.iter().zip(&fb.data).map(|(x, y)| (x - y).abs()))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::benchmarks::Benchmark;

    #[test]
    fn initial_state_is_deterministic() {
        let program = Benchmark::Jacobian.tiny_program();
        let a = initial_state(&program);
        let b = initial_state(&program);
        assert_eq!(a, b);
        assert_eq!(a.fields.len(), 1);
        assert!(a.field("a").is_some());
        assert!(a.field("missing").is_none());
    }

    #[test]
    fn out_of_range_reads_are_zero() {
        let f = Field3D::zeros(2, 2, 2);
        assert_eq!(f.get(-1, 0, 0), 0.0);
        assert_eq!(f.get(0, 0, 5), 0.0);
    }

    #[test]
    fn strides_match_the_linear_layout() {
        let mut f = Field3D::zeros(3, 4, 5);
        assert_eq!((f.stride_x, f.stride_y), (20, 5));
        f.set(2, 3, 4, 7.0);
        assert_eq!(f.data[(2 * f.stride_x + 3 * f.stride_y + 4) as usize], 7.0);
    }

    #[test]
    fn jacobian_smooths_the_field() {
        let program = Benchmark::Jacobian.tiny_program();
        let before = initial_state(&program);
        let after = run_reference(&program, Some(1));
        // Values change but stay bounded (the 6-point average is a
        // contraction away from the boundary).
        assert!(max_abs_difference(&before, &after) > 0.0);
        let max = after.fields[0].data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max < 1.0, "jacobian must stay bounded, got {max}");
    }

    #[test]
    fn acoustic_uses_both_fields() {
        let program = Benchmark::Acoustic.tiny_program();
        let after = run_reference(&program, Some(2));
        // u_prev must have been overwritten with old u values (non-zero).
        let u_prev = after.field("u_prev").unwrap();
        assert!(u_prev.data.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn timestep_override_controls_work() {
        let program = Benchmark::Diffusion.tiny_program();
        let one = run_reference(&program, Some(1));
        let two = run_reference(&program, Some(2));
        assert!(max_abs_difference(&one, &two) > 0.0);
    }

    #[test]
    fn fast_path_matches_a_pure_slow_path() {
        // Evaluate every benchmark once with the interior fast path (the
        // production `run_reference`) and once forcing the boundary-safe
        // slow path at every point; the results must be bitwise equal.
        for benchmark in Benchmark::ALL {
            let program = benchmark.tiny_program();
            let fast = run_reference(&program, Some(2));
            let slow = run_reference_slow(&program, 2);
            assert_eq!(fast, slow, "{}: fast path diverges", benchmark.name());
        }
    }

    /// A deliberately naive executor using only bounds-checked reads.
    fn run_reference_slow(program: &wse_frontends::ast::StencilProgram, steps: i64) -> GridState {
        let mut state = initial_state(program);
        let (nx, ny, nz) = (program.grid.x, program.grid.y, program.grid.z);
        for _ in 0..steps {
            for eq in &program.equations {
                let out =
                    program.fields.iter().position(|f| f == &eq.output).expect("validated output");
                let mut next = state.fields[out].clone();
                for x in 0..nx {
                    for y in 0..ny {
                        for z in 0..nz {
                            let value = eq.expr.evaluate(&|field, offset| {
                                let fi = program
                                    .fields
                                    .iter()
                                    .position(|f| f == field)
                                    .expect("validated input");
                                state.fields[fi].get(x + offset[0], y + offset[1], z + offset[2])
                            });
                            next.set(x, y, z, value);
                        }
                    }
                }
                state.fields[out] = next;
            }
        }
        state
    }
}
