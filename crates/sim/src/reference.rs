//! Sequential reference executor for stencil programs.
//!
//! Executes a front-end [`StencilProgram`] directly on dense 3-D arrays,
//! providing the ground truth against which the WSE simulator's results are
//! compared (out-of-range accesses read zero, matching the zero-initialized
//! halos of the PE-local buffers).

use wse_frontends::ast::StencilProgram;

/// A dense 3-D field of `f32` values over the program interior.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3D {
    /// Extents (x, y, z).
    pub shape: (i64, i64, i64),
    /// Row-major data, indexed `[x][y][z]`.
    pub data: Vec<f32>,
}

impl Field3D {
    /// Creates a zero-filled field.
    pub fn zeros(x: i64, y: i64, z: i64) -> Self {
        Self { shape: (x, y, z), data: vec![0.0; (x * y * z) as usize] }
    }

    fn index(&self, x: i64, y: i64, z: i64) -> Option<usize> {
        let (nx, ny, nz) = self.shape;
        if x < 0 || y < 0 || z < 0 || x >= nx || y >= ny || z >= nz {
            return None;
        }
        Some(((x * ny + y) * nz + z) as usize)
    }

    /// Reads a value; out-of-range accesses return 0 (the halo value).
    pub fn get(&self, x: i64, y: i64, z: i64) -> f32 {
        self.index(x, y, z).map(|i| self.data[i]).unwrap_or(0.0)
    }

    /// Writes a value (panics when out of range).
    pub fn set(&mut self, x: i64, y: i64, z: i64, value: f32) {
        let i = self.index(x, y, z).expect("write inside the interior");
        self.data[i] = value;
    }
}

/// The state of every field of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct GridState {
    /// Field names in program order.
    pub names: Vec<String>,
    /// One dense array per field.
    pub fields: Vec<Field3D>,
}

impl GridState {
    /// Returns the field with the given name.
    pub fn field(&self, name: &str) -> Option<&Field3D> {
        self.names.iter().position(|n| n == name).map(|i| &self.fields[i])
    }
}

/// Deterministic initial condition shared by the reference executor and the
/// WSE simulator: a smooth, field-dependent function of the coordinates.
pub fn initial_value(field_index: usize, x: i64, y: i64, z: i64) -> f32 {
    let f = field_index as f32;
    let (x, y, z) = (x as f32, y as f32, z as f32);
    0.01 * (f + 1.0) + 0.002 * x - 0.003 * y + 0.001 * z + 0.0001 * x * z - 0.0002 * y * z
}

/// Creates the initial grid state of a program.
pub fn initial_state(program: &StencilProgram) -> GridState {
    let (nx, ny, nz) = (program.grid.x, program.grid.y, program.grid.z);
    let mut fields = Vec::new();
    for (fi, _) in program.fields.iter().enumerate() {
        let mut field = Field3D::zeros(nx, ny, nz);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    field.set(x, y, z, initial_value(fi, x, y, z));
                }
            }
        }
        fields.push(field);
    }
    GridState { names: program.fields.clone(), fields }
}

/// Runs the program sequentially for its configured number of timesteps
/// (or `override_timesteps` when provided) and returns the final state.
pub fn run_reference(program: &StencilProgram, override_timesteps: Option<i64>) -> GridState {
    let mut state = initial_state(program);
    let timesteps = override_timesteps.unwrap_or(program.timesteps);
    let (nx, ny, nz) = (program.grid.x, program.grid.y, program.grid.z);
    for _ in 0..timesteps {
        for eq in &program.equations {
            let out_index =
                program.fields.iter().position(|f| f == &eq.output).expect("validated output");
            let mut next = state.fields[out_index].clone();
            for x in 0..nx {
                for y in 0..ny {
                    for z in 0..nz {
                        let value = eq.expr.evaluate(&|field, offset| {
                            let fi = program
                                .fields
                                .iter()
                                .position(|f| f == field)
                                .expect("validated input");
                            state.fields[fi].get(x + offset[0], y + offset[1], z + offset[2])
                        });
                        next.set(x, y, z, value);
                    }
                }
            }
            state.fields[out_index] = next;
        }
    }
    state
}

/// Maximum absolute difference between two grid states (same shape).
pub fn max_abs_difference(a: &GridState, b: &GridState) -> f32 {
    a.fields
        .iter()
        .zip(&b.fields)
        .flat_map(|(fa, fb)| fa.data.iter().zip(&fb.data).map(|(x, y)| (x - y).abs()))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::benchmarks::Benchmark;

    #[test]
    fn initial_state_is_deterministic() {
        let program = Benchmark::Jacobian.tiny_program();
        let a = initial_state(&program);
        let b = initial_state(&program);
        assert_eq!(a, b);
        assert_eq!(a.fields.len(), 1);
        assert!(a.field("a").is_some());
        assert!(a.field("missing").is_none());
    }

    #[test]
    fn out_of_range_reads_are_zero() {
        let f = Field3D::zeros(2, 2, 2);
        assert_eq!(f.get(-1, 0, 0), 0.0);
        assert_eq!(f.get(0, 0, 5), 0.0);
    }

    #[test]
    fn jacobian_smooths_the_field() {
        let program = Benchmark::Jacobian.tiny_program();
        let before = initial_state(&program);
        let after = run_reference(&program, Some(1));
        // Values change but stay bounded (the 6-point average is a
        // contraction away from the boundary).
        assert!(max_abs_difference(&before, &after) > 0.0);
        let max = after.fields[0].data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max < 1.0, "jacobian must stay bounded, got {max}");
    }

    #[test]
    fn acoustic_uses_both_fields() {
        let program = Benchmark::Acoustic.tiny_program();
        let after = run_reference(&program, Some(2));
        // u_prev must have been overwritten with old u values (non-zero).
        let u_prev = after.field("u_prev").unwrap();
        assert!(u_prev.data.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn timestep_override_controls_work() {
        let program = Benchmark::Diffusion.tiny_program();
        let one = run_reference(&program, Some(1));
        let two = run_reference(&program, Some(2));
        assert!(max_abs_difference(&one, &two) > 0.0);
    }
}
