//! Translation validation for the link-time optimizer.
//!
//! Every optimizer rewrite claims to be bitwise-transparent.  Until now
//! the only check was *dynamic* — the conformance harness runs optimized
//! and unoptimized streams and compares bits.  This module adds a static,
//! machine-checkable argument: a symbolic abstract interpretation of the
//! [`LinkedProgram`] instruction stream in which every arena element holds
//! an opaque `u64` *value hash* instead of an `f32`.
//!
//! * A `Fill` writes `hash(CONST, bits(v))`; each field's interior starts
//!   from a unique `hash(FIELD, field, pe, z)` (matching the engine's
//!   per-element initial conditions) and every other element from its
//!   buffer's splat `init`.
//! * `Add` and `Mul` combine hashes *commutatively* — f32 addition and
//!   multiplication commute bitwise, and the optimizer exploits exactly
//!   that (operand swaps in the mul/add peephole) — while `Sub` is
//!   order-dependent.  No rewrite relies on associativity, so none is
//!   granted: `a + (b + c)` and `(a + b) + c` hash differently.
//! * `Copy`/`Binary`/`Macs` use the engine's scratch semantics (all reads
//!   happen before any write), while `FusedMacs` is modelled as the
//!   one-pass in-place sweep it really is — so a fused sweep whose source
//!   overlaps its destination produces a *different* hash than the chain
//!   it replaced, which is precisely how an unsafe fusion is caught.
//!
//! [`observable_summary`] runs a bounded number of full grid cycles —
//! virtual snapshot capture, pre/staging/recv/done sweeps per PE, then
//! the deferred commits, exactly the engine's canonical order — and
//! collects the hash of every observable (non-internal) field interior
//! element.  Two streams with equal summaries perform the same dataflow
//! on every observable element; [`link`](crate::link) re-checks the
//! summary after every optimizer pass and reverts any pass that changes
//! it (diagnostic `E201`, counted in
//! [`OptStats::validator_rejections`](crate::link::OptStats)).
//!
//! Scope: the model is sequential per kernel (snapshot, sweeps, commits).
//! Schedule-dependent hazards — a sweep writing a column a neighbor band
//! is concurrently reading — do not change this model's verdict; they are
//! the static race detector's department (`crates/analysis`, diagnostics
//! `E101`/`E102`).

use crate::link::{FusedInit, LinkedInstr, LinkedKernel, LinkedProgram, SrcRef};
use crate::loader::BinKind;

const TAG_CONST: u64 = 0x9e37_79b9_7f4a_7c15;
const TAG_FIELD: u64 = 0xc2b2_ae3d_27d4_eb4f;
const TAG_ADD: u64 = 0x165667b19e3779f9;
const TAG_MUL: u64 = 0x27d4eb2f165667c5;
const TAG_SUB: u64 = 0x9e3779b185ebca87;

/// SplitMix64 finalizer: the avalanche behind every combination below.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Ordered combination (used for `Sub` and structured seeds).
fn h(tag: u64, a: u64, b: u64) -> u64 {
    mix(tag ^ mix(a).wrapping_add(mix(b).rotate_left(17)))
}

/// Commutative combination: symmetric in `a` and `b`, still tag-separated
/// and avalanched (xor and sum of the mixed operands are both symmetric).
fn hc(tag: u64, a: u64, b: u64) -> u64 {
    let (ma, mb) = (mix(a), mix(b));
    mix(tag ^ (ma ^ mb)) ^ mix(tag ^ ma.wrapping_add(mb))
}

/// The hash of a splat constant (`Fill` values, buffer `init`s, scalar
/// coefficients, the zero halo).  Keyed on the f32 *bits* so `0.0` and
/// `-0.0` — which the engine distinguishes bitwise — hash apart.
fn const_val(bits: u32) -> u64 {
    h(TAG_CONST, bits as u64, 0)
}

/// The unique hash of one field element's initial condition.
fn field_val(field: usize, pe: usize, z: usize) -> u64 {
    h(TAG_FIELD, h(TAG_FIELD, field as u64, pe as u64), z as u64)
}

fn mac(acc: u64, src: u64, coeff: f32) -> u64 {
    hc(TAG_ADD, acc, hc(TAG_MUL, src, const_val(coeff.to_bits())))
}

/// The symbolic grid: one `u64` per arena element per PE.
struct AbstractGrid {
    vals: Vec<u64>,
    arena_len: usize,
    width: i64,
    height: i64,
}

impl AbstractGrid {
    fn initial(linked: &LinkedProgram) -> Self {
        let n_pes = (linked.width * linked.height) as usize;
        let mut vals = vec![0u64; n_pes * linked.arena_len];
        for pe in 0..n_pes {
            let arena = &mut vals[pe * linked.arena_len..][..linked.arena_len];
            for layout in &linked.layouts {
                arena[layout.base..layout.base + layout.len].fill(const_val(layout.init.to_bits()));
            }
            for (fi, id) in linked.field_ids.iter().enumerate() {
                let layout = &linked.layouts[id.0 as usize];
                let start = (linked.z_halo as usize).min(layout.len);
                let len = (linked.z_dim as usize).min(layout.len - start);
                for z in 0..len {
                    arena[layout.base + start + z] = field_val(fi, pe, z);
                }
            }
        }
        Self { vals, arena_len: linked.arena_len, width: linked.width, height: linked.height }
    }

    fn pe(&self, pe: usize) -> &[u64] {
        &self.vals[pe * self.arena_len..][..self.arena_len]
    }

    fn pe_mut(&mut self, pe: usize) -> &mut [u64] {
        &mut self.vals[pe * self.arena_len..][..self.arena_len]
    }
}

/// Per-kernel snapshot: for each PE, each snapped field's full column
/// (`copy_len` captured elements, zero-hash tail), captured from the
/// arenas before any sweep of the kernel — the canonical semantics for
/// both the real capture and the capture-elided deferred-commit path.
fn capture_snapshots(grid: &AbstractGrid, kernel: &LinkedKernel) -> Vec<Vec<Vec<u64>>> {
    let Some(comm) = &kernel.comm else { return Vec::new() };
    let n_pes = (grid.width * grid.height) as usize;
    let zero = const_val(0.0f32.to_bits());
    (0..n_pes)
        .map(|pe| {
            comm.snap_fields
                .iter()
                .map(|f| {
                    let mut col = vec![zero; comm.col_len];
                    col[..f.copy_len]
                        .copy_from_slice(&grid.pe(pe)[f.src_base..f.src_base + f.copy_len]);
                    col
                })
                .collect()
        })
        .collect()
}

/// Runs one instruction block for one PE at the given chunk offset.
fn run_block(
    grid: &mut AbstractGrid,
    snaps: &[Vec<Vec<u64>>],
    kernel: &LinkedKernel,
    x: i64,
    y: i64,
    instrs: &[LinkedInstr],
    chunk_offset: usize,
) {
    let pe = (y * grid.width + x) as usize;
    let zero = const_val(0.0f32.to_bits());
    // Resolves a fused term's slot source: element `i` of the neighbor's
    // transmitted column window (zero hashes outside the grid).
    let slot_elem = |grid: &AbstractGrid, slot: u32, offset: u32, i: usize| -> u64 {
        let comm = kernel.comm.as_ref().expect("slot read requires an exchange");
        let spec = &comm.slots[slot as usize];
        let (nx, ny) = (x + spec.dx, y + spec.dy);
        if nx < 0 || ny < 0 || nx >= grid.width || ny >= grid.height {
            return zero;
        }
        let neighbor = (ny * grid.width + nx) as usize;
        snaps[neighbor][spec.snap_index][offset as usize + chunk_offset + i]
    };
    for instr in instrs {
        match instr {
            LinkedInstr::Fill { dest, value } => {
                let v = const_val(value.to_bits());
                grid.pe_mut(pe)[dest.range(chunk_offset)].fill(v);
            }
            LinkedInstr::Copy { dest, src } => {
                // memmove semantics: gather, then write.
                let tmp: Vec<u64> = grid.pe(pe)[src.range(chunk_offset)].to_vec();
                grid.pe_mut(pe)[dest.range(chunk_offset)].copy_from_slice(&tmp);
            }
            LinkedInstr::Binary { kind, dest, a, b } => {
                let arena = grid.pe(pe);
                let (ra, rb) = (a.range(chunk_offset), b.range(chunk_offset));
                let tmp: Vec<u64> = (0..dest.len as usize)
                    .map(|i| {
                        let (va, vb) = (arena[ra.start + i], arena[rb.start + i]);
                        match kind {
                            BinKind::Add => hc(TAG_ADD, va, vb),
                            BinKind::Mul => hc(TAG_MUL, va, vb),
                            BinKind::Sub => h(TAG_SUB, va, vb),
                        }
                    })
                    .collect();
                grid.pe_mut(pe)[dest.range(chunk_offset)].copy_from_slice(&tmp);
            }
            LinkedInstr::Macs { dest, acc, src, coeff } => {
                let arena = grid.pe(pe);
                let (racc, rsrc) = (acc.range(chunk_offset), src.range(chunk_offset));
                let tmp: Vec<u64> = (0..dest.len as usize)
                    .map(|i| mac(arena[racc.start + i], arena[rsrc.start + i], *coeff))
                    .collect();
                grid.pe_mut(pe)[dest.range(chunk_offset)].copy_from_slice(&tmp);
            }
            LinkedInstr::FusedMacs { dest, init, terms } => {
                // One-pass in-place sweep: element j is written before
                // element j+1 is computed, so an (illegally) overlapping
                // source observes the sweep's own writes — and the
                // summary diverges from the unfused chain's.
                let rd = dest.range(chunk_offset);
                for j in 0..dest.len as usize {
                    let mut v = match init {
                        FusedInit::Fill(c) => const_val(c.to_bits()),
                        FusedInit::Acc(a) => grid.pe(pe)[a.range(chunk_offset).start + j],
                    };
                    for term in terms {
                        let s = match &term.src {
                            SrcRef::Arena(view) => grid.pe(pe)[view.range(chunk_offset).start + j],
                            SrcRef::Slot { slot, offset, .. } => slot_elem(grid, *slot, *offset, j),
                        };
                        v = mac(v, s, term.coeff);
                    }
                    grid.pe_mut(pe)[rd.start + j] = v;
                }
            }
        }
    }
}

/// Runs one full grid cycle (every kernel, every PE, commits last —
/// the engine's canonical order).
fn run_cycle(grid: &mut AbstractGrid, linked: &LinkedProgram) {
    let n_pes = (linked.width * linked.height) as usize;
    for kernel in &linked.kernels {
        let snaps = capture_snapshots(grid, kernel);
        for pe in 0..n_pes {
            let (x, y) = ((pe as i64) % linked.width, (pe as i64) / linked.width);
            run_block(grid, &snaps, kernel, x, y, &kernel.pre, 0);
            if let Some(comm) = &kernel.comm {
                for chunk in 0..comm.num_chunks {
                    let chunk_offset = chunk * comm.chunk_size;
                    // Staged slots: copy this chunk's window of the
                    // neighbor column into the receive buffer.
                    for (slot, spec) in comm.slots.iter().enumerate() {
                        if !spec.staged {
                            continue;
                        }
                        let window: Vec<u64> = (0..comm.chunk_size)
                            .map(|i| {
                                let (nx, ny) = (x + spec.dx, y + spec.dy);
                                if nx < 0 || ny < 0 || nx >= grid.width || ny >= grid.height {
                                    const_val(0.0f32.to_bits())
                                } else {
                                    let neighbor = (ny * grid.width + nx) as usize;
                                    snaps[neighbor][spec.snap_index][chunk_offset + i]
                                }
                            })
                            .collect();
                        let start = comm.recv_base + slot * comm.chunk_size;
                        grid.pe_mut(pe)[start..start + comm.chunk_size].copy_from_slice(&window);
                    }
                    run_block(grid, &snaps, kernel, x, y, &kernel.recv, chunk_offset);
                }
            }
            run_block(grid, &snaps, kernel, x, y, &kernel.done, 0);
        }
        // Deferred commits: after every PE's sweep, before the next
        // kernel (the run phase lags them by rows or a barrier; the
        // observable end state is this).
        for pe in 0..n_pes {
            let (x, y) = ((pe as i64) % linked.width, (pe as i64) / linked.width);
            run_block(grid, &snaps, kernel, x, y, &kernel.commit, 0);
        }
    }
}

/// How many cycles the summary executes: enough for hidden state written
/// in one cycle to flow into observables two cycles later, bounded so
/// validation stays a link-time cost.  The stream is identical every
/// cycle, so divergence that can reach an observable element at all
/// reaches one within this window.
fn cycles(linked: &LinkedProgram) -> usize {
    linked.timesteps.clamp(1, 3) as usize
}

/// The observable dataflow summary of a linked stream: the symbolic value
/// of every non-internal field interior element after a bounded number of
/// cycles, in (field, PE, z) order.  Keyed by field *index*, not arena
/// offset, so the summary is invariant under arena coalescing and buffer
/// renaming — two streams compare equal iff they compute the same values,
/// not iff they use the same layout.
pub fn observable_summary(linked: &LinkedProgram) -> Vec<u64> {
    let mut grid = AbstractGrid::initial(linked);
    for _ in 0..cycles(linked) {
        run_cycle(&mut grid, linked);
    }
    let n_pes = (linked.width * linked.height) as usize;
    let mut summary = Vec::new();
    for (fi, id) in linked.field_ids.iter().enumerate() {
        if linked.field_internal.get(fi).copied().unwrap_or(false) {
            continue;
        }
        let layout = &linked.layouts[id.0 as usize];
        let start = layout.base + (linked.z_halo as usize).min(layout.len);
        let len = (linked.z_dim as usize).min(layout.base + layout.len - start);
        for pe in 0..n_pes {
            summary.extend_from_slice(&grid.pe(pe)[start..start + len]);
        }
    }
    summary
}

/// True when two linked streams of the *same source program* compute the
/// same observable dataflow (equal summaries).  Exposed for the analysis
/// crate and the conformance driver.
pub fn streams_equivalent(a: &LinkedProgram, b: &LinkedProgram) -> bool {
    observable_summary(a) == observable_summary(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_algebra_matches_f32_bitwise_algebra() {
        let (a, b, c) = (field_val(0, 0, 0), field_val(0, 0, 1), field_val(1, 3, 2));
        // Commutative where f32 is commutative bitwise...
        assert_eq!(hc(TAG_ADD, a, b), hc(TAG_ADD, b, a));
        assert_eq!(hc(TAG_MUL, a, b), hc(TAG_MUL, b, a));
        // ...ordered where it is not...
        assert_ne!(h(TAG_SUB, a, b), h(TAG_SUB, b, a));
        // ...and never associative (f32 rounding is order-dependent).
        assert_ne!(
            hc(TAG_ADD, a, hc(TAG_ADD, b, c)),
            hc(TAG_ADD, hc(TAG_ADD, a, b), c),
            "associativity must not hold"
        );
        // Ops and operands separate.
        assert_ne!(hc(TAG_ADD, a, b), hc(TAG_MUL, a, b));
        assert_ne!(const_val(0.0f32.to_bits()), const_val((-0.0f32).to_bits()));
        assert_ne!(field_val(0, 0, 0), field_val(0, 1, 0));
    }

    #[test]
    fn optimized_and_unoptimized_streams_summarize_equal() {
        use crate::link::{link_program_with, LinkOptions};
        use crate::loader::{BufferDecl, Instr, LoadedKernel, LoadedProgram, Src, ViewRef};
        let view = |buffer: &str, offset: i64, len: i64| ViewRef {
            buffer: buffer.into(),
            offset,
            dynamic: false,
            len,
        };
        let program = LoadedProgram {
            width: 2,
            height: 2,
            z_dim: 4,
            z_halo: 1,
            timesteps: 2,
            buffers: vec![
                BufferDecl { name: "a".into(), len: 6, init: 0.0 },
                BufferDecl { name: "acc".into(), len: 4, init: 0.0 },
            ],
            field_buffers: vec!["a".into()],
            internal_fields: Vec::new(),
            kernels: vec![LoadedKernel {
                name: "seq_kernel0".into(),
                pre: vec![
                    Instr::Movs { dest: view("acc", 0, 4), src: Src::Scalar(0.25) },
                    Instr::Macs {
                        dest: view("acc", 0, 4),
                        acc: view("acc", 0, 4),
                        src: view("a", 0, 4),
                        coeff: 0.5,
                    },
                    Instr::Macs {
                        dest: view("acc", 0, 4),
                        acc: view("acc", 0, 4),
                        src: view("a", 2, 4),
                        coeff: -1.0,
                    },
                    Instr::Movs { dest: view("a", 1, 4), src: Src::View(view("acc", 0, 4)) },
                ],
                comm: None,
                recv: Vec::new(),
                done: Vec::new(),
            }],
        };
        let unopt =
            link_program_with(&program, &LinkOptions { optimize: false, ..LinkOptions::default() })
                .unwrap();
        let opt = link_program_with(
            &program,
            &LinkOptions { optimize: true, validate: false, ..LinkOptions::default() },
        )
        .unwrap();
        assert!(opt.stats.fused_chains > 0, "the chain must actually fuse: {:?}", opt.stats);
        assert!(streams_equivalent(&unopt, &opt));
    }
}
