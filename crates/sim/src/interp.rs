//! The pre-refactor string-keyed interpreter, kept as a baseline.
//!
//! This is the original execution engine that [`crate::exec::WseGridSim`]
//! replaced: every PE owns a `HashMap` of named buffers, every kernel
//! clones the full field state of every PE for the halo snapshot, and
//! every view read allocates a fresh `Vec<f32>`.  It is retained verbatim
//! so the `sim_throughput` bench can report the speedup of the linked
//! flat-memory engine against it, and so parity tests can check the two
//! engines produce bitwise-identical results.  Do not use it for new
//! work.
//!
//! # Shared instruction semantics
//!
//! This module is the executable specification of the [`Instr`] stream
//! that every engine — and every rewrite in the link-time optimizer
//! ([`crate::link`]) — must preserve *bitwise*:
//!
//! * elementwise instructions have read-all-then-write semantics (this
//!   engine materializes every read into a fresh `Vec` before writing;
//!   the linked engine uses a scratch buffer, and fused one-pass sweeps
//!   are only formed when the linker proves no source aliases the
//!   destination, making the one-pass result identical);
//! * `Macs` computes `acc[i] + src[i] * coeff` as an f32 multiply
//!   followed by an f32 add — never a fused multiply-add — and fused
//!   sweeps apply their terms left to right with exactly this per-element
//!   operation sequence;
//! * cross-PE reads observe the pre-kernel state of the transmitted
//!   columns (here: a deep snapshot of all field buffers; the linked
//!   engine captures only the communicated columns, or skips the capture
//!   entirely when it can defer the write-back instead), and
//!   out-of-grid neighbors read as zero.

use std::collections::HashMap;

use crate::exec::ExecError;
use crate::loader::{BinKind, CommSpec, Instr, LoadedProgram, Src, ViewRef};
use crate::reference::{initial_value, Field3D, GridState};

/// The state of one PE: its named local buffers.
#[derive(Debug, Clone)]
struct PeState {
    /// Buffers by name.
    buffers: HashMap<String, Vec<f32>>,
}

fn err(message: impl Into<String>) -> ExecError {
    ExecError::invalid(message)
}

/// The legacy tree-walking simulation of a PE grid (see module docs).
#[derive(Debug, Clone)]
pub struct InterpGridSim {
    program: LoadedProgram,
    pes: Vec<PeState>,
}

impl InterpGridSim {
    /// Creates the grid, allocating and initializing every PE's buffers,
    /// and fills the field buffers with the shared initial condition.
    pub fn new(program: LoadedProgram) -> Self {
        let (width, height) = (program.width, program.height);
        let mut pes = Vec::with_capacity((width * height) as usize);
        for y in 0..height {
            for x in 0..width {
                let mut buffers = HashMap::new();
                for decl in &program.buffers {
                    buffers.insert(decl.name.clone(), vec![decl.init; decl.len as usize]);
                }
                for (fi, field) in program.field_buffers.iter().enumerate() {
                    if let Some(buf) = buffers.get_mut(field) {
                        for z in 0..program.z_dim {
                            buf[(program.z_halo + z) as usize] = initial_value(fi, x, y, z);
                        }
                    }
                }
                pes.push(PeState { buffers });
            }
        }
        Self { program, pes }
    }

    fn pe_index(&self, x: i64, y: i64) -> Option<usize> {
        if x < 0 || y < 0 || x >= self.program.width || y >= self.program.height {
            return None;
        }
        Some((y * self.program.width + x) as usize)
    }

    /// Runs the program for `timesteps` steps (defaults to the program's
    /// own timestep count).
    ///
    /// # Errors
    /// Returns an [`ExecError`] on unknown buffers or out-of-bounds views.
    pub fn run(&mut self, timesteps: Option<i64>) -> Result<(), ExecError> {
        let steps = timesteps.unwrap_or(self.program.timesteps);
        for _ in 0..steps {
            for k in 0..self.program.kernels.len() {
                self.run_kernel(k)?;
            }
        }
        Ok(())
    }

    fn run_kernel(&mut self, kernel_index: usize) -> Result<(), ExecError> {
        let kernel = self.program.kernels[kernel_index].clone();
        // Snapshot the field buffers: cross-PE reads must observe the
        // pre-kernel state.
        let snapshot: Vec<HashMap<String, Vec<f32>>> = self
            .pes
            .iter()
            .map(|pe| {
                self.program
                    .field_buffers
                    .iter()
                    .filter_map(|f| pe.buffers.get(f).map(|b| (f.clone(), b.clone())))
                    .collect()
            })
            .collect();

        let width = self.program.width;
        let height = self.program.height;
        let z_halo = self.program.z_halo;
        for y in 0..height {
            for x in 0..width {
                let index = self.pe_index(x, y).expect("in range");
                for instr in &kernel.pre {
                    Self::execute(&mut self.pes[index], instr, 0)?;
                }
                if let Some(comm) = &kernel.comm {
                    for chunk in 0..comm.num_chunks {
                        self.stage_chunk(comm, x, y, chunk, z_halo, &snapshot)?;
                        let chunk_offset = chunk * comm.chunk_size;
                        let pe = &mut self.pes[index];
                        for instr in &kernel.recv {
                            Self::execute(pe, instr, chunk_offset)?;
                        }
                    }
                    let pe = &mut self.pes[index];
                    for instr in &kernel.done {
                        Self::execute(pe, instr, 0)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn stage_chunk(
        &mut self,
        comm: &CommSpec,
        x: i64,
        y: i64,
        chunk: i64,
        z_halo: i64,
        snapshot: &[HashMap<String, Vec<f32>>],
    ) -> Result<(), ExecError> {
        let index = self.pe_index(x, y).expect("in range");
        let chunk_size = comm.chunk_size as usize;
        for (slot, spec) in comm.slots.iter().enumerate() {
            let mut data = vec![0.0f32; chunk_size];
            if let Some(neighbor) = self.pe_index(x + spec.dx, y + spec.dy) {
                let column = snapshot[neighbor]
                    .get(&spec.field)
                    .ok_or_else(|| err(format!("unknown field buffer {}", spec.field)))?;
                let start = (z_halo + chunk * comm.chunk_size) as usize;
                for (i, dst) in data.iter_mut().enumerate() {
                    *dst = column.get(start + i).copied().unwrap_or(0.0);
                }
            }
            let recv = self.pes[index]
                .buffers
                .get_mut("recv_buffer")
                .ok_or_else(|| err("missing recv_buffer"))?;
            let base = slot * chunk_size;
            if base + chunk_size > recv.len() {
                return Err(err("receive buffer overflow"));
            }
            recv[base..base + chunk_size].copy_from_slice(&data);
        }
        Ok(())
    }

    fn read_view(pe: &PeState, view: &ViewRef, chunk_offset: i64) -> Result<Vec<f32>, ExecError> {
        let buf = pe
            .buffers
            .get(&view.buffer)
            .ok_or_else(|| err(format!("unknown buffer {}", view.buffer)))?;
        let offset = view.offset + if view.dynamic { chunk_offset } else { 0 };
        let start = offset as usize;
        let end = start + view.len as usize;
        if end > buf.len() {
            return Err(err(format!(
                "view [{start}, {end}) out of bounds for buffer {} (len {})",
                view.buffer,
                buf.len()
            )));
        }
        Ok(buf[start..end].to_vec())
    }

    fn write_view(
        pe: &mut PeState,
        view: &ViewRef,
        chunk_offset: i64,
        data: &[f32],
    ) -> Result<(), ExecError> {
        let buf = pe
            .buffers
            .get_mut(&view.buffer)
            .ok_or_else(|| err(format!("unknown buffer {}", view.buffer)))?;
        let offset = view.offset + if view.dynamic { chunk_offset } else { 0 };
        let start = offset as usize;
        let end = start + view.len as usize;
        if end > buf.len() {
            return Err(err(format!(
                "view [{start}, {end}) out of bounds for buffer {} (len {})",
                view.buffer,
                buf.len()
            )));
        }
        buf[start..end].copy_from_slice(data);
        Ok(())
    }

    fn execute(pe: &mut PeState, instr: &Instr, chunk_offset: i64) -> Result<(), ExecError> {
        match instr {
            Instr::Movs { dest, src } => {
                let data = match src {
                    Src::View(view) => Self::read_view(pe, view, chunk_offset)?,
                    Src::Scalar(value) => vec![*value; dest.len as usize],
                };
                Self::write_view(pe, dest, chunk_offset, &data)
            }
            Instr::Binary { kind, dest, a, b } => {
                let va = Self::read_view(pe, a, chunk_offset)?;
                let vb = Self::read_view(pe, b, chunk_offset)?;
                let out: Vec<f32> = va
                    .iter()
                    .zip(&vb)
                    .map(|(x, y)| match kind {
                        BinKind::Add => x + y,
                        BinKind::Sub => x - y,
                        BinKind::Mul => x * y,
                    })
                    .collect();
                Self::write_view(pe, dest, chunk_offset, &out)
            }
            Instr::Macs { dest, acc, src, coeff } => {
                let va = Self::read_view(pe, acc, chunk_offset)?;
                let vs = Self::read_view(pe, src, chunk_offset)?;
                let out: Vec<f32> = va.iter().zip(&vs).map(|(a, s)| a + s * coeff).collect();
                Self::write_view(pe, dest, chunk_offset, &out)
            }
        }
    }

    /// Extracts a field as a dense 3-D array (legacy semantics: `None` on
    /// an unknown or missing buffer).
    pub fn field(&self, name: &str) -> Option<Field3D> {
        if !self.program.field_buffers.iter().any(|f| f == name) {
            return None;
        }
        let mut out = Field3D::zeros(self.program.width, self.program.height, self.program.z_dim);
        for y in 0..self.program.height {
            for x in 0..self.program.width {
                let pe = &self.pes[self.pe_index(x, y).expect("in range")];
                let buf = pe.buffers.get(name)?;
                for z in 0..self.program.z_dim {
                    out.set(x, y, z, buf[(self.program.z_halo + z) as usize]);
                }
            }
        }
        Some(out)
    }

    /// Extracts every observable field as a [`GridState`] (legacy
    /// semantics: missing fields are silently dropped).  Internal
    /// double-buffer fields are excluded, mirroring
    /// [`crate::exec::WseGridSim::grid_state`].
    pub fn grid_state(&self) -> GridState {
        let names: Vec<String> = self
            .program
            .field_buffers
            .iter()
            .filter(|n| !self.program.internal_fields.contains(n))
            .cloned()
            .collect();
        let fields = names.iter().filter_map(|n| self.field(n)).collect();
        GridState { names, fields }
    }
}
