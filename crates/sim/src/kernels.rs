//! Explicit SIMD kernels for the linked engine's hot loops.
//!
//! The run phase does not interpret instructions element by element:
//! [`crate::plan`] lowers every linked block into a stream of planned
//! operations, each carrying a *monomorphized* kernel function pointer
//! from this module — one concrete function per (operation, arity ≤
//! [`MAX_ARITY`], init kind, instruction set, FMA mode) combination, so
//! the per-element loop bodies are straight-line vector code with no
//! per-element branching and no bounds checks.
//!
//! # Instruction sets
//!
//! [`Isa::detect`] picks the widest available implementation at runtime:
//! 8-lane AVX2, 4-lane SSE2 (the x86-64 baseline), or the portable scalar
//! fallback on other architectures.  `WSE_SIM_NO_SIMD=1` (see
//! [`crate::link::LinkOptions::from_env`]) forces the scalar set so
//! conformance and benches can pin the vector paths against it.
//!
//! # The bitwise guarantee
//!
//! Every lane of every vector kernel performs *exactly* the per-element
//! f32 operation sequence of the scalar instruction stream it replaces:
//! multiplies and adds are issued as separate, individually rounded
//! operations (`mulps` + `addps`, never a contracted `vfmadd`), lanes
//! never reassociate across elements, and the loop tail (`len %
//! LANES`) runs the identical scalar sequence.  Results are therefore
//! bitwise identical across AVX2, SSE2, and scalar execution — the
//! conformance harness runs SIMD-on and SIMD-off streams on every seed
//! and requires identical bits.
//!
//! The opt-in `fast_fma` mode (`WSE_SIM_FAST_FMA=1` or
//! [`crate::link::LinkOptions::fast_fma`]) replaces each mul-then-add
//! pair with a single-rounded fused multiply-add (`vfmadd`, or
//! `f32::mul_add` in the tail and scalar set).  That changes rounding, so
//! fast-FMA streams are validated through the conformance *tolerance*
//! path against the reference executor instead of the bitwise path.

/// Largest sweep arity with its own monomorphized kernel.  Wider fused
/// chains run as one head sweep plus `AccSelf` continuation sweeps of at
/// most this many terms each (the per-element operation order is
/// unchanged — see [`crate::plan`]).
pub const MAX_ARITY: usize = 6;

/// One resolved multiply-accumulate term of a sweep call: a raw source
/// pointer (arena or snapshot column, `len` elements readable) and its
/// coefficient.
#[derive(Debug, Clone, Copy)]
pub struct Term {
    /// First source element.
    pub src: *const f32,
    /// Scalar coefficient.
    pub coeff: f32,
}

impl Term {
    /// A placeholder term (null source); never dereferenced because every
    /// kernel reads exactly its monomorphized arity.
    pub const NULL: Term = Term { src: std::ptr::null(), coeff: 0.0 };
}

/// A monomorphized reduction sweep:
/// `d[j] = init(j) + Σ_{i<N} terms[i].coeff · terms[i].src[j]` for
/// `j < len`, applied left to right per element.  `init(j)` is `fill`
/// when the kernel was selected with a fill init, else `acc[j]` (`acc`
/// may equal `d`; any distinct pointer must be disjoint).
///
/// # Safety
/// `d` must be valid for `len` writes, every term source (and `acc`, for
/// accumulator-init kernels) for `len` reads, sources must not overlap
/// `d` (except `acc == d`), `terms` must hold at least the kernel's
/// arity, and the CPU must support the kernel's instruction set.
pub type SweepFn =
    unsafe fn(d: *mut f32, len: usize, fill: f32, acc: *const f32, terms: *const Term);

/// One source term of a row-batched sweep call: the source pointer for
/// the *first* PE of the segment, the per-PE pointer stride in elements
/// (0 for the shared zero column), and the coefficient.
#[derive(Debug, Clone, Copy)]
pub struct BatchTerm {
    /// First source element of the first PE.
    pub src: *const f32,
    /// Elements to advance per PE.
    pub stride: usize,
    /// Scalar coefficient.
    pub coeff: f32,
}

impl BatchTerm {
    /// A placeholder term (null source); never dereferenced because every
    /// kernel reads exactly its monomorphized arity.
    pub const NULL: BatchTerm = BatchTerm { src: std::ptr::null(), stride: 0, coeff: 0.0 };
}

/// A row-batched [`SweepFn`]: one call executes the same sweep on
/// `n_pes` consecutive PEs, advancing the destination (and accumulator,
/// for accumulator-init kernels) by `pe_stride` elements per PE and each
/// term source by its own [`BatchTerm::stride`].  Coefficient splats and
/// term decoding are hoisted out of the per-PE loop, so dispatch cost is
/// paid once per row segment instead of once per PE.  Per-element
/// arithmetic is identical to the unbatched kernel — results are bitwise
/// identical to `n_pes` individual [`SweepFn`] calls.
///
/// # Safety
/// As [`SweepFn`], for every PE `p < n_pes` at its strided offsets; the
/// destination spans of distinct PEs must not overlap any other PE's
/// sources.
pub type SweepRowFn = unsafe fn(
    d: *mut f32,
    len: usize,
    fill: f32,
    acc: *const f32,
    terms: *const BatchTerm,
    n_pes: usize,
    pe_stride: usize,
);

/// A monomorphized elementwise binary kernel: `d[j] = a[j] <op> b[j]`.
///
/// # Safety
/// `d` valid for `len` writes, `a`/`b` for `len` reads; each source is
/// either exactly `d` or disjoint from it (partial overlap is undefined);
/// the CPU must support the kernel's instruction set.
pub type MapFn = unsafe fn(d: *mut f32, a: *const f32, b: *const f32, len: usize);

/// A monomorphized multiply-accumulate kernel:
/// `d[j] = acc[j] + src[j] * coeff`.
///
/// # Safety
/// Same aliasing contract as [`MapFn`] (`acc`/`src` exactly `d` or
/// disjoint).
pub type MacsFn = unsafe fn(d: *mut f32, acc: *const f32, src: *const f32, coeff: f32, len: usize);

/// The instruction set a kernel set is compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar fallback (1 lane).
    Scalar,
    /// SSE2, the x86-64 baseline (4 lanes).
    Sse2,
    /// AVX2 (8 lanes).
    Avx2,
}

impl Isa {
    /// The widest instruction set the host supports.  Pure hardware
    /// detection — the `WSE_SIM_NO_SIMD` toggle is applied by
    /// [`crate::link::LinkOptions`], not here, so explicit options always
    /// win over the environment.
    pub fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                Isa::Avx2
            } else {
                Isa::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Isa::Scalar
        }
    }

    /// f32 lanes per vector operation.
    pub fn lanes(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Sse2 => 4,
            Isa::Avx2 => 8,
        }
    }

    /// Human-readable name (for bench output and stats).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
        }
    }
}

/// One complete set of kernel pointers for an (ISA, FMA-mode) pair; the
/// plan compiler copies pointers out of this table once per program.
#[derive(Debug, Clone, Copy)]
pub struct KernelSet {
    /// The ISA the set is compiled for.
    pub isa: Isa,
    /// Whether mul-then-add pairs are contracted to fused multiply-adds
    /// (the tolerance-gated `fast_fma` mode).
    pub fast_fma: bool,
    /// `sweeps[acc][arity]`: sweep kernels with a fill init (`acc = 0`)
    /// or an accumulator init (`acc = 1`), arity `0..=MAX_ARITY`.
    pub sweeps: [[SweepFn; MAX_ARITY + 1]; 2],
    /// Row-batched variants of `sweeps`, indexed identically.
    pub sweep_rows: [[SweepRowFn; MAX_ARITY + 1]; 2],
    /// Elementwise binaries indexed by [`crate::loader::BinKind`] order:
    /// add, sub, mul.
    pub binary: [MapFn; 3],
    /// The multiply-accumulate kernel.
    pub macs: MacsFn,
}

impl KernelSet {
    /// The sweep kernel for the given init kind and arity (`arity ≤
    /// MAX_ARITY`).
    pub fn sweep(&self, acc_init: bool, arity: usize) -> SweepFn {
        self.sweeps[usize::from(acc_init)][arity]
    }

    /// The row-batched sweep kernel for the given init kind and arity.
    pub fn sweep_row(&self, acc_init: bool, arity: usize) -> SweepRowFn {
        self.sweep_rows[usize::from(acc_init)][arity]
    }
}

/// The kernel set for an instruction set and FMA mode.
pub fn kernel_set(isa: Isa, fast_fma: bool) -> &'static KernelSet {
    #[cfg(target_arch = "x86_64")]
    match (isa, fast_fma) {
        (Isa::Avx2, false) => &avx2::EXACT,
        (Isa::Avx2, true) => &avx2::FMA,
        (Isa::Sse2, false) => &sse2::EXACT,
        (Isa::Sse2, true) => &sse2::FMA,
        (Isa::Scalar, false) => &scalar::EXACT,
        (Isa::Scalar, true) => &scalar::FMA,
    }
    #[cfg(not(target_arch = "x86_64"))]
    match (isa, fast_fma) {
        (_, false) => &scalar::EXACT,
        (_, true) => &scalar::FMA,
    }
}

// ------------------------------------------------------------------------
// Generic kernel bodies.  Each concrete ISA instantiates these through a
// `#[target_feature]` wrapper; the `#[inline(always)]` bodies are then
// compiled in the wrapper's feature context, so the `Vector` methods
// lower to the wrapper's instruction set.
// ------------------------------------------------------------------------

/// The vector backend a generic kernel body is monomorphized over.
///
/// # Safety
/// Implementations lower to ISA intrinsics; callers must only invoke
/// them (transitively, through the kernel wrappers) on hosts supporting
/// that ISA.
trait Vector: Copy {
    /// f32 lanes per vector.
    const LANES: usize;
    unsafe fn splat(x: f32) -> Self;
    unsafe fn load(p: *const f32) -> Self;
    unsafe fn store(self, p: *mut f32);
    unsafe fn add(self, o: Self) -> Self;
    unsafe fn sub(self, o: Self) -> Self;
    unsafe fn mul(self, o: Self) -> Self;
    /// `self * m + a` with a single rounding (the fast-FMA mode).
    unsafe fn mul_add(self, m: Self, a: Self) -> Self;
}

/// The generic sweep body: `N` is the arity, `ACC` selects the init kind,
/// `FMA` the contraction mode.  Lanes compute the per-element chain
/// `((init + s₀c₀) + s₁c₁) + …` exactly as the scalar stream does; the
/// tail loop repeats the identical scalar sequence for `len % LANES`
/// elements.
#[inline(always)]
unsafe fn sweep_body<W: Vector, const N: usize, const ACC: bool, const FMA: bool>(
    d: *mut f32,
    len: usize,
    fill: f32,
    acc: *const f32,
    terms: *const Term,
) {
    let mut srcs = [std::ptr::null::<f32>(); N];
    let mut coeffs = [0.0f32; N];
    for (i, (s, c)) in srcs.iter_mut().zip(coeffs.iter_mut()).enumerate() {
        let term = *terms.add(i);
        *s = term.src;
        *c = term.coeff;
    }
    let mut cv = [W::splat(0.0); N];
    for (v, c) in cv.iter_mut().zip(coeffs.iter()) {
        *v = W::splat(*c);
    }
    let fill_v = W::splat(fill);
    sweep_span::<W, N, ACC, FMA>(d, len, fill, fill_v, acc, &srcs, &cv, &coeffs);
}

/// The innermost sweep loop over one destination span: shared by the
/// per-PE and row-batched bodies so both compile to the identical
/// per-element operation sequence.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_span<W: Vector, const N: usize, const ACC: bool, const FMA: bool>(
    d: *mut f32,
    len: usize,
    fill: f32,
    fill_v: W,
    acc: *const f32,
    srcs: &[*const f32; N],
    cv: &[W; N],
    coeffs: &[f32; N],
) {
    let mut j = 0usize;
    while j + W::LANES <= len {
        let mut v = if ACC { W::load(acc.add(j)) } else { fill_v };
        for (s, c) in srcs.iter().zip(cv.iter()) {
            let s = W::load(s.add(j));
            v = if FMA { s.mul_add(*c, v) } else { v.add(s.mul(*c)) };
        }
        v.store(d.add(j));
        j += W::LANES;
    }
    while j < len {
        let mut x = if ACC { *acc.add(j) } else { fill };
        for (s, c) in srcs.iter().zip(coeffs.iter()) {
            let s = *s.add(j);
            x = if FMA { s.mul_add(*c, x) } else { x + s * *c };
        }
        *d.add(j) = x;
        j += 1;
    }
}

/// The row-batched sweep body: runs [`sweep_span`] once per PE with all
/// term decoding and coefficient splats hoisted out of the PE loop.
/// Pointers are advanced by multiplication (never past the final PE's
/// span), so no pointer ever leaves its allocation.
#[inline(always)]
unsafe fn sweep_row_body<W: Vector, const N: usize, const ACC: bool, const FMA: bool>(
    d: *mut f32,
    len: usize,
    fill: f32,
    acc: *const f32,
    terms: *const BatchTerm,
    n_pes: usize,
    pe_stride: usize,
) {
    let mut srcs = [std::ptr::null::<f32>(); N];
    let mut strides = [0usize; N];
    let mut coeffs = [0.0f32; N];
    for (i, ((s, t), c)) in
        srcs.iter_mut().zip(strides.iter_mut()).zip(coeffs.iter_mut()).enumerate()
    {
        let term = *terms.add(i);
        *s = term.src;
        *t = term.stride;
        *c = term.coeff;
    }
    let mut cv = [W::splat(0.0); N];
    for (v, c) in cv.iter_mut().zip(coeffs.iter()) {
        *v = W::splat(*c);
    }
    let fill_v = W::splat(fill);
    for pe in 0..n_pes {
        let pd = d.add(pe * pe_stride);
        let pa = if ACC { acc.add(pe * pe_stride) } else { acc };
        let mut pe_srcs = srcs;
        for (s, t) in pe_srcs.iter_mut().zip(strides.iter()) {
            *s = s.add(pe * t);
        }
        sweep_span::<W, N, ACC, FMA>(pd, len, fill, fill_v, pa, &pe_srcs, &cv, &coeffs);
    }
}

/// Elementwise binary body; `OP` selects add (0), sub (1), mul (2).
#[inline(always)]
unsafe fn map_body<W: Vector, const OP: u8>(d: *mut f32, a: *const f32, b: *const f32, len: usize) {
    let mut j = 0usize;
    while j + W::LANES <= len {
        let (x, y) = (W::load(a.add(j)), W::load(b.add(j)));
        let v = match OP {
            0 => x.add(y),
            1 => x.sub(y),
            _ => x.mul(y),
        };
        v.store(d.add(j));
        j += W::LANES;
    }
    while j < len {
        let (x, y) = (*a.add(j), *b.add(j));
        *d.add(j) = match OP {
            0 => x + y,
            1 => x - y,
            _ => x * y,
        };
        j += 1;
    }
}

/// Multiply-accumulate body: `d[j] = acc[j] + src[j] * coeff`.
#[inline(always)]
unsafe fn macs_body<W: Vector, const FMA: bool>(
    d: *mut f32,
    acc: *const f32,
    src: *const f32,
    coeff: f32,
    len: usize,
) {
    let cv = W::splat(coeff);
    let mut j = 0usize;
    while j + W::LANES <= len {
        let a = W::load(acc.add(j));
        let s = W::load(src.add(j));
        let v = if FMA { s.mul_add(cv, a) } else { a.add(s.mul(cv)) };
        v.store(d.add(j));
        j += W::LANES;
    }
    while j < len {
        let (a, s) = (*acc.add(j), *src.add(j));
        *d.add(j) = if FMA { s.mul_add(coeff, a) } else { a + s * coeff };
        j += 1;
    }
}

/// Expands the full kernel set for one ISA: `$wrap` is a macro wrapping a
/// body call in that ISA's `#[target_feature]` context.
macro_rules! kernel_tables {
    ($isa:expr, $W:ty, $wrap:ident) => {
        $wrap!(sweep0_e, sweep_body, $W, 0, false, false);
        $wrap!(sweep1_e, sweep_body, $W, 1, false, false);
        $wrap!(sweep2_e, sweep_body, $W, 2, false, false);
        $wrap!(sweep3_e, sweep_body, $W, 3, false, false);
        $wrap!(sweep4_e, sweep_body, $W, 4, false, false);
        $wrap!(sweep5_e, sweep_body, $W, 5, false, false);
        $wrap!(sweep6_e, sweep_body, $W, 6, false, false);
        $wrap!(sweep0a_e, sweep_body, $W, 0, true, false);
        $wrap!(sweep1a_e, sweep_body, $W, 1, true, false);
        $wrap!(sweep2a_e, sweep_body, $W, 2, true, false);
        $wrap!(sweep3a_e, sweep_body, $W, 3, true, false);
        $wrap!(sweep4a_e, sweep_body, $W, 4, true, false);
        $wrap!(sweep5a_e, sweep_body, $W, 5, true, false);
        $wrap!(sweep6a_e, sweep_body, $W, 6, true, false);
        $wrap!(sweep0_f, sweep_body, $W, 0, false, true);
        $wrap!(sweep1_f, sweep_body, $W, 1, false, true);
        $wrap!(sweep2_f, sweep_body, $W, 2, false, true);
        $wrap!(sweep3_f, sweep_body, $W, 3, false, true);
        $wrap!(sweep4_f, sweep_body, $W, 4, false, true);
        $wrap!(sweep5_f, sweep_body, $W, 5, false, true);
        $wrap!(sweep6_f, sweep_body, $W, 6, false, true);
        $wrap!(sweep0a_f, sweep_body, $W, 0, true, true);
        $wrap!(sweep1a_f, sweep_body, $W, 1, true, true);
        $wrap!(sweep2a_f, sweep_body, $W, 2, true, true);
        $wrap!(sweep3a_f, sweep_body, $W, 3, true, true);
        $wrap!(sweep4a_f, sweep_body, $W, 4, true, true);
        $wrap!(sweep5a_f, sweep_body, $W, 5, true, true);
        $wrap!(sweep6a_f, sweep_body, $W, 6, true, true);
        $wrap!(row0_e, sweep_row_body, $W, 0, false, false);
        $wrap!(row1_e, sweep_row_body, $W, 1, false, false);
        $wrap!(row2_e, sweep_row_body, $W, 2, false, false);
        $wrap!(row3_e, sweep_row_body, $W, 3, false, false);
        $wrap!(row4_e, sweep_row_body, $W, 4, false, false);
        $wrap!(row5_e, sweep_row_body, $W, 5, false, false);
        $wrap!(row6_e, sweep_row_body, $W, 6, false, false);
        $wrap!(row0a_e, sweep_row_body, $W, 0, true, false);
        $wrap!(row1a_e, sweep_row_body, $W, 1, true, false);
        $wrap!(row2a_e, sweep_row_body, $W, 2, true, false);
        $wrap!(row3a_e, sweep_row_body, $W, 3, true, false);
        $wrap!(row4a_e, sweep_row_body, $W, 4, true, false);
        $wrap!(row5a_e, sweep_row_body, $W, 5, true, false);
        $wrap!(row6a_e, sweep_row_body, $W, 6, true, false);
        $wrap!(row0_f, sweep_row_body, $W, 0, false, true);
        $wrap!(row1_f, sweep_row_body, $W, 1, false, true);
        $wrap!(row2_f, sweep_row_body, $W, 2, false, true);
        $wrap!(row3_f, sweep_row_body, $W, 3, false, true);
        $wrap!(row4_f, sweep_row_body, $W, 4, false, true);
        $wrap!(row5_f, sweep_row_body, $W, 5, false, true);
        $wrap!(row6_f, sweep_row_body, $W, 6, false, true);
        $wrap!(row0a_f, sweep_row_body, $W, 0, true, true);
        $wrap!(row1a_f, sweep_row_body, $W, 1, true, true);
        $wrap!(row2a_f, sweep_row_body, $W, 2, true, true);
        $wrap!(row3a_f, sweep_row_body, $W, 3, true, true);
        $wrap!(row4a_f, sweep_row_body, $W, 4, true, true);
        $wrap!(row5a_f, sweep_row_body, $W, 5, true, true);
        $wrap!(row6a_f, sweep_row_body, $W, 6, true, true);
        $wrap!(map_add, map_body, $W, 0);
        $wrap!(map_sub, map_body, $W, 1);
        $wrap!(map_mul, map_body, $W, 2);
        $wrap!(macs_e, macs_body, $W, false);
        $wrap!(macs_f, macs_body, $W, true);

        /// The exact (bitwise-path) kernel set for this ISA.
        pub(super) static EXACT: super::KernelSet = super::KernelSet {
            isa: $isa,
            fast_fma: false,
            sweeps: [
                [sweep0_e, sweep1_e, sweep2_e, sweep3_e, sweep4_e, sweep5_e, sweep6_e],
                [sweep0a_e, sweep1a_e, sweep2a_e, sweep3a_e, sweep4a_e, sweep5a_e, sweep6a_e],
            ],
            sweep_rows: [
                [row0_e, row1_e, row2_e, row3_e, row4_e, row5_e, row6_e],
                [row0a_e, row1a_e, row2a_e, row3a_e, row4a_e, row5a_e, row6a_e],
            ],
            binary: [map_add, map_sub, map_mul],
            macs: macs_e,
        };

        /// The fast-FMA (tolerance-path) kernel set for this ISA.
        pub(super) static FMA: super::KernelSet = super::KernelSet {
            isa: $isa,
            fast_fma: true,
            sweeps: [
                [sweep0_f, sweep1_f, sweep2_f, sweep3_f, sweep4_f, sweep5_f, sweep6_f],
                [sweep0a_f, sweep1a_f, sweep2a_f, sweep3a_f, sweep4a_f, sweep5a_f, sweep6a_f],
            ],
            sweep_rows: [
                [row0_f, row1_f, row2_f, row3_f, row4_f, row5_f, row6_f],
                [row0a_f, row1a_f, row2a_f, row3a_f, row4a_f, row5a_f, row6a_f],
            ],
            binary: [map_add, map_sub, map_mul],
            macs: macs_f,
        };
    };
}

mod scalar {
    use super::{macs_body, map_body, sweep_body, sweep_row_body, BatchTerm, Term, Vector};

    /// One f32 "vector": the portable fallback, and the reference the
    /// vector sets are pinned against.
    #[derive(Clone, Copy)]
    pub(super) struct W(f32);

    impl Vector for W {
        const LANES: usize = 1;
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            W(x)
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            W(*p)
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            *p = self.0;
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            W(self.0 + o.0)
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            W(self.0 - o.0)
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            W(self.0 * o.0)
        }
        #[inline(always)]
        unsafe fn mul_add(self, m: Self, a: Self) -> Self {
            W(self.0.mul_add(m.0, a.0))
        }
    }

    /// Plain wrappers (no target feature needed for scalar code).
    macro_rules! wrap_scalar {
        ($name:ident, sweep_body, $W:ty, $n:expr, $acc:expr, $fma:expr) => {
            unsafe fn $name(d: *mut f32, len: usize, fill: f32, acc: *const f32, t: *const Term) {
                sweep_body::<$W, $n, $acc, $fma>(d, len, fill, acc, t)
            }
        };
        ($name:ident, sweep_row_body, $W:ty, $n:expr, $acc:expr, $fma:expr) => {
            unsafe fn $name(
                d: *mut f32,
                len: usize,
                fill: f32,
                acc: *const f32,
                t: *const BatchTerm,
                n_pes: usize,
                pe_stride: usize,
            ) {
                sweep_row_body::<$W, $n, $acc, $fma>(d, len, fill, acc, t, n_pes, pe_stride)
            }
        };
        ($name:ident, map_body, $W:ty, $op:expr) => {
            unsafe fn $name(d: *mut f32, a: *const f32, b: *const f32, len: usize) {
                map_body::<$W, $op>(d, a, b, len)
            }
        };
        ($name:ident, macs_body, $W:ty, $fma:expr) => {
            unsafe fn $name(d: *mut f32, acc: *const f32, src: *const f32, c: f32, len: usize) {
                macs_body::<$W, $fma>(d, acc, src, c, len)
            }
        };
    }

    kernel_tables!(super::Isa::Scalar, W, wrap_scalar);
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::{macs_body, map_body, sweep_body, sweep_row_body, BatchTerm, Term, Vector};
    use std::arch::x86_64::*;

    /// Four f32 lanes (`__m128`); SSE2 is the x86-64 baseline, so no
    /// runtime check is needed, but the kernels stay behind the same
    /// wrapper discipline as AVX2.  The fast-FMA variants additionally
    /// require the FMA feature (checked by [`super::Isa::detect`]'s AVX2
    /// gate — every AVX2 host has FMA; pre-AVX2 hosts fall back to
    /// `f32::mul_add` through the scalar tail semantics of `mulps+addps`
    /// replacement below).
    #[derive(Clone, Copy)]
    pub(super) struct W(__m128);

    impl Vector for W {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            W(_mm_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            W(_mm_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            W(_mm_add_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            W(_mm_sub_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            W(_mm_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul_add(self, m: Self, a: Self) -> Self {
            // SSE2 has no FMA instruction; emulate the single rounding
            // lane by lane so the fast-FMA mode stays consistent across
            // vector body and scalar tail.
            let mut xs = [0.0f32; 4];
            let mut ms = [0.0f32; 4];
            let mut as_ = [0.0f32; 4];
            _mm_storeu_ps(xs.as_mut_ptr(), self.0);
            _mm_storeu_ps(ms.as_mut_ptr(), m.0);
            _mm_storeu_ps(as_.as_mut_ptr(), a.0);
            for ((x, m), a) in xs.iter_mut().zip(ms.iter()).zip(as_.iter()) {
                *x = x.mul_add(*m, *a);
            }
            W(_mm_loadu_ps(xs.as_ptr()))
        }
    }

    /// `#[target_feature(enable = "sse2")]` wrappers: the generic bodies
    /// are `#[inline(always)]`, so they compile in this feature context.
    macro_rules! wrap_sse2 {
        ($name:ident, sweep_body, $W:ty, $n:expr, $acc:expr, $fma:expr) => {
            #[target_feature(enable = "sse2")]
            unsafe fn $name(d: *mut f32, len: usize, fill: f32, acc: *const f32, t: *const Term) {
                sweep_body::<$W, $n, $acc, $fma>(d, len, fill, acc, t)
            }
        };
        ($name:ident, sweep_row_body, $W:ty, $n:expr, $acc:expr, $fma:expr) => {
            #[target_feature(enable = "sse2")]
            unsafe fn $name(
                d: *mut f32,
                len: usize,
                fill: f32,
                acc: *const f32,
                t: *const BatchTerm,
                n_pes: usize,
                pe_stride: usize,
            ) {
                sweep_row_body::<$W, $n, $acc, $fma>(d, len, fill, acc, t, n_pes, pe_stride)
            }
        };
        ($name:ident, map_body, $W:ty, $op:expr) => {
            #[target_feature(enable = "sse2")]
            unsafe fn $name(d: *mut f32, a: *const f32, b: *const f32, len: usize) {
                map_body::<$W, $op>(d, a, b, len)
            }
        };
        ($name:ident, macs_body, $W:ty, $fma:expr) => {
            #[target_feature(enable = "sse2")]
            unsafe fn $name(d: *mut f32, acc: *const f32, src: *const f32, c: f32, len: usize) {
                macs_body::<$W, $fma>(d, acc, src, c, len)
            }
        };
    }

    kernel_tables!(super::Isa::Sse2, W, wrap_sse2);
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{macs_body, map_body, sweep_body, sweep_row_body, BatchTerm, Term, Vector};
    use std::arch::x86_64::*;

    /// Eight f32 lanes (`__m256`).
    #[derive(Clone, Copy)]
    pub(super) struct W(__m256);

    impl Vector for W {
        const LANES: usize = 8;
        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            W(_mm256_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            W(_mm256_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm256_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            W(_mm256_add_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            W(_mm256_sub_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            W(_mm256_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul_add(self, m: Self, a: Self) -> Self {
            W(_mm256_fmadd_ps(self.0, m.0, a.0))
        }
    }

    /// `#[target_feature(enable = "avx2,fma")]` wrappers: only installed
    /// in kernel sets selected after [`super::Isa::detect`] saw AVX2
    /// (every AVX2 part ships FMA; the exact-mode kernels never execute
    /// the `vfmadd` path anyway).
    macro_rules! wrap_avx2 {
        ($name:ident, sweep_body, $W:ty, $n:expr, $acc:expr, $fma:expr) => {
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $name(d: *mut f32, len: usize, fill: f32, acc: *const f32, t: *const Term) {
                sweep_body::<$W, $n, $acc, $fma>(d, len, fill, acc, t)
            }
        };
        ($name:ident, sweep_row_body, $W:ty, $n:expr, $acc:expr, $fma:expr) => {
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $name(
                d: *mut f32,
                len: usize,
                fill: f32,
                acc: *const f32,
                t: *const BatchTerm,
                n_pes: usize,
                pe_stride: usize,
            ) {
                sweep_row_body::<$W, $n, $acc, $fma>(d, len, fill, acc, t, n_pes, pe_stride)
            }
        };
        ($name:ident, map_body, $W:ty, $op:expr) => {
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $name(d: *mut f32, a: *const f32, b: *const f32, len: usize) {
                map_body::<$W, $op>(d, a, b, len)
            }
        };
        ($name:ident, macs_body, $W:ty, $fma:expr) => {
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $name(d: *mut f32, acc: *const f32, src: *const f32, c: f32, len: usize) {
                macs_body::<$W, $fma>(d, acc, src, c, len)
            }
        };
    }

    kernel_tables!(super::Isa::Avx2, W, wrap_avx2);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISAs executable on this host (scalar always; vector sets when
    /// detection allows).
    fn testable_isas() -> Vec<Isa> {
        let mut isas = vec![Isa::Scalar];
        match Isa::detect() {
            Isa::Avx2 => {
                isas.push(Isa::Sse2);
                isas.push(Isa::Avx2);
            }
            Isa::Sse2 => isas.push(Isa::Sse2),
            Isa::Scalar => {}
        }
        isas
    }

    /// Deterministic, non-trivial test data (varied exponents and signs).
    fn data(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = ((i as u32).wrapping_mul(2654435761).wrapping_add(salt) >> 8) as f32;
                (x / 65536.0 - 128.0) * 1.0001
            })
            .collect()
    }

    /// The exact per-element reference: the scalar operation sequence the
    /// kernels must reproduce bit for bit.
    fn reference_sweep(init: &[f32], srcs: &[Vec<f32>], coeffs: &[f32], len: usize) -> Vec<f32> {
        (0..len)
            .map(|j| {
                let mut x = init[j];
                for (s, c) in srcs.iter().zip(coeffs) {
                    x += s[j] * c;
                }
                x
            })
            .collect()
    }

    /// Tails and tiny views: every arity × init × ISA must be bitwise
    /// equal to the scalar reference at lengths around the 4- and 8-lane
    /// boundaries, including 0 and 1.
    #[test]
    fn sweeps_are_bitwise_equal_to_scalar_at_all_tail_lengths() {
        for isa in testable_isas() {
            let set = kernel_set(isa, false);
            for &len in &[0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 96, 97] {
                for arity in 0..=MAX_ARITY {
                    let srcs: Vec<Vec<f32>> = (0..arity).map(|i| data(len, 7 + i as u32)).collect();
                    let coeffs: Vec<f32> = (0..arity).map(|i| 0.25 - 0.125 * i as f32).collect();
                    let acc_init = data(len, 999);
                    let mut terms = [Term::NULL; MAX_ARITY];
                    for (t, (s, &c)) in terms.iter_mut().zip(srcs.iter().zip(&coeffs)) {
                        *t = Term { src: s.as_ptr(), coeff: c };
                    }
                    // Fill init.
                    let mut d = vec![0.0f32; len];
                    unsafe {
                        set.sweep(false, arity)(
                            d.as_mut_ptr(),
                            len,
                            1.5,
                            std::ptr::null(),
                            terms.as_ptr(),
                        )
                    };
                    let expect = reference_sweep(&vec![1.5; len], &srcs, &coeffs, len);
                    assert_eq!(
                        bits(&d),
                        bits(&expect),
                        "{}: fill init, arity {arity}, len {len}",
                        isa.name()
                    );
                    // Distinct accumulator init.
                    let mut d = vec![0.0f32; len];
                    unsafe {
                        set.sweep(true, arity)(
                            d.as_mut_ptr(),
                            len,
                            0.0,
                            acc_init.as_ptr(),
                            terms.as_ptr(),
                        )
                    };
                    let expect = reference_sweep(&acc_init, &srcs, &coeffs, len);
                    assert_eq!(
                        bits(&d),
                        bits(&expect),
                        "{}: acc init, arity {arity}, len {len}",
                        isa.name()
                    );
                    // Self accumulator (acc == d): reads each element
                    // before overwriting it.
                    let mut d = acc_init.clone();
                    unsafe {
                        set.sweep(true, arity)(d.as_mut_ptr(), len, 0.0, d.as_ptr(), terms.as_ptr())
                    };
                    assert_eq!(
                        bits(&d),
                        bits(&expect),
                        "{}: self-acc init, arity {arity}, len {len}",
                        isa.name()
                    );
                }
            }
        }
    }

    #[test]
    fn binary_and_macs_kernels_match_scalar_and_allow_exact_aliasing() {
        for isa in testable_isas() {
            let set = kernel_set(isa, false);
            for &len in &[0usize, 1, 7, 8, 9, 17, 96] {
                let a = data(len, 1);
                let b = data(len, 2);
                for (op, f) in [(0usize, "+"), (1, "-"), (2, "*")] {
                    let mut d = vec![0.0f32; len];
                    unsafe { set.binary[op](d.as_mut_ptr(), a.as_ptr(), b.as_ptr(), len) };
                    for j in 0..len {
                        let e = match op {
                            0 => a[j] + b[j],
                            1 => a[j] - b[j],
                            _ => a[j] * b[j],
                        };
                        assert_eq!(d[j].to_bits(), e.to_bits(), "{}: {f} len {len}", isa.name());
                    }
                    // In-place (d == a): the planned direct path.
                    let mut d = a.clone();
                    unsafe { set.binary[op](d.as_mut_ptr(), d.as_ptr(), b.as_ptr(), len) };
                    for j in 0..len {
                        let e = match op {
                            0 => a[j] + b[j],
                            1 => a[j] - b[j],
                            _ => a[j] * b[j],
                        };
                        assert_eq!(d[j].to_bits(), e.to_bits(), "{}: {f} in place", isa.name());
                    }
                }
                let mut d = vec![0.0f32; len];
                unsafe { (set.macs)(d.as_mut_ptr(), a.as_ptr(), b.as_ptr(), 0.375, len) };
                for j in 0..len {
                    assert_eq!(d[j].to_bits(), (a[j] + b[j] * 0.375).to_bits(), "{}", isa.name());
                }
                // In-place accumulate (d == acc).
                let mut d = a.clone();
                unsafe { (set.macs)(d.as_mut_ptr(), d.as_ptr(), b.as_ptr(), 0.375, len) };
                for j in 0..len {
                    assert_eq!(d[j].to_bits(), (a[j] + b[j] * 0.375).to_bits(), "{}", isa.name());
                }
            }
        }
    }

    /// The fast-FMA sets stay within a tight tolerance of the exact sets
    /// (one rounding difference per term) and are internally consistent
    /// between vector body and scalar tail.
    #[test]
    fn fast_fma_kernels_track_the_exact_kernels_within_tolerance() {
        for isa in testable_isas() {
            let exact = kernel_set(isa, false);
            let fma = kernel_set(isa, true);
            assert!(fma.fast_fma && !exact.fast_fma);
            let len = 33usize;
            let srcs: Vec<Vec<f32>> = (0..3).map(|i| data(len, 40 + i)).collect();
            let terms: Vec<Term> =
                srcs.iter().map(|s| Term { src: s.as_ptr(), coeff: 0.3333 }).collect();
            let mut terms6 = [Term::NULL; MAX_ARITY];
            terms6[..3].copy_from_slice(&terms);
            let mut de = vec![0.0f32; len];
            let mut df = vec![0.0f32; len];
            unsafe {
                exact.sweep(false, 3)(de.as_mut_ptr(), len, 2.0, std::ptr::null(), terms6.as_ptr());
                fma.sweep(false, 3)(df.as_mut_ptr(), len, 2.0, std::ptr::null(), terms6.as_ptr());
            }
            for j in 0..len {
                let delta = (de[j] - df[j]).abs();
                let scale = de[j].abs().max(1.0);
                assert!(delta / scale < 1e-5, "{}: [{j}] {} vs {}", isa.name(), de[j], df[j]);
            }
        }
    }

    #[test]
    fn detection_is_ordered_and_lanes_are_consistent() {
        let isa = Isa::detect();
        assert!(isa.lanes() >= 1);
        assert_eq!(Isa::Scalar.lanes(), 1);
        assert_eq!(Isa::Sse2.lanes(), 4);
        assert_eq!(Isa::Avx2.lanes(), 8);
        // The table returns a set compiled for what we asked.
        for isa in [Isa::Scalar, Isa::Sse2, Isa::Avx2] {
            // Construction is safe; only *calling* requires the feature.
            let set = kernel_set(isa, false);
            #[cfg(target_arch = "x86_64")]
            assert_eq!(set.isa, isa);
            #[cfg(not(target_arch = "x86_64"))]
            assert_eq!(set.isa, Isa::Scalar);
        }
    }

    /// The row-batched kernels must be bitwise identical to issuing the
    /// per-PE kernel once per PE at each strided offset — including
    /// stride-0 (shared zero-column) terms and both init kinds.
    #[test]
    fn row_batched_sweeps_match_per_pe_sweeps_bitwise() {
        for isa in testable_isas() {
            let set = kernel_set(isa, false);
            for &len in &[1usize, 7, 9, 31] {
                for arity in 0..=MAX_ARITY {
                    let n_pes = 5usize;
                    let pe_stride = len + 3; // padded arenas
                    let total = n_pes * pe_stride;
                    // Per-term backing: even terms stride with the PEs,
                    // odd terms are shared (stride 0).
                    let srcs: Vec<Vec<f32>> =
                        (0..arity).map(|i| data(total, 100 + i as u32)).collect();
                    let acc0 = data(total, 7);
                    let mut batch = [BatchTerm::NULL; MAX_ARITY];
                    let mut per_pe: Vec<[Term; MAX_ARITY]> = vec![[Term::NULL; MAX_ARITY]; n_pes];
                    for (i, s) in srcs.iter().enumerate() {
                        let stride = if i % 2 == 0 { pe_stride } else { 0 };
                        let coeff = 0.21 + 0.1 * i as f32;
                        batch[i] = BatchTerm { src: s.as_ptr(), stride, coeff };
                        for (p, terms) in per_pe.iter_mut().enumerate() {
                            terms[i] = Term { src: unsafe { s.as_ptr().add(p * stride) }, coeff };
                        }
                    }
                    for acc_init in [false, true] {
                        let mut expect = vec![0.0f32; total];
                        let mut got = vec![0.0f32; total];
                        let acc = if acc_init { acc0.as_ptr() } else { std::ptr::null() };
                        unsafe {
                            for (p, terms) in per_pe.iter().enumerate() {
                                set.sweep(acc_init, arity)(
                                    expect.as_mut_ptr().add(p * pe_stride),
                                    len,
                                    1.25,
                                    if acc_init { acc.add(p * pe_stride) } else { acc },
                                    terms.as_ptr(),
                                );
                            }
                            set.sweep_row(acc_init, arity)(
                                got.as_mut_ptr(),
                                len,
                                1.25,
                                acc,
                                batch.as_ptr(),
                                n_pes,
                                pe_stride,
                            );
                        }
                        assert_eq!(
                            bits(&got),
                            bits(&expect),
                            "{}: len {len} arity {arity} acc {acc_init}",
                            isa.name()
                        );
                    }
                }
            }
        }
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
}
