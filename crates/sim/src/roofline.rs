//! Roofline model (Figure 7 of the paper).
//!
//! For each benchmark two points are plotted on the WSE3 roofline: one
//! assuming all data accesses hit PE-local memory and one assuming all
//! accesses traverse the fabric.  The acoustic benchmark is additionally
//! placed on a single-A100 roofline, where it is memory bound.

use crate::kernels::Isa;
use crate::machine::{ComparisonDevice, WseMachine};

/// Which bandwidth bounds a roofline point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundedness {
    /// Below the sloped (bandwidth) part of the roofline.
    MemoryBound,
    /// Below the flat (peak-compute) part of the roofline.
    ComputeBound,
}

/// One point on a roofline plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Label, e.g. `"Seismic (memory)"`.
    pub label: String,
    /// Arithmetic intensity in FLOP/byte.
    pub arithmetic_intensity: f64,
    /// Achieved performance in FLOP/s.
    pub flops: f64,
    /// Attainable performance at this intensity in FLOP/s.
    pub attainable_flops: f64,
    /// Whether the point is memory or compute bound.
    pub boundedness: Boundedness,
}

/// A machine roofline: peak compute plus one or more bandwidth ceilings.
#[derive(Debug, Clone, PartialEq)]
pub struct Roofline {
    /// Machine name.
    pub name: String,
    /// Peak performance in FLOP/s.
    pub peak_flops: f64,
    /// Bandwidth in bytes/s used for the sloped ceiling.
    pub bandwidth: f64,
}

impl Roofline {
    /// Attainable FLOP/s at the given arithmetic intensity.
    pub fn attainable(&self, arithmetic_intensity: f64) -> f64 {
        (self.bandwidth * arithmetic_intensity).min(self.peak_flops)
    }

    /// Classifies a point at the given intensity.
    pub fn boundedness(&self, arithmetic_intensity: f64) -> Boundedness {
        if self.bandwidth * arithmetic_intensity < self.peak_flops {
            Boundedness::MemoryBound
        } else {
            Boundedness::ComputeBound
        }
    }

    /// Places a kernel on this roofline.
    pub fn place(&self, label: &str, arithmetic_intensity: f64, flops: f64) -> RooflinePoint {
        RooflinePoint {
            label: label.to_string(),
            arithmetic_intensity,
            flops,
            attainable_flops: self.attainable(arithmetic_intensity),
            boundedness: self.boundedness(arithmetic_intensity),
        }
    }
}

/// The WSE roofline using aggregate local-memory bandwidth.
pub fn wse_memory_roofline(machine: &WseMachine) -> Roofline {
    Roofline {
        name: format!("{} memory", machine.generation.name()),
        peak_flops: machine.peak_flops(),
        bandwidth: machine.memory_bandwidth_pbs * 1e15,
    }
}

/// The WSE roofline using aggregate fabric bandwidth.
pub fn wse_fabric_roofline(machine: &WseMachine) -> Roofline {
    Roofline {
        name: format!("{} fabric", machine.generation.name()),
        peak_flops: machine.peak_flops(),
        bandwidth: machine.fabric_bandwidth_pbs * 1e15,
    }
}

/// The roofline of a conventional device (A100, EPYC node).
pub fn device_roofline(device: &ComparisonDevice) -> Roofline {
    Roofline {
        name: device.name.to_string(),
        peak_flops: device.peak_tflops * 1e12,
        bandwidth: device.memory_bandwidth_tbs * 1e12,
    }
}

/// The *host* CPU's single-core SIMD peak for the simulator's own f32
/// kernels (not a WSE roofline): `lanes × FP ports × clock`, doubled when
/// fused multiply-adds are in play.  The throughput bench divides the
/// engine's achieved FLOP/s by this to report what fraction of the
/// vector ALUs the explicit kernel plans actually reach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimdPeak {
    /// The kernel instruction set being measured.
    pub isa: Isa,
    /// f32 lanes per vector operation ([`Isa::lanes`]).
    pub lanes: usize,
    /// Vector FP execution ports assumed per core (2 on every recent
    /// x86-64 part).
    pub fp_ports: usize,
    /// Core clock in GHz.
    pub ghz: f64,
}

impl SimdPeak {
    /// Peak model for `isa` at `ghz` (2 FP ports assumed).
    pub fn new(isa: Isa, ghz: f64) -> SimdPeak {
        SimdPeak { isa, lanes: isa.lanes(), fp_ports: 2, ghz }
    }

    /// Peak f32 FLOP/s.  The exact (bitwise) kernels issue multiplies and
    /// adds as separate ops — one FLOP per op — while `fused` counts two
    /// FLOPs per contracted multiply-add.
    pub fn peak_flops(&self, fused: bool) -> f64 {
        let flops_per_op = if fused { 2.0 } else { 1.0 };
        self.lanes as f64 * self.fp_ports as f64 * flops_per_op * self.ghz * 1e9
    }

    /// Fraction of the SIMD peak a measured FLOP/s rate achieves.
    pub fn achieved_fraction(&self, flops: f64, fused: bool) -> f64 {
        flops / self.peak_flops(fused)
    }
}

/// Arithmetic intensity of a stencil when every access hits local memory:
/// per point, `points_read` reads plus one write of 4-byte values.
pub fn memory_arithmetic_intensity(flops_per_point: u64, points_read: usize) -> f64 {
    flops_per_point as f64 / ((points_read as f64 + 1.0) * 4.0)
}

/// Arithmetic intensity when only the halo traffic goes over the fabric:
/// per point, `halo_values` values of 4 bytes cross the fabric.
pub fn fabric_arithmetic_intensity(flops_per_point: u64, halo_values_per_point: f64) -> f64 {
    flops_per_point as f64 / (halo_values_per_point.max(1e-9) * 4.0)
}

/// Arithmetic intensity of a stencil on a cache-based device, where each
/// point's data is ideally read and written once per sweep per field.
pub fn cache_arithmetic_intensity(flops_per_point: u64, fields: usize) -> f64 {
    flops_per_point as f64 / ((fields as f64 + 1.0) * 2.0 * 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{WseGeneration, A100};

    #[test]
    fn roofline_breaks_at_the_ridge_point() {
        let machine = WseGeneration::Wse3.machine();
        let roofline = wse_memory_roofline(&machine);
        let ridge = roofline.peak_flops / roofline.bandwidth;
        assert!(roofline.attainable(ridge * 0.5) < roofline.peak_flops);
        assert_eq!(roofline.attainable(ridge * 10.0), roofline.peak_flops);
        assert_eq!(roofline.boundedness(ridge * 0.5), Boundedness::MemoryBound);
        assert_eq!(roofline.boundedness(ridge * 10.0), Boundedness::ComputeBound);
    }

    #[test]
    fn wse_benchmarks_are_compute_bound_acoustic_on_a100_is_not() {
        let machine = WseGeneration::Wse3.machine();
        let memory = wse_memory_roofline(&machine);
        let fabric = wse_fabric_roofline(&machine);
        // Acoustic: 13-pt, 2 fields, ~30 flops/point; halo ≈ 8 values / z.
        let ai_memory = memory_arithmetic_intensity(30, 14);
        let ai_fabric = fabric_arithmetic_intensity(30, 8.0 / 604.0);
        assert_eq!(memory.boundedness(ai_memory), Boundedness::ComputeBound);
        assert_eq!(fabric.boundedness(ai_fabric), Boundedness::ComputeBound);
        // On a single A100 the same kernel is memory bound.
        let a100 = device_roofline(&A100);
        let ai_cache = cache_arithmetic_intensity(30, 2);
        assert_eq!(a100.boundedness(ai_cache), Boundedness::MemoryBound);
    }

    #[test]
    fn simd_peak_scales_with_lanes_and_fma() {
        let scalar = SimdPeak::new(Isa::Scalar, 2.0);
        let avx2 = SimdPeak::new(Isa::Avx2, 2.0);
        assert_eq!(scalar.peak_flops(false), 2.0 * 2e9);
        assert_eq!(avx2.peak_flops(false), 8.0 * 2.0 * 2e9);
        assert_eq!(avx2.peak_flops(true), 2.0 * avx2.peak_flops(false));
        let fraction = avx2.achieved_fraction(avx2.peak_flops(false) / 4.0, false);
        assert!((fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fabric_roofline_is_below_memory_roofline() {
        let machine = WseGeneration::Wse3.machine();
        let memory = wse_memory_roofline(&machine);
        let fabric = wse_fabric_roofline(&machine);
        assert!(fabric.bandwidth < memory.bandwidth);
        let point = fabric.place("Jacobian (fabric)", 0.5, 1e14);
        assert!(point.attainable_flops <= memory.attainable(0.5));
        assert_eq!(point.label, "Jacobian (fabric)");
    }
}
