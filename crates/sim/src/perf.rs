//! Analytic performance model: per-PE cycle accounting extrapolated to a
//! full wafer.
//!
//! The model charges one cycle per 32-bit element for DSD compute builtins,
//! one cycle per 32-bit wavelet per link for fabric transfers (plus hop
//! latency), and a fixed activation overhead per software-actor task.  The
//! WSE2's older switch configuration additionally requires every PE to
//! transmit to itself on each route, which is modelled as extra fabric
//! traffic and extra internal tasks — the dominant reason for the WSE2 /
//! WSE3 gap reported in Figure 4.

use crate::loader::{Instr, LoadedKernel, LoadedProgram, SlotSpec};
use crate::machine::WseMachine;

/// Fixed per-DSD-operation issue overhead in cycles.
const DSD_ISSUE_CYCLES: u64 = 4;
/// Cycles per 32-bit element processed by a DSD builtin (an fmacs touches
/// three memory streams per element, so sustained throughput is below one
/// element per cycle).
const CYCLES_PER_ELEMENT: u64 = 2;
/// Per-hop router latency in cycles.
const HOP_LATENCY_CYCLES: u64 = 7;
/// Cycles to invoke the communication library entry point per exchange.
const COMM_SETUP_CYCLES: u64 = 60;

/// Cycle breakdown of one timestep on one PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// Cycles spent in DSD compute builtins.
    pub compute: u64,
    /// Cycles spent moving halo data through the fabric (non-overlapped).
    pub communication: u64,
    /// Cycles spent activating and dispatching tasks.
    pub task_overhead: u64,
}

impl CycleBreakdown {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.compute + self.communication + self.task_overhead
    }
}

/// A performance estimate for one benchmark on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEstimate {
    /// Cycles per timestep per PE (critical path).
    pub cycles_per_timestep: u64,
    /// Breakdown of those cycles.
    pub breakdown: CycleBreakdown,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Throughput in giga grid-points per second.
    pub gpts_per_sec: f64,
    /// Sustained TFLOP/s.
    pub tflops: f64,
    /// Fraction of the machine's peak FLOP/s.
    pub fraction_of_peak: f64,
    /// Number of software-actor tasks activated per timestep per PE.
    pub tasks_per_timestep: u64,
}

fn instr_cycles(instrs: &[Instr]) -> u64 {
    instrs.iter().map(|i| i.elements() as u64 * CYCLES_PER_ELEMENT + DSD_ISSUE_CYCLES).sum()
}

/// Per-exchange fabric profile derived from the receive slots, modelling
/// dimension-ordered (x-then-y) routing.  Cardinal star exchanges reduce
/// to the paper's per-direction column counts; box/diagonal exchanges
/// route their final hop over a shared link and travel `|dx| + |dy|`
/// hops, both of which the cardinal-only model undercounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricProfile {
    /// Largest number of neighbor columns entering a PE over any one of
    /// its four links (the serialization bottleneck: links run in
    /// parallel, columns on one link do not).
    pub max_link_load: u64,
    /// Longest slot route in hops (`|dx| + |dy|`, at least 1).
    pub max_hops: u64,
}

/// Computes the [`FabricProfile`] of an exchange's receive slots.
pub fn fabric_profile(slots: &[SlotSpec]) -> FabricProfile {
    let mut link_loads = [0u64; 4];
    let mut max_hops = 1u64;
    for slot in slots {
        // With x-then-y routing the slot's final hop — the link it lands
        // on — is along y whenever it moves in y at all.
        let link = match (slot.dx, slot.dy) {
            (_, dy) if dy > 0 => 0,
            (_, dy) if dy < 0 => 1,
            (dx, _) if dx > 0 => 2,
            _ => 3,
        };
        link_loads[link] += 1;
        max_hops = max_hops.max(slot.dx.unsigned_abs() + slot.dy.unsigned_abs());
    }
    let max_link_load = link_loads.iter().copied().max().unwrap_or(0).max(1);
    FabricProfile { max_link_load, max_hops }
}

/// Cycles and task counts for one kernel in one timestep.
fn kernel_cycles(kernel: &LoadedKernel, machine: &WseMachine) -> CycleBreakdown {
    let mut breakdown = CycleBreakdown::default();
    breakdown.compute += instr_cycles(&kernel.pre);
    breakdown.task_overhead += machine.task_activation_cycles; // the seq_kernel call itself
    let Some(comm) = &kernel.comm else {
        return breakdown;
    };

    let directions = 4u64;
    let self_transmit_factor = if machine.self_transmit { 1.25 } else { 1.0 };
    // Per chunk, the busiest link serializes its slots' chunks at one
    // element per cycle (links run in parallel), and the longest route
    // pays per-hop latency.  For the paper's cardinal star stencils this
    // reduces to `pattern` columns per direction and `pattern` hops; box
    // and diagonal exchanges now charge their true link loads and
    // Manhattan routes.
    let profile = fabric_profile(&comm.slots);
    let elements_per_link = profile.max_link_load * comm.chunk_size as u64;
    let per_chunk_fabric = (elements_per_link as f64 * self_transmit_factor) as u64
        + HOP_LATENCY_CYCLES * profile.max_hops;
    let fabric_total = COMM_SETUP_CYCLES + per_chunk_fabric * comm.num_chunks as u64;

    // Receive-side reduction runs once per chunk and overlaps with the
    // fabric transfer of the next chunk.  On the WSE2 the self-transmitted
    // copy must also be drained, inflating the receive-side work.
    let mut recv_total = instr_cycles(&kernel.recv) * comm.num_chunks as u64;
    if machine.self_transmit {
        recv_total = recv_total * 3 / 2;
    }
    let overlapped = fabric_total.max(recv_total);
    breakdown.communication += overlapped.saturating_sub(recv_total.min(overlapped));
    breakdown.compute += recv_total.min(overlapped) + instr_cycles(&kernel.done);

    // Task accounting: the library uses one send-completion and one
    // receive-completion task per direction per chunk, plus the user
    // callbacks (one per chunk) and the done callback.  The WSE2 switch
    // workaround adds one extra task per direction per chunk.
    let mut tasks = comm.num_chunks as u64 * (2 * directions + 1) + 1;
    if machine.self_transmit {
        tasks += comm.num_chunks as u64 * directions;
    }
    breakdown.task_overhead += tasks * machine.task_activation_cycles;
    breakdown
}

/// Number of tasks activated per timestep (used for reporting).
pub fn tasks_per_timestep(program: &LoadedProgram, machine: &WseMachine) -> u64 {
    let mut tasks = 0u64;
    for kernel in &program.kernels {
        tasks += 1;
        if let Some(comm) = &kernel.comm {
            tasks += comm.num_chunks as u64 * (2 * 4 + 1) + 1;
            if machine.self_transmit {
                tasks += comm.num_chunks as u64 * 4;
            }
        }
    }
    // Timestep loop bookkeeping (for_cond / for_inc).
    tasks + 2
}

/// Estimates the performance of a lowered program on `machine`.
///
/// `grid` is the logical problem size `(x, y, z)` and `timesteps` the run
/// length; `flops_per_point` comes from the front-end program.
pub fn estimate_performance(
    program: &LoadedProgram,
    machine: &WseMachine,
    grid: (i64, i64, i64),
    timesteps: i64,
    flops_per_point: u64,
) -> PerfEstimate {
    let mut breakdown = CycleBreakdown::default();
    for kernel in &program.kernels {
        let k = kernel_cycles(kernel, machine);
        breakdown.compute += k.compute;
        breakdown.communication += k.communication;
        breakdown.task_overhead += k.task_overhead;
    }
    // Timestep-loop bookkeeping tasks.
    breakdown.task_overhead += 2 * machine.task_activation_cycles;

    let cycles_per_timestep = breakdown.total().max(1);
    let seconds = cycles_per_timestep as f64 * timesteps as f64 / (machine.clock_ghz * 1e9);
    let points = grid.0 as f64 * grid.1 as f64 * grid.2 as f64;
    let gpts_per_sec = points * timesteps as f64 / seconds / 1e9;
    let tflops = gpts_per_sec * 1e9 * flops_per_point as f64 / 1e12;
    let fraction_of_peak = (tflops * 1e12) / machine.peak_flops();
    PerfEstimate {
        cycles_per_timestep,
        breakdown,
        seconds,
        gpts_per_sec,
        tflops,
        fraction_of_peak,
        tasks_per_timestep: tasks_per_timestep(program, machine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::load_program;
    use crate::machine::WseGeneration;
    use wse_frontends::benchmarks::{Benchmark, ProblemSize};
    use wse_lowering::{lower_program, PipelineOptions, WseTarget};

    fn estimate(
        benchmark: Benchmark,
        size: ProblemSize,
        target: WseTarget,
        num_chunks: i64,
    ) -> PerfEstimate {
        let program = benchmark.program(size);
        let options = PipelineOptions {
            target,
            num_chunks,
            width: Some(program.grid.x),
            height: Some(program.grid.y),
            ..PipelineOptions::default()
        };
        let lowered = lower_program(&program, &options).unwrap();
        let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
        let machine = match target {
            WseTarget::Wse2 => WseGeneration::Wse2.machine(),
            WseTarget::Wse3 => WseGeneration::Wse3.machine(),
        };
        estimate_performance(
            &loaded,
            &machine,
            (program.grid.x, program.grid.y, program.grid.z),
            program.timesteps,
            program.flops_per_point(),
        )
    }

    /// Table-driven coverage of the routing model: per-link loads and hop
    /// counts for cardinal, box, diagonal, and multi-field exchanges.
    #[test]
    fn fabric_profile_models_noncardinal_routes() {
        use crate::loader::SlotSpec;
        let slot = |dx: i64, dy: i64| SlotSpec { field: "a".into(), dx, dy };
        let star1 = vec![slot(1, 0), slot(-1, 0), slot(0, 1), slot(0, -1)];
        let star2: Vec<SlotSpec> =
            [1i64, -1, 2, -2].iter().flat_map(|&r| [slot(r, 0), slot(0, r)]).collect();
        // Box radius 1: the three dy = +1 slots all land on the north
        // link under x-then-y routing.
        let box1: Vec<SlotSpec> = (-1..=1)
            .flat_map(|dx| (-1..=1).map(move |dy| (dx, dy)))
            .filter(|&(dx, dy)| (dx, dy) != (0, 0))
            .map(|(dx, dy)| slot(dx, dy))
            .collect();
        let diagonal = vec![slot(1, 1), slot(-1, -1)];
        let two_fields_east = vec![
            SlotSpec { field: "a".into(), dx: 1, dy: 0 },
            SlotSpec { field: "b".into(), dx: 1, dy: 0 },
        ];
        let far_diagonal = vec![slot(3, -2)];
        let cases: [(&str, &[SlotSpec], u64, u64); 7] = [
            ("no slots", &[], 1, 1),
            ("star radius 1", &star1, 1, 1),
            ("star radius 2", &star2, 2, 2),
            ("box radius 1", &box1, 3, 2),
            ("diagonal pair", &diagonal, 1, 2),
            ("two fields east", &two_fields_east, 2, 1),
            ("far diagonal", &far_diagonal, 1, 5),
        ];
        for (label, slots, load, hops) in cases {
            let profile = fabric_profile(slots);
            assert_eq!(profile.max_link_load, load, "{label}: link load");
            assert_eq!(profile.max_hops, hops, "{label}: hops");
        }
    }

    /// A box-shaped exchange must cost more fabric time than the cardinal
    /// star with the same radius and chunking — the cardinal-only model
    /// charged them identically.
    #[test]
    fn box_exchanges_cost_more_than_cardinal_ones() {
        use crate::loader::{CommSpec, LoadedKernel, SlotSpec};
        let slot = |dx: i64, dy: i64| SlotSpec { field: "a".into(), dx, dy };
        let kernel = |slots: Vec<SlotSpec>| LoadedKernel {
            name: "seq_kernel0".into(),
            pre: Vec::new(),
            comm: Some(CommSpec {
                num_chunks: 2,
                chunk_size: 16,
                pattern: slots.iter().map(|s| s.dx.abs().max(s.dy.abs())).max().unwrap_or(1),
                slots,
                fields: vec!["a".into()],
            }),
            recv: Vec::new(),
            done: Vec::new(),
        };
        let star = kernel(vec![slot(1, 0), slot(-1, 0), slot(0, 1), slot(0, -1)]);
        let bx = kernel(
            (-1..=1)
                .flat_map(|dx| (-1..=1).map(move |dy| (dx, dy)))
                .filter(|&(dx, dy)| (dx, dy) != (0, 0))
                .map(|(dx, dy)| slot(dx, dy))
                .collect(),
        );
        let machine = WseGeneration::Wse3.machine();
        let star_cycles = kernel_cycles(&star, &machine).total();
        let box_cycles = kernel_cycles(&bx, &machine).total();
        assert!(box_cycles > star_cycles, "box ({box_cycles}) must exceed star ({star_cycles})");
    }

    #[test]
    fn wse3_beats_wse2_on_every_benchmark() {
        for benchmark in Benchmark::ALL {
            let wse2 = estimate(benchmark, ProblemSize::Small, WseTarget::Wse2, 2);
            let wse3 = estimate(benchmark, ProblemSize::Small, WseTarget::Wse3, 2);
            assert!(
                wse3.gpts_per_sec > wse2.gpts_per_sec,
                "{}: WSE3 ({:.1}) must outperform WSE2 ({:.1})",
                benchmark.name(),
                wse3.gpts_per_sec,
                wse2.gpts_per_sec
            );
            let ratio = wse3.gpts_per_sec / wse2.gpts_per_sec;
            assert!(ratio < 2.5, "{}: speedup {ratio:.2} is implausibly large", benchmark.name());
        }
    }

    #[test]
    fn larger_grids_give_higher_throughput() {
        let small = estimate(Benchmark::Jacobian, ProblemSize::Small, WseTarget::Wse3, 1);
        let large = estimate(Benchmark::Jacobian, ProblemSize::Large, WseTarget::Wse3, 1);
        // Per-PE time is identical; more PEs → proportionally more points.
        assert!(large.gpts_per_sec > 10.0 * small.gpts_per_sec);
    }

    #[test]
    fn throughput_is_in_a_plausible_range() {
        // Figure 4 reports O(10^3)-O(10^4) GPts/s for the large size.
        let est = estimate(Benchmark::Jacobian, ProblemSize::Large, WseTarget::Wse3, 1);
        assert!(est.gpts_per_sec > 500.0, "too slow: {} GPts/s", est.gpts_per_sec);
        assert!(est.gpts_per_sec < 100_000.0, "too fast: {} GPts/s", est.gpts_per_sec);
        assert!(est.fraction_of_peak < 1.0, "cannot exceed peak");
        assert!(est.tasks_per_timestep > 5);
    }

    #[test]
    fn seismic_is_compute_bound_at_large_z() {
        let est = estimate(Benchmark::Seismic25, ProblemSize::Large, WseTarget::Wse3, 1);
        assert!(
            est.breakdown.compute > est.breakdown.communication,
            "25-point stencil with z=450 should be compute dominated"
        );
    }
}
