//! Process-environment toggles, parsed in one place.
//!
//! Every `WSE_SIM_*` escape hatch goes through these helpers so that all
//! toggles accept the same spellings: [`env_flag`] treats `1`, `true`,
//! `yes`, and `on` (any case, surrounding whitespace ignored) as set, and
//! everything else — including `0`, `false`, and the empty string — as
//! unset.  Typed overrides like `WSE_SIM_HOST_GHZ` go through
//! [`env_value`], which ignores unset, empty, and unparseable values
//! instead of silently mixing per-call-site fallbacks.
//!
//! Fault-tolerance toggles: `WSE_SIM_FAULTS=<seed>:<rate>` arms a seeded
//! fault-injection campaign on the next run (see [`crate::fault`]), and
//! `WSE_SIM_CHECKPOINT_EVERY` / `WSE_SIM_WATCHDOG_MS` /
//! `WSE_SIM_MAX_ROLLBACKS` override the recovery defaults (see
//! [`crate::checkpoint`]).

/// True when the environment variable `name` is set to a truthy spelling:
/// `1`, `true`, `yes`, or `on`, case-insensitively, after trimming
/// whitespace.  Unset variables and any other value (including `0`,
/// `false`, and the empty string) read as false.
pub fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| parse_flag(&v)).unwrap_or(false)
}

/// The truthiness rule behind [`env_flag`], exposed for tests.
pub fn parse_flag(value: &str) -> bool {
    matches!(value.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on")
}

/// Parses the environment variable `name` into `T`, returning `None` when
/// it is unset, empty (after trimming), or fails to parse.
pub fn env_value<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    trimmed.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepted_and_rejected_flag_spellings() {
        for accepted in ["1", "true", "TRUE", "True", "yes", "YES", "on", "On", " 1 ", "\ttrue\n"] {
            assert!(parse_flag(accepted), "{accepted:?} must read as set");
        }
        for rejected in ["", "0", "false", "FALSE", "no", "off", "2", "enabled", " ", "1 1"] {
            assert!(!parse_flag(rejected), "{rejected:?} must read as unset");
        }
    }

    #[test]
    fn env_flag_and_value_read_the_process_environment() {
        // Distinct variable names per assertion: the test process is
        // shared, so never toggle a name another test could read.
        std::env::set_var("WSE_SIM_TEST_FLAG_SET", "TRUE");
        std::env::set_var("WSE_SIM_TEST_FLAG_ZERO", "0");
        std::env::set_var("WSE_SIM_TEST_FLAG_EMPTY", "");
        assert!(env_flag("WSE_SIM_TEST_FLAG_SET"));
        assert!(!env_flag("WSE_SIM_TEST_FLAG_ZERO"));
        assert!(!env_flag("WSE_SIM_TEST_FLAG_EMPTY"));
        assert!(!env_flag("WSE_SIM_TEST_FLAG_UNSET"));

        std::env::set_var("WSE_SIM_TEST_VALUE_GHZ", " 2.5 ");
        std::env::set_var("WSE_SIM_TEST_VALUE_BAD", "fast");
        assert_eq!(env_value::<f64>("WSE_SIM_TEST_VALUE_GHZ"), Some(2.5));
        assert_eq!(env_value::<f64>("WSE_SIM_TEST_VALUE_BAD"), None);
        assert_eq!(env_value::<f64>("WSE_SIM_TEST_VALUE_UNSET"), None);
        assert_eq!(env_value::<f64>("WSE_SIM_TEST_FLAG_EMPTY"), None);
    }
}
