//! Deterministic, seeded fault injection for the linked engine.
//!
//! Real wafer-scale runs last hours across ~850k PEs, where transient
//! bit-flips, dropped fabric deliveries, and wedged routers are an
//! operational fact.  This module gives the simulator the same failure
//! surface, deterministically: a [`FaultPlan`] is derived from a seed and
//! a per-step event rate, and injects faults at exec-phase boundaries —
//! arena bit-flips between steps, dropped or duplicated halo snapshot
//! deliveries inside a kernel's capture phase, and stalled or panicking
//! worker bands.
//!
//! Faults are *transient*: each planned event is consumed exactly once,
//! so a rollback-and-replay of the same step range (see
//! [`crate::checkpoint`]) runs clean, exactly like a transient hardware
//! fault that does not recur.  The plan is also *stateless per step*:
//! [`FaultPlan::for_range`] derives every step's events from `seed ^ step`
//! alone, so re-materializing a plan over a later range (as `run` does on
//! each call when `WSE_SIM_FAULTS` is set) yields the same events the
//! full-range plan would have.
//!
//! Spelling of the environment toggle: `WSE_SIM_FAULTS=<seed>:<rate>`,
//! e.g. `WSE_SIM_FAULTS=42:0.05` for one fault on ~5% of steps under
//! seed 42.  Malformed values are a typed error at engine construction,
//! never a silent no-op.

use crate::exec::ExecError;
use crate::link::LinkedProgram;

/// Panic message of injected [`FaultKind::BandPanic`] events.  Test
/// harnesses match on it to silence the expected panic reports of a fault
/// campaign without hiding real panics.
pub const INJECTED_BAND_PANIC: &str = "injected band fault";

/// Configuration for deterministic fault injection: a seed for the fault
/// stream and a per-step probability that a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultOptions {
    /// Seed of the fault event stream.  Two engines with the same seed,
    /// rate, and program inject identical faults.
    pub seed: u64,
    /// Per-step probability in `[0, 1]` that one fault event is injected
    /// at that step.
    pub rate: f64,
}

impl FaultOptions {
    /// Parses the `<seed>:<rate>` spelling used by `WSE_SIM_FAULTS`.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let trimmed = raw.trim();
        let (seed_part, rate_part) = trimmed
            .split_once(':')
            .ok_or_else(|| format!("expected <seed>:<rate>, got {trimmed:?}"))?;
        let seed: u64 = seed_part
            .trim()
            .parse()
            .map_err(|_| format!("fault seed {seed_part:?} is not a non-negative integer"))?;
        let rate: f64 = rate_part
            .trim()
            .parse()
            .map_err(|_| format!("fault rate {rate_part:?} is not a number"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} is outside [0, 1]"));
        }
        Ok(FaultOptions { seed, rate })
    }

    /// Reads `WSE_SIM_FAULTS=<seed>:<rate>` from the process environment.
    /// Unset or empty reads as `None`; a malformed value is a typed error
    /// (never a silent no-op, which would turn a fault campaign into a
    /// clean run without anyone noticing).
    pub fn from_env() -> Result<Option<Self>, ExecError> {
        let raw = match std::env::var("WSE_SIM_FAULTS") {
            Ok(raw) => raw,
            Err(_) => return Ok(None),
        };
        if raw.trim().is_empty() {
            return Ok(None);
        }
        match Self::parse(&raw) {
            Ok(options) => Ok(Some(options)),
            Err(detail) => Err(ExecError::invalid(format!("malformed WSE_SIM_FAULTS: {detail}"))),
        }
    }
}

/// One planned fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of one arena word on one PE, at the boundary *after*
    /// the step completes (and after its checksums/checkpoint are taken,
    /// so the corruption is detected at the next step's integrity check).
    ArenaBitFlip {
        /// Flat PE index (`y * width + x`).
        pe: usize,
        /// Element offset within that PE's arena.
        offset: usize,
        /// Bit position in `0..32`.
        bit: u32,
    },
    /// Drop one PE's halo snapshot delivery for one field of one kernel's
    /// capture phase (the column reads as zero downstream).
    DropDelivery {
        /// Kernel index within the step.
        kernel: usize,
        /// Flat PE index whose column is lost.
        pe: usize,
        /// Index into the kernel's `snap_fields`.
        field: usize,
    },
    /// Duplicate an element within one PE's delivered halo column (a
    /// misrouted retransmission overwriting part of the column).
    DuplicateDelivery {
        /// Kernel index within the step.
        kernel: usize,
        /// Flat PE index whose column is corrupted.
        pe: usize,
        /// Index into the kernel's `snap_fields`.
        field: usize,
    },
    /// One worker band panics mid-sweep.
    BandPanic {
        /// Kernel index within the step.
        kernel: usize,
        /// Band index (taken modulo the job count at dispatch).
        band: usize,
    },
    /// One worker band stalls (sleeps past the watchdog deadline).
    BandStall {
        /// Kernel index within the step.
        kernel: usize,
        /// Band index (taken modulo the job count at dispatch).
        band: usize,
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

/// How many events of each kind a plan injected so far, for assertions
/// that a fault campaign actually exercised every failure path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Arena bit-flips injected at step boundaries.
    pub bit_flips: u64,
    /// Halo deliveries dropped.
    pub drops: u64,
    /// Halo deliveries duplicated.
    pub duplicates: u64,
    /// Worker bands panicked.
    pub band_panics: u64,
    /// Worker bands stalled past the watchdog.
    pub band_stalls: u64,
}

impl FaultCounts {
    /// Total events across all kinds.
    pub fn total(&self) -> u64 {
        self.bit_flips + self.drops + self.duplicates + self.band_panics + self.band_stalls
    }
}

/// A deterministic schedule of fault events keyed by step, derived from
/// [`FaultOptions`] and the linked program's shape.  Events are consumed
/// exactly once (transient faults), so replay after rollback runs clean.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(i64, FaultKind)>,
}

impl FaultPlan {
    /// Builds a plan for steps in `[start, end)`.  Per-step events are a
    /// pure function of `options.seed` and the step index, so plans built
    /// over different ranges agree on their overlap.  `stall_millis` is
    /// the sleep injected for [`FaultKind::BandStall`] events — callers
    /// size it past their watchdog deadline.
    pub fn for_range(
        options: FaultOptions,
        linked: &LinkedProgram,
        start: i64,
        end: i64,
        stall_millis: u64,
    ) -> Self {
        let n_pes = (linked.width * linked.height).max(0) as usize;
        let arena_elems = n_pes * linked.arena_len;
        // Delivery faults only make sense on kernels that actually capture
        // halo columns into the snapshot buffer.
        let capture_kernels: Vec<(usize, usize)> = linked
            .kernels
            .iter()
            .enumerate()
            .filter_map(|(k, kernel)| {
                let comm = kernel.comm.as_ref()?;
                (comm.capture && !comm.snap_fields.is_empty())
                    .then_some((k, comm.snap_fields.len()))
            })
            .collect();
        let n_kernels = linked.kernels.len();

        let mut events = Vec::new();
        for step in start..end {
            let mut rng = SplitMix::new(options.seed ^ (step as u64).wrapping_mul(GOLDEN));
            if rng.float() >= options.rate {
                continue;
            }
            let roll = rng.below(100);
            let kind = if roll < 25 && !capture_kernels.is_empty() && n_pes > 0 {
                let (kernel, n_fields) = capture_kernels[rng.below(capture_kernels.len() as u64)];
                let pe = rng.below(n_pes as u64);
                let field = rng.below(n_fields as u64);
                if roll < 15 {
                    FaultKind::DropDelivery { kernel, pe, field }
                } else {
                    FaultKind::DuplicateDelivery { kernel, pe, field }
                }
            } else if roll < 45 && n_kernels > 0 {
                let kernel = rng.below(n_kernels as u64);
                let band = rng.below(64);
                if roll < 40 {
                    FaultKind::BandPanic { kernel, band }
                } else {
                    FaultKind::BandStall { kernel, band, millis: stall_millis }
                }
            } else if arena_elems > 0 {
                FaultKind::ArenaBitFlip {
                    pe: rng.below(n_pes as u64),
                    offset: rng.below(linked.arena_len as u64),
                    bit: rng.below(32) as u32,
                }
            } else {
                continue;
            };
            events.push((step, kind));
        }
        FaultPlan { events }
    }

    /// Builds a plan from an explicit event list — the test hook for
    /// pinning one precisely-placed fault.
    pub fn from_events(events: Vec<(i64, FaultKind)>) -> Self {
        FaultPlan { events }
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events remaining.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// Consumes and returns every [`FaultKind::ArenaBitFlip`] planned at
    /// the boundary after `step`, as `(pe, offset, bit)` triples.
    pub fn take_boundary_flips(&mut self, step: i64) -> Vec<(usize, usize, u32)> {
        let mut flips = Vec::new();
        self.events.retain(|(at, kind)| {
            if *at == step {
                if let FaultKind::ArenaBitFlip { pe, offset, bit } = kind {
                    flips.push((*pe, *offset, *bit));
                    return false;
                }
            }
            true
        });
        flips
    }

    /// Consumes and returns the event planned for `kernel` of `step`, if
    /// any (delivery faults and band faults fire inside the kernel).
    pub fn take_kernel_event(&mut self, step: i64, kernel: usize) -> Option<FaultKind> {
        let position = self.events.iter().position(|(at, kind)| {
            *at == step
                && match kind {
                    FaultKind::DropDelivery { kernel: k, .. }
                    | FaultKind::DuplicateDelivery { kernel: k, .. }
                    | FaultKind::BandPanic { kernel: k, .. }
                    | FaultKind::BandStall { kernel: k, .. } => *k == kernel,
                    FaultKind::ArenaBitFlip { .. } => false,
                }
        })?;
        Some(self.events.remove(position).1)
    }
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Private SplitMix64 stream — same construction as testkit's generator
/// RNG, duplicated here because `sim` sits below `testkit` in the crate
/// graph.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> usize {
        (self.next_u64() % bound) as usize
    }

    /// Uniform in `[0, 1)`.
    fn float(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_seed_colon_rate_and_rejects_the_rest() {
        assert_eq!(FaultOptions::parse("42:0.05"), Ok(FaultOptions { seed: 42, rate: 0.05 }));
        assert_eq!(FaultOptions::parse(" 7 : 1 "), Ok(FaultOptions { seed: 7, rate: 1.0 }));
        assert!(FaultOptions::parse("42").is_err());
        assert!(FaultOptions::parse("x:0.5").is_err());
        assert!(FaultOptions::parse("42:fast").is_err());
        assert!(FaultOptions::parse("42:1.5").is_err());
        assert!(FaultOptions::parse("42:-0.1").is_err());
    }

    fn tiny_linked() -> LinkedProgram {
        use crate::link::{link_program_with, LinkOptions};
        use crate::loader::{BufferDecl, Instr, LoadedKernel, LoadedProgram, Src, ViewRef};
        let view = |offset, len| ViewRef { buffer: "u".into(), offset, dynamic: false, len };
        let program = LoadedProgram {
            width: 4,
            height: 4,
            z_dim: 8,
            z_halo: 1,
            timesteps: 4,
            buffers: vec![BufferDecl { name: "u".into(), len: 10, init: 1.0 }],
            field_buffers: vec!["u".into()],
            internal_fields: Vec::new(),
            kernels: vec![LoadedKernel {
                name: "seq_kernel0".into(),
                pre: vec![Instr::Movs { dest: view(1, 8), src: Src::View(view(1, 8)) }],
                comm: None,
                recv: Vec::new(),
                done: Vec::new(),
            }],
        };
        link_program_with(&program, &LinkOptions { optimize: false, ..LinkOptions::default() })
            .unwrap()
    }

    #[test]
    fn plans_are_deterministic_and_range_stable() {
        let linked = tiny_linked();
        let options = FaultOptions { seed: 9, rate: 0.5 };
        let full = FaultPlan::for_range(options, &linked, 0, 64, 100);
        let again = FaultPlan::for_range(options, &linked, 0, 64, 100);
        assert_eq!(full.events, again.events);
        assert!(full.remaining() > 0, "rate 0.5 over 64 steps must plan events");

        // A plan over a sub-range agrees with the full plan's overlap.
        let tail = FaultPlan::for_range(options, &linked, 32, 64, 100);
        let full_tail: Vec<_> =
            full.events.iter().filter(|(step, _)| *step >= 32).cloned().collect();
        assert_eq!(tail.events, full_tail);
    }

    #[test]
    fn events_are_consumed_exactly_once() {
        let mut plan = FaultPlan::from_events(vec![
            (3, FaultKind::ArenaBitFlip { pe: 1, offset: 2, bit: 7 }),
            (3, FaultKind::BandPanic { kernel: 0, band: 1 }),
            (5, FaultKind::DropDelivery { kernel: 0, pe: 0, field: 0 }),
        ]);
        assert_eq!(plan.take_boundary_flips(3), vec![(1, 2, 7)]);
        assert!(plan.take_boundary_flips(3).is_empty(), "flips are transient");
        assert_eq!(plan.take_kernel_event(3, 0), Some(FaultKind::BandPanic { kernel: 0, band: 1 }));
        assert_eq!(plan.take_kernel_event(3, 0), None, "band faults are transient");
        assert_eq!(plan.take_kernel_event(5, 1), None, "wrong kernel takes nothing");
        assert_eq!(
            plan.take_kernel_event(5, 0),
            Some(FaultKind::DropDelivery { kernel: 0, pe: 0, field: 0 })
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn rate_zero_plans_nothing_and_rate_one_plans_every_step() {
        let linked = tiny_linked();
        let none = FaultPlan::for_range(FaultOptions { seed: 1, rate: 0.0 }, &linked, 0, 100, 100);
        assert!(none.is_empty());
        let all = FaultPlan::for_range(FaultOptions { seed: 1, rate: 1.0 }, &linked, 0, 100, 100);
        assert_eq!(all.remaining(), 100);
    }
}
