//! Machine models of the Cerebras WSE2 and WSE3 (and the comparison
//! devices used by the paper's Figures 6 and 7).

/// A Wafer-Scale Engine generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WseGeneration {
    /// CS-2 (WSE2).
    Wse2,
    /// CS-3 (WSE3).
    Wse3,
}

impl WseGeneration {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WseGeneration::Wse2 => "WSE2",
            WseGeneration::Wse3 => "WSE3",
        }
    }

    /// Machine description for this generation.
    pub fn machine(self) -> WseMachine {
        match self {
            WseGeneration::Wse2 => WseMachine {
                generation: self,
                pe_grid: (750, 994),
                clock_ghz: 0.85,
                sram_per_pe_bytes: 48 * 1024,
                total_memory_gb: 40.0,
                peak_pflops: 1.10,
                memory_bandwidth_pbs: 14.0,
                fabric_bandwidth_pbs: 2.50,
                // Older switch configuration: each PE must also transmit to
                // itself on every route (Section 6), costing extra fabric
                // cycles and extra internal tasks.
                self_transmit: true,
                task_activation_cycles: 45,
            },
            WseGeneration::Wse3 => WseMachine {
                generation: self,
                pe_grid: (762, 1176),
                clock_ghz: 0.875,
                sram_per_pe_bytes: 48 * 1024,
                total_memory_gb: 44.0,
                peak_pflops: 1.52,
                memory_bandwidth_pbs: 18.22,
                fabric_bandwidth_pbs: 3.30,
                self_transmit: false,
                task_activation_cycles: 30,
            },
        }
    }
}

impl From<wse_lowering::WseTarget> for WseGeneration {
    fn from(target: wse_lowering::WseTarget) -> Self {
        match target {
            wse_lowering::WseTarget::Wse2 => WseGeneration::Wse2,
            wse_lowering::WseTarget::Wse3 => WseGeneration::Wse3,
        }
    }
}

/// Gives the lowering pipeline's [`wse_lowering::WseTarget`] its machine
/// model.  An extension trait because `WseTarget` lives in `wse-lowering`
/// (which cannot depend on the simulator); this is the single place the
/// target→machine mapping exists.
pub trait TargetMachine {
    /// Machine description for this compile target.
    fn machine(self) -> WseMachine;
}

impl TargetMachine for wse_lowering::WseTarget {
    fn machine(self) -> WseMachine {
        WseGeneration::from(self).machine()
    }
}

/// Parameters of one WSE generation used by the performance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WseMachine {
    /// Generation.
    pub generation: WseGeneration,
    /// Usable PE grid (x, y).
    pub pe_grid: (i64, i64),
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// SRAM per PE in bytes.
    pub sram_per_pe_bytes: u64,
    /// Total on-chip memory in GB.
    pub total_memory_gb: f64,
    /// Peak single-precision performance in PFLOP/s.
    pub peak_pflops: f64,
    /// Aggregate local-memory bandwidth in PB/s.
    pub memory_bandwidth_pbs: f64,
    /// Aggregate fabric bandwidth in PB/s.
    pub fabric_bandwidth_pbs: f64,
    /// Whether the switch configuration requires self transmission.
    pub self_transmit: bool,
    /// Cycles charged per task activation.
    pub task_activation_cycles: u64,
}

impl WseMachine {
    /// Total number of PEs.
    pub fn total_pes(&self) -> i64 {
        self.pe_grid.0 * self.pe_grid.1
    }

    /// Peak FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_pflops * 1e15
    }

    /// Checks that a per-PE memory footprint fits in local SRAM.
    pub fn fits_in_sram(&self, bytes_per_pe: u64) -> bool {
        bytes_per_pe <= self.sram_per_pe_bytes
    }
}

/// A conventional accelerator / CPU node used for comparison (Figures 6-7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonDevice {
    /// Device name.
    pub name: &'static str,
    /// Peak single-precision performance in TFLOP/s.
    pub peak_tflops: f64,
    /// Memory bandwidth in TB/s.
    pub memory_bandwidth_tbs: f64,
}

/// An NVIDIA A100-80GB (as deployed in Tursa).
pub const A100: ComparisonDevice =
    ComparisonDevice { name: "A100", peak_tflops: 17.59, memory_bandwidth_tbs: 2.04 };

/// A dual-socket AMD EPYC 7742 (Rome) ARCHER2 node.
pub const EPYC_7742_NODE: ComparisonDevice =
    ComparisonDevice { name: "dual EPYC 7742", peak_tflops: 7.3, memory_bandwidth_tbs: 0.41 };

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wse3_is_bigger_and_faster_than_wse2() {
        let wse2 = WseGeneration::Wse2.machine();
        let wse3 = WseGeneration::Wse3.machine();
        assert!(wse3.total_pes() > wse2.total_pes());
        assert!(wse3.peak_pflops > wse2.peak_pflops);
        assert!(wse3.fabric_bandwidth_pbs > wse2.fabric_bandwidth_pbs);
        assert!(wse2.self_transmit);
        assert!(!wse3.self_transmit);
        assert!(wse3.total_pes() > 890_000);
        assert_eq!(WseGeneration::Wse2.name(), "WSE2");
    }

    #[test]
    fn sram_capacity_checks() {
        let wse3 = WseGeneration::Wse3.machine();
        // A 900-element column with a handful of buffers fits easily…
        assert!(wse3.fits_in_sram(900 * 4 * 6));
        // …but ten full-size fields do not.
        assert!(!wse3.fits_in_sram(48 * 1024 + 1));
    }

    #[test]
    fn target_machine_maps_each_generation() {
        use wse_lowering::WseTarget;
        assert_eq!(WseTarget::Wse2.machine().generation, WseGeneration::Wse2);
        assert_eq!(WseTarget::Wse3.machine().generation, WseGeneration::Wse3);
        assert!(WseTarget::Wse2.machine().self_transmit);
        assert!(!WseTarget::Wse3.machine().self_transmit);
    }

    #[test]
    fn comparison_devices_match_paper_roofline() {
        assert_eq!(A100.peak_tflops, 17.59);
        assert_eq!(A100.memory_bandwidth_tbs, 2.04);
        assert_eq!(EPYC_7742_NODE.memory_bandwidth_tbs, 0.41);
    }
}
