//! Run phase of the two-phase simulator: executes a linked program on a
//! simulated PE grid.
//!
//! # Link, then run
//!
//! [`WseGridSim::new`] first *links* the loaded program (see
//! [`crate::link`]): buffer names become dense ids, each PE's buffers are
//! laid out in one flat `f32` arena, and every instruction is resolved to
//! absolute arena offsets with all bounds validated up front.  The run
//! phase then executes the resolved stream in place over slices — no
//! hashing, no string comparisons, and no per-instruction allocation (a
//! single reusable scratch buffer preserves the read-all-then-write
//! semantics of aliasing destination/source views).
//!
//! Execution proceeds in lock-step macro steps, matching the real machine:
//! per timestep and per kernel, the interior columns that the halo
//! exchange actually communicates are snapshotted (cross-PE reads must
//! observe the pre-kernel state; columns are transmitted before any PE
//! overwrites its output buffer), then every PE runs its kernel body, its
//! per-chunk receive callback against the staged neighbor columns, and its
//! done-exchange callback.  Kernels without communication skip the
//! snapshot entirely.
//!
//! Because every cross-PE read goes through the immutable snapshot, the
//! per-PE sweep is embarrassingly parallel: large grids are split into row
//! bands executed with [`std::thread::scope`].  Each PE's arithmetic is
//! identical regardless of the band split, so results are deterministic
//! and bitwise equal to single-threaded execution.  Asynchrony affects
//! timing only, which is handled by the analytic model in [`crate::perf`].

use crate::link::{link_program, LinkedComm, LinkedInstr, LinkedKernel, LinkedProgram};
use crate::loader::{BinKind, LoadedProgram};
use crate::reference::{initial_value, Field3D, GridState};

/// Execution error (produced at link time: unknown buffers, out-of-bounds
/// or mismatched views, malformed exchanges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

fn err(message: impl Into<String>) -> ExecError {
    ExecError { message: message.into() }
}

/// Minimum elements of per-kernel work across the grid before the sweep is
/// split across threads (below this, spawn overhead dominates).
const PARALLEL_WORK_THRESHOLD: usize = 200_000;

/// A functional simulation of a PE grid running a lowered program,
/// compiled to flat per-PE memory arenas at construction time.
#[derive(Debug, Clone)]
pub struct WseGridSim {
    program: LoadedProgram,
    linked: LinkedProgram,
    /// All PE arenas back to back; PE `(x, y)` owns
    /// `[(y * width + x) * arena_len ..][.. arena_len]`.
    arenas: Vec<f32>,
    /// Snapshot of communicated interior columns, reused across kernels.
    snapshot: Vec<f32>,
    /// Scratch for aliasing-safe elementwise instructions (serial path).
    scratch: Vec<f32>,
    /// Explicit thread count; `None` selects automatically per kernel.
    threads: Option<usize>,
    hw_threads: usize,
}

impl WseGridSim {
    /// Links the program and creates the grid, allocating every PE's arena
    /// and filling the field buffers with the shared initial condition.
    ///
    /// # Errors
    /// Returns an [`ExecError`] when linking fails (unknown or duplicate
    /// buffers, out-of-bounds views, malformed exchanges); see
    /// [`crate::link`].
    pub fn new(program: LoadedProgram) -> Result<Self, ExecError> {
        let linked = link_program(&program)?;
        let n_pes = (linked.width * linked.height) as usize;
        let mut arenas = vec![0.0f32; n_pes * linked.arena_len];
        for (pe, arena) in arenas.chunks_exact_mut(linked.arena_len.max(1)).enumerate() {
            let (x, y) = ((pe as i64) % linked.width, (pe as i64) / linked.width);
            for layout in &linked.layouts {
                arena[layout.base..layout.base + layout.len].fill(layout.init);
            }
            for (fi, id) in linked.field_ids.iter().enumerate() {
                let layout = &linked.layouts[id.0 as usize];
                let interior =
                    &mut arena[layout.base + linked.z_halo as usize..][..linked.z_dim as usize];
                for (z, value) in interior.iter_mut().enumerate() {
                    *value = initial_value(fi, x, y, z as i64);
                }
            }
        }
        let snapshot = vec![0.0f32; n_pes * linked.max_snap_len];
        let scratch = vec![0.0f32; linked.max_view_len];
        let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Ok(Self { program, linked, arenas, snapshot, scratch, threads: None, hw_threads })
    }

    /// The loaded program.
    pub fn program(&self) -> &LoadedProgram {
        &self.program
    }

    /// The linked flat-memory form of the program.
    pub fn linked(&self) -> &LinkedProgram {
        &self.linked
    }

    /// Forces the per-PE sweep onto exactly `threads` row bands (clamped
    /// to the grid height), bypassing the automatic work-size heuristic.
    /// Results are deterministic for any thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads.max(1));
    }

    /// Runs the program for `timesteps` steps (defaults to the program's
    /// own timestep count).
    ///
    /// # Errors
    /// Never fails after a successful link; the `Result` is kept so the
    /// signature survives future engine changes.
    pub fn run(&mut self, timesteps: Option<i64>) -> Result<(), ExecError> {
        let steps = timesteps.unwrap_or(self.linked.timesteps);
        for _ in 0..steps {
            self.run_timestep()?;
        }
        Ok(())
    }

    /// Runs a single timestep.
    ///
    /// # Errors
    /// Never fails after a successful link (see [`WseGridSim::run`]).
    pub fn run_timestep(&mut self) -> Result<(), ExecError> {
        for k in 0..self.linked.kernels.len() {
            self.run_kernel(k);
        }
        Ok(())
    }

    fn run_kernel(&mut self, kernel_index: usize) {
        let linked = &self.linked;
        let kernel = &linked.kernels[kernel_index];
        let n_pes = (linked.width * linked.height) as usize;
        let snap_len = kernel.comm.as_ref().map(LinkedComm::snap_len).unwrap_or(0);

        // Stage 1: snapshot the communicated interior columns so cross-PE
        // reads observe the pre-kernel state.
        if let Some(comm) = &kernel.comm {
            let arenas = &self.arenas;
            for pe in 0..n_pes {
                let arena = &arenas[pe * linked.arena_len..][..linked.arena_len];
                let dst = &mut self.snapshot[pe * snap_len..][..snap_len];
                for (f, field) in comm.snap_fields.iter().enumerate() {
                    let col = &mut dst[f * comm.col_len..][..comm.col_len];
                    col[..field.copy_len]
                        .copy_from_slice(&arena[field.src_base..][..field.copy_len]);
                    col[field.copy_len..].fill(0.0);
                }
            }
        }

        // Stage 2: the per-PE sweep, split into row bands when the work
        // justifies spawning threads.
        let ctx = KernelCtx { kernel, linked, snapshot: &self.snapshot, snap_len };
        let height = linked.height as usize;
        let bands = match self.threads {
            Some(n) => n.min(height).max(1),
            None if kernel.work_per_pe.saturating_mul(n_pes) < PARALLEL_WORK_THRESHOLD => 1,
            None => self.hw_threads.min(height).max(1),
        };
        let row_stride = linked.width as usize * linked.arena_len;
        if bands <= 1 || row_stride == 0 {
            ctx.run_band(&mut self.arenas, 0, &mut self.scratch);
            return;
        }
        let rows_per_band = height.div_ceil(bands);
        let scratch_len = linked.max_view_len;
        std::thread::scope(|s| {
            for (b, band) in self.arenas.chunks_mut(rows_per_band * row_stride).enumerate() {
                let ctx = &ctx;
                s.spawn(move || {
                    let mut scratch = vec![0.0f32; scratch_len];
                    ctx.run_band(band, (b * rows_per_band) as i64, &mut scratch);
                });
            }
        });
    }

    /// Extracts a field as a dense 3-D array (for comparison against the
    /// reference executor).
    ///
    /// # Errors
    /// Returns an [`ExecError`] when `name` is not a field buffer of the
    /// program (previously a silent `None`).
    pub fn field(&self, name: &str) -> Result<Field3D, ExecError> {
        let fi = self
            .program
            .field_buffers
            .iter()
            .position(|f| f == name)
            .ok_or_else(|| err(format!("{name} is not a field buffer of the program")))?;
        let linked = &self.linked;
        let layout = &linked.layouts[linked.field_ids[fi].0 as usize];
        let mut out = Field3D::zeros(linked.width, linked.height, linked.z_dim);
        for y in 0..linked.height {
            for x in 0..linked.width {
                let pe = (y * linked.width + x) as usize;
                let column = &self.arenas
                    [pe * linked.arena_len + layout.base + linked.z_halo as usize..]
                    [..linked.z_dim as usize];
                for (z, &value) in column.iter().enumerate() {
                    out.set(x, y, z as i64, value);
                }
            }
        }
        Ok(out)
    }

    /// Extracts every field as a [`GridState`].
    ///
    /// # Errors
    /// Returns an [`ExecError`] when a field buffer cannot be extracted
    /// (previously such fields were silently dropped from the state).
    pub fn grid_state(&self) -> Result<GridState, ExecError> {
        let names = self.program.field_buffers.clone();
        let fields = names.iter().map(|n| self.field(n)).collect::<Result<Vec<_>, _>>()?;
        Ok(GridState { names, fields })
    }
}

/// Shared read-only context of one kernel sweep (one instance per
/// `run_kernel`, shared across band workers).
struct KernelCtx<'a> {
    kernel: &'a LinkedKernel,
    linked: &'a LinkedProgram,
    snapshot: &'a [f32],
    snap_len: usize,
}

impl KernelCtx<'_> {
    /// Executes the kernel on every PE of a horizontal band of rows.
    /// `band` is the contiguous arena slice of those rows.
    fn run_band(&self, band: &mut [f32], first_row: i64, scratch: &mut [f32]) {
        let row_stride = self.linked.width as usize * self.linked.arena_len;
        if row_stride == 0 {
            return;
        }
        for (r, row) in band.chunks_exact_mut(row_stride).enumerate() {
            let y = first_row + r as i64;
            for (x, pe) in row.chunks_exact_mut(self.linked.arena_len).enumerate() {
                self.run_pe(pe, x as i64, y, scratch);
            }
        }
    }

    fn run_pe(&self, pe: &mut [f32], x: i64, y: i64, scratch: &mut [f32]) {
        for instr in &self.kernel.pre {
            exec_instr(pe, instr, 0, scratch);
        }
        let Some(comm) = &self.kernel.comm else { return };
        for chunk in 0..comm.num_chunks {
            self.stage_chunk(comm, pe, x, y, chunk);
            let chunk_offset = chunk * comm.chunk_size;
            for instr in &self.kernel.recv {
                exec_instr(pe, instr, chunk_offset, scratch);
            }
        }
        for instr in &self.kernel.done {
            exec_instr(pe, instr, 0, scratch);
        }
    }

    /// Fills the receive buffer of PE `(x, y)` with chunk `chunk` of every
    /// slot, reading neighbor columns from the snapshot (zero outside the
    /// grid, matching the zero-flux boundary of the reference executor).
    fn stage_chunk(&self, comm: &LinkedComm, pe: &mut [f32], x: i64, y: i64, chunk: usize) {
        let start = chunk * comm.chunk_size;
        for (slot, spec) in comm.slots.iter().enumerate() {
            let dst = &mut pe[comm.recv_base + slot * comm.chunk_size..][..comm.chunk_size];
            let (nx, ny) = (x + spec.dx, y + spec.dy);
            if nx < 0 || ny < 0 || nx >= self.linked.width || ny >= self.linked.height {
                dst.fill(0.0);
                continue;
            }
            let neighbor = (ny * self.linked.width + nx) as usize;
            let column = &self.snapshot
                [neighbor * self.snap_len + spec.snap_index * comm.col_len + start..]
                [..comm.chunk_size];
            dst.copy_from_slice(column);
        }
    }
}

/// Executes one resolved instruction over a PE arena.  Elementwise
/// operations compute into `scratch` first so aliasing destination/source
/// views keep read-all-then-write semantics without allocating.
fn exec_instr(pe: &mut [f32], instr: &LinkedInstr, chunk_offset: usize, scratch: &mut [f32]) {
    match instr {
        LinkedInstr::Fill { dest, value } => pe[dest.range(chunk_offset)].fill(*value),
        LinkedInstr::Copy { dest, src } => {
            let dest_start = dest.range(chunk_offset).start;
            pe.copy_within(src.range(chunk_offset), dest_start);
        }
        LinkedInstr::Binary { kind, dest, a, b } => {
            let out = &mut scratch[..dest.len as usize];
            let va = &pe[a.range(chunk_offset)];
            let vb = &pe[b.range(chunk_offset)];
            match kind {
                BinKind::Add => {
                    for ((o, x), y) in out.iter_mut().zip(va).zip(vb) {
                        *o = x + y;
                    }
                }
                BinKind::Sub => {
                    for ((o, x), y) in out.iter_mut().zip(va).zip(vb) {
                        *o = x - y;
                    }
                }
                BinKind::Mul => {
                    for ((o, x), y) in out.iter_mut().zip(va).zip(vb) {
                        *o = x * y;
                    }
                }
            }
            pe[dest.range(chunk_offset)].copy_from_slice(out);
        }
        LinkedInstr::Macs { dest, acc, src, coeff } => {
            let out = &mut scratch[..dest.len as usize];
            let va = &pe[acc.range(chunk_offset)];
            let vs = &pe[src.range(chunk_offset)];
            for ((o, a), s) in out.iter_mut().zip(va).zip(vs) {
                *o = a + s * coeff;
            }
            pe[dest.range(chunk_offset)].copy_from_slice(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::InterpGridSim;
    use crate::loader::load_program;
    use crate::reference::{max_abs_difference, run_reference};
    use wse_frontends::benchmarks::Benchmark;
    use wse_lowering::{lower_program, PipelineOptions};

    fn simulate(benchmark: Benchmark, options: &PipelineOptions) -> (GridState, GridState) {
        let program = benchmark.tiny_program();
        let lowered = lower_program(&program, options).unwrap();
        let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
        let mut sim = WseGridSim::new(loaded).unwrap();
        sim.run(None).unwrap();
        let reference = run_reference(&program, None);
        (sim.grid_state().unwrap(), reference)
    }

    #[test]
    fn jacobian_matches_reference() {
        let (simulated, reference) = simulate(Benchmark::Jacobian, &PipelineOptions::default());
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-4, "simulated result diverges from reference by {diff}");
    }

    #[test]
    fn jacobian_matches_reference_with_chunking() {
        let options = PipelineOptions { num_chunks: 3, ..PipelineOptions::default() };
        let (simulated, reference) = simulate(Benchmark::Jacobian, &options);
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-4, "chunked execution diverges by {diff}");
    }

    #[test]
    fn seismic_matches_reference() {
        let (simulated, reference) = simulate(Benchmark::Seismic25, &PipelineOptions::default());
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-3, "seismic diverges by {diff}");
    }

    #[test]
    fn diffusion_matches_reference_without_fusion() {
        let options = PipelineOptions { enable_fmac_fusion: false, ..PipelineOptions::default() };
        let (simulated, reference) = simulate(Benchmark::Diffusion, &options);
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-4, "unfused execution diverges by {diff}");
    }

    #[test]
    fn acoustic_two_field_chain_matches_reference() {
        let (simulated, reference) = simulate(Benchmark::Acoustic, &PipelineOptions::default());
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-3, "acoustic diverges by {diff}");
    }

    #[test]
    fn uvkbe_fused_kernel_matches_reference() {
        let (simulated, reference) = simulate(Benchmark::Uvkbe, &PipelineOptions::default());
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-4, "uvkbe diverges by {diff}");
    }

    #[test]
    fn linked_engine_is_bitwise_equal_to_legacy_interpreter() {
        for benchmark in [Benchmark::Jacobian, Benchmark::Acoustic, Benchmark::Seismic25] {
            let program = benchmark.tiny_program();
            let options = PipelineOptions { num_chunks: 2, ..PipelineOptions::default() };
            let lowered = lower_program(&program, &options).unwrap();
            let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
            let mut linked = WseGridSim::new(loaded.clone()).unwrap();
            linked.run(None).unwrap();
            let mut interp = InterpGridSim::new(loaded);
            interp.run(None).unwrap();
            assert_eq!(
                linked.grid_state().unwrap(),
                interp.grid_state(),
                "{}: engines disagree",
                benchmark.name()
            );
        }
    }

    #[test]
    fn parallel_execution_is_bitwise_deterministic() {
        let program = Benchmark::Diffusion.tiny_program();
        let lowered = lower_program(&program, &PipelineOptions::default()).unwrap();
        let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
        let mut serial = WseGridSim::new(loaded.clone()).unwrap();
        serial.set_threads(1);
        serial.run(None).unwrap();
        let mut parallel = WseGridSim::new(loaded).unwrap();
        parallel.set_threads(3);
        parallel.run(None).unwrap();
        assert_eq!(serial.grid_state().unwrap(), parallel.grid_state().unwrap());
    }

    #[test]
    fn unknown_field_is_an_error_not_a_silent_drop() {
        let program = Benchmark::Jacobian.tiny_program();
        let lowered = lower_program(&program, &PipelineOptions::default()).unwrap();
        let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
        let sim = WseGridSim::new(loaded).unwrap();
        let message = sim.field("missing").unwrap_err().message;
        assert!(message.contains("not a field buffer"), "got: {message}");
        assert!(sim.field("a").is_ok());
        assert_eq!(sim.grid_state().unwrap().names, vec!["a".to_string()]);
    }
}
