//! Run phase of the two-phase simulator: executes a linked program on a
//! simulated PE grid.
//!
//! # Link, then run
//!
//! [`WseGridSim::new`] first *links* the loaded program (see
//! [`crate::link`]): buffer names become dense ids, each PE's buffers are
//! laid out in one flat `f32` arena, and every instruction is resolved to
//! absolute arena offsets with all bounds validated up front.  The run
//! phase then executes the resolved stream in place over slices — no
//! hashing, no string comparisons, and no per-instruction allocation (a
//! single reusable scratch buffer preserves the read-all-then-write
//! semantics of aliasing destination/source views).
//!
//! Execution proceeds in lock-step macro steps, matching the real machine:
//! per timestep and per kernel, the interior columns that the halo
//! exchange actually communicates are snapshotted (cross-PE reads must
//! observe the pre-kernel state; columns are transmitted before any PE
//! overwrites its output buffer), then every PE runs its kernel body, its
//! per-chunk receive callback against the staged neighbor columns, and its
//! done-exchange callback.  Kernels without communication skip the
//! snapshot entirely.
//!
//! Because every cross-PE read goes through the immutable snapshot, the
//! per-PE sweep is embarrassingly parallel: large grids are split into row
//! bands executed by a persistent [`WorkerPool`] owned by the simulator
//! (created lazily the first time a kernel's work exceeds
//! [`PARALLEL_WORK_THRESHOLD`], barrier-synchronized per macro step — the
//! per-kernel `thread::scope` spawn of the previous engine paid thread
//! creation on every macro step).  Each PE's arithmetic is identical
//! regardless of the band split, so results are deterministic and bitwise
//! equal to single-threaded execution.  Asynchrony affects timing only,
//! which is handled by the analytic model in [`crate::perf`].
//!
//! Snapshots are *incremental*: each kernel owns a region of the snapshot
//! buffer, and a field column is only re-captured when its backing buffer
//! was written since the previous capture (tracked per buffer with write
//! epochs from [`crate::link::LinkedKernel::writes`]).

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use crate::checkpoint::{checksum_f32, row_checksums, Checkpoint, RecoveryOptions, RecoveryStats};
use crate::fault::{FaultKind, FaultOptions, FaultPlan, INJECTED_BAND_PANIC};
use crate::kernels::{BatchTerm, Term, MAX_ARITY};
use crate::link::{
    link_program_with, FusedInit, FusedTerm, LinkOptions, LinkedComm, LinkedKernel, LinkedProgram,
    LinkedView, SrcRef,
};
use crate::loader::LoadedProgram;
use crate::plan::{plan_program, KernelPlan, PlannedOp, ProgramPlan, SweepGroup};
use crate::reference::{initial_value, Field3D, GridState};

/// What class of failure an [`ExecError`] reports — the typed failure
/// paths the recovery loop dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecErrorKind {
    /// Link-time or API validation failure (unknown buffers,
    /// out-of-bounds views, malformed exchanges, malformed options).
    Invalid,
    /// A worker band panicked mid-sweep; the panic was captured
    /// (`catch_unwind`) instead of wedging the barrier.  Grid state is
    /// partially written — roll back or restore before continuing.
    BandPanicked,
    /// Worker bands missed the watchdog deadline.  The wedged state was
    /// quarantined (leaked, never freed under the stalled worker);
    /// restore a checkpoint to continue.
    Timeout,
    /// An integrity checksum mismatched: per-row arena sums at a step
    /// boundary, or halo delivery sums inside a kernel (ABFT detection).
    Corruption,
    /// Recovery itself failed: the rollback budget was exhausted or no
    /// checkpoint existed to roll back to.
    RecoveryFailed,
    /// The engine state was lost to an earlier failure and has not been
    /// restored from a checkpoint since.
    Poisoned,
}

/// Execution error: link-time validation failures, plus the typed runtime
/// failure paths of the hardened engine (see [`ExecErrorKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Description.
    pub message: String,
    /// Failure class.
    pub kind: ExecErrorKind,
    /// Stable rejection-class code from the [`wse_ir::diagnostics`]
    /// registry (`link-*` for link-time validation failures), when the
    /// failure site assigned one.  Harnesses classify on this instead of
    /// parsing `message`.
    pub code: Option<&'static str>,
}

impl ExecError {
    /// An error of the given kind.
    pub fn new(kind: ExecErrorKind, message: impl Into<String>) -> Self {
        ExecError { message: message.into(), kind, code: None }
    }

    /// Attaches a stable rejection-class code (see
    /// [`wse_ir::diagnostics`]).
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = Some(code);
        self
    }

    /// The stable rejection-class code, if one was assigned.
    pub fn code(&self) -> Option<&'static str> {
        self.code
    }

    /// A validation error ([`ExecErrorKind::Invalid`]), the pre-hardening
    /// default class.
    pub fn invalid(message: impl Into<String>) -> Self {
        Self::new(ExecErrorKind::Invalid, message)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

fn err(message: impl Into<String>) -> ExecError {
    ExecError::invalid(message)
}

/// Minimum elements of per-kernel work across the grid before the sweep is
/// split across threads.  Re-tuned after the SIMD kernel plans landed: the
/// vector kernels cut per-row cost several-fold, so the dispatch overhead
/// of the pool amortizes only on correspondingly larger grids (below this,
/// channel round-trips dominate the now-cheaper sweeps).
const PARALLEL_WORK_THRESHOLD: usize = 400_000;

/// A functional simulation of a PE grid running a lowered program,
/// compiled to flat per-PE memory arenas at construction time.
#[derive(Debug)]
pub struct WseGridSim {
    program: LoadedProgram,
    /// Boxed so a watchdog quarantine can leak the old heap copy intact
    /// while a stalled worker may still read it (see `quarantine`).
    linked: Box<LinkedProgram>,
    /// The kernel plan: every linked instruction lowered to a
    /// monomorphized SIMD kernel call (see [`crate::plan`]).  Boxed for
    /// the same quarantine reason as `linked`.
    plan: Box<ProgramPlan>,
    /// All PE arenas back to back; PE `(x, y)` owns
    /// `[(y * width + x) * arena_len ..][.. arena_len]`.
    arenas: Vec<f32>,
    /// Snapshot of communicated interior columns.  Each kernel owns its
    /// region so captures stay valid across kernels: PE `pe`'s column `f`
    /// of kernel `k` lives at
    /// `pe * snap_stride + snap_bases[k] + f * col_len`.
    snapshot: Vec<f32>,
    /// Per-kernel base offset into a PE's snapshot region.
    snap_bases: Vec<usize>,
    /// Snapshot elements per PE (sum over kernels).
    snap_stride: usize,
    /// Epoch of the last write to each buffer (index = `BufferId`).
    buffer_epochs: Vec<u64>,
    /// Per kernel, per snapshot field: the buffer epoch the capture was
    /// taken at (`u64::MAX` = never captured).
    snap_epochs: Vec<Vec<u64>>,
    /// Monotonic write epoch, bumped after every kernel execution.
    write_epoch: u64,
    /// Scratch for aliasing-safe elementwise instructions (serial path).
    scratch: Vec<f32>,
    /// Zero column backing direct slot reads outside the PE grid (sized to
    /// the largest exchange column).
    zero_col: Vec<f32>,
    /// Explicit thread count; `None` selects automatically per kernel.
    threads: Option<usize>,
    hw_threads: usize,
    /// Lazily created persistent worker pool (never cloned).
    pool: Option<WorkerPool>,
    /// Completed macro steps since construction or the last restore.
    step: i64,
    /// Fault configuration from `WSE_SIM_FAULTS` or
    /// [`WseGridSim::inject_faults`]; `run` re-materializes `fault` from
    /// it over each call's step range.
    fault_options: Option<FaultOptions>,
    /// The active fault schedule (events are consumed as they fire).
    fault: Option<FaultPlan>,
    /// Checkpoint/checksum recovery state; `None` runs the historical
    /// fast path with zero overhead.
    recovery: Option<RecoveryState>,
    /// Watchdog deadline for parallel sweeps.
    watchdog: Duration,
    /// Set when grid state was lost to a failure (band panic, watchdog
    /// quarantine, exhausted rollback budget) and not restored since.
    poisoned: bool,
}

/// Private recovery bookkeeping behind [`WseGridSim::enable_recovery`].
#[derive(Debug, Clone)]
struct RecoveryState {
    options: RecoveryOptions,
    /// The rollback anchor (the latest checkpoint).
    checkpoint: Option<Checkpoint>,
    /// Per-PE-row arena checksums of the last verified-clean state.
    row_sums: Vec<u64>,
    stats: RecoveryStats,
}

impl Clone for WseGridSim {
    fn clone(&self) -> Self {
        Self {
            program: self.program.clone(),
            linked: self.linked.clone(),
            plan: self.plan.clone(),
            arenas: self.arenas.clone(),
            snapshot: self.snapshot.clone(),
            snap_bases: self.snap_bases.clone(),
            snap_stride: self.snap_stride,
            buffer_epochs: self.buffer_epochs.clone(),
            snap_epochs: self.snap_epochs.clone(),
            write_epoch: self.write_epoch,
            scratch: self.scratch.clone(),
            zero_col: self.zero_col.clone(),
            threads: self.threads,
            hw_threads: self.hw_threads,
            // Worker pools hold OS threads; the clone creates its own on
            // first parallel kernel.
            pool: None,
            step: self.step,
            fault_options: self.fault_options,
            fault: self.fault.clone(),
            recovery: self.recovery.clone(),
            watchdog: self.watchdog,
            poisoned: self.poisoned,
        }
    }
}

impl WseGridSim {
    /// Links the program with [`LinkOptions::from_env`] and creates the
    /// grid, allocating every PE's arena and filling the field buffers
    /// with the shared initial condition.
    ///
    /// # Errors
    /// Returns an [`ExecError`] when linking fails (unknown or duplicate
    /// buffers, out-of-bounds views, malformed exchanges); see
    /// [`crate::link`].
    pub fn new(program: LoadedProgram) -> Result<Self, ExecError> {
        Self::with_options(program, LinkOptions::from_env())
    }

    /// Links the program with explicit [`LinkOptions`] and creates the
    /// grid.  Optimized and unoptimized streams produce bitwise identical
    /// results; the conformance harness runs both to prove it.
    ///
    /// # Errors
    /// Returns an [`ExecError`] when linking fails; see [`WseGridSim::new`].
    pub fn with_options(program: LoadedProgram, options: LinkOptions) -> Result<Self, ExecError> {
        let linked = link_program_with(&program, &options)?;
        let plan = plan_program(&linked);
        let n_pes = (linked.width * linked.height) as usize;
        let mut arenas = vec![0.0f32; n_pes * linked.arena_len];
        for (pe, arena) in arenas.chunks_exact_mut(linked.arena_len.max(1)).enumerate() {
            let (x, y) = ((pe as i64) % linked.width, (pe as i64) / linked.width);
            for layout in &linked.layouts {
                arena[layout.base..layout.base + layout.len].fill(layout.init);
            }
            for (fi, id) in linked.field_ids.iter().enumerate() {
                let layout = &linked.layouts[id.0 as usize];
                let interior =
                    &mut arena[layout.base + linked.z_halo as usize..][..linked.z_dim as usize];
                for (z, value) in interior.iter_mut().enumerate() {
                    *value = initial_value(fi, x, y, z as i64);
                }
            }
        }
        let mut snap_bases = Vec::with_capacity(linked.kernels.len());
        let mut snap_stride = 0usize;
        let mut snap_epochs = Vec::with_capacity(linked.kernels.len());
        for kernel in &linked.kernels {
            snap_bases.push(snap_stride);
            match &kernel.comm {
                Some(comm) => {
                    snap_stride += comm.snap_len();
                    snap_epochs.push(vec![u64::MAX; comm.snap_fields.len()]);
                }
                None => snap_epochs.push(Vec::new()),
            }
        }
        let snapshot = vec![0.0f32; n_pes * snap_stride];
        let buffer_epochs = vec![0u64; linked.layouts.len()];
        let scratch = vec![0.0f32; linked.max_view_len];
        let max_col_len =
            linked.kernels.iter().filter_map(|k| k.comm.as_ref()).map(|c| c.col_len).max();
        let zero_col = vec![0.0f32; max_col_len.unwrap_or(0)];
        let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // A malformed WSE_SIM_FAULTS is a typed construction error, never
        // a silently clean run.
        let fault_options = FaultOptions::from_env()?;
        let watchdog = RecoveryOptions::from_env().watchdog();
        Ok(Self {
            program,
            linked: Box::new(linked),
            plan: Box::new(plan),
            arenas,
            snapshot,
            snap_bases,
            snap_stride,
            buffer_epochs,
            snap_epochs,
            write_epoch: 1,
            scratch,
            zero_col,
            threads: None,
            hw_threads,
            pool: None,
            step: 0,
            fault_options,
            fault: None,
            recovery: None,
            watchdog,
            poisoned: false,
        })
    }

    /// The loaded program.
    pub fn program(&self) -> &LoadedProgram {
        &self.program
    }

    /// The linked flat-memory form of the program.
    pub fn linked(&self) -> &LinkedProgram {
        &self.linked
    }

    /// The kernel plan the run phase dispatches (see [`crate::plan`]).
    pub fn plan(&self) -> &ProgramPlan {
        &self.plan
    }

    /// Forces the per-PE sweep onto exactly `threads` row bands (clamped
    /// to the grid height), bypassing the automatic work-size heuristic.
    /// Results are deterministic for any thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads.max(1));
    }

    /// Completed macro steps since construction or the last
    /// [`WseGridSim::restore`].
    pub fn steps_completed(&self) -> i64 {
        self.step
    }

    /// True when grid state was lost to a failure (band panic, watchdog
    /// quarantine, exhausted rollback budget) and not restored since.
    /// A poisoned engine refuses to run or extract state.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Captures a bitwise-exact checkpoint of the current grid state and
    /// step counter (independent of the periodic recovery cadence).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::capture(&self.arenas, self.step, None)
    }

    /// Restores a checkpoint: arenas bitwise, step counter, and all
    /// snapshot/epoch bookkeeping reset to the fresh-construction state,
    /// so a replay from the checkpoint is bitwise identical to an
    /// uninterrupted run.  Clears the poisoned flag.
    ///
    /// # Errors
    /// [`ExecErrorKind::Invalid`] when the checkpoint was captured from a
    /// different arena shape.
    pub fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), ExecError> {
        if checkpoint.len() != self.arenas.len() {
            return Err(err(format!(
                "checkpoint holds {} arena elements, this engine has {}",
                checkpoint.len(),
                self.arenas.len()
            )));
        }
        checkpoint.restore_into(&mut self.arenas);
        self.step = checkpoint.step();
        // Reset the incremental-snapshot bookkeeping to the
        // fresh-construction state: every column recaptures before its
        // next use, so replay cannot observe pre-restore snapshots.
        self.write_epoch = 1;
        self.buffer_epochs.iter_mut().for_each(|e| *e = 0);
        for epochs in &mut self.snap_epochs {
            epochs.iter_mut().for_each(|e| *e = u64::MAX);
        }
        self.poisoned = false;
        let row_stride = self.linked.width as usize * self.linked.arena_len;
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.checkpoint = Some(checkpoint.clone());
            if recovery.options.verify {
                recovery.row_sums = row_checksums(&self.arenas, row_stride);
            }
        }
        Ok(())
    }

    /// Enables seeded fault injection (the API form of
    /// `WSE_SIM_FAULTS=<seed>:<rate>`).  The next [`WseGridSim::run`]
    /// materializes the fault schedule over its step range and
    /// auto-enables recovery if it was not configured explicitly.
    pub fn inject_faults(&mut self, options: FaultOptions) {
        self.fault_options = Some(options);
        self.fault = None;
    }

    /// Installs an explicit fault schedule (see
    /// [`FaultPlan::from_events`]) — the test hook for precisely-placed
    /// faults.  Events fire in [`WseGridSim::run`] and
    /// [`WseGridSim::run_timestep`] and are consumed once.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
        self.fault_options = None;
    }

    /// Enables checkpoint/checksum recovery: periodic copy-on-write
    /// checkpoints, rollback-and-replay on any transient failure, and —
    /// with [`RecoveryOptions::verify`] on — per-row arena checksums
    /// verified at every step boundary plus halo delivery checksums
    /// inside capturing kernels (see the cost model on
    /// [`crate::checkpoint`]).  With faults disabled the machinery is
    /// bitwise-transparent (checksums and checkpoints never alter
    /// state).
    pub fn enable_recovery(&mut self, options: RecoveryOptions) {
        self.watchdog = options.watchdog();
        self.recovery = Some(RecoveryState {
            options,
            checkpoint: None,
            row_sums: Vec::new(),
            stats: RecoveryStats::default(),
        });
    }

    /// What the recovery machinery did so far; `None` until recovery is
    /// enabled (explicitly or by a fault campaign).
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref().map(|r| &r.stats)
    }

    /// Runs the program for `timesteps` steps (defaults to the program's
    /// own timestep count).  With faults or recovery enabled, runs the
    /// detect-and-rollback loop; otherwise the historical zero-overhead
    /// path.
    ///
    /// # Errors
    /// [`ExecErrorKind::Poisoned`] when state was lost and not restored;
    /// typed failures ([`ExecErrorKind::BandPanicked`],
    /// [`ExecErrorKind::Timeout`], [`ExecErrorKind::Corruption`]) when a
    /// failure strikes without recovery enabled to absorb it;
    /// [`ExecErrorKind::RecoveryFailed`] when the rollback budget is
    /// exhausted.
    pub fn run(&mut self, timesteps: Option<i64>) -> Result<(), ExecError> {
        if self.poisoned {
            return Err(self.poisoned_error());
        }
        let steps = timesteps.unwrap_or(self.linked.timesteps).max(0);
        if let Some(options) = self.fault_options {
            // Per-step events are a pure function of (seed, step), so
            // re-materializing over each call's range is equivalent to one
            // plan over the whole campaign.
            let stall = (self.watchdog.as_millis() as u64).saturating_mul(2).max(1);
            self.fault = Some(FaultPlan::for_range(
                options,
                &self.linked,
                self.step,
                self.step + steps,
                stall,
            ));
        }
        if self.fault.as_ref().is_some_and(|f| !f.is_empty()) || self.recovery.is_some() {
            if self.recovery.is_none() {
                // Auto-enabled by a fault campaign: force full per-step
                // verification — injecting faults without it would invite
                // exactly the silent divergence recovery exists to prevent.
                self.enable_recovery(RecoveryOptions {
                    verify: true,
                    ..RecoveryOptions::from_env()
                });
            }
            return self.run_recovering(self.step + steps);
        }
        for _ in 0..steps {
            self.run_timestep()?;
        }
        Ok(())
    }

    /// Runs a single timestep.
    ///
    /// # Errors
    /// See [`WseGridSim::run`]; without injected faults this never fails
    /// after a successful link.
    pub fn run_timestep(&mut self) -> Result<(), ExecError> {
        if self.poisoned {
            return Err(self.poisoned_error());
        }
        for k in 0..self.linked.kernels.len() {
            self.run_kernel(k)?;
        }
        self.step += 1;
        Ok(())
    }

    fn poisoned_error(&self) -> ExecError {
        ExecError::new(
            ExecErrorKind::Poisoned,
            "engine state was lost to an unrecovered failure; restore a checkpoint to continue",
        )
    }

    /// The detect-and-rollback loop: verify per-row checksums at every
    /// step boundary, checkpoint on cadence, convert transient failures
    /// (band panics, watchdog timeouts, delivery corruption, arena
    /// corruption) into rollback-and-replay, and give up with a typed
    /// error once the rollback budget is spent.
    fn run_recovering(&mut self, target: i64) -> Result<(), ExecError> {
        let row_stride = self.linked.width as usize * self.linked.arena_len;
        {
            // Anchor checkpoint and baseline checksums of the entry state,
            // so even the first step can roll back.
            let recovery = self.recovery.as_mut().expect("recovery enabled");
            if recovery.checkpoint.is_none() {
                let ck = Checkpoint::capture(&self.arenas, self.step, None);
                recovery.stats.checkpoints_saved += 1;
                recovery.stats.checkpoint_pages_total += ck.page_count() as u64;
                recovery.checkpoint = Some(ck);
            }
            if recovery.options.verify && recovery.row_sums.is_empty() {
                recovery.row_sums = row_checksums(&self.arenas, row_stride);
            }
        }
        loop {
            // Integrity first, return second: corruption injected after
            // the final step is still caught before the run reports clean.
            if self.recovery.as_ref().expect("recovery enabled").options.verify {
                let sums = row_checksums(&self.arenas, row_stride);
                let recovery = self.recovery.as_mut().expect("recovery enabled");
                if sums != recovery.row_sums {
                    recovery.stats.checksum_failures += 1;
                    self.rollback()?;
                    continue;
                }
            }
            if self.step >= target {
                return Ok(());
            }
            match self.run_timestep() {
                Ok(()) => {
                    let recovery = self.recovery.as_mut().expect("recovery enabled");
                    if recovery.options.verify {
                        recovery.row_sums = row_checksums(&self.arenas, row_stride);
                    }
                    let due = match &recovery.checkpoint {
                        Some(ck) => self.step - ck.step() >= recovery.options.checkpoint_every,
                        None => true,
                    };
                    if due {
                        let ck = Checkpoint::capture(
                            &self.arenas,
                            self.step,
                            recovery.checkpoint.as_ref(),
                        );
                        recovery.stats.checkpoints_saved += 1;
                        recovery.stats.checkpoint_pages_total += ck.page_count() as u64;
                        if let Some(prev) = &recovery.checkpoint {
                            recovery.stats.checkpoint_pages_shared +=
                                ck.pages_shared_with(prev) as u64;
                        }
                        recovery.checkpoint = Some(ck);
                    }
                    // Transient bit-flips strike the boundary *after* the
                    // step's checksums and checkpoint, so the next loop
                    // iteration's integrity check detects them and rolls
                    // back to a clean anchor.
                    let flips = self
                        .fault
                        .as_mut()
                        .map(|f| f.take_boundary_flips(self.step - 1))
                        .unwrap_or_default();
                    for (pe, offset, bit) in flips {
                        let index = pe * self.linked.arena_len + offset;
                        if index < self.arenas.len() {
                            self.arenas[index] =
                                f32::from_bits(self.arenas[index].to_bits() ^ (1 << bit));
                            if let Some(recovery) = self.recovery.as_mut() {
                                recovery.stats.faults.bit_flips += 1;
                            }
                        }
                    }
                }
                Err(error) => {
                    let recovery = self.recovery.as_mut().expect("recovery enabled");
                    match error.kind {
                        ExecErrorKind::Corruption => recovery.stats.delivery_failures += 1,
                        ExecErrorKind::BandPanicked => recovery.stats.band_panics += 1,
                        ExecErrorKind::Timeout => recovery.stats.band_timeouts += 1,
                        // Anything else (validation, poisoning) is not a
                        // transient fault: propagate.
                        _ => return Err(error),
                    }
                    self.rollback()?;
                }
            }
        }
    }

    /// Restores the latest checkpoint, charging the rollback budget.
    fn rollback(&mut self) -> Result<(), ExecError> {
        let recovery = self.recovery.as_mut().expect("recovery enabled");
        recovery.stats.rollbacks += 1;
        if recovery.stats.rollbacks > u64::from(recovery.options.max_rollbacks) {
            self.poisoned = true;
            return Err(ExecError::new(
                ExecErrorKind::RecoveryFailed,
                format!(
                    "rollback budget exhausted after {} rollbacks — the fault is persistent, \
                     not transient",
                    recovery.options.max_rollbacks
                ),
            ));
        }
        let checkpoint = match recovery.checkpoint.clone() {
            Some(ck) => ck,
            None => {
                self.poisoned = true;
                return Err(ExecError::new(
                    ExecErrorKind::RecoveryFailed,
                    "no checkpoint to roll back to",
                ));
            }
        };
        let lost = (self.step - checkpoint.step()).max(0) as u64;
        self.restore(&checkpoint)?;
        self.recovery.as_mut().expect("recovery enabled").stats.steps_replayed += lost;
        Ok(())
    }

    /// Abandons state a wedged worker may still touch.  The only sound
    /// reclamation is none: the pool is detached without joining the
    /// stalled thread, and every allocation reachable from the leaked
    /// kernel context — arenas, snapshot, zero column, the linked program
    /// and plan — is leaked intact and replaced with a fresh copy, so the
    /// zombie's raw pointers stay valid forever while the engine itself
    /// becomes restorable.
    fn quarantine(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.abandon();
        }
        let arenas = vec![0.0f32; self.arenas.len()];
        std::mem::forget(std::mem::replace(&mut self.arenas, arenas));
        let snapshot = vec![0.0f32; self.snapshot.len()];
        std::mem::forget(std::mem::replace(&mut self.snapshot, snapshot));
        let zero_col = vec![0.0f32; self.zero_col.len()];
        std::mem::forget(std::mem::replace(&mut self.zero_col, zero_col));
        let linked = self.linked.clone();
        std::mem::forget(std::mem::replace(&mut self.linked, linked));
        let plan = self.plan.clone();
        std::mem::forget(std::mem::replace(&mut self.plan, plan));
        self.poisoned = true;
    }

    fn run_kernel(&mut self, kernel_index: usize) -> Result<(), ExecError> {
        let step = self.step;
        let kernel_fault =
            self.fault.as_mut().and_then(|f| f.take_kernel_event(step, kernel_index));
        let watchdog = self.watchdog;
        let linked = &*self.linked;
        let kernel = &linked.kernels[kernel_index];
        let kplan = &self.plan.kernels[kernel_index];
        let n_pes = (linked.width * linked.height) as usize;
        let snap_base = self.snap_bases[kernel_index];
        let snap_stride = self.snap_stride;

        // Which snapshot columns are stale?  Each kernel owns its region of
        // the snapshot buffer, so a column captured on an earlier macro
        // step stays valid until its backing buffer is written again — only
        // stale columns are re-captured.  Kernels whose capture the
        // optimizer elided (deferred commits) snapshot nothing at all.
        let mut stale: Vec<usize> = Vec::new();
        if let Some(comm) = &kernel.comm {
            if comm.capture {
                for (f, field) in comm.snap_fields.iter().enumerate() {
                    let epoch = self.buffer_epochs[field.buffer.0 as usize];
                    if self.snap_epochs[kernel_index][f] != epoch {
                        self.snap_epochs[kernel_index][f] = epoch;
                        stale.push(f);
                    }
                }
            }
        }

        let height = linked.height as usize;
        let bands = match self.threads {
            Some(n) => n.min(height).max(1),
            None if kernel.work_per_pe.saturating_mul(n_pes) < PARALLEL_WORK_THRESHOLD => 1,
            None => self.hw_threads.min(height).max(1),
        };
        let row_stride = linked.width as usize * linked.arena_len;
        // Band and delivery faults fire on the pool path, so a planned
        // event forces parallel dispatch even below the work threshold
        // (bitwise identical to serial execution either way).
        let forced = kernel_fault.is_some();

        // SAFETY notes on `arenas_ptr`: kernels with an elided capture read
        // neighbor arena columns through this pointer while the sweep
        // mutates arena ranges.  Soundness rests on two invariants:
        // (1) the pointer is the *root* of every arena access on those
        // paths — the mutable row/band slices are re-derived from it with
        // `from_raw_parts_mut`, never from a fresh `&mut self.arenas`
        // borrow that would invalidate it; (2) the byte ranges actually
        // written by a sweep never overlap the ranges read through the
        // pointer — the linker proved no sweep instruction writes a
        // snapshotted buffer (see `link::defer_commits`), and deferred
        // commits only run once no sweep can observe them.
        let arenas_ptr = self.arenas.as_mut_ptr();
        let n_arena_elems = self.arenas.len();
        let max_dy = kernel.comm.as_ref().map(LinkedComm::max_dy).unwrap_or(0);
        let direct = kernel.comm.as_ref().is_some_and(|c| !c.capture);

        if row_stride == 0 || (bands <= 1 && !forced) {
            // Serial path: interleave snapshot and sweep as a row
            // wavefront.  A PE's sweep reads snapshot rows up to `max_dy`
            // ahead, so capturing just ahead of the sweep keeps each arena
            // row L2-hot across both touches instead of streaming the grid
            // twice per kernel.  Captured columns are identical either
            // way, so results stay bitwise equal to the phase-split path.
            if direct && row_stride != 0 {
                // Elided capture: sweep against the live arenas (still
                // pre-kernel state for the transmitted fields) and lag the
                // deferred commits `max_dy` rows behind the sweep, so no
                // later row can observe a committed value.
                let ctx = KernelCtx::new(
                    kernel,
                    kplan,
                    linked,
                    &self.snapshot,
                    (snap_stride, snap_base),
                    &self.zero_col,
                    (arenas_ptr, n_arena_elems),
                );
                // SAFETY: all row slices derive from `arenas_ptr` (see the
                // invariants above), are in bounds, and are taken one at a
                // time.
                let row_at = |y: usize| unsafe {
                    std::slice::from_raw_parts_mut(arenas_ptr.add(y * row_stride), row_stride)
                };
                let mut cols: Vec<&[f32]> = Vec::new();
                let has_commit = !kernel.commit.is_empty();
                for y in 0..height {
                    ctx.run_row(row_at(y), y as i64, &mut self.scratch, &mut cols);
                    if has_commit && y >= max_dy {
                        ctx.commit_row(row_at(y - max_dy), &mut self.scratch);
                    }
                }
                if has_commit {
                    for y in height.saturating_sub(max_dy)..height {
                        ctx.commit_row(row_at(y), &mut self.scratch);
                    }
                }
            } else if stale.is_empty() {
                let ctx = KernelCtx::new(
                    kernel,
                    kplan,
                    linked,
                    &self.snapshot,
                    (snap_stride, snap_base),
                    &self.zero_col,
                    (arenas_ptr, n_arena_elems),
                );
                ctx.run_band(&mut self.arenas, 0, &mut self.scratch);
            } else {
                let comm = kernel.comm.as_ref().expect("stale columns imply an exchange");
                let pass = SnapshotPass { linked, comm, snap_stride, snap_base, stale: &stale };
                let mut captured = 0usize;
                for y in 0..height {
                    let ahead = height.min(y + max_dy + 1);
                    while captured < ahead {
                        pass.capture_row(&self.arenas, &mut self.snapshot, captured);
                        captured += 1;
                    }
                    // The context is rebuilt per row so the snapshot borrow
                    // does not overlap the capture above (rows are
                    // disjoint; the sweep only reads rows already
                    // captured).
                    let ctx = KernelCtx::new(
                        kernel,
                        kplan,
                        linked,
                        &self.snapshot,
                        (snap_stride, snap_base),
                        &self.zero_col,
                        (arenas_ptr, n_arena_elems),
                    );
                    let row = &mut self.arenas[y * row_stride..][..row_stride];
                    ctx.run_band(row, y as i64, &mut self.scratch);
                }
            }
        } else {
            // Parallel path: capture the full snapshot, then fan the sweep
            // out over the persistent worker pool (created on first use,
            // reused for every subsequent macro step).  With an elided
            // capture the sweep reads live arenas instead, and the blocking
            // dispatch doubles as the barrier before the commit pass.
            if let Some(comm) = &kernel.comm {
                if !stale.is_empty() {
                    let pass = SnapshotPass { linked, comm, snap_stride, snap_base, stale: &stale };
                    for y in 0..height {
                        pass.capture_row(&self.arenas, &mut self.snapshot, y);
                    }
                }
            }
            // ABFT delivery integrity: checksum the kernel's snapshot
            // region ("sent"), let a planned delivery fault tamper with a
            // column, checksum again ("received"), and refuse to sweep on
            // a mismatch.  Active only under recovery with verification,
            // and only for kernels that actually capture halo columns.
            let verify_deliveries = self.recovery.as_ref().is_some_and(|r| r.options.verify)
                && kernel.comm.as_ref().is_some_and(|c| c.capture && !c.snap_fields.is_empty());
            if verify_deliveries {
                let comm = kernel.comm.as_ref().expect("verified deliveries imply an exchange");
                let snap_len = comm.snap_len();
                let sent =
                    delivery_checksum(&self.snapshot, n_pes, snap_stride, snap_base, snap_len);
                match kernel_fault {
                    Some(FaultKind::DropDelivery { pe, field, .. }) => {
                        let col = &mut self.snapshot
                            [pe * snap_stride + snap_base + field * comm.col_len..][..comm.col_len];
                        col.fill(0.0);
                        if let Some(recovery) = self.recovery.as_mut() {
                            recovery.stats.faults.drops += 1;
                        }
                    }
                    Some(FaultKind::DuplicateDelivery { pe, field, .. }) => {
                        let col = &mut self.snapshot
                            [pe * snap_stride + snap_base + field * comm.col_len..][..comm.col_len];
                        col.rotate_right(1);
                        if let Some(recovery) = self.recovery.as_mut() {
                            recovery.stats.faults.duplicates += 1;
                        }
                    }
                    _ => {}
                }
                let received =
                    delivery_checksum(&self.snapshot, n_pes, snap_stride, snap_base, snap_len);
                if received != sent {
                    return Err(ExecError::new(
                        ExecErrorKind::Corruption,
                        format!("halo delivery checksum mismatch in kernel {kernel_index}"),
                    ));
                }
            }
            let band_fault = match kernel_fault {
                Some(FaultKind::BandPanic { band, .. }) => {
                    if let Some(recovery) = self.recovery.as_mut() {
                        recovery.stats.faults.band_panics += 1;
                    }
                    Some((band, BandFault::Panic))
                }
                Some(FaultKind::BandStall { band, millis, .. }) => {
                    if let Some(recovery) = self.recovery.as_mut() {
                        recovery.stats.faults.band_stalls += 1;
                    }
                    Some((band, BandFault::Stall(millis)))
                }
                _ => None,
            };
            // Boxed so the watchdog path can leak it: a stalled worker
            // keeps reading the context past the timeout (see
            // `quarantine`).
            let ctx = Box::new(KernelCtx::new(
                kernel,
                kplan,
                linked,
                &self.snapshot,
                (snap_stride, snap_base),
                &self.zero_col,
                (arenas_ptr, n_arena_elems),
            ));
            let rows_per_band = height.div_ceil(bands);
            let scratch_len = linked.max_view_len;
            let workers = self.hw_threads.max(1);
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(workers, scratch_len));
            let band_result = if direct {
                // SAFETY: the bands must be siblings of the `arenas_ptr`
                // reads the workers perform (see the invariants above), so
                // the band slice is re-derived from the pointer instead of
                // borrowing `self.arenas` afresh.
                let all = unsafe { std::slice::from_raw_parts_mut(arenas_ptr, n_arena_elems) };
                pool.run_bands(
                    &ctx,
                    all,
                    rows_per_band * row_stride,
                    rows_per_band,
                    watchdog,
                    band_fault,
                )
            } else {
                pool.run_bands(
                    &ctx,
                    &mut self.arenas,
                    rows_per_band * row_stride,
                    rows_per_band,
                    watchdog,
                    band_fault,
                )
            };
            match band_result {
                Ok(()) => {}
                Err(BandError::Panicked(detail)) => {
                    // Every band acknowledged (the panic was caught), so no
                    // worker holds pointers into the engine — but the sweep
                    // is partially written.
                    drop(ctx);
                    self.poisoned = true;
                    return Err(ExecError::new(
                        ExecErrorKind::BandPanicked,
                        format!("worker band panicked in kernel {kernel_index}: {detail}"),
                    ));
                }
                Err(BandError::Timeout { missing }) => {
                    // A wedged worker may still hold pointers into the
                    // context and the engine's buffers: leak the context
                    // and quarantine everything it can reach.
                    let _ = Box::into_raw(ctx) as *const ();
                    self.quarantine();
                    return Err(ExecError::new(
                        ExecErrorKind::Timeout,
                        format!(
                            "{missing} worker band(s) missed the {}ms watchdog deadline in \
                             kernel {kernel_index}; wedged state quarantined",
                            watchdog.as_millis()
                        ),
                    ));
                }
            }
            if !kernel.commit.is_empty() {
                // Commit pass: every sweep has completed (run_bands blocks),
                // so the deferred write-backs can no longer be observed
                // mid-kernel.  The pass touches only the freshly written
                // accumulators and the field columns, so it runs serially.
                ctx.commit_row(&mut self.arenas, &mut self.scratch);
            }
        }

        // Stage 3: record which buffers the kernel wrote, invalidating the
        // snapshots that depend on them.
        for id in &kernel.writes {
            self.buffer_epochs[id.0 as usize] = self.write_epoch;
        }
        self.write_epoch += 1;
        Ok(())
    }

    /// Extracts a field as a dense 3-D array (for comparison against the
    /// reference executor).
    ///
    /// # Errors
    /// Returns an [`ExecError`] when `name` is not a field buffer of the
    /// program (previously a silent `None`).
    pub fn field(&self, name: &str) -> Result<Field3D, ExecError> {
        if self.poisoned {
            return Err(self.poisoned_error());
        }
        let fi = self
            .program
            .field_buffers
            .iter()
            .position(|f| f == name)
            .ok_or_else(|| err(format!("{name} is not a field buffer of the program")))?;
        let linked = &self.linked;
        let layout = &linked.layouts[linked.field_ids[fi].0 as usize];
        let mut out = Field3D::zeros(linked.width, linked.height, linked.z_dim);
        for y in 0..linked.height {
            for x in 0..linked.width {
                let pe = (y * linked.width + x) as usize;
                let column = &self.arenas
                    [pe * linked.arena_len + layout.base + linked.z_halo as usize..]
                    [..linked.z_dim as usize];
                for (z, &value) in column.iter().enumerate() {
                    out.set(x, y, z as i64, value);
                }
            }
        }
        Ok(out)
    }

    /// Extracts every observable field as a [`GridState`].  Internal
    /// double-buffer fields (see
    /// [`LoadedProgram::internal_fields`]) are compiler
    /// temporaries, not program state, and are excluded — the state then
    /// matches the reference executor's field set exactly.
    ///
    /// # Errors
    /// Returns an [`ExecError`] when a field buffer cannot be extracted
    /// (previously such fields were silently dropped from the state).
    pub fn grid_state(&self) -> Result<GridState, ExecError> {
        let names: Vec<String> = self
            .program
            .field_buffers
            .iter()
            .filter(|n| !self.program.internal_fields.contains(n))
            .cloned()
            .collect();
        let fields = names.iter().map(|n| self.field(n)).collect::<Result<Vec<_>, _>>()?;
        Ok(GridState { names, fields })
    }
}

/// One kernel's snapshot capture, restricted to the stale columns.
struct SnapshotPass<'a> {
    linked: &'a LinkedProgram,
    comm: &'a LinkedComm,
    snap_stride: usize,
    snap_base: usize,
    /// Indices into `comm.snap_fields` that must be re-captured.
    stale: &'a [usize],
}

impl SnapshotPass<'_> {
    /// Captures the stale columns of every PE in row `y`.
    fn capture_row(&self, arenas: &[f32], snapshot: &mut [f32], y: usize) {
        let linked = self.linked;
        let width = linked.width as usize;
        for x in 0..width {
            let pe = y * width + x;
            let arena = &arenas[pe * linked.arena_len..][..linked.arena_len];
            for &f in self.stale {
                let field = &self.comm.snap_fields[f];
                let col = &mut snapshot
                    [pe * self.snap_stride + self.snap_base + f * self.comm.col_len..]
                    [..self.comm.col_len];
                col[..field.copy_len].copy_from_slice(&arena[field.src_base..][..field.copy_len]);
                col[field.copy_len..].fill(0.0);
            }
        }
    }
}

/// Combined checksum of one kernel's halo snapshot region across all PEs
/// (per-PE columns folded FNV-style, position-salted), the "sent" and
/// "received" sides of the ABFT delivery check.
fn delivery_checksum(
    snapshot: &[f32],
    n_pes: usize,
    snap_stride: usize,
    snap_base: usize,
    snap_len: usize,
) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for pe in 0..n_pes {
        let region = &snapshot[pe * snap_stride + snap_base..][..snap_len];
        h ^= checksum_f32(region).rotate_left((pe % 63) as u32);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shared read-only context of one kernel sweep (one instance per
/// `run_kernel`, shared across band workers).
struct KernelCtx<'a> {
    kernel: &'a LinkedKernel,
    /// The kernel's planned blocks (what the sweep actually dispatches).
    plan: &'a KernelPlan,
    linked: &'a LinkedProgram,
    snapshot: &'a [f32],
    /// Snapshot elements per PE (all kernels).
    snap_stride: usize,
    /// This kernel's base offset inside a PE's snapshot region.
    snap_base: usize,
    /// Zero column for direct slot reads outside the grid.
    zero_col: &'a [f32],
    /// Root pointer of the full arena allocation, for neighbor-column
    /// reads when the snapshot capture is elided (the mutable row/band
    /// slices on those paths are siblings derived from this same
    /// pointer).  See the SAFETY notes in `run_kernel`: the linker proved
    /// those columns are never written during the sweep.
    arenas_ptr: *mut f32,
    /// Total arena elements (bounds for the pointer reads).
    n_arena_elems: usize,
}

/// Direct slot reads ([`SrcRef::Slot`]) for one PE: per receive slot, the
/// full transmitted column straight from the neighbor's snapshot (the
/// shared zero column outside the grid).  Resolved once per PE — every
/// column has exactly [`LinkedComm::col_len`] elements.
struct PeComm<'a> {
    cols: &'a [&'a [f32]],
}

impl<'a> KernelCtx<'a> {
    /// Builds the context of one kernel sweep.  `snap` is
    /// `(snap_stride, snap_base)` and `arenas` is the root arena pointer
    /// with its element count (see the SAFETY notes in `run_kernel`).
    /// The wavefront path rebuilds the context per row so the snapshot
    /// borrow never overlaps a capture.
    fn new(
        kernel: &'a LinkedKernel,
        plan: &'a KernelPlan,
        linked: &'a LinkedProgram,
        snapshot: &'a [f32],
        snap: (usize, usize),
        zero_col: &'a [f32],
        arenas: (*mut f32, usize),
    ) -> Self {
        Self {
            kernel,
            plan,
            linked,
            snapshot,
            snap_stride: snap.0,
            snap_base: snap.1,
            zero_col,
            arenas_ptr: arenas.0,
            n_arena_elems: arenas.1,
        }
    }

    /// Resolves the column behind each receive slot of PE `(x, y)`,
    /// appending to `cols`: the neighbor's snapshot column, or — when the
    /// capture was elided — the neighbor's live arena column (which still
    /// holds the pre-kernel state until the deferred commit runs).
    fn resolve_slot_cols(&self, comm: &LinkedComm, x: i64, y: i64, cols: &mut Vec<&'a [f32]>) {
        for spec in &comm.slots {
            let (nx, ny) = (x + spec.dx, y + spec.dy);
            if nx < 0 || ny < 0 || nx >= self.linked.width || ny >= self.linked.height {
                cols.push(&self.zero_col[..comm.col_len]);
                continue;
            }
            let neighbor = (ny * self.linked.width + nx) as usize;
            if comm.capture {
                cols.push(
                    &self.snapshot[neighbor * self.snap_stride
                        + self.snap_base
                        + spec.snap_index * comm.col_len..][..comm.col_len],
                );
            } else {
                let field = &comm.snap_fields[spec.snap_index];
                let start = neighbor * self.linked.arena_len + field.src_base;
                debug_assert!(start + comm.col_len <= self.n_arena_elems);
                // SAFETY: in-bounds by link-time validation
                // (`copy_len == col_len` is a deferral precondition), and
                // never written during the sweep (see `run_kernel`).
                cols.push(unsafe {
                    std::slice::from_raw_parts(self.arenas_ptr.add(start), comm.col_len)
                });
            }
        }
    }

    /// Runs the deferred commit ops on every PE of `pes` (a contiguous run
    /// of arenas).
    fn commit_row(&self, pes: &mut [f32], scratch: &mut [f32]) {
        for pe in pes.chunks_exact_mut(self.linked.arena_len) {
            for op in &self.plan.commit {
                exec_op(pe, op, 0, scratch, None);
            }
        }
    }
}

/// An injected worker-band fault, attached to one job of one dispatch.
#[derive(Debug, Clone, Copy)]
enum BandFault {
    /// Panic before touching the band (captured by the worker's
    /// `catch_unwind`).
    Panic,
    /// Sleep this many milliseconds before running the band — sized past
    /// the watchdog deadline to wedge the barrier.
    Stall(u64),
}

/// Why a band dispatch failed.
enum BandError {
    /// At least one band panicked (all bands acknowledged; no worker
    /// still holds pointers into the engine).
    Panicked(String),
    /// The watchdog deadline expired with this many bands outstanding —
    /// the wedged workers may still hold pointers into the engine.
    Timeout {
        /// Bands that never acknowledged.
        missing: usize,
    },
}

/// One band dispatch: raw pointers into the dispatching thread's arena
/// slice and kernel context.  The dispatcher blocks until every job is
/// acknowledged (or the watchdog expires, after which the engine
/// quarantines everything the job references), so the pointers never
/// outlive their referents, and bands are disjoint `chunks_mut` slices so
/// no two jobs alias.
struct Job {
    ctx: *const (),
    band: *mut f32,
    band_len: usize,
    first_row: i64,
    /// Dispatch generation, echoed in the acknowledgement so a stale ack
    /// from a timed-out dispatch can never satisfy a later barrier.
    generation: u64,
    fault: Option<BandFault>,
}

// SAFETY: see the `Job` invariants above — the dispatcher owns the
// referenced data and blocks on the completion barrier before returning
// (quarantining the referents when the barrier times out).
unsafe impl Send for Job {}

/// One acknowledgement: the job's generation plus the captured panic
/// message, if the band panicked.
type BandAck = (u64, Result<(), String>);

/// A persistent pool of band workers, created lazily by [`WseGridSim`]
/// once a kernel's work crosses [`PARALLEL_WORK_THRESHOLD`] and reused for
/// every subsequent macro step (the previous engine spawned fresh threads
/// per kernel via `thread::scope`).  Hardened: every job body runs under
/// `catch_unwind`, the completion barrier has a watchdog deadline, and
/// `Drop` bounds its joins so a dead or wedged worker can never hang the
/// owner.
struct WorkerPool {
    senders: Vec<Sender<Job>>,
    done: Receiver<BandAck>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Bumped per dispatch; acks carrying an older generation are stale.
    generation: u64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.senders.len()).finish()
    }
}

/// Extracts a readable message from a captured panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "worker band panicked with a non-string payload".to_string()
    }
}

impl WorkerPool {
    fn new(workers: usize, scratch_len: usize) -> Self {
        let (done_tx, done) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job>();
            let done_tx = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                let mut scratch = vec![0.0f32; scratch_len];
                while let Ok(job) = rx.recv() {
                    // A panicking band must still acknowledge, or the
                    // barrier would wait for the watchdog on every panic:
                    // capture the unwind and ship the message instead.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        match job.fault {
                            Some(BandFault::Panic) => panic!("{INJECTED_BAND_PANIC}"),
                            Some(BandFault::Stall(millis)) => {
                                std::thread::sleep(Duration::from_millis(millis));
                            }
                            None => {}
                        }
                        // SAFETY: per the `Job` invariants, the context
                        // and the band slice are live for the duration
                        // of the job and the band does not alias any
                        // other job's band.
                        let ctx = unsafe { &*(job.ctx as *const KernelCtx<'static>) };
                        let band =
                            unsafe { std::slice::from_raw_parts_mut(job.band, job.band_len) };
                        ctx.run_band(band, job.first_row, &mut scratch);
                    }));
                    let ack = result.map_err(panic_message);
                    if done_tx.send((job.generation, ack)).is_err() {
                        break;
                    }
                }
            }));
            senders.push(tx);
        }
        Self { senders, done, handles, generation: 0 }
    }

    /// Executes the kernel over row bands of `arenas` on the pool, blocking
    /// until every band completes (the barrier of the macro step) or the
    /// watchdog deadline expires.  `fault` attaches an injected fault to
    /// one band (the index is taken modulo the job count).
    fn run_bands(
        &mut self,
        ctx: &KernelCtx<'_>,
        arenas: &mut [f32],
        band_elems: usize,
        rows_per_band: usize,
        watchdog: Duration,
        fault: Option<(usize, BandFault)>,
    ) -> Result<(), BandError> {
        self.generation += 1;
        let generation = self.generation;
        let ctx_ptr = ctx as *const KernelCtx<'_> as *const ();
        let njobs = if band_elems == 0 { 0 } else { arenas.len().div_ceil(band_elems) };
        let fault = fault.map(|(band, kind)| (band % njobs.max(1), kind));
        let mut jobs = 0usize;
        for (b, band) in arenas.chunks_mut(band_elems).enumerate() {
            let job = Job {
                ctx: ctx_ptr,
                band: band.as_mut_ptr(),
                band_len: band.len(),
                first_row: (b * rows_per_band) as i64,
                generation,
                fault: fault.and_then(|(target, kind)| (target == b).then_some(kind)),
            };
            // More bands than workers queue up round-robin; workers drain
            // their queue sequentially, which stays deterministic because
            // bands are independent.
            self.senders[b % self.senders.len()].send(job).expect("worker thread alive");
            jobs += 1;
        }
        let deadline = Instant::now() + watchdog;
        let mut received = 0usize;
        let mut first_panic: Option<String> = None;
        while received < jobs {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.done.recv_timeout(remaining) {
                // Stale ack from a dispatch that timed out earlier: a
                // later barrier must never count it.
                Ok((g, _)) if g != generation => continue,
                Ok((_, Ok(()))) => received += 1,
                Ok((_, Err(detail))) => {
                    received += 1;
                    first_panic.get_or_insert(detail);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return Err(BandError::Timeout { missing: jobs - received });
                }
            }
        }
        match first_panic {
            Some(detail) => Err(BandError::Panicked(detail)),
            None => Ok(()),
        }
    }

    /// Detaches the pool without joining: closes the job channels (idle
    /// workers exit on their own) and drops the handles, leaving any
    /// wedged worker running against quarantined (leaked) memory.
    fn abandon(mut self) {
        self.senders.clear();
        self.handles.clear();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops.
        self.senders.clear();
        // Bound the join: a healthy worker exits promptly once its
        // channel closes, but a panicked-and-acknowledged or wedged one
        // must not hang Drop forever — poll briefly, then detach.
        let deadline = Instant::now() + Duration::from_secs(5);
        for handle in self.handles.drain(..) {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
            // Not finished in time: detach (dropping the handle) rather
            // than hang — the engine quarantined anything it could touch.
        }
    }
}

impl<'a> KernelCtx<'a> {
    /// Executes the kernel on every PE of a horizontal band of rows.
    /// `band` is the contiguous arena slice of those rows.
    ///
    /// Execution is *instruction-major within a row*: each instruction
    /// sweeps all PEs of the row before the next instruction runs.  PEs
    /// are independent within a kernel (cross-PE reads go through the
    /// snapshot), so any interleaving preserves each PE's own operation
    /// order — results are bitwise identical to PE-major order — while
    /// dispatch (instruction match, slot resolution) amortizes over the
    /// whole row and the row's arenas stay cache-hot.
    fn run_band(&self, band: &mut [f32], first_row: i64, scratch: &mut [f32]) {
        let row_stride = self.linked.width as usize * self.linked.arena_len;
        if row_stride == 0 {
            return;
        }
        let mut cols: Vec<&[f32]> = Vec::new();
        for (r, row) in band.chunks_exact_mut(row_stride).enumerate() {
            let y = first_row + r as i64;
            self.run_row(row, y, scratch, &mut cols);
        }
    }

    fn run_row(&self, row: &mut [f32], y: i64, scratch: &mut [f32], cols: &mut Vec<&'a [f32]>) {
        let comm = self.kernel.comm.as_ref();
        let any_staged = comm.is_some_and(|c| c.slots.iter().any(|s| s.staged));
        if !any_staged {
            // Op-major fast path: nothing writes the receive buffer, so
            // each planned op can sweep the whole row before the next op
            // runs.  Sweeps then dispatch once per row segment (see
            // `run_sweep_row`) instead of once per PE, and no per-PE slot
            // columns are resolved at all.
            self.run_ops_row(row, &self.plan.pre, 0, y, scratch);
            if let Some(comm) = comm {
                for chunk in 0..comm.num_chunks {
                    self.run_ops_row(row, &self.plan.recv, chunk * comm.chunk_size, y, scratch);
                }
            }
            self.run_ops_row(row, &self.plan.done, 0, y, scratch);
            return;
        }
        let arena_len = self.linked.arena_len;
        let comm = comm.expect("staged slots imply an exchange");
        for (x, pe) in row.chunks_exact_mut(arena_len).enumerate() {
            cols.clear();
            self.resolve_slot_cols(comm, x as i64, y, cols);
            let pec = PeComm { cols };
            let pec = Some(&pec);
            for op in &self.plan.pre {
                exec_op(pe, op, 0, scratch, pec);
            }
            for chunk in 0..comm.num_chunks {
                stage_chunk(comm, pe, pec, chunk);
                let chunk_offset = chunk * comm.chunk_size;
                for op in &self.plan.recv {
                    exec_op(pe, op, chunk_offset, scratch, pec);
                }
            }
            for op in &self.plan.done {
                exec_op(pe, op, 0, scratch, pec);
            }
        }
    }

    /// Runs one planned block over every PE of a row, op-major.  PEs are
    /// independent within a kernel — cross-PE reads observe only pre-kernel
    /// state (the snapshot, or live arenas whose transmitted columns no
    /// sweep writes) — so op-major order is bitwise identical to PE-major
    /// order.  Sweeps take the row-batched kernel; the remaining op kinds
    /// never have cross-PE sources and run per PE.
    fn run_ops_row(
        &self,
        row: &mut [f32],
        ops: &[PlannedOp],
        chunk_offset: usize,
        y: i64,
        scratch: &mut [f32],
    ) {
        let arena_len = self.linked.arena_len;
        for op in ops {
            if let PlannedOp::Sweep { dest, init, groups } = op {
                self.run_sweep_row(row, dest, init, groups, chunk_offset, y);
            } else {
                for pe in row.chunks_exact_mut(arena_len) {
                    exec_op(pe, op, chunk_offset, scratch, None);
                }
            }
        }
    }

    /// Executes one planned sweep over every PE of a row through the
    /// row-batched kernels.  Between adjacent PEs, every pointer of the
    /// sweep advances by a fixed stride — arena views (and the
    /// destination) by `arena_len`, captured slot columns by the snapshot
    /// stride, elided slot columns by `arena_len` through the neighbor
    /// arenas — except where a `dx`-offset neighbor falls outside the
    /// grid.  The row therefore splits into at most three segments: the
    /// interior (one batched call per group), and the left/right edge PEs
    /// whose out-of-grid sources rebind to the shared zero column
    /// (single-PE batched calls).  `dy`-offset neighbors are out of grid
    /// for a whole row at a time, which stays uniform: the zero column
    /// with stride 0.
    fn run_sweep_row(
        &self,
        row: &mut [f32],
        dest: &LinkedView,
        init: &FusedInit,
        groups: &[SweepGroup],
        chunk_offset: usize,
        y: i64,
    ) {
        let arena_len = self.linked.arena_len;
        let width = self.linked.width;
        let dest_range = dest.range(chunk_offset);
        let len = dest_range.len();
        if len == 0 || arena_len == 0 {
            return;
        }
        debug_assert_eq!(row.len(), width as usize * arena_len);
        debug_assert!(dest_range.end <= arena_len);
        let base = row.as_mut_ptr();
        // SAFETY: per-PE, exactly the `exec_sweep` argument (link-time
        // bounds validation plus the fusion disjointness proof); across
        // PEs, a sweep writes only its own PE's destination, which no
        // other PE's sources can observe — arena sources live in their own
        // PE's arena, and slot sources read the snapshot or arena columns
        // the linker proved no sweep writes (see `run_kernel`).
        unsafe {
            // Resolves one term for the PE at column `x`: base pointer and
            // the per-PE stride it advances by within a batch segment.
            let resolve = |term: &FusedTerm, x: i64| -> BatchTerm {
                match &term.src {
                    SrcRef::Arena(v) => {
                        let r = v.range(chunk_offset);
                        debug_assert!(r.end <= arena_len);
                        BatchTerm {
                            src: base.add(x as usize * arena_len + r.start) as *const f32,
                            stride: arena_len,
                            coeff: term.coeff,
                        }
                    }
                    SrcRef::Slot { slot, offset, .. } => {
                        let comm =
                            self.kernel.comm.as_ref().expect("slot sources imply an exchange");
                        let spec = &comm.slots[*slot as usize];
                        let o = *offset as usize + chunk_offset;
                        debug_assert!(o + len <= comm.col_len);
                        let (nx, ny) = (x + spec.dx, y + spec.dy);
                        if nx < 0 || ny < 0 || nx >= width || ny >= self.linked.height {
                            BatchTerm {
                                src: self.zero_col.as_ptr().add(o),
                                stride: 0,
                                coeff: term.coeff,
                            }
                        } else {
                            let neighbor = (ny * width + nx) as usize;
                            if comm.capture {
                                let start = neighbor * self.snap_stride
                                    + self.snap_base
                                    + spec.snap_index * comm.col_len
                                    + o;
                                debug_assert!(start + len <= self.snapshot.len());
                                BatchTerm {
                                    src: self.snapshot.as_ptr().add(start),
                                    stride: self.snap_stride,
                                    coeff: term.coeff,
                                }
                            } else {
                                let field = &comm.snap_fields[spec.snap_index];
                                let start = neighbor * arena_len + field.src_base + o;
                                debug_assert!(start + len <= self.n_arena_elems);
                                BatchTerm {
                                    src: self.arenas_ptr.add(start) as *const f32,
                                    stride: arena_len,
                                    coeff: term.coeff,
                                }
                            }
                        }
                    }
                }
            };
            let mut first = true;
            for group in groups {
                // Interior segment: every dx-offset neighbor in-grid.
                let mut lo = 0i64;
                let mut hi = width;
                if let Some(comm) = &self.kernel.comm {
                    for term in group.terms.iter() {
                        if let SrcRef::Slot { slot, .. } = &term.src {
                            let dx = comm.slots[*slot as usize].dx;
                            if dx < 0 {
                                lo = lo.max(-dx);
                            } else {
                                hi = hi.min(width - dx);
                            }
                        }
                    }
                }
                let lo = lo.min(width) as usize;
                let hi = (hi.max(0) as usize).clamp(lo, width as usize);
                let run_segment = |x0: usize, n_pes: usize| {
                    if n_pes == 0 {
                        return;
                    }
                    let d = base.add(x0 * arena_len + dest_range.start);
                    let (fill, acc): (f32, *const f32) = if first {
                        match init {
                            FusedInit::Fill(c) => (*c, std::ptr::null()),
                            FusedInit::Acc(a) if a == dest => (0.0, d as *const f32),
                            FusedInit::Acc(a) => {
                                let r = a.range(chunk_offset);
                                debug_assert!(r.end <= arena_len);
                                (0.0, base.add(x0 * arena_len + r.start) as *const f32)
                            }
                        }
                    } else {
                        // Continuation groups accumulate onto the running
                        // value the previous group stored.
                        (0.0, d as *const f32)
                    };
                    let mut terms = [BatchTerm::NULL; MAX_ARITY];
                    for (slot, term) in terms.iter_mut().zip(group.terms.iter()) {
                        *slot = resolve(term, x0 as i64);
                    }
                    (group.row_kernel)(d, len, fill, acc, terms.as_ptr(), n_pes, arena_len);
                };
                for x in 0..lo {
                    run_segment(x, 1);
                }
                run_segment(lo, hi - lo);
                for x in hi..width as usize {
                    run_segment(x, 1);
                }
                first = false;
            }
        }
    }
}

/// Fills the receive buffer with chunk `chunk` of every slot the
/// optimizer could not elide, from the PE's resolved slot columns (the
/// neighbor snapshot, or the shared zero column outside the grid —
/// matching the zero-flux boundary of the reference executor).
fn stage_chunk(comm: &LinkedComm, pe: &mut [f32], pec: Option<&PeComm<'_>>, chunk: usize) {
    let start = chunk * comm.chunk_size;
    let cols = pec.expect("staging requires resolved slot columns").cols;
    for (slot, spec) in comm.slots.iter().enumerate() {
        if !spec.staged {
            continue;
        }
        let dst = &mut pe[comm.recv_base + slot * comm.chunk_size..][..comm.chunk_size];
        dst.copy_from_slice(&cols[slot][start..][..comm.chunk_size]);
    }
}

/// Executes one planned operation over a PE arena by calling its bound
/// SIMD kernel.  `Binary`/`Macs` ops the planner could not prove
/// in-place-safe compute into `scratch` first (read-all-then-write
/// semantics for partially overlapping views); direct ops and sweeps write
/// the destination in one pass.  `pec` resolves direct slot reads and is
/// present whenever the kernel communicates.
fn exec_op(
    pe: &mut [f32],
    op: &PlannedOp,
    chunk_offset: usize,
    scratch: &mut [f32],
    pec: Option<&PeComm<'_>>,
) {
    match op {
        PlannedOp::Fill { dest, value } => pe[dest.range(chunk_offset)].fill(*value),
        PlannedOp::Copy { dest, src } => {
            let dest_start = dest.range(chunk_offset).start;
            pe.copy_within(src.range(chunk_offset), dest_start);
        }
        PlannedOp::Binary { kernel, dest, a, b, direct } => {
            let dest_range = dest.range(chunk_offset);
            let len = dest_range.len();
            debug_assert!(dest_range.end <= pe.len() && len <= scratch.len());
            let _ = (&pe[a.range(chunk_offset)], &pe[b.range(chunk_offset)]); // bounds check
            let base = pe.as_mut_ptr();
            // SAFETY: all views were bounds-validated by the linker (and
            // re-checked above); `direct` ops were proven
            // exactly-equal-or-disjoint to the destination by the planner,
            // which is the kernel's aliasing contract, and the scratch
            // buffer is a separate allocation sized `>= max_view_len`.
            unsafe {
                let pa = base.add(a.range(chunk_offset).start) as *const f32;
                let pb = base.add(b.range(chunk_offset).start) as *const f32;
                if *direct {
                    kernel(base.add(dest_range.start), pa, pb, len);
                } else {
                    kernel(scratch.as_mut_ptr(), pa, pb, len);
                    pe[dest_range].copy_from_slice(&scratch[..len]);
                }
            }
        }
        PlannedOp::Macs { kernel, dest, acc, src, coeff, direct } => {
            let dest_range = dest.range(chunk_offset);
            let len = dest_range.len();
            debug_assert!(dest_range.end <= pe.len() && len <= scratch.len());
            let _ = (&pe[acc.range(chunk_offset)], &pe[src.range(chunk_offset)]); // bounds check
            let base = pe.as_mut_ptr();
            // SAFETY: as for `Binary` above.
            unsafe {
                let pa = base.add(acc.range(chunk_offset).start) as *const f32;
                let ps = base.add(src.range(chunk_offset).start) as *const f32;
                if *direct {
                    kernel(base.add(dest_range.start), pa, ps, *coeff, len);
                } else {
                    kernel(scratch.as_mut_ptr(), pa, ps, *coeff, len);
                    pe[dest_range].copy_from_slice(&scratch[..len]);
                }
            }
        }
        PlannedOp::Sweep { dest, init, groups } => {
            exec_sweep(pe, dest, init, groups, chunk_offset, pec);
        }
    }
}

/// Executes a planned reduction sweep:
/// `dest[j] = init(j) + Σ terms[i].coeff · terms[i].src[j]`, applied left
/// to right per element — exactly the f32 operation sequence of the
/// `Fill`/`Macs` chain the linker fused, so results are bitwise identical
/// to the unoptimized stream.  Chains wider than [`MAX_ARITY`] run as the
/// head group plus continuation groups accumulating onto the freshly
/// written destination (same per-element order, re-entered at the stored
/// running value).
fn exec_sweep(
    pe: &mut [f32],
    dest: &LinkedView,
    init: &FusedInit,
    groups: &[SweepGroup],
    chunk_offset: usize,
    pec: Option<&PeComm<'_>>,
) {
    let dest_range = dest.range(chunk_offset);
    let len = dest_range.len();
    if len == 0 {
        return;
    }
    let base = pe.as_mut_ptr();
    debug_assert!(dest_range.end <= pe.len());
    // SAFETY: link-time fusion guarantees every arena term source view —
    // and any init accumulator distinct from the destination — is disjoint
    // from the destination range at every chunk offset, and all views were
    // bounds-validated against the arena by the linker.  The destination is
    // therefore the only mutable arena range, and the sole permitted
    // aliasing (`init == dest`, or a continuation group's accumulate onto
    // the destination) reads each element before overwriting it — the
    // kernels' contract.  Slot sources live in the snapshot (or the shared
    // zero column), different allocations.
    unsafe {
        let d = base.add(dest_range.start);
        let resolve = |term: &FusedTerm| -> *const f32 {
            match &term.src {
                SrcRef::Arena(v) => {
                    let range = v.range(chunk_offset);
                    debug_assert!(range.end <= pe.len());
                    base.add(range.start) as *const f32
                }
                SrcRef::Slot { slot, offset, .. } => {
                    let col =
                        pec.expect("slot sources only occur in comm kernels").cols[*slot as usize];
                    let start = *offset as usize + chunk_offset;
                    debug_assert!(start + len <= col.len());
                    col.as_ptr().add(start)
                }
            }
        };
        let (fill, acc): (f32, *const f32) = match init {
            FusedInit::Fill(c) => (*c, std::ptr::null()),
            FusedInit::Acc(a) if a == dest => (0.0, d as *const f32),
            FusedInit::Acc(a) => {
                let range = a.range(chunk_offset);
                debug_assert!(range.end <= pe.len());
                (0.0, base.add(range.start) as *const f32)
            }
        };
        let mut terms = [Term::NULL; MAX_ARITY];
        let mut first = true;
        for group in groups {
            for (slot, term) in terms.iter_mut().zip(group.terms.iter()) {
                *slot = Term { src: resolve(term), coeff: term.coeff };
            }
            // Continuation groups accumulate onto the running value the
            // previous group stored in the destination.
            let group_acc = if first { acc } else { d as *const f32 };
            (group.kernel)(d, len, fill, group_acc, terms.as_ptr());
            first = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::InterpGridSim;
    use crate::loader::load_program;
    use crate::reference::{max_abs_difference, run_reference};
    use wse_frontends::benchmarks::Benchmark;
    use wse_lowering::{lower_program, PipelineOptions};

    fn simulate(benchmark: Benchmark, options: &PipelineOptions) -> (GridState, GridState) {
        let program = benchmark.tiny_program();
        let lowered = lower_program(&program, options).unwrap();
        let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
        let mut sim = WseGridSim::new(loaded).unwrap();
        sim.run(None).unwrap();
        let reference = run_reference(&program, None);
        (sim.grid_state().unwrap(), reference)
    }

    #[test]
    fn jacobian_matches_reference() {
        let (simulated, reference) = simulate(Benchmark::Jacobian, &PipelineOptions::default());
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-4, "simulated result diverges from reference by {diff}");
    }

    #[test]
    fn jacobian_matches_reference_with_chunking() {
        let options = PipelineOptions { num_chunks: 3, ..PipelineOptions::default() };
        let (simulated, reference) = simulate(Benchmark::Jacobian, &options);
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-4, "chunked execution diverges by {diff}");
    }

    #[test]
    fn seismic_matches_reference() {
        let (simulated, reference) = simulate(Benchmark::Seismic25, &PipelineOptions::default());
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-3, "seismic diverges by {diff}");
    }

    #[test]
    fn diffusion_matches_reference_without_fusion() {
        let options = PipelineOptions { enable_fmac_fusion: false, ..PipelineOptions::default() };
        let (simulated, reference) = simulate(Benchmark::Diffusion, &options);
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-4, "unfused execution diverges by {diff}");
    }

    #[test]
    fn acoustic_two_field_chain_matches_reference() {
        let (simulated, reference) = simulate(Benchmark::Acoustic, &PipelineOptions::default());
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-3, "acoustic diverges by {diff}");
    }

    #[test]
    fn uvkbe_fused_kernel_matches_reference() {
        let (simulated, reference) = simulate(Benchmark::Uvkbe, &PipelineOptions::default());
        let diff = max_abs_difference(&simulated, &reference);
        assert!(diff < 1e-4, "uvkbe diverges by {diff}");
    }

    #[test]
    fn linked_engine_is_bitwise_equal_to_legacy_interpreter() {
        for benchmark in [Benchmark::Jacobian, Benchmark::Acoustic, Benchmark::Seismic25] {
            let program = benchmark.tiny_program();
            let options = PipelineOptions { num_chunks: 2, ..PipelineOptions::default() };
            let lowered = lower_program(&program, &options).unwrap();
            let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
            let mut linked = WseGridSim::new(loaded.clone()).unwrap();
            linked.run(None).unwrap();
            let mut interp = InterpGridSim::new(loaded);
            interp.run(None).unwrap();
            assert_eq!(
                linked.grid_state().unwrap(),
                interp.grid_state(),
                "{}: engines disagree",
                benchmark.name()
            );
        }
    }

    #[test]
    fn parallel_execution_is_bitwise_deterministic() {
        let program = Benchmark::Diffusion.tiny_program();
        let lowered = lower_program(&program, &PipelineOptions::default()).unwrap();
        let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
        let mut serial = WseGridSim::new(loaded.clone()).unwrap();
        serial.set_threads(1);
        serial.run(None).unwrap();
        let mut parallel = WseGridSim::new(loaded).unwrap();
        parallel.set_threads(3);
        parallel.run(None).unwrap();
        assert_eq!(serial.grid_state().unwrap(), parallel.grid_state().unwrap());
    }

    #[test]
    fn optimizer_shrinks_instructions_and_arenas_on_every_benchmark() {
        for benchmark in Benchmark::ALL {
            let program = benchmark.tiny_program();
            let options = PipelineOptions { num_chunks: 2, ..PipelineOptions::default() };
            let lowered = lower_program(&program, &options).unwrap();
            let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
            let sim = WseGridSim::with_options(
                loaded,
                crate::link::LinkOptions { optimize: true, ..LinkOptions::default() },
            )
            .unwrap();
            let stats = sim.linked().stats();
            assert!(stats.optimized);
            assert!(
                stats.instrs_after < stats.instrs_before,
                "{}: {} -> {} instructions",
                benchmark.name(),
                stats.instrs_before,
                stats.instrs_after
            );
            assert!(
                stats.arena_bytes_after < stats.arena_bytes_before,
                "{}: arena {} -> {} bytes",
                benchmark.name(),
                stats.arena_bytes_before,
                stats.arena_bytes_after
            );
            assert!(stats.fused_chains > 0, "{}: no chains fused", benchmark.name());
        }
    }

    #[test]
    fn z_shifted_groups_share_one_staged_column_and_still_shrink() {
        use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
        // Three remote terms on one (field, dx, dy) neighbor column; the
        // lowering must stage it once (shared slot), and the link-time
        // optimizer must still find savings on top.
        let expr = Expr::at("a", 1, 0, 1).scale(0.2)
            + Expr::at("a", 1, 0, -1).scale(0.2)
            + Expr::at("a", 1, 0, 0).scale(0.2)
            + Expr::center("a").scale(0.2);
        let program = StencilProgram {
            name: "zshift".into(),
            frontend: Frontend::Csl,
            grid: GridSpec::new(3, 3, 6),
            fields: vec!["a".into()],
            equations: vec![StencilEquation::new("a", expr)],
            timesteps: 2,
            source: String::new(),
        };
        program.validate().unwrap();
        let options = PipelineOptions { num_chunks: 2, ..PipelineOptions::default() };
        let lowered = lower_program(&program, &options).unwrap();
        let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
        let staged: Vec<&str> = loaded
            .buffers
            .iter()
            .map(|b| b.name.as_str())
            .filter(|n| n.starts_with("remote_col"))
            .collect();
        assert_eq!(staged, vec!["remote_col0_0"], "one shared staged column");
        let sim = WseGridSim::with_options(
            loaded,
            crate::link::LinkOptions { optimize: true, ..LinkOptions::default() },
        )
        .unwrap();
        let stats = sim.linked().stats();
        assert!(stats.arena_bytes_after < stats.arena_bytes_before);
        // The shifted reductions write different sub-ranges, so no chain
        // collapses here — but nothing may grow either.
        assert!(stats.instrs_after <= stats.instrs_before);
    }

    #[test]
    fn unknown_field_is_an_error_not_a_silent_drop() {
        let program = Benchmark::Jacobian.tiny_program();
        let lowered = lower_program(&program, &PipelineOptions::default()).unwrap();
        let loaded = load_program(&lowered.ctx, lowered.module).unwrap();
        let sim = WseGridSim::new(loaded).unwrap();
        let message = sim.field("missing").unwrap_err().message;
        assert!(message.contains("not a field buffer"), "got: {message}");
        assert!(sim.field("a").is_ok());
        assert_eq!(sim.grid_state().unwrap().names, vec!["a".to_string()]);
    }
}
