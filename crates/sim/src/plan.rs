//! The kernel-plan compiler: lowers a [`LinkedProgram`]'s instruction
//! streams into flat per-block plans of monomorphized SIMD kernels from
//! [`crate::kernels`].
//!
//! Planning happens once, between link and run.  Each [`LinkedInstr`] is
//! resolved to a [`PlannedOp`] carrying a concrete kernel *function
//! pointer* — specialized per (operation, arity, init kind, instruction
//! set, FMA mode) — so the run phase dispatches a block with one match per
//! op and zero per-element decisions.  Three lowering rules do the work:
//!
//! - **Sweeps.** A [`LinkedInstr::FusedMacs`] of arity `≤`
//!   [`MAX_ARITY`] becomes a single [`SweepGroup`] whose kernel is
//!   monomorphized for its exact arity and init kind.  Wider chains split
//!   into a head group (carrying the real init) followed by continuation
//!   groups that accumulate onto the destination (`AccSelf`), at most
//!   `MAX_ARITY` terms each — the per-element operation order is exactly
//!   that of the original chain, so results stay bitwise identical.
//! - **Scratch elision.** Unfused [`LinkedInstr::Binary`] /
//!   [`LinkedInstr::Macs`] ops historically computed into a scratch
//!   buffer and copied back, preserving read-all-then-write semantics for
//!   aliasing views.  The planner uses the linker's view arithmetic
//!   ([`views_disjoint`]) to prove, per source, that the view is either
//!   *exactly* the destination (elementwise in-place is then safe: element
//!   `j` reads only index `j`) or disjoint from it at every chunk offset —
//!   and marks the op [`direct`](PlannedOp::Binary::direct), skipping the
//!   round-trip.  Partially overlapping views keep the scratch path.
//! - **ISA selection.** The plan binds kernels from the widest instruction
//!   set the host supports ([`Isa::detect`]), or the scalar set when
//!   [`LinkedProgram::simd`] is off (`WSE_SIM_NO_SIMD=1`).  Either way the
//!   bits are identical; [`PlanCounts`] reports which path every op took
//!   so conformance and benches can force and observe each.

use crate::kernels::{kernel_set, Isa, KernelSet, MacsFn, MapFn, SweepFn, SweepRowFn, MAX_ARITY};
use crate::link::{
    views_disjoint, FusedInit, FusedTerm, LinkedInstr, LinkedKernel, LinkedProgram, LinkedView,
};
use crate::loader::BinKind;

/// Observability counters of one planning run (copied into
/// [`crate::link::OptStats`] at link time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCounts {
    /// Arithmetic ops bound to vector (SSE2/AVX2) kernels.
    pub simd_planned: usize,
    /// Arithmetic ops bound to the portable scalar kernel set.
    pub simd_fallback: usize,
    /// `Binary`/`Macs` ops proven safe to run in place (no scratch
    /// round-trip).
    pub scratch_elided: usize,
}

/// The planned form of a whole program: phase 1.5 of the engine, between
/// [`crate::link`] and [`crate::exec`].
#[derive(Debug, Clone)]
pub struct ProgramPlan {
    /// The instruction set every kernel in the plan is compiled for.
    pub isa: Isa,
    /// Whether the plan uses contracted multiply-adds (tolerance-path
    /// only; see [`crate::link::LinkOptions::fast_fma`]).
    pub fast_fma: bool,
    /// One plan per linked kernel, in execution order.
    pub kernels: Vec<KernelPlan>,
    /// What the planner did.
    pub counts: PlanCounts,
}

/// The planned blocks of one kernel, parallel to [`LinkedKernel`]'s
/// `pre`/`recv`/`done`/`commit` instruction streams.
#[derive(Debug, Clone, Default)]
pub struct KernelPlan {
    /// Kernel body ops (chunk offset 0).
    pub pre: Vec<PlannedOp>,
    /// Receive-callback ops (run once per chunk at the chunk's offset).
    pub recv: Vec<PlannedOp>,
    /// Done-exchange ops (chunk offset 0).
    pub done: Vec<PlannedOp>,
    /// Deferred write-back ops (see [`LinkedKernel::commit`]).
    pub commit: Vec<PlannedOp>,
}

/// One planned operation: a resolved instruction plus the monomorphized
/// kernel that executes it.
#[derive(Debug, Clone)]
pub enum PlannedOp {
    /// `dest[i] = value` (memset; no kernel needed).
    Fill {
        /// Destination view.
        dest: LinkedView,
        /// Fill value.
        value: f32,
    },
    /// `dest[i] = src[i]` (memmove; overlap allowed, no kernel needed).
    Copy {
        /// Destination view.
        dest: LinkedView,
        /// Source view.
        src: LinkedView,
    },
    /// `dest[i] = a[i] <op> b[i]` through a [`MapFn`].
    Binary {
        /// The monomorphized elementwise kernel.
        kernel: MapFn,
        /// Destination view.
        dest: LinkedView,
        /// First source.
        a: LinkedView,
        /// Second source.
        b: LinkedView,
        /// Both sources proven exactly-equal-or-disjoint to `dest`: the
        /// kernel writes the destination directly instead of taking the
        /// scratch round-trip.
        direct: bool,
    },
    /// `dest[i] = acc[i] + src[i] * coeff` through a [`MacsFn`].
    Macs {
        /// The monomorphized multiply-accumulate kernel.
        kernel: MacsFn,
        /// Destination view.
        dest: LinkedView,
        /// Accumulator view.
        acc: LinkedView,
        /// Source view.
        src: LinkedView,
        /// Scalar coefficient.
        coeff: f32,
        /// Both sources proven exactly-equal-or-disjoint to `dest` (see
        /// [`PlannedOp::Binary::direct`]).
        direct: bool,
    },
    /// A fused reduction sweep: the head group carries the real init;
    /// continuation groups (arity > [`MAX_ARITY`] chains) accumulate onto
    /// the destination with unchanged per-element operation order.
    Sweep {
        /// Destination view.
        dest: LinkedView,
        /// Where element `j`'s running value starts.
        init: FusedInit,
        /// The monomorphized sweep calls, in chain order (never empty).
        groups: Box<[SweepGroup]>,
    },
}

/// One monomorphized sweep call of a planned [`PlannedOp::Sweep`].
#[derive(Debug, Clone)]
pub struct SweepGroup {
    /// The sweep kernel, specialized for this group's arity and init
    /// kind.
    pub kernel: SweepFn,
    /// The row-batched variant of `kernel` (same specialization): the run
    /// phase calls it once per row segment where every source advances by
    /// a fixed per-PE stride, amortizing dispatch over the whole row.
    pub row_kernel: SweepRowFn,
    /// The multiply-accumulate terms this call applies (`len ≤
    /// MAX_ARITY`).
    pub terms: Box<[FusedTerm]>,
}

/// Lowers every kernel block of `linked` into planned SIMD ops.
pub fn plan_program(linked: &LinkedProgram) -> ProgramPlan {
    let isa = if linked.simd { Isa::detect() } else { Isa::Scalar };
    let set = kernel_set(isa, linked.fast_fma);
    let mut counts = PlanCounts::default();
    let kernels = linked.kernels.iter().map(|k| plan_kernel(k, set, &mut counts)).collect();
    ProgramPlan { isa: set.isa, fast_fma: set.fast_fma, kernels, counts }
}

fn plan_kernel(kernel: &LinkedKernel, set: &KernelSet, counts: &mut PlanCounts) -> KernelPlan {
    // Dynamic views only take a non-zero chunk offset in the receive
    // callback; pre/done/commit always run at offset 0, so their
    // disjointness proofs need no dynamic slack.
    let max_dyn = kernel.comm.as_ref().map(|c| (c.num_chunks - 1) * c.chunk_size).unwrap_or(0);
    KernelPlan {
        pre: plan_block(&kernel.pre, 0, set, counts),
        recv: plan_block(&kernel.recv, max_dyn, set, counts),
        done: plan_block(&kernel.done, 0, set, counts),
        commit: plan_block(&kernel.commit, 0, set, counts),
    }
}

fn plan_block(
    instrs: &[LinkedInstr],
    max_dyn: usize,
    set: &KernelSet,
    counts: &mut PlanCounts,
) -> Vec<PlannedOp> {
    instrs.iter().map(|instr| plan_instr(instr, max_dyn, set, counts)).collect()
}

/// In-place execution is safe iff the source view is *exactly* the
/// destination (element `j` then reads only index `j`, which every kernel
/// reads before writing) or provably disjoint from it at every chunk
/// offset.  Partial overlap — possible after copy folding rewrites views —
/// keeps the read-all-then-write scratch path.
fn in_place_safe(src: &LinkedView, dest: &LinkedView, max_dyn: usize) -> bool {
    src == dest || views_disjoint(src, dest, max_dyn)
}

fn plan_instr(
    instr: &LinkedInstr,
    max_dyn: usize,
    set: &KernelSet,
    counts: &mut PlanCounts,
) -> PlannedOp {
    let count_op = |counts: &mut PlanCounts, n: usize| {
        if set.isa == Isa::Scalar {
            counts.simd_fallback += n;
        } else {
            counts.simd_planned += n;
        }
    };
    match instr {
        LinkedInstr::Fill { dest, value } => PlannedOp::Fill { dest: *dest, value: *value },
        LinkedInstr::Copy { dest, src } => PlannedOp::Copy { dest: *dest, src: *src },
        LinkedInstr::Binary { kind, dest, a, b } => {
            let direct = in_place_safe(a, dest, max_dyn) && in_place_safe(b, dest, max_dyn);
            counts.scratch_elided += usize::from(direct);
            count_op(counts, 1);
            let kernel = set.binary[match kind {
                BinKind::Add => 0,
                BinKind::Sub => 1,
                BinKind::Mul => 2,
            }];
            PlannedOp::Binary { kernel, dest: *dest, a: *a, b: *b, direct }
        }
        LinkedInstr::Macs { dest, acc, src, coeff } => {
            let direct = in_place_safe(acc, dest, max_dyn) && in_place_safe(src, dest, max_dyn);
            counts.scratch_elided += usize::from(direct);
            count_op(counts, 1);
            PlannedOp::Macs {
                kernel: set.macs,
                dest: *dest,
                acc: *acc,
                src: *src,
                coeff: *coeff,
                direct,
            }
        }
        LinkedInstr::FusedMacs { dest, init, terms } => {
            let mut groups = Vec::with_capacity(terms.len().div_ceil(MAX_ARITY).max(1));
            let head_acc = matches!(init, FusedInit::Acc(_));
            let mut chunks = terms.chunks(MAX_ARITY);
            // The head group carries the chain's real init; an empty chain
            // still needs one arity-0 call to apply it.
            let head: &[FusedTerm] = chunks.next().unwrap_or(&[]);
            groups.push(SweepGroup {
                kernel: set.sweep(head_acc, head.len()),
                row_kernel: set.sweep_row(head_acc, head.len()),
                terms: head.into(),
            });
            // Continuation groups accumulate onto the destination
            // (`AccSelf`): per element this is the same left-to-right
            // `(((init + s₀c₀) + …) + sₖcₖ)` chain, merely re-entered at
            // the value the head group stored.
            for chunk in chunks {
                groups.push(SweepGroup {
                    kernel: set.sweep(true, chunk.len()),
                    row_kernel: set.sweep_row(true, chunk.len()),
                    terms: chunk.into(),
                });
            }
            count_op(counts, groups.len());
            PlannedOp::Sweep { dest: *dest, init: *init, groups: groups.into_boxed_slice() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::SrcRef;

    fn view(base: u32, len: u32) -> LinkedView {
        LinkedView { base, len, dynamic: false }
    }

    fn term(base: u32, len: u32, coeff: f32) -> FusedTerm {
        FusedTerm { src: SrcRef::Arena(view(base, len)), coeff }
    }

    fn plan_one(instr: LinkedInstr) -> (PlannedOp, PlanCounts) {
        let set = kernel_set(Isa::detect(), false);
        let mut counts = PlanCounts::default();
        let op = plan_instr(&instr, 0, set, &mut counts);
        (op, counts)
    }

    #[test]
    fn disjoint_binary_is_planned_direct_and_overlapping_is_not() {
        let (op, counts) = plan_one(LinkedInstr::Binary {
            kind: BinKind::Add,
            dest: view(0, 8),
            a: view(8, 8),
            b: view(16, 8),
        });
        assert!(matches!(op, PlannedOp::Binary { direct: true, .. }));
        assert_eq!(counts.scratch_elided, 1);

        // Exact self-aliasing is still direct (element j reads index j).
        let (op, _) = plan_one(LinkedInstr::Binary {
            kind: BinKind::Mul,
            dest: view(0, 8),
            a: view(0, 8),
            b: view(8, 8),
        });
        assert!(matches!(op, PlannedOp::Binary { direct: true, .. }));

        // Partial overlap keeps the scratch round-trip.
        let (op, counts) = plan_one(LinkedInstr::Binary {
            kind: BinKind::Sub,
            dest: view(0, 8),
            a: view(4, 8),
            b: view(16, 8),
        });
        assert!(matches!(op, PlannedOp::Binary { direct: false, .. }));
        assert_eq!(counts.scratch_elided, 0);
    }

    #[test]
    fn dynamic_views_account_for_the_chunk_offset_span() {
        let set = kernel_set(Isa::detect(), false);
        let mut counts = PlanCounts::default();
        // Static dest [0, 8); dynamic src starts at 8 but slides up to
        // max_dyn — with max_dyn = 0 they are disjoint...
        let instr = LinkedInstr::Macs {
            dest: view(0, 8),
            acc: view(0, 8),
            src: LinkedView { base: 8, len: 8, dynamic: true },
            coeff: 0.5,
        };
        let op = plan_instr(&instr, 0, set, &mut counts);
        assert!(matches!(op, PlannedOp::Macs { direct: true, .. }));
        // ...and with a dynamic dest the span check must keep them apart
        // conservatively: a sliding *destination* below a static source
        // can reach it.
        let instr = LinkedInstr::Macs {
            dest: LinkedView { base: 0, len: 8, dynamic: true },
            acc: LinkedView { base: 0, len: 8, dynamic: true },
            src: view(8, 8),
            coeff: 0.5,
        };
        let op = plan_instr(&instr, 16, set, &mut counts);
        assert!(matches!(op, PlannedOp::Macs { direct: false, .. }));
    }

    #[test]
    fn wide_sweeps_split_into_head_and_accself_continuations() {
        let terms: Vec<FusedTerm> =
            (0..15).map(|i| term(16 + 8 * i as u32, 8, 0.1 * i as f32)).collect();
        let (op, counts) = plan_one(LinkedInstr::FusedMacs {
            dest: view(0, 8),
            init: FusedInit::Fill(1.0),
            terms,
        });
        let PlannedOp::Sweep { groups, .. } = op else { panic!("expected a sweep") };
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].terms.len(), 6);
        assert_eq!(groups[1].terms.len(), 6);
        assert_eq!(groups[2].terms.len(), 3);
        let total = counts.simd_planned + counts.simd_fallback;
        assert_eq!(total, 3, "one count per sweep call");
    }

    #[test]
    fn empty_chains_still_apply_their_init() {
        let (op, _) = plan_one(LinkedInstr::FusedMacs {
            dest: view(0, 8),
            init: FusedInit::Fill(2.0),
            terms: Vec::new(),
        });
        let PlannedOp::Sweep { groups, .. } = op else { panic!("expected a sweep") };
        assert_eq!(groups.len(), 1);
        assert!(groups[0].terms.is_empty());
    }

    #[test]
    fn scalar_isa_routes_every_op_to_the_fallback_counter() {
        let set = kernel_set(Isa::Scalar, false);
        let mut counts = PlanCounts::default();
        let instr = LinkedInstr::Binary {
            kind: BinKind::Add,
            dest: view(0, 8),
            a: view(8, 8),
            b: view(16, 8),
        };
        plan_instr(&instr, 0, set, &mut counts);
        assert_eq!((counts.simd_planned, counts.simd_fallback), (0, 1));
    }
}
