//! Minimal, offline stand-in for the [`criterion`] benchmark harness.
//!
//! The workspace must build without network access (CI and dev containers
//! have no crates.io mirror), so this crate vendors exactly the subset of
//! the criterion 0.5 API that our benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timings are wall-clock
//! medians over a small number of samples — good enough for the relative
//! comparisons the paper's figures make, not for microbenchmark rigour.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// True when the bench binary was invoked with `--test` (as in
/// `cargo bench -- --test`): every benchmark body runs exactly once as a
/// smoke test, with no timing statistics.  Mirrors real criterion's test
/// mode; bench files can also consult it to shrink their workloads.
pub fn is_test_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Entry point handed to every bench function; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a single function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per outer invocation.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Keep full `cargo bench` runs fast: a handful of samples is enough for
    // the coarse-grained, compile-heavy workloads in this workspace.
    let samples = if is_test_mode() { 1 } else { sample_size.clamp(1, 10) };
    let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    for _ in 0..samples {
        f(&mut bencher);
    }
    if is_test_mode() {
        println!("  {id}: ok (test mode, 1 iteration)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let total: Duration = bencher.samples.iter().sum();
    println!("  {id}: median {median:?} over {} samples (total {total:?})", bencher.samples.len());
}

/// Declares a group of benchmark functions; mirrors criterion's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
