//! Minimal, offline stand-in for the [`proptest`] property-testing
//! framework.
//!
//! The workspace must build without network access, so this crate vendors
//! the subset of the proptest 1.x API that our property tests use: the
//! [`proptest!`] macro, range and [`collection::vec`] strategies,
//! [`test_runner::ProptestConfig`], and the `prop_assert*` macros.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the test
//! name) so failures are reproducible across runs and machines. There is no
//! shrinking: a failing case panics with the sampled values visible in the
//! assertion message.
//!
//! [`proptest`]: https://docs.rs/proptest

/// Strategy trait and implementations for primitive ranges.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;
        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + offset) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty float range strategy");
                    let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// A strategy that always yields the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with element values from `element` and
    /// lengths from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy for `Vec`s; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xorshift64* generator seeded from the test name.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name).
        pub fn deterministic(seed: &str) -> Self {
            // FNV-1a so different tests explore different sequences.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in seed.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(hash | 1)
        }

        /// Draws the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests; mirrors proptest's `proptest!` macro.
///
/// Supports the block form with an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
