//! Minimal, offline stand-in for the [`proptest`] property-testing
//! framework.
//!
//! The workspace must build without network access, so this crate vendors
//! the subset of the proptest 1.x API that our property tests use: the
//! [`proptest!`] macro, range and [`collection::vec`] strategies,
//! [`test_runner::ProptestConfig`], and the `prop_assert*` macros.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the test
//! name) so failures are reproducible across runs and machines. There is no
//! shrinking: a failing case panics with the sampled values visible in the
//! assertion message.
//!
//! [`proptest`]: https://docs.rs/proptest

/// Strategy trait and implementations for primitive ranges.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;
        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`; mirrors `Strategy::prop_map`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable); mirrors
        /// `Strategy::boxed`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a recursive strategy: `self` generates the leaves and
        /// `recurse` wraps an inner strategy one level deeper.  Each of the
        /// `depth` levels is an even leaf/deeper coin flip, so sampled
        /// structures have geometrically decaying depth (the size hints of
        /// the real API are accepted and ignored).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = recurse(strat.clone()).boxed();
                strat = Union::new(vec![strat, deeper]).boxed();
            }
            strat
        }
    }

    /// A type-erased, cheaply clonable strategy (`Rc`-shared).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Strategy adapter mapping sampled values through a function.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (backs the [`prop_oneof!`](crate::prop_oneof) macro).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "empty prop_oneof!");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + offset) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty float range strategy");
                    let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// A strategy that always yields the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with element values from `element` and
    /// lengths from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy for `Vec`s; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xorshift64* generator seeded from the test name.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name).
        pub fn deterministic(seed: &str) -> Self {
            // FNV-1a so different tests explore different sequences.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in seed.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(hash | 1)
        }

        /// Draws the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

/// `any::<T>()` support for the handful of primitives our tests draw.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`; mirrors `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests; mirrors proptest's `proptest!` macro.
///
/// Supports the block form with an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Uniform choice between strategies of one value type; mirrors
/// proptest's `prop_oneof!` (weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
