//! Static race detection over the linked instruction stream.
//!
//! The execution engine overlaps work three ways: worker bands sweep
//! disjoint row ranges concurrently, deferred commits lag the sweep
//! front, and neighbors read this PE's columns (directly, when the
//! snapshot capture was elided).  The link-time optimizer is what makes
//! those overlaps safe — and each elision has a precondition:
//!
//! * capture elision (`capture == false`) requires that *no* sweep-phase
//!   instruction writes a transmitted column: every such write must sit
//!   in the deferred [`commit`](wse_sim::link::LinkedKernel::commit)
//!   block, which runs only after the lagged barrier.  A violation means
//!   a concurrently-sweeping neighbor band can observe a torn column —
//!   finding **E101**.
//! * deferred commits run when neighbor arenas already hold post-step
//!   state, so a commit instruction must never source a receive slot —
//!   finding **E102**.
//! * the inverse is not a race but waste: a retained capture whose
//!   columns no sweep write ever touches could have been elided —
//!   finding **W101**.
//!
//! The detector re-derives these invariants from nothing but the stream
//! itself — no execution, no knowledge of which pass produced it — so it
//! cross-checks the optimizer the same way the translation validator
//! cross-checks dataflow: independently.  The conformance harness runs it
//! on every generated seed; the unit fixtures in `tests/static_analysis.rs`
//! pin hand-written racy and clean streams.

use wse_sim::link::{LinkedComm, LinkedInstr, LinkedProgram, SrcRef};

use crate::dag::max_dyn_of;
use crate::Finding;

fn overlaps(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// The arena interval an instruction writes, widened across chunks.
fn write_span(instr: &LinkedInstr, max_dyn: usize) -> (usize, usize) {
    let dest = match instr {
        LinkedInstr::Fill { dest, .. }
        | LinkedInstr::Copy { dest, .. }
        | LinkedInstr::Binary { dest, .. }
        | LinkedInstr::Macs { dest, .. }
        | LinkedInstr::FusedMacs { dest, .. } => dest,
    };
    let start = dest.base as usize;
    let extra = if dest.dynamic { max_dyn } else { 0 };
    (start, start + dest.len as usize + extra)
}

fn snapped_ranges(comm: &LinkedComm) -> Vec<(usize, usize)> {
    comm.snap_fields.iter().map(|f| (f.src_base, f.src_base + f.copy_len)).collect()
}

/// Runs every check over one linked stream.
pub fn check_stream(linked: &LinkedProgram) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (k, kernel) in linked.kernels.iter().enumerate() {
        let Some(comm) = &kernel.comm else { continue };
        let max_dyn = max_dyn_of(kernel);
        let snapped = snapped_ranges(comm);
        let sweep_blocks = [("pre", &kernel.pre), ("recv", &kernel.recv), ("done", &kernel.done)];

        // E101 / W101: sweep-phase writes vs. transmitted columns.
        let mut sweep_touches_snapped = false;
        for (phase, instrs) in sweep_blocks {
            for (i, instr) in instrs.iter().enumerate() {
                let w = write_span(instr, max_dyn);
                let Some(range) = snapped.iter().find(|&&r| overlaps(w, r)) else { continue };
                sweep_touches_snapped = true;
                if !comm.capture {
                    findings.push(Finding::new(
                        "E101",
                        format!("kernel {k}, {phase}[{i}]"),
                        format!(
                            "writes arena [{}, {}) inside transmitted column [{}, {}) while \
                             the snapshot capture is elided: a neighbor band sweeping \
                             concurrently reads this live column",
                            w.0, w.1, range.0, range.1
                        ),
                    ));
                }
            }
        }
        if comm.capture && !sweep_touches_snapped {
            findings.push(Finding::new(
                "W101",
                format!("kernel {k}"),
                "snapshot capture retained although no sweep-phase instruction writes a \
                 transmitted column"
                    .to_string(),
            ));
        }

        // E102: slot reads inside the deferred-commit window.
        for (i, instr) in kernel.commit.iter().enumerate() {
            let LinkedInstr::FusedMacs { terms, .. } = instr else { continue };
            if terms.iter().any(|t| matches!(t.src, SrcRef::Slot { .. })) {
                findings.push(Finding::new(
                    "E102",
                    format!("kernel {k}, commit[{i}]"),
                    "commit instruction sources a receive slot; commits run after the \
                     sweep barrier, when the snapshot no longer reflects neighbor state"
                        .to_string(),
                ));
            }
        }
    }
    findings
}
