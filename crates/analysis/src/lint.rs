//! Lints over the front-end stencil AST.
//!
//! These run before any lowering — on exactly what the user wrote — and
//! report the `W00x`/`E00x` codes of the shared registry.  The error
//! codes mirror conditions the pipeline enforces later (`E001` duplicates
//! [`StencilProgram::validate`], `E003` duplicates the lowering's
//! `non-linear-degree` rejection): the lint driver's job is to surface
//! them *as a batch, with explanations, before compilation*, not to be
//! the enforcement point.  The warning codes have no later twin — dead
//! code and costly shapes compile fine, so this is the only place they
//! are reported at all.

use wse_frontends::{Expr, StencilProgram};

use crate::Finding;

/// The polynomial degree of an expression over field accesses:
/// constants are degree 0, accesses degree 1, `Mul` sums, `Add`/`Sub`
/// take the maximum.  Matches the lowering's normal-form extractor, which
/// rejects degree >= 3 (`non-linear-degree`).
pub fn degree(expr: &Expr) -> usize {
    match expr {
        Expr::Const(_) => 0,
        Expr::Access { .. } => 1,
        Expr::Add(a, b) | Expr::Sub(a, b) => degree(a).max(degree(b)),
        Expr::Mul(a, b) => degree(a) + degree(b),
    }
}

/// The largest halo radius the lowering's exchange patterns transmit
/// (the 25-point star of the seismic benchmark).
pub const MAX_EXCHANGE_RADIUS: i64 = 4;

/// Runs every AST lint over `program`.
pub fn lint_program(program: &StencilProgram) -> Vec<Finding> {
    let mut findings = Vec::new();
    let extents = [program.grid.x, program.grid.y, program.grid.z];
    let dims = ["x", "y", "z"];

    for (e, eq) in program.equations.iter().enumerate() {
        let at = format!("equation {e} ({} = ...)", eq.output);

        // E001: a constant offset at least the grid extent reads outside
        // the grid on every application.
        for (field, offset) in eq.expr.accesses() {
            for d in 0..3 {
                if offset[d].abs() >= extents[d] {
                    findings.push(Finding::new(
                        "E001",
                        at.clone(),
                        format!(
                            "access {field}[{}, {}, {}] offsets {} in {} but the grid extent \
                             is only {}",
                            offset[0], offset[1], offset[2], offset[d], dims[d], extents[d]
                        ),
                    ));
                }
            }
        }

        // E002: halo wider than any exchange pattern.
        let radius = eq.xy_radius();
        if radius > MAX_EXCHANGE_RADIUS {
            findings.push(Finding::new(
                "E002",
                at.clone(),
                format!(
                    "equation needs a radius-{radius} halo; the exchange patterns transmit \
                     at most radius {MAX_EXCHANGE_RADIUS}"
                ),
            ));
        }

        // E003 / W004: polynomial degree.
        let deg = degree(&eq.expr);
        if deg >= 3 {
            findings.push(Finding::new(
                "E003",
                at.clone(),
                format!(
                    "stencil body has polynomial degree {deg}; lowering supports degree <= 2 \
                     and rejects this with `non-linear-degree`"
                ),
            ));
        } else if deg == 2 {
            findings.push(Finding::new(
                "W004",
                at.clone(),
                "degree-2 product terms decompose onto internal scratch fields with \
                 full-column staging"
                    .to_string(),
            ));
        }

        // W003: the equation reads its own output at a shifted offset.
        let self_aliasing = eq
            .expr
            .accesses()
            .iter()
            .any(|(field, offset)| *field == eq.output && *offset != [0, 0, 0]);
        if self_aliasing {
            findings.push(Finding::new(
                "W003",
                at.clone(),
                format!(
                    "reads its own output '{}' at a shifted offset: the inliner must \
                     double-buffer the field",
                    eq.output
                ),
            ));
        }
    }

    // W001: fields no equation reads or writes.
    for field in &program.fields {
        let written = program.equations.iter().any(|eq| &eq.output == field);
        let read =
            program.equations.iter().any(|eq| eq.expr.accesses().iter().any(|(f, _)| f == field));
        if !written && !read {
            findings.push(Finding::new(
                "W001",
                format!("field '{field}'"),
                "declared but never read or written by any equation".to_string(),
            ));
        }
    }

    // W002: a store overwritten by a later equation before any read.
    // Reads *after* the last write of a timestep reach the next
    // timestep's first write, so only intra-step shadowing counts: a
    // later write to the same field with no intervening-or-simultaneous
    // read in between.
    for (i, eq) in program.equations.iter().enumerate() {
        let Some(j) = program.equations[i + 1..]
            .iter()
            .position(|later| later.output == eq.output)
            .map(|p| i + 1 + p)
        else {
            continue;
        };
        // A read of the field by any equation in (i, j] keeps the store
        // live (equation j's own right-hand side reads the old value
        // too, so it is included).
        let read_between = program.equations[i + 1..=j]
            .iter()
            .any(|between| between.expr.accesses().iter().any(|(f, _)| f == &eq.output));
        if !read_between {
            findings.push(Finding::new(
                "W002",
                format!("equation {i} ({} = ...)", eq.output),
                format!("store to '{}' is overwritten by equation {j} before any read", eq.output),
            ));
        }
    }

    findings
}
