//! The dependence DAG of a linked instruction stream.
//!
//! Every PE executes the same per-kernel blocks over its own arena, so
//! one graph describes the whole grid: nodes are the events of one
//! program cycle — per kernel the snapshot capture, the staged receive
//! copies, then every instruction of the `pre`/`recv`/`done`/`commit`
//! blocks — and edges are the classic dependence kinds over arena
//! element intervals:
//!
//! * [`EdgeKind::Raw`] / [`EdgeKind::War`] / [`EdgeKind::Waw`] — a later
//!   event reads/writes a range an earlier event wrote/read;
//! * [`EdgeKind::Snapshot`] — an ordering against the pre-sweep snapshot
//!   capture (a sweep write into a captured column is only safe *because*
//!   the capture happened first);
//! * [`EdgeKind::Halo`] — cross-PE data motion: a staged copy or direct
//!   slot read sourcing a neighbor's captured column.
//!
//! Dynamic (chunk-shifted) views are widened to their full sweep span, so
//! the graph is conservative: a missing edge proves independence, a
//! present edge only suspects a dependence.  This direction is what both
//! consumers need — the race detector ([`crate::race`]) rejects on
//! suspected cross-band conflicts, and the future DAG *scheduler* (the
//! ROADMAP item this substrate serves) may only reorder events with no
//! path between them.

use wse_sim::link::{FusedInit, LinkedInstr, LinkedKernel, LinkedProgram, LinkedView, SrcRef};

/// What a graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The pre-sweep capture of every transmitted column (one node per
    /// kernel with a retained capture).
    Snapshot,
    /// The staged copy of one receive slot's column window into the
    /// receive buffer (runs once per chunk; widened to the full window).
    Staging,
    /// One instruction of a kernel block.
    Instr,
}

/// Which phase of a kernel an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Block {
    /// The exchange machinery (snapshot capture, staged copies).
    Exchange,
    /// The kernel body (`pre`).
    Pre,
    /// The per-chunk receive block (`recv`).
    Recv,
    /// The once-per-kernel completion block (`done`).
    Done,
    /// The deferred write-back block (`commit`).
    Commit,
}

/// One event of the program cycle.
#[derive(Debug, Clone)]
pub struct DepNode {
    /// What the event is.
    pub kind: NodeKind,
    /// Kernel index in execution order.
    pub kernel: usize,
    /// Phase the event belongs to.
    pub block: Block,
    /// Instruction (or slot) index within the phase.
    pub index: usize,
    /// Arena intervals the event may read, as `[start, end)` pairs.
    pub reads: Vec<(usize, usize)>,
    /// Arena interval the event may write.
    pub write: Option<(usize, usize)>,
    /// Whether the event also reads cross-PE data (a neighbor's column).
    pub halo: bool,
    /// Short display label (`"k0/pre[2] FusedMacs"`).
    pub label: String,
}

/// The dependence kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Read-after-write: the later event reads what the earlier wrote.
    Raw,
    /// Write-after-read: the later event overwrites what the earlier read.
    War,
    /// Write-after-write: both events write an overlapping range.
    Waw,
    /// Ordering against the pre-sweep snapshot capture.
    Snapshot,
    /// Cross-PE halo data motion out of a captured column.
    Halo,
}

/// One dependence edge, `from` strictly before `to` in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Earlier event (node index).
    pub from: usize,
    /// Later event (node index).
    pub to: usize,
    /// Dependence kind.
    pub kind: EdgeKind,
}

/// Edge totals by kind, for reports and the bench table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DagCounts {
    /// Number of nodes.
    pub nodes: usize,
    /// Read-after-write edges.
    pub raw: usize,
    /// Write-after-read edges.
    pub war: usize,
    /// Write-after-write edges.
    pub waw: usize,
    /// Snapshot-ordering edges.
    pub snapshot: usize,
    /// Halo data-motion edges.
    pub halo: usize,
}

impl DagCounts {
    /// Total edges of any kind.
    pub fn edges(&self) -> usize {
        self.raw + self.war + self.waw + self.snapshot + self.halo
    }
}

/// The dependence DAG of one program cycle.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Events in program order.
    pub nodes: Vec<DepNode>,
    /// Dependence edges (each `from < to`).
    pub edges: Vec<DepEdge>,
}

fn overlaps(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// The arena span a view may touch across all chunks.
fn span(view: &LinkedView, max_dyn: usize) -> (usize, usize) {
    let start = view.base as usize;
    let extra = if view.dynamic { max_dyn } else { 0 };
    (start, start + view.len as usize + extra)
}

/// Furthest chunk shift of a kernel's dynamic views.
pub(crate) fn max_dyn_of(kernel: &LinkedKernel) -> usize {
    kernel.comm.as_ref().map(|c| (c.num_chunks.saturating_sub(1)) * c.chunk_size).unwrap_or(0)
}

fn instr_name(instr: &LinkedInstr) -> &'static str {
    match instr {
        LinkedInstr::Fill { .. } => "Fill",
        LinkedInstr::Copy { .. } => "Copy",
        LinkedInstr::Binary { .. } => "Binary",
        LinkedInstr::Macs { .. } => "Macs",
        LinkedInstr::FusedMacs { .. } => "FusedMacs",
    }
}

fn instr_node(
    kernel_idx: usize,
    block: Block,
    index: usize,
    instr: &LinkedInstr,
    max_dyn: usize,
) -> DepNode {
    let mut reads = Vec::new();
    let mut halo = false;
    let write;
    match instr {
        LinkedInstr::Fill { dest, .. } => write = Some(span(dest, max_dyn)),
        LinkedInstr::Copy { dest, src } => {
            reads.push(span(src, max_dyn));
            write = Some(span(dest, max_dyn));
        }
        LinkedInstr::Binary { dest, a, b, .. } => {
            reads.push(span(a, max_dyn));
            reads.push(span(b, max_dyn));
            write = Some(span(dest, max_dyn));
        }
        LinkedInstr::Macs { dest, acc, src, .. } => {
            reads.push(span(acc, max_dyn));
            reads.push(span(src, max_dyn));
            write = Some(span(dest, max_dyn));
        }
        LinkedInstr::FusedMacs { dest, init, terms } => {
            if let FusedInit::Acc(acc) = init {
                reads.push(span(acc, max_dyn));
            }
            for term in terms {
                match &term.src {
                    SrcRef::Arena(view) => reads.push(span(view, max_dyn)),
                    SrcRef::Slot { .. } => halo = true,
                }
            }
            write = Some(span(dest, max_dyn));
        }
    }
    let phase = match block {
        Block::Pre => "pre",
        Block::Recv => "recv",
        Block::Done => "done",
        Block::Commit => "commit",
        Block::Exchange => "exchange",
    };
    DepNode {
        kind: NodeKind::Instr,
        kernel: kernel_idx,
        block,
        index,
        reads,
        write,
        halo,
        label: format!("k{kernel_idx}/{phase}[{index}] {}", instr_name(instr)),
    }
}

impl DepGraph {
    /// Builds the dependence DAG of one cycle of `linked`.
    pub fn build(linked: &LinkedProgram) -> Self {
        let mut nodes: Vec<DepNode> = Vec::new();
        // Snapshot node index per kernel, for snapshot/halo edge anchors.
        let mut snapshot_of: Vec<Option<usize>> = Vec::new();
        let mut halo_edges: Vec<DepEdge> = Vec::new();

        for (k, kernel) in linked.kernels.iter().enumerate() {
            let max_dyn = max_dyn_of(kernel);
            let snap = kernel.comm.as_ref().filter(|c| c.capture).map(|comm| {
                let reads = comm
                    .snap_fields
                    .iter()
                    .map(|f| (f.src_base, f.src_base + f.copy_len))
                    .collect();
                nodes.push(DepNode {
                    kind: NodeKind::Snapshot,
                    kernel: k,
                    block: Block::Exchange,
                    index: 0,
                    reads,
                    write: None,
                    halo: false,
                    label: format!("k{k}/snapshot"),
                });
                nodes.len() - 1
            });
            snapshot_of.push(snap);
            if let Some(comm) = &kernel.comm {
                for (slot, spec) in comm.slots.iter().enumerate() {
                    if !spec.staged {
                        continue;
                    }
                    let start = comm.recv_base + slot * comm.chunk_size;
                    nodes.push(DepNode {
                        kind: NodeKind::Staging,
                        kernel: k,
                        block: Block::Exchange,
                        index: slot,
                        reads: Vec::new(),
                        write: Some((start, start + comm.chunk_size)),
                        halo: true,
                        label: format!("k{k}/stage[{slot}] (dx {}, dy {})", spec.dx, spec.dy),
                    });
                    // The staged data comes out of a neighbor's captured
                    // column: cross-PE motion, anchored on the capture
                    // when one is retained.
                    if let Some(s) = snap {
                        halo_edges.push(DepEdge {
                            from: s,
                            to: nodes.len() - 1,
                            kind: EdgeKind::Halo,
                        });
                    }
                }
            }
            let blocks = [
                (Block::Pre, &kernel.pre),
                (Block::Recv, &kernel.recv),
                (Block::Done, &kernel.done),
                (Block::Commit, &kernel.commit),
            ];
            for (block, instrs) in blocks {
                for (i, instr) in instrs.iter().enumerate() {
                    let node = instr_node(k, block, i, instr, max_dyn);
                    if node.halo {
                        // Direct slot reads (staging elided) source the
                        // neighbor snapshot without an arena interval.
                        if let Some(s) = snap {
                            halo_edges.push(DepEdge {
                                from: s,
                                to: nodes.len(),
                                kind: EdgeKind::Halo,
                            });
                        }
                    }
                    nodes.push(node);
                }
            }
        }

        // Interval-overlap dependences over the whole cycle, in program
        // order.  Streams are a few dozen events, so O(n^2) is fine — and
        // exact, which a scheduler substrate should be.
        let mut edges = Vec::new();
        for j in 1..nodes.len() {
            for i in 0..j {
                let (a, b) = (&nodes[i], &nodes[j]);
                let snapshotty = a.kind == NodeKind::Snapshot || b.kind == NodeKind::Snapshot;
                let kind_of = |base: EdgeKind| if snapshotty { EdgeKind::Snapshot } else { base };
                if let Some(w) = a.write {
                    if b.reads.iter().any(|&r| overlaps(w, r)) {
                        edges.push(DepEdge { from: i, to: j, kind: kind_of(EdgeKind::Raw) });
                    }
                    if let Some(wb) = b.write {
                        if overlaps(w, wb) {
                            edges.push(DepEdge { from: i, to: j, kind: kind_of(EdgeKind::Waw) });
                        }
                    }
                }
                if let Some(wb) = b.write {
                    if a.reads.iter().any(|&r| overlaps(wb, r)) {
                        edges.push(DepEdge { from: i, to: j, kind: kind_of(EdgeKind::War) });
                    }
                }
            }
        }
        edges.extend(halo_edges);
        DepGraph { nodes, edges }
    }

    /// Edge totals by kind.
    pub fn counts(&self) -> DagCounts {
        let mut c = DagCounts { nodes: self.nodes.len(), ..DagCounts::default() };
        for e in &self.edges {
            match e.kind {
                EdgeKind::Raw => c.raw += 1,
                EdgeKind::War => c.war += 1,
                EdgeKind::Waw => c.waw += 1,
                EdgeKind::Snapshot => c.snapshot += 1,
                EdgeKind::Halo => c.halo += 1,
            }
        }
        c
    }

    /// All edges of one kind.
    pub fn edges_of(&self, kind: EdgeKind) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.kind == kind)
    }
}
